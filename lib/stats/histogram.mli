(** Log-linear latency histogram (HdrHistogram-style).

    Values are bucketed with bounded relative error: each power-of-two
    range is split into [2^sub_bucket_bits] linear buckets, giving a
    worst-case relative quantile error of [2^-sub_bucket_bits]. The
    default (6 bits) bounds error at ~1.6 %, ample for 99th-percentile
    comparisons, with O(1) record and O(buckets) quantile queries. *)

type t

(** [create ()] covers values in [1, max_value] (ns by convention).
    @param sub_bucket_bits linear resolution per octave, default 6.
    @param max_value largest trackable value, default 1e9 (1 s). *)
val create : ?sub_bucket_bits:int -> ?max_value:float -> unit -> t

(** Record one value; values below 1 count as 1, values above
    [max_value] saturate into the top bucket. *)
val add : t -> float -> unit

(** Record a value [n] times. *)
val add_many : t -> float -> int -> unit

val count : t -> int

(** [quantile t q] for [q] in [0, 1]; representative (upper-edge) value
    of the bucket containing the [q]-th ordered observation. 0 when
    empty. *)
val quantile : t -> float -> float

(** Convenience accessors. *)
val median : t -> float

val p90 : t -> float
val p95 : t -> float
val p99 : t -> float
val p999 : t -> float

val mean : t -> float
val max_recorded : t -> float
val reset : t -> unit

(** An independent deep copy: later [add]s to either histogram leave
    the other untouched. The consistent-snapshot building block —
    {!C4_obs.Registry} copies under its lock so exporters never read
    torn totals. *)
val copy : t -> t

val merge : t -> other:t -> unit

(** Nonempty buckets as [(upper_edge, count)] pairs, ascending. *)
val buckets : t -> (float * int) list

val pp : Format.formatter -> t -> unit
