type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let render_row cells =
    String.concat "  "
      (List.map2 (fun (w, a) c -> pad a w c) (List.combine widths t.aligns) cells)
  in
  let header = render_row t.headers in
  let rule = String.make (String.length header) '-' in
  String.concat "\n" (header :: rule :: List.map render_row rows)

let print ?(oc = stdout) t =
  output_string oc (render t);
  output_char oc '\n'

let cell_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_i v = string_of_int v
let cell_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
