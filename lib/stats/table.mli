(** Plain-text table rendering for benchmark output: fixed-width columns,
    right-aligned numerics, a header rule — the same rows the paper's
    tables and figure series report. *)

type align = Left | Right

type t

(** [create ~columns] with [(header, alignment)] per column. *)
val create : columns:(string * align) list -> t

(** Append a row; must have exactly as many cells as columns. *)
val add_row : t -> string list -> unit

(** Render to a string, header first. *)
val render : t -> string

(** [print t] renders to [oc] (default [stdout]) — the explicit channel
    keeps library code honest about where output goes; the implicit
    stdout printers are banned in [lib/] by [c4_lint]. *)
val print : ?oc:out_channel -> t -> unit

(** Formatting helpers used throughout bench output. *)
val cell_f : ?decimals:int -> float -> string

val cell_i : int -> string
val cell_pct : float -> string
