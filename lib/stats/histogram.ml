type t = {
  sub_bits : int;
  sub_count : int; (* 2^sub_bits linear buckets per octave *)
  octaves : int;
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable max_seen : float;
}

let create ?(sub_bucket_bits = 6) ?(max_value = 1e9) () =
  assert (sub_bucket_bits >= 1 && sub_bucket_bits <= 16);
  let sub_count = 1 lsl sub_bucket_bits in
  (* Octave [o] covers values in [2^o * sub_count, 2^(o+1) * sub_count).
     Octave 0 additionally holds the linear range [0, sub_count). *)
  let octaves =
    let rec needed o =
      if float_of_int sub_count *. Float.of_int (1 lsl o) >= max_value || o > 50
      then o + 1
      else needed (o + 1)
    in
    needed 0
  in
  {
    sub_bits = sub_bucket_bits;
    sub_count;
    octaves;
    counts = Array.make (octaves * sub_count) 0;
    total = 0;
    sum = 0.0;
    max_seen = 0.0;
  }

(* Index of the bucket holding integer value [v >= 0]. *)
let index t v =
  if v < t.sub_count then v
  else begin
    (* Highest set bit beyond the sub-bucket range selects the octave. *)
    let msb =
      let rec loop v acc = if v <= 1 then acc else loop (v lsr 1) (acc + 1) in
      loop v 0
    in
    let octave = msb - t.sub_bits + 1 in
    let octave = if octave >= t.octaves then t.octaves - 1 else octave in
    let sub = (v lsr octave) - (t.sub_count / 2) in
    let sub = if sub < 0 then 0 else if sub >= t.sub_count then t.sub_count - 1 else sub in
    (* Upper half of each octave row is used past octave 0; fold into the
       flat array as octave * sub_count + (sub_count/2 + sub). *)
    (octave * t.sub_count) + (t.sub_count / 2) + sub
  end

(* Upper edge of bucket [i], i.e. the largest value mapping to it. *)
let upper_edge t i =
  if i < t.sub_count then float_of_int i
  else begin
    let octave = i / t.sub_count in
    let sub = (i mod t.sub_count) - (t.sub_count / 2) in
    let base = (t.sub_count / 2) + sub in
    float_of_int (((base + 1) lsl octave) - 1)
  end

let add_many t v n =
  let v = if v < 0.0 then 0.0 else v in
  if v > t.max_seen then t.max_seen <- v;
  let iv = int_of_float v in
  let i = index t iv in
  let i = if i >= Array.length t.counts then Array.length t.counts - 1 else i in
  t.counts.(i) <- t.counts.(i) + n;
  t.total <- t.total + n;
  t.sum <- t.sum +. (v *. float_of_int n)

let add t v = add_many t v 1
let count t = t.total

let quantile t q =
  if t.total = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = int_of_float (ceil (q *. float_of_int t.total)) in
    let rank = if rank < 1 then 1 else rank in
    let rec loop i acc =
      if i >= Array.length t.counts then t.max_seen
      else begin
        let acc = acc + t.counts.(i) in
        if acc >= rank then Float.min (upper_edge t i) t.max_seen else loop (i + 1) acc
      end
    in
    loop 0 0
  end

let median t = quantile t 0.5
let p90 t = quantile t 0.90
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let max_recorded t = t.max_seen

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.max_seen <- 0.0

let copy t =
  {
    sub_bits = t.sub_bits;
    sub_count = t.sub_count;
    octaves = t.octaves;
    counts = Array.copy t.counts;
    total = t.total;
    sum = t.sum;
    max_seen = t.max_seen;
  }

let merge t ~other =
  if t.sub_bits <> other.sub_bits || Array.length t.counts <> Array.length other.counts
  then invalid_arg "Histogram.merge: incompatible layouts";
  Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) other.counts;
  t.total <- t.total + other.total;
  t.sum <- t.sum +. other.sum;
  if other.max_seen > t.max_seen then t.max_seen <- other.max_seen

let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (upper_edge t i, t.counts.(i)) :: !acc
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f" t.total
    (mean t) (median t) (p99 t) t.max_seen
