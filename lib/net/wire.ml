module Header = C4_nic.Header

type op = Get | Set | Delete | Cluster_info

type trace_context = { trace_id : int; parent_span : int }

type request = {
  id : int;
  op : op;
  key : int;
  token : int option;
  trace : trace_context option;
  value : bytes;
}

type status = Ok | Not_found | Err | Wrong_shard | Cluster_ok

type response = {
  resp_id : int;
  status : status;
  timing_ns : int;
  resp_value : bytes;
}

let version = 2
let min_version = 1

type t = {
  layout : Header.layout;
  resp_layout : Header.response_layout;
  header_size : int;  (* request fixed-header bytes (opcode + key) *)
  resp_size : int;  (* response fixed-header bytes (status + value len) *)
  max_frame : int;
}

let create ?(max_frame = 1 lsl 20) ?(layout = Header.default_layout) () =
  if max_frame <= 0 then invalid_arg "Wire.create: max_frame";
  if layout.Header.key_length < 1 || layout.Header.key_length > 8 then
    invalid_arg "Wire.create: key_length must be in 1..8";
  if layout.Header.opcode_offset < 0 || layout.Header.key_offset < 0 then
    invalid_arg "Wire.create: negative offset";
  if
    layout.Header.opcode_offset >= layout.Header.key_offset
    && layout.Header.opcode_offset < layout.Header.key_offset + layout.Header.key_length
  then invalid_arg "Wire.create: opcode overlaps key";
  let resp_layout = Header.default_response_layout in
  {
    layout;
    resp_layout;
    header_size =
      max (layout.Header.opcode_offset + 1)
        (layout.Header.key_offset + layout.Header.key_length);
    resp_size = Header.response_size resp_layout;
    max_frame;
  }

let layout t = t.layout
let max_frame t = t.max_frame

(* ---------------- little-endian field helpers ---------------- *)

let put_le b ~off ~len v =
  let v = ref (Int64.of_int v) in
  for i = 0 to len - 1 do
    Bytes.set b (off + i) (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
    v := Int64.shift_right_logical !v 8
  done

let get_le b ~off ~len =
  let v = ref 0L in
  for i = len - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get b (off + i))))
  done;
  Int64.to_int !v

(* ---------------- request codec ---------------- *)

let opcode_byte = function
  | Get -> '\000'
  | Set -> '\001'
  | Delete -> '\002'
  | Cluster_info -> '\003'

let header_op = function
  | Get -> `Read
  | Set -> `Write
  | Delete -> `Delete
  | Cluster_info ->
    (* The NIC header has no cluster opcode: CLUSTER_INFO frames are a
       net-layer control plane the simulated NIC never parses. *)
    invalid_arg "Wire.header_op: Cluster_info has no NIC equivalent"

let op_of_header = function
  | `Read -> Get
  | `Write -> Set
  | `Delete -> Delete

let frame_of_body ~version:v body =
  let n = Bytes.length body in
  let frame = Bytes.create (4 + 1 + n) in
  put_le frame ~off:0 ~len:4 (n + 1);
  Bytes.set frame 4 (Char.chr v);
  Bytes.blit body 0 frame 5 n;
  frame

let check_frame_size t body =
  if 1 + Bytes.length body > t.max_frame then
    invalid_arg
      (Printf.sprintf "Wire: frame of %d bytes exceeds max_frame %d"
         (1 + Bytes.length body) t.max_frame)

let encode_request t r =
  if r.id < 0 then invalid_arg "Wire.encode_request: negative id";
  let kl = t.layout.Header.key_length in
  if r.key < 0 || (kl < 8 && r.key >= 1 lsl (8 * kl)) then
    invalid_arg "Wire.encode_request: key does not fit key_length";
  (match r.op with
  | Set | Cluster_info -> ()
  | Get | Delete ->
    if Bytes.length r.value > 0 then
      invalid_arg "Wire.encode_request: GET/DELETE carry no value");
  let token_bytes = match r.token with None -> 0 | Some _ -> 8 in
  let trace_bytes = match r.trace with None -> 0 | Some _ -> 16 in
  let body =
    Bytes.make
      (t.header_size + 8 + 1 + token_bytes + trace_bytes + Bytes.length r.value)
      '\000'
  in
  Bytes.set body t.layout.Header.opcode_offset (opcode_byte r.op);
  put_le body ~off:t.layout.Header.key_offset ~len:kl r.key;
  put_le body ~off:t.header_size ~len:8 r.id;
  let flags =
    (if r.token = None then 0 else 1) lor if r.trace = None then 0 else 2
  in
  Bytes.set body (t.header_size + 8) (Char.chr flags);
  (match r.token with
  | None -> ()
  | Some tok ->
    if tok < 0 then invalid_arg "Wire.encode_request: negative token";
    put_le body ~off:(t.header_size + 9) ~len:8 tok);
  (match r.trace with
  | None -> ()
  | Some ctx ->
    if ctx.trace_id < 0 || ctx.parent_span < 0 then
      invalid_arg "Wire.encode_request: negative trace context id";
    put_le body ~off:(t.header_size + 9 + token_bytes) ~len:8 ctx.trace_id;
    put_le body ~off:(t.header_size + 9 + token_bytes + 8) ~len:8 ctx.parent_span);
  Bytes.blit r.value 0 body
    (t.header_size + 9 + token_bytes + trace_bytes)
    (Bytes.length r.value);
  check_frame_size t body;
  (* Trace-context-free requests still frame as version 1 — byte-
     identical to what a v1 encoder produces, so old decoders keep
     working until a frame actually carries the new field. *)
  frame_of_body ~version:(if r.trace = None then min_version else version) body

let decode_request t body =
  let fixed = t.header_size + 8 + 1 in
  if Bytes.length body < fixed then
    Error (Printf.sprintf "short request body: %d bytes, need %d" (Bytes.length body) fixed)
  else
    match Char.code (Bytes.get body t.layout.Header.opcode_offset) with
    | (0 | 1 | 2 | 3) as c ->
      let op =
        match c with 0 -> Get | 1 -> Set | 2 -> Delete | _ -> Cluster_info
      in
      let key =
        get_le body ~off:t.layout.Header.key_offset ~len:t.layout.Header.key_length
      in
      let id = get_le body ~off:t.header_size ~len:8 in
      let flags = Char.code (Bytes.get body (t.header_size + 8)) in
      if flags land lnot 3 <> 0 then Error (Printf.sprintf "unknown flags 0x%02x" flags)
      else begin
        let token_bytes = if flags land 1 = 1 then 8 else 0 in
        let trace_bytes = if flags land 2 = 2 then 16 else 0 in
        if Bytes.length body < fixed + token_bytes + trace_bytes then
          Error "request body truncated inside token/trace context"
        else begin
          let token =
            if token_bytes = 0 then None else Some (get_le body ~off:fixed ~len:8)
          in
          let trace =
            if trace_bytes = 0 then None
            else
              Some
                {
                  trace_id = get_le body ~off:(fixed + token_bytes) ~len:8;
                  parent_span = get_le body ~off:(fixed + token_bytes + 8) ~len:8;
                }
          in
          let value_off = fixed + token_bytes + trace_bytes in
          let value = Bytes.sub body value_off (Bytes.length body - value_off) in
          match op with
          | Set | Cluster_info -> Ok { id; op; key; token; trace; value }
          | Get | Delete ->
            if Bytes.length value > 0 then
              Error "GET/DELETE request carries a value"
            else Ok { id; op; key; token; trace; value = Bytes.empty }
        end
      end
    | c -> Error (Printf.sprintf "unknown opcode %d" c)

(* ---------------- response codec ---------------- *)

let header_status = function
  | Ok -> `Ok
  | Not_found -> `Not_found
  | Err -> `Err
  | Wrong_shard -> `Wrong_shard
  | Cluster_ok -> `Cluster_ok

let status_of_header = function
  | `Ok -> Ok
  | `Not_found -> Not_found
  | `Err -> Err
  | `Wrong_shard -> Wrong_shard
  | `Cluster_ok -> Cluster_ok

let encode_response t r =
  if r.resp_id < 0 then invalid_arg "Wire.encode_response: negative id";
  if r.timing_ns < 0 then invalid_arg "Wire.encode_response: negative timing";
  (* Fixed response header via the NIC-registered geometry, then the
     net-layer trailer (request id, timing) and the value. *)
  let head = Header.encode_response t.resp_layout ~status:(header_status r.status) ~value:Bytes.empty in
  let body =
    Bytes.make (t.resp_size + 16 + Bytes.length r.resp_value) '\000'
  in
  Bytes.blit head 0 body 0 t.resp_size;
  put_le body
    ~off:t.resp_layout.Header.value_len_offset
    ~len:t.resp_layout.Header.value_len_bytes
    (Bytes.length r.resp_value);
  put_le body ~off:t.resp_size ~len:8 r.resp_id;
  put_le body ~off:(t.resp_size + 8) ~len:8 r.timing_ns;
  Bytes.blit r.resp_value 0 body (t.resp_size + 16) (Bytes.length r.resp_value);
  check_frame_size t body;
  (* Responses carry nothing v2 added; keep them decodable by v1 peers. *)
  frame_of_body ~version:min_version body

let decode_response t body =
  let fixed = t.resp_size + 16 in
  if Bytes.length body < fixed then
    Error
      (Printf.sprintf "short response body: %d bytes, need %d" (Bytes.length body) fixed)
  else
    (* Header.parse_response wants the value directly after the fixed
       header; here the net-layer trailer intervenes, so re-join header
       and value without it before parsing. *)
    let nic_packet =
      Bytes.cat (Bytes.sub body 0 t.resp_size)
        (Bytes.sub body fixed (Bytes.length body - fixed))
    in
    match Header.parse_response t.resp_layout nic_packet with
    | Error e -> Error e
    | Ok (parsed, value) ->
      if Bytes.length nic_packet - t.resp_size <> parsed.Header.value_len then
        Error
          (Printf.sprintf "response value length mismatch: declared %d, %d present"
             parsed.Header.value_len
             (Bytes.length nic_packet - t.resp_size))
      else
        Ok
          {
            resp_id = get_le body ~off:t.resp_size ~len:8;
            status = status_of_header parsed.Header.status;
            timing_ns = get_le body ~off:(t.resp_size + 8) ~len:8;
            resp_value = value;
          }

(* ---------------- incremental decoder ---------------- *)

module Decoder = struct
  type decoder = {
    codec : t;
    mutable buf : bytes;
    mutable start : int;  (* first unconsumed byte *)
    mutable len : int;  (* unconsumed byte count *)
    mutable corrupt : string option;
  }

  let create codec =
    { codec; buf = Bytes.create 4096; start = 0; len = 0; corrupt = None }

  let buffered d = d.len

  (* Slide pending bytes to the front when that frees enough room;
     allocate (2x growth) only when they genuinely don't fit. *)
  let ensure_room d extra =
    if d.start + d.len + extra > Bytes.length d.buf then begin
      if d.len + extra <= Bytes.length d.buf then
        (* In-place compaction: Bytes.blit handles overlapping ranges. *)
        Bytes.blit d.buf d.start d.buf 0 d.len
      else begin
        let nb = Bytes.create (max (d.len + extra) (2 * Bytes.length d.buf)) in
        Bytes.blit d.buf d.start nb 0 d.len;
        d.buf <- nb
      end;
      d.start <- 0
    end

  let feed d b ~off ~len =
    if off < 0 || len < 0 || off + len > Bytes.length b then
      invalid_arg "Wire.Decoder.feed";
    ensure_room d len;
    Bytes.blit b off d.buf (d.start + d.len) len;
    d.len <- d.len + len

  let next_frame d =
    match d.corrupt with
    | Some msg -> `Corrupt msg
    | None ->
      if d.len < 4 then `Awaiting
      else begin
        let frame_len = get_le d.buf ~off:d.start ~len:4 in
        if frame_len < 1 || frame_len > d.codec.max_frame then begin
          let msg =
            Printf.sprintf "frame length %d out of bounds (max %d)" frame_len
              d.codec.max_frame
          in
          d.corrupt <- Some msg;
          `Corrupt msg
        end
        else if d.len < 4 + frame_len then `Awaiting
        else begin
          let v = Char.code (Bytes.get d.buf (d.start + 4)) in
          if v < min_version || v > version then begin
            let msg = Printf.sprintf "unknown protocol version %d" v in
            d.corrupt <- Some msg;
            `Corrupt msg
          end
          else begin
            let body = Bytes.sub d.buf (d.start + 5) (frame_len - 1) in
            d.start <- d.start + 4 + frame_len;
            d.len <- d.len - (4 + frame_len);
            if d.len = 0 then d.start <- 0;
            `Frame body
          end
        end
      end
end

