/* poll(2) binding for the event-loop engine.

   Unix.select is unusable here: fd_set indexes by fd *value* and is
   capped at FD_SETSIZE (1024), so a server holding tens of thousands
   of sockets cannot express its interest set at all.  poll has no such
   cap.  The stdlib's Unix module does not bind poll, hence this stub.

   Calling convention: three parallel arrays (only the first n entries
   are used, so callers can reuse grown arrays across iterations) —
   fds (Unix.file_descr, which is an int on Unix), events (bitmask:
   1 = want-read, 2 = want-write) and revents (written back: 1 =
   readable, 2 = writable, 4 = error/hup/invalid) — plus a timeout in
   milliseconds (-1 = block).  Returns the number of entries with a
   nonzero revents.  EINTR is reported as 0 ready (the caller's loop
   simply re-polls); any other failure raises Failure. */

#include <poll.h>
#include <errno.h>
#include <stdlib.h>
#include <string.h>

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/threads.h>

#define C4_POLL_IN 1
#define C4_POLL_OUT 2
#define C4_POLL_ERR 4

CAMLprim value c4_poll_stub(value v_fds, value v_events, value v_revents,
                            value v_n, value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_n, v_timeout_ms);
  mlsize_t n = (mlsize_t)Int_val(v_n);
  if (Wosize_val(v_fds) < n || Wosize_val(v_events) < n ||
      Wosize_val(v_revents) < n)
    caml_failwith("c4_poll: n exceeds array length");
  struct pollfd *pfds = NULL;
  if (n > 0) {
    pfds = malloc(n * sizeof(struct pollfd));
    if (pfds == NULL) caml_failwith("c4_poll: out of memory");
  }
  for (mlsize_t i = 0; i < n; i++) {
    int ev = Int_val(Field(v_events, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = 0;
    if (ev & C4_POLL_IN) pfds[i].events |= POLLIN;
    if (ev & C4_POLL_OUT) pfds[i].events |= POLLOUT;
    pfds[i].revents = 0;
  }
  int timeout = Int_val(v_timeout_ms);
  caml_release_runtime_system();
  int rc = poll(pfds, (nfds_t)n, timeout);
  int saved_errno = errno;
  caml_acquire_runtime_system();
  if (rc < 0) {
    free(pfds);
    if (saved_errno == EINTR) CAMLreturn(Val_int(0));
    caml_failwith("c4_poll: poll failed");
  }
  for (mlsize_t i = 0; i < n; i++) {
    int re = 0;
    if (pfds[i].revents & POLLIN) re |= C4_POLL_IN;
    if (pfds[i].revents & POLLOUT) re |= C4_POLL_OUT;
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) re |= C4_POLL_ERR;
    Field(v_revents, i) = Val_int(re);
  }
  free(pfds);
  CAMLreturn(Val_int(rc));
}
