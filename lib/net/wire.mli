(** Versioned, length-prefixed binary wire protocol for the network
    serving layer.

    Every frame on the socket is

    {v [length : 4 B LE] [version : 1 B] [body : length-1 B] v}

    where [length] counts the version byte plus the body, so a decoder
    can delimit frames without understanding their contents.

    A {e request} body reuses the NIC's registered header geometry
    ({!C4_nic.Header.layout}): the opcode byte and the little-endian key
    sit at exactly the offsets the simulated NIC parses, so
    [C4_nic.Header.parse] recovers (op, key, partition) from the same
    bytes the TCP server decodes — the paper's premise that NIC and
    software agree on one fixed layout (Sec. 5.1), made literal. After
    the fixed header come the request id (8 B LE), a flags byte (bit 0:
    idempotency token present; bit 1: trace context present), the
    optional token (8 B LE), the optional trace context (trace id then
    parent span id, 8 B LE each), and the value (SET only):

    {v [opcode : 1 B] [key : <=8 B LE]   <- Header.layout geometry
       [request id : 8 B LE]
       [flags : 1 B] ([token : 8 B LE] if bit 0)
       ([trace id : 8 B LE] [parent span id : 8 B LE] if bit 1)
       [value : rest]                    v}

    Versioning: the trace-context field is what bumped the protocol to
    version 2. An encoder stamps each frame with the {e lowest} version
    that can represent it — a request without trace context still goes
    out as a byte-identical version-1 frame, so a v2 client talking to
    a v1 decoder only breaks on frames that genuinely carry the new
    field (which a v1 decoder rejects cleanly, by version byte). A v2
    decoder accepts versions {!min_version}..{!version}.

    A {e response} body reuses {!C4_nic.Header.default_response_layout}
    for its first bytes (status byte, value length), then carries the
    request id it answers and the server-side service time:

    {v [status : 1 B] [value length : 4 B LE]   <- response layout
       [request id : 8 B LE]
       [server timing : 8 B LE ns]
       [value : value-length B]                 v}

    The incremental {!Decoder} tolerates torn frames and partial reads
    (bytes arrive in any segmentation) and rejects oversized frames and
    unknown versions as connection-fatal corruption. *)

type op =
  | Get
  | Set
  | Delete
  | Cluster_info
      (** cluster-runtime control op (opcode 3): an empty value asks
          the node for its current shard map; a non-empty value is an
          encoded map the node should install if the epoch is newer
          (and it still answers with its current map). Answered with
          {!Cluster_ok} by cluster members, [Err] by single-node
          servers. *)

(** In-band distributed-tracing identity ({!C4_obs.Span.context}'s wire
    shape): the request's trace id and the span id of the client span
    that caused it. Both non-negative, 8 B LE each on the wire. *)
type trace_context = { trace_id : int; parent_span : int }

type request = {
  id : int;  (** per-client request id; responses echo it *)
  op : op;
  key : int;
  token : int option;  (** idempotency token, attached on retries *)
  trace : trace_context option;
      (** propagated trace context; forces a version-2 frame *)
  value : bytes;
      (** SET payload or CLUSTER_INFO map; must be empty for GET/DELETE *)
}

type status =
  | Ok
  | Not_found
  | Err
  | Wrong_shard
      (** the node does not own the key's shard under its current map;
          [resp_value] is the node's encoded shard map so the client can
          re-route without a second round trip *)
  | Cluster_ok  (** CLUSTER_INFO answer; [resp_value] is the encoded map *)

type response = {
  resp_id : int;  (** the request id this answers *)
  status : status;
  timing_ns : int;  (** server-side service time *)
  resp_value : bytes;  (** GET value, or an error message for [Err] *)
}

(** The newest protocol version this codec speaks (2: trace context). *)
val version : int

(** The oldest version this codec still decodes (1: pre-trace-context
    frames; also what context-free frames are stamped with). *)
val min_version : int

type t

(** [create ()] builds a codec. [max_frame] (default 1 MiB) bounds the
    length prefix a decoder will accept; [layout] (default
    {!C4_nic.Header.default_layout}) fixes the request geometry. Raises
    [Invalid_argument] on a layout whose fields overlap or a
    non-positive [max_frame]. *)
val create : ?max_frame:int -> ?layout:C4_nic.Header.layout -> unit -> t

val layout : t -> C4_nic.Header.layout
val max_frame : t -> int

(** Encode a full frame (length prefix included). Raises
    [Invalid_argument] when the key does not fit the layout's
    [key_length], a GET/DELETE carries a value, or the frame would
    exceed [max_frame]. *)
val encode_request : t -> request -> bytes

val encode_response : t -> response -> bytes

(** Decode a frame {e body} (as yielded by {!Decoder.next_frame}). *)
val decode_request : t -> bytes -> (request, string) result

val decode_response : t -> bytes -> (response, string) result

(** NIC interop: a request body's first bytes are a {!C4_nic.Header}
    packet, so the op enums convert both ways. [Cluster_info] is
    net-layer-only (the NIC never parses cluster control frames) —
    {!header_op} raises [Invalid_argument] on it. *)
val header_op : op -> C4_nic.Header.op

val op_of_header : C4_nic.Header.op -> op

(** Incremental frame decoder: feed bytes as they arrive off a socket,
    pull complete frame bodies out. Torn frames — a partial length
    prefix, a body split across reads — simply wait for more bytes. *)
module Decoder : sig
  type decoder

  val create : t -> decoder

  (** Append [len] bytes of [b] starting at [off]. *)
  val feed : decoder -> bytes -> off:int -> len:int -> unit

  (** [`Frame body] for each complete frame, in arrival order;
      [`Awaiting] when more bytes are needed; [`Corrupt msg] on an
      oversized length prefix or unknown version — connection-fatal,
      the stream cannot be resynchronised, and every subsequent call
      returns the same verdict. *)
  val next_frame : decoder -> [ `Frame of bytes | `Awaiting | `Corrupt of string ]

  (** Bytes buffered but not yet yielded. *)
  val buffered : decoder -> int
end
