external poll_raw :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "c4_poll_stub"

let pollin = 1
let pollout = 2
let pollerr = 4
let readable re = re land pollin <> 0
let writable re = re land pollout <> 0
let errored re = re land pollerr <> 0

let poll ~fds ~events ~revents ~n ~timeout_ms =
  if n < 0 || n > Array.length fds || Array.length events < n
     || Array.length revents < n
  then invalid_arg "Poll.poll: bad n";
  poll_raw fds events revents n timeout_ms
