(** Open-loop network load generator (netbench): replays a
    {!C4_workload.Generator} schedule against a live {!Server} through a
    {!Client}, pacing dispatches by each request's Poisson arrival
    timestamp — open-loop, so a slow server accumulates in-flight
    requests instead of slowing the offered rate (the coordinated-
    omission-free methodology the paper measures under).

    Reads become GETs and writes become SETs of the request's value
    size; [delete_fraction] deterministically converts that share of
    writes into DELETEs (hashed on request id, so a seed reproduces the
    exact op sequence). Client-observed latency — dispatch to response
    callback, queueing and retries included — lands in per-op
    {!C4_stats.Histogram}s after [warmup] responses. *)

type config = {
  workload : C4_workload.Generator.config;
      (** arrival rate, key population, skew, write mix *)
  seed : int;
  n_ops : int;  (** requests to issue *)
  warmup : int;  (** first responses excluded from latency stats *)
  delete_fraction : float;  (** share of writes issued as DELETE, [0,1] *)
  drain_timeout_s : float;
      (** max wait for outstanding responses after the last dispatch *)
}

(** 20k ops, 1k warmup, no deletes, 10 s drain. *)
val default_config : workload:C4_workload.Generator.config -> seed:int -> config

type report = {
  issued : int;
  completed : int;  (** responses received (any status) *)
  errors : int;  (** [Err] responses *)
  unanswered : int;  (** still outstanding when the drain timed out *)
  duration_s : float;  (** first dispatch to last response (or timeout) *)
  throughput : float;  (** completed / duration *)
  get_ns : C4_stats.Histogram.t;
  set_ns : C4_stats.Histogram.t;
  delete_ns : C4_stats.Histogram.t;
  all_ns : C4_stats.Histogram.t;
}

(** Blocks until every response arrived or [drain_timeout_s] expired. *)
val run : Client.t -> config -> report

(** Per-op rows: count, mean, p50/p99/p999 (µs), plus a total row. *)
val to_table : report -> C4_stats.Table.t
