module Channel = C4_runtime.Channel
module Sync = C4_runtime.Sync

type callbacks = {
  handle : Wire.request -> (unit -> Wire.response);
  on_bytes_in : int -> unit;
  on_bytes_out : int -> unit;
  on_response_written : Wire.response -> unit;
  on_protocol_error : string -> unit;
  on_closed : unit -> unit;
}

type t = {
  fd : Unix.file_descr;
  wire : Wire.t;
  cb : callbacks;
  (* Responses-to-write, in request arrival order. *)
  pending : (unit -> Wire.response) Channel.t;
  mutable reader : Thread.t option;
  mutable writer : Thread.t option;
  drained : bool Atomic.t;
  lifecycle : Mutex.t;
}

(* write(2) until the whole buffer is out; false = peer is gone. *)
let write_all fd b =
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

let writer_loop t () =
  let rec loop peer_alive =
    match Channel.pop t.pending with
    | None -> ()
    | Some thunk ->
      (* Run the thunk even when the peer is gone: it awaits the
         operation's promise, and an acknowledged write must be applied
         whether or not the ack can be delivered. *)
      let resp = thunk () in
      let alive =
        if not peer_alive then false
        else begin
          let frame = Wire.encode_response t.wire resp in
          let ok = write_all t.fd frame in
          if ok then t.cb.on_bytes_out (Bytes.length frame);
          ok
        end
      in
      (* Written or abandoned (dead peer), the response's lifecycle is
         over — the instrumentation hook fires either way, so a span
         covering the respond stage always closes. *)
      t.cb.on_response_written resp;
      loop alive
  in
  loop true

(* Decode every complete frame currently buffered; returns [false] on a
   connection-fatal protocol error. *)
let rec process_frames t decoder =
  match Wire.Decoder.next_frame decoder with
  | `Awaiting -> true
  | `Corrupt msg ->
    t.cb.on_protocol_error msg;
    false
  | `Frame body -> (
    match Wire.decode_request t.wire body with
    | Error msg ->
      t.cb.on_protocol_error msg;
      false
    | Ok req ->
      Channel.push t.pending (t.cb.handle req);
      process_frames t decoder)

let reader_loop t () =
  let decoder = Wire.Decoder.create t.wire in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    match Unix.read t.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      t.cb.on_bytes_in n;
      Wire.Decoder.feed decoder chunk ~off:0 ~len:n;
      if process_frames t decoder then loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception
        Unix.Unix_error
          ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF | Unix.EINVAL | Unix.ENOTCONN), _, _)
      ->
      ()
  in
  (* Any escaping exception is connection-fatal; [pending] must still be
     closed, or the writer would block on Channel.pop forever and
     Server.stop would hang in join. *)
  (try loop () with _ -> ());
  (* EOF / drain / fatal error: no new requests will be accepted, but
     everything already handed to the writer still flushes. *)
  Channel.close t.pending

let start ~wire ~fd cb =
  let t =
    {
      fd;
      wire;
      cb;
      pending = Channel.create ();
      reader = None;
      writer = None;
      drained = Atomic.make false;
      lifecycle = Mutex.create ();
    }
  in
  let reader = Thread.create (fun () -> reader_loop t ()) () in
  let writer =
    Thread.create
      (fun () ->
        (* A response thunk that raises must not skip the join/close
           below, or Server.stop would hang waiting on this conn. *)
        (try writer_loop t () with _ -> ());
        Thread.join reader;
        (try Unix.close t.fd with Unix.Unix_error (Unix.EBADF, _, _) -> ());
        t.cb.on_closed ())
      ()
  in
  t.reader <- Some reader;
  t.writer <- Some writer;
  t

let drain t =
  if not (Atomic.exchange t.drained true) then begin
    (* Half-close the receive side: the reader sees EOF after decoding
       whatever already arrived, so accepted requests are never cut off
       mid-drain. *)
    try Unix.shutdown t.fd Unix.SHUTDOWN_RECEIVE
    with Unix.Unix_error ((Unix.ENOTCONN | Unix.EBADF | Unix.EINVAL), _, _) -> ()
  end

let join t =
  Sync.with_lock t.lifecycle (fun () ->
      match t.writer with
      | Some w ->
        Thread.join w;
        t.writer <- None;
        t.reader <- None
      | None -> ())
