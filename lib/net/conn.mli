(** One server-side TCP connection: a reader thread that incrementally
    decodes request frames and hands them to the application, and a
    writer thread that emits responses in {e request arrival order} —
    the pipelining guarantee memcached-style clients rely on.

    The application callback returns a thunk, not a response: the reader
    submits the request (asynchronously, e.g. to
    {!C4_runtime.Server.set_async}) and keeps reading, while the writer
    runs the thunks — each of which awaits its own completion — strictly
    in arrival order. Requests therefore execute concurrently but
    responses never overtake each other on the wire, which is what lets
    a linearizability checker treat one connection as one client: the
    response order observed at the socket is the completion order.

    Lifecycle: the connection winds down when the peer closes or
    {!drain} is called — either way the reader first decodes every frame
    already received (nothing accepted is dropped), the writer flushes
    every pending response, and only then is the socket closed. A
    protocol error (corrupt frame, undecodable body) is
    connection-fatal: the reader stops accepting new frames, but
    responses already owed are still flushed. *)

type callbacks = {
  handle : Wire.request -> (unit -> Wire.response);
      (** called in the reader thread; must not block (submit async and
          return the awaiting thunk, which the writer runs) *)
  on_bytes_in : int -> unit;
  on_bytes_out : int -> unit;
  on_response_written : Wire.response -> unit;
      (** called in the writer thread once this response's write
          completed (or was abandoned because the peer is gone) —
          responses on one connection finish strictly in arrival order,
          so this hook sees them in wire order. Tracing uses it to
          close the respond span. *)
  on_protocol_error : string -> unit;
  on_closed : unit -> unit;  (** both threads done, socket closed *)
}

type t

(** Take ownership of [fd] (stream socket) and start the two threads. *)
val start : wire:Wire.t -> fd:Unix.file_descr -> callbacks -> t

(** Stop reading new bytes from the peer (half-close the receive side),
    let the pipeline drain, and return once every pending response has
    been written and the socket closed. Idempotent. *)
val drain : t -> unit

(** Block until the connection has fully wound down (peer close or
    {!drain}). *)
val join : t -> unit
