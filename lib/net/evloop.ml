module Channel = C4_runtime.Channel
module Sync = C4_runtime.Sync

(* The event-loop engine: a fixed pool of loop domains multiplexing all
   connections with poll(2) plus a self-pipe wakeup, replacing the
   threads engine's two-OS-threads-per-connection model. Each loop owns
   a disjoint set of connections (round-robin assignment at accept
   time): connection membership, the decoder and the [eof] flag are
   touched only by the owning loop domain, so they need no lock; the
   output buffer, response boundaries and the pending count are shared
   with the completion executor and guarded by the per-connection
   mutex.

   Division of labour per request: the loop does the nonblocking batched
   read into its per-loop scratch buffer, feeds the connection's
   incremental [Wire.Decoder], and calls [cb.handle] — the server's
   nonblocking runtime submission — inline, preserving the threads
   engine's reader-side semantics (recv span, admission annotations).
   The returned thunk *blocks* (promise await, cluster read fence), so
   it is handed to a completion executor: a small pool of threads with
   per-connection affinity (conn id mod pool size), which keeps one
   connection's thunks executing serially in arrival order — the
   pipelining guarantee — while different connections' thunks overlap.
   A finished response is encoded, appended to the connection's output
   buffer with its end offset recorded as a boundary, and the owning
   loop woken through its self-pipe; the loop drains the buffer with
   one coalesced write per wakeup (a writev of the pipelined responses,
   flattened), firing [on_response_written] for each boundary the flush
   crosses — in wire order, which is what lets tracing close respond
   spans exactly when bytes hit the socket. *)

type conn = {
  id : int;
  fd : Unix.file_descr;
  cb : Conn.callbacks;
  decoder : Wire.Decoder.decoder;
  c_loop : loop;
  lock : Mutex.t;  (* guards every mutable field below except [eof]/[drained] *)
  mutable obuf : Bytes.t;  (* encoded responses, [o_start, o_end) valid *)
  mutable o_start : int;
  mutable o_end : int;
  (* (queued_total offset at end of frame, response): crossed by the
     flush cursor in order, each firing on_response_written. *)
  bounds : (int * Wire.response) Queue.t;
  mutable queued_total : int;
  mutable flushed_total : int;
  mutable pending : int;  (* submitted, response not yet retired *)
  mutable eof : bool;  (* loop-only: no further frames will be decoded *)
  mutable dead : bool;  (* peer unwritable (gone or dropped as slow) *)
  mutable drained : bool;  (* loop-only: receive side already shut down *)
}

and loop = {
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  l_lock : Mutex.t;  (* guards [incoming] *)
  incoming : conn Queue.t;
  conns : (int, conn) Hashtbl.t;  (* loop-domain only *)
  scratch : Bytes.t;  (* per-loop read buffer, shared by its conns *)
  wake_buf : Bytes.t;
  mutable pfds : Unix.file_descr array;
  mutable pevents : int array;
  mutable prevents : int array;
  mutable porder : conn option array;
  mutable domain : unit Domain.t option;
}

and t = {
  wire : Wire.t;
  max_pending : int;
  on_slow_drop : unit -> unit;
  loops : loop array;
  comps : (conn * (unit -> Wire.response)) Channel.t array;
  mutable comp_threads : Thread.t list;
  mutable next_loop : int;  (* under p_lock *)
  mutable next_id : int;  (* under p_lock *)
  p_lock : Mutex.t;
  active : int Atomic.t;
  stopping : bool Atomic.t;
  draining : bool Atomic.t;
  q_lock : Mutex.t;  (* with q_cond: signals active reaching zero *)
  q_cond : Condition.t;
}

let wake_byte = Bytes.make 1 'w'

(* Nonblocking self-pipe write; a full pipe already guarantees a wakeup
   is pending, and EBADF just means the pool already shut down. *)
let wake l =
  try ignore (Unix.write l.wake_w wake_byte 0 1)
  with Unix.Unix_error _ -> ()

let drain_wake l =
  let continue = ref true in
  while !continue do
    match Unix.read l.wake_r l.wake_buf 0 (Bytes.length l.wake_buf) with
    | 0 -> continue := false
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

(* --- output buffer (under c.lock) --- *)

let append_out c frame resp =
  let flen = Bytes.length frame in
  let len = c.o_end - c.o_start in
  let cap = Bytes.length c.obuf in
  if c.o_end + flen > cap then begin
    if len + flen <= cap then Bytes.blit c.obuf c.o_start c.obuf 0 len
    else begin
      let nb = Bytes.create (max (cap * 2) (len + flen)) in
      Bytes.blit c.obuf c.o_start nb 0 len;
      c.obuf <- nb
    end;
    c.o_start <- 0;
    c.o_end <- len
  end;
  Bytes.blit frame 0 c.obuf c.o_end flen;
  c.o_end <- c.o_end + flen;
  c.queued_total <- c.queued_total + flen;
  Queue.add (c.queued_total, resp) c.bounds

(* Fire on_response_written for every boundary the flush cursor has
   crossed, in wire order. *)
let retire_flushed c =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.bounds) do
    let off, resp = Queue.peek c.bounds in
    if off <= c.flushed_total then begin
      ignore (Queue.pop c.bounds);
      c.pending <- c.pending - 1;
      c.cb.on_response_written resp
    end
    else continue := false
  done

(* Peer unwritable: abandon buffered output, but retire every owed
   response through its hook — like the threads engine, a response's
   lifecycle ends (and its respond span closes) whether or not the ack
   could be delivered. *)
let mark_dead c =
  if not c.dead then begin
    c.dead <- true;
    while not (Queue.is_empty c.bounds) do
      let _, resp = Queue.pop c.bounds in
      c.pending <- c.pending - 1;
      c.cb.on_response_written resp
    done;
    c.o_start <- 0;
    c.o_end <- 0
  end

(* One coalesced write per wakeup: everything buffered goes out in a
   single write(2); a partial write leaves the tail for the next
   POLLOUT. Nonblocking, so holding c.lock across it cannot stall the
   completion threads for long. *)
let rec flush_locked c =
  if (not c.dead) && c.o_start < c.o_end then
    match Unix.write c.fd c.obuf c.o_start (c.o_end - c.o_start) with
    | n ->
      c.o_start <- c.o_start + n;
      c.flushed_total <- c.flushed_total + n;
      c.cb.on_bytes_out n;
      retire_flushed c;
      if c.o_start = c.o_end then begin
        c.o_start <- 0;
        c.o_end <- 0
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_locked c
    | exception Unix.Unix_error (_, _, _) -> mark_dead c

(* --- completion executor --- *)

let comp_loop pool ch () =
  let rec go () =
    match Channel.pop ch with
    | None -> ()
    | Some (c, thunk) ->
      (match thunk () with
      | resp ->
        let frame = Wire.encode_response pool.wire resp in
        Sync.with_lock c.lock (fun () ->
            if c.dead then begin
              c.pending <- c.pending - 1;
              c.cb.on_response_written resp
            end
            else append_out c frame resp);
        wake c.c_loop
      | exception _ ->
        (* A raising thunk is connection-fatal in the threads engine
           too; retire the slot so the drain can still complete. *)
        Sync.with_lock c.lock (fun () ->
            c.pending <- c.pending - 1;
            mark_dead c);
        wake c.c_loop);
      go ()
  in
  go ()

(* --- read path (loop domain) --- *)

let slow_drop pool c =
  pool.on_slow_drop ();
  c.cb.on_protocol_error "slow client: pending-response bound exceeded";
  Sync.with_lock c.lock (fun () -> mark_dead c);
  c.eof <- true;
  try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let process_frames pool c =
  let rec go () =
    if not c.eof then
      match Wire.Decoder.next_frame c.decoder with
      | `Awaiting -> ()
      | `Corrupt msg ->
        c.cb.on_protocol_error msg;
        c.eof <- true
      | `Frame body -> (
        match Wire.decode_request pool.wire body with
        | Error msg ->
          c.cb.on_protocol_error msg;
          c.eof <- true
        | Ok req ->
          let over =
            Sync.with_lock c.lock (fun () ->
                if c.pending >= pool.max_pending then true
                else begin
                  c.pending <- c.pending + 1;
                  false
                end)
          in
          if over then slow_drop pool c
          else begin
            match c.cb.handle req with
            | thunk ->
              Channel.push
                pool.comps.(c.id mod Array.length pool.comps)
                (c, thunk);
              go ()
            | exception _ ->
              Sync.with_lock c.lock (fun () -> c.pending <- c.pending - 1);
              c.cb.on_protocol_error "request handler raised";
              c.eof <- true
          end)
  in
  go ()

let read_conn pool l c =
  (* Batched reads: drain the socket up to a per-wakeup budget (poll is
     level-triggered, so leftover bytes re-report as readable — the
     budget is fairness across the loop's conns, not a correctness
     bound). *)
  let budget = ref 8 in
  let continue = ref true in
  while !continue && !budget > 0 && not c.eof do
    decr budget;
    match Unix.read c.fd l.scratch 0 (Bytes.length l.scratch) with
    | 0 ->
      c.eof <- true;
      continue := false
    | n ->
      c.cb.on_bytes_in n;
      Wire.Decoder.feed c.decoder l.scratch ~off:0 ~len:n;
      process_frames pool c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
      c.eof <- true;
      Sync.with_lock c.lock (fun () -> mark_dead c);
      continue := false
  done

(* --- loop domain --- *)

let closable c = c.eof && c.pending = 0 && (c.dead || c.o_start = c.o_end)

let close_conn pool l c =
  Hashtbl.remove l.conns c.id;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  c.cb.on_closed ();
  let now = Atomic.fetch_and_add pool.active (-1) - 1 in
  if now = 0 then
    Sync.with_lock pool.q_lock (fun () -> Condition.broadcast pool.q_cond)

let ensure_capacity l n =
  if Array.length l.pfds < n then begin
    let cap = max n (2 * Array.length l.pfds) in
    l.pfds <- Array.make cap l.wake_r;
    l.pevents <- Array.make cap 0;
    l.prevents <- Array.make cap 0;
    l.porder <- Array.make cap None
  end

let loop_iter pool l =
  (* Splice newly accepted connections in. *)
  let fresh =
    Sync.with_lock l.l_lock (fun () ->
        let xs = List.rev (Queue.fold (fun acc c -> c :: acc) [] l.incoming) in
        Queue.clear l.incoming;
        xs)
  in
  List.iter (fun c -> Hashtbl.replace l.conns c.id c) fresh;
  (* Graceful drain: half-close every receive side once; buffered bytes
     still read out (and decode, and get answered) before EOF shows. *)
  if Atomic.get pool.draining then
    Hashtbl.iter
      (fun _ c ->
        if not c.drained then begin
          c.drained <- true;
          try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ()
        end)
      l.conns;
  (* Interest set: self-pipe + every conn (read unless EOF, write while
     output is buffered). *)
  let n = 1 + Hashtbl.length l.conns in
  ensure_capacity l n;
  l.pfds.(0) <- l.wake_r;
  l.pevents.(0) <- Poll.pollin;
  l.porder.(0) <- None;
  let i = ref 1 in
  Hashtbl.iter
    (fun _ c ->
      let ev = ref 0 in
      if not c.eof then ev := !ev lor Poll.pollin;
      Sync.with_lock c.lock (fun () ->
          if (not c.dead) && c.o_start < c.o_end then
            ev := !ev lor Poll.pollout);
      l.pfds.(!i) <- c.fd;
      l.pevents.(!i) <- !ev;
      l.porder.(!i) <- Some c;
      incr i)
    l.conns;
  ignore
    (Poll.poll ~fds:l.pfds ~events:l.pevents ~revents:l.prevents ~n:!i
       ~timeout_ms:250);
  if Poll.readable l.prevents.(0) || Poll.errored l.prevents.(0) then
    drain_wake l;
  for j = 1 to !i - 1 do
    match l.porder.(j) with
    | None -> ()
    | Some c ->
      let re = l.prevents.(j) in
      if (Poll.readable re || Poll.errored re) && not c.eof then
        read_conn pool l c;
      if Poll.writable re || Poll.errored re then
        Sync.with_lock c.lock (fun () -> flush_locked c);
      l.porder.(j) <- None
  done;
  (* Opportunistic flush for conns whose output arrived between the
     interest-set snapshot and now (the wakeup that interrupted poll):
     saves one poll round-trip on the common small-response path. *)
  Hashtbl.iter
    (fun _ c -> Sync.with_lock c.lock (fun () -> flush_locked c))
    l.conns;
  let finished =
    Hashtbl.fold
      (fun _ c acc ->
        if Sync.with_lock c.lock (fun () -> closable c) then c :: acc else acc)
      l.conns []
  in
  List.iter (fun c -> close_conn pool l c) finished

let loop_run pool l () =
  let rec go () =
    loop_iter pool l;
    let should_exit =
      Atomic.get pool.stopping
      && Hashtbl.length l.conns = 0
      && Sync.with_lock l.l_lock (fun () -> Queue.is_empty l.incoming)
    in
    if not should_exit then go ()
  in
  (try go ()
   with _ ->
     (* A loop domain must never die silently rich with connections:
        close them all so Server.stop's quiesce wait cannot hang. *)
     let fresh =
       Sync.with_lock l.l_lock (fun () ->
           let xs = List.rev (Queue.fold (fun acc c -> c :: acc) [] l.incoming) in
           Queue.clear l.incoming;
           xs)
     in
     List.iter (fun c -> Hashtbl.replace l.conns c.id c) fresh;
     let all = Hashtbl.fold (fun _ c acc -> c :: acc) l.conns [] in
     List.iter (fun c -> close_conn pool l c) all)

(* --- pool lifecycle --- *)

let create ~wire ~loops ~completions ~max_pending ~on_slow_drop () =
  if loops < 1 then invalid_arg "Evloop.create: loops";
  if completions < 1 then invalid_arg "Evloop.create: completions";
  if max_pending < 1 then invalid_arg "Evloop.create: max_pending";
  let mk_loop _ =
    let r, w = Unix.pipe () in
    Unix.set_nonblock r;
    Unix.set_nonblock w;
    {
      wake_r = r;
      wake_w = w;
      l_lock = Mutex.create ();
      incoming = Queue.create ();
      conns = Hashtbl.create 64;
      scratch = Bytes.create 65536;
      wake_buf = Bytes.create 64;
      pfds = Array.make 16 r;
      pevents = Array.make 16 0;
      prevents = Array.make 16 0;
      porder = Array.make 16 None;
      domain = None;
    }
  in
  let pool =
    {
      wire;
      max_pending;
      on_slow_drop;
      loops = Array.init loops mk_loop;
      comps = Array.init completions (fun _ -> Channel.create ());
      comp_threads = [];
      next_loop = 0;
      next_id = 0;
      p_lock = Mutex.create ();
      active = Atomic.make 0;
      stopping = Atomic.make false;
      draining = Atomic.make false;
      q_lock = Mutex.create ();
      q_cond = Condition.create ();
    }
  in
  Array.iter
    (fun l -> l.domain <- Some (Domain.spawn (fun () -> loop_run pool l ())))
    pool.loops;
  pool.comp_threads <-
    Array.to_list
      (Array.map (fun ch -> Thread.create (comp_loop pool ch) ()) pool.comps);
  pool

let n_loops pool = Array.length pool.loops

let add pool ~fd cb =
  if Atomic.get pool.stopping then begin
    (try Unix.close fd with Unix.Unix_error _ -> ());
    cb.Conn.on_closed ()
  end
  else begin
    Unix.set_nonblock fd;
    let id, l =
      Sync.with_lock pool.p_lock (fun () ->
          let id = pool.next_id in
          pool.next_id <- id + 1;
          let l = pool.loops.(pool.next_loop mod Array.length pool.loops) in
          pool.next_loop <- pool.next_loop + 1;
          (id, l))
    in
    let c =
      {
        id;
        fd;
        cb;
        decoder = Wire.Decoder.create pool.wire;
        c_loop = l;
        lock = Mutex.create ();
        obuf = Bytes.create 4096;
        o_start = 0;
        o_end = 0;
        bounds = Queue.create ();
        queued_total = 0;
        flushed_total = 0;
        pending = 0;
        eof = false;
        dead = false;
        drained = false;
      }
    in
    Atomic.incr pool.active;
    Sync.with_lock l.l_lock (fun () -> Queue.add c l.incoming);
    wake l
  end

let stop pool =
  if not (Atomic.exchange pool.stopping true) then begin
    Atomic.set pool.draining true;
    Array.iter wake pool.loops;
    (* Loops keep running while connections drain — they do the
       flushing; quiesce first, then tear the machinery down. *)
    Sync.with_lock pool.q_lock (fun () ->
        while Atomic.get pool.active > 0 do
          Condition.wait pool.q_cond pool.q_lock
        done);
    Array.iter wake pool.loops;
    Array.iter
      (fun l ->
        match l.domain with
        | Some d ->
          Domain.join d;
          l.domain <- None
        | None -> ())
      pool.loops;
    Array.iter Channel.close pool.comps;
    List.iter Thread.join pool.comp_threads;
    pool.comp_threads <- [];
    Array.iter
      (fun l ->
        (try Unix.close l.wake_r with Unix.Unix_error _ -> ());
        try Unix.close l.wake_w with Unix.Unix_error _ -> ())
      pool.loops
  end
