module Sync = C4_runtime.Sync
module Promise = C4_runtime.Promise
module Retry = C4_resilience.Retry
module Span = C4_obs.Span

type config = {
  hosts : (string * int) list;
  conns_per_host : int;
  max_frame : int;
  retry : Retry.config option;
  retry_seed : int;
  spans : Span.t option;
}

let default_config ~hosts =
  {
    hosts;
    conns_per_host = 1;
    max_frame = 1 lsl 20;
    retry = None;
    retry_seed = 1;
    spans = None;
  }

let now_ns () = Unix.gettimeofday () *. 1e9

let op_name = function
  | Wire.Get -> "GET"
  | Wire.Set -> "SET"
  | Wire.Delete -> "DELETE"
  | Wire.Cluster_info -> "CLUSTER_INFO"

let status_name = function
  | Wire.Ok -> "ok"
  | Wire.Not_found -> "not_found"
  | Wire.Err -> "err"
  | Wire.Wrong_shard -> "wrong_shard"
  | Wire.Cluster_ok -> "cluster_ok"

type conn = {
  c_fd : Unix.file_descr;
  c_pending : (int, Wire.response -> unit) Hashtbl.t;
  c_lock : Mutex.t;  (* guards c_pending and socket writes *)
  c_alive : bool Atomic.t;
  mutable c_reader : Thread.t option;
}

type slot = {
  s_host : string;
  s_port : int;
  s_lock : Mutex.t;
  mutable s_conn : conn option;
}

type t = {
  cfg : config;
  wire : Wire.t;
  slots : slot array array;  (* slots.(host).(pool index) *)
  next_id : int Atomic.t;
  token_nonce : int;
  rr : int Atomic.t;
  budget : Retry.Budget.budget option;
  budget_lock : Mutex.t;
  closed : bool Atomic.t;
  n_sent : int Atomic.t;
  n_received : int Atomic.t;
  s_retries : int Atomic.t;
  n_transport_errors : int Atomic.t;
  n_reconnects : int Atomic.t;
}

(* Idempotency tokens must be unique across client INSTANCES, not just
   within one: the server's per-partition token table is shared by every
   client, so two processes both counting 0, 1, 2... would suppress each
   other's genuinely-new writes as duplicates. Each client mixes a
   60-bit nonce (pid, wall clock, per-process instance counter) into its
   tokens; request ids stay small and per-connection. *)
let instance_counter = Atomic.make 0

let make_token_nonce () =
  let c = Atomic.fetch_and_add instance_counter 1 in
  let now = Unix.gettimeofday () in
  let h1 = Hashtbl.hash (Unix.getpid (), now, c) in
  let h2 = Hashtbl.hash (c, now, Unix.getpid (), 0xc4) in
  ((h1 lsl 30) lxor h2) land max_int

let create cfg =
  if cfg.hosts = [] then invalid_arg "Net.Client.create: hosts";
  (* A server dying mid-write must surface as EPIPE on the socket, not
     kill the whole client process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if cfg.conns_per_host < 1 then invalid_arg "Net.Client.create: conns_per_host";
  let slot (host, port) =
    { s_host = host; s_port = port; s_lock = Mutex.create (); s_conn = None }
  in
  {
    cfg;
    wire = Wire.create ~max_frame:cfg.max_frame ();
    slots =
      Array.of_list
        (List.map
           (fun hp -> Array.init cfg.conns_per_host (fun _ -> slot hp))
           cfg.hosts);
    next_id = Atomic.make 0;
    token_nonce = make_token_nonce ();
    rr = Atomic.make 0;
    budget = Option.map Retry.Budget.create cfg.retry;
    budget_lock = Mutex.create ();
    closed = Atomic.make false;
    n_sent = Atomic.make 0;
    n_received = Atomic.make 0;
    s_retries = Atomic.make 0;
    n_transport_errors = Atomic.make 0;
    n_reconnects = Atomic.make 0;
  }

let node_of t ~key =
  C4_kvs.Hash.node_of_key ~n_nodes:(Array.length t.slots) key

let synth_err id msg =
  { Wire.resp_id = id; status = Wire.Err; timing_ns = 0; resp_value = Bytes.of_string msg }

(* Fail every outstanding request on a dying connection. Handlers run
   outside the lock — they may dispatch again. *)
let fail_pending conn msg =
  let victims =
    Sync.with_lock conn.c_lock (fun () ->
        let v = Hashtbl.fold (fun id h acc -> (id, h) :: acc) conn.c_pending [] in
        Hashtbl.reset conn.c_pending;
        v)
  in
  List.iter (fun (id, h) -> h (synth_err id msg)) victims

let kill_conn conn msg =
  if Atomic.exchange conn.c_alive false |> not then ()
  else begin
    (try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    fail_pending conn msg
  end

let write_all fd b =
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

let reader_loop t conn () =
  let decoder = Wire.Decoder.create t.wire in
  let chunk = Bytes.create 65536 in
  let deliver body =
    match Wire.decode_response t.wire body with
    | Error msg -> Error msg
    | Ok resp ->
      Atomic.incr t.n_received;
      let handler =
        Sync.with_lock conn.c_lock (fun () ->
            match Hashtbl.find_opt conn.c_pending resp.Wire.resp_id with
            | Some h ->
              Hashtbl.remove conn.c_pending resp.Wire.resp_id;
              Some h
            | None -> None)
      in
      (* An unmatched id is tolerated: it belongs to a dispatch whose
         handler was already failed when the conn was being killed. *)
      (match handler with Some h -> h resp | None -> ());
      Ok ()
  in
  let rec frames () =
    match Wire.Decoder.next_frame decoder with
    | `Awaiting -> Ok ()
    | `Corrupt msg -> Error msg
    | `Frame body -> ( match deliver body with Ok () -> frames () | e -> e)
  in
  let rec loop () =
    match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
    | 0 -> "connection closed by server"
    | n ->
      Wire.Decoder.feed decoder chunk ~off:0 ~len:n;
      (match frames () with Ok () -> loop () | Error msg -> msg)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception
        Unix.Unix_error
          ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF | Unix.EINVAL | Unix.ENOTCONN), _, _)
      ->
      "connection reset"
  in
  (* Any escaping exception is connection-fatal: kill_conn must run, or
     callers blocked in Promise.await would hang forever. *)
  let msg =
    try loop () with exn -> "reader failed: " ^ Printexc.to_string exn
  in
  kill_conn conn msg;
  try Unix.close conn.c_fd with Unix.Unix_error _ -> ()

let connect t slot =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string slot.s_host, slot.s_port));
    Unix.setsockopt fd Unix.TCP_NODELAY true
  with
  | () ->
    let conn =
      {
        c_fd = fd;
        c_pending = Hashtbl.create 64;
        c_lock = Mutex.create ();
        c_alive = Atomic.make true;
        c_reader = None;
      }
    in
    conn.c_reader <- Some (Thread.create (fun () -> reader_loop t conn ()) ());
    Ok conn
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "connect %s:%d: %s" slot.s_host slot.s_port (Unix.error_message e))

(* Live connection for [slot], reconnecting if the last one died.
   [t.closed] is re-checked under the slot lock: close() flips it before
   sweeping the slots, so a dispatch racing with close can never open a
   fresh connection that the sweep would miss. *)
let conn_of t slot =
  Sync.with_lock slot.s_lock (fun () ->
      if Atomic.get t.closed then Error "client closed"
      else
      match slot.s_conn with
      | Some c when Atomic.get c.c_alive -> Ok c
      | prev ->
        if prev <> None then Atomic.incr t.n_reconnects;
        (match connect t slot with
        | Ok c ->
          slot.s_conn <- Some c;
          Ok c
        | Error _ as e ->
          slot.s_conn <- None;
          e))

let dispatch_with t ~id ~op ~key ~value ~token ~parent ~on_response =
  (match op with
  | Wire.Set | Wire.Cluster_info -> ()
  | Wire.Get | Wire.Delete ->
    if Bytes.length value > 0 then
      invalid_arg "Net.Client.dispatch: value on non-SET");
  (* The client span is the root of the request's trace (or a child of
     [parent] when the caller is itself traced): it opens before the
     frame is built, covers client queueing + wire transit + server
     time, and closes in the reader thread with the response. Its
     context rides the wire so the server's spans parent under it. *)
  let sp =
    match t.cfg.spans with
    | None -> None
    | Some buf ->
      let s = Span.start ?parent buf ~name:"client.dispatch" ~ts:(now_ns ()) in
      Span.annotate buf s ~key:"op" ~value:(op_name op);
      Span.annotate buf s ~key:"key" ~value:(string_of_int key);
      Span.annotate buf s ~key:"req_id" ~value:(string_of_int id);
      Some (buf, s)
  in
  let trace =
    Option.map
      (fun (_, s) ->
        let c = Span.context s in
        { Wire.trace_id = c.Span.trace_id; parent_span = c.Span.span_id })
      sp
  in
  let on_response resp =
    (match sp with
    | None -> ()
    | Some (buf, s) ->
      Span.annotate buf s ~key:"status" ~value:(status_name resp.Wire.status);
      Span.finish buf s ~ts:(now_ns ()));
    on_response resp
  in
  if Atomic.get t.closed then begin
    on_response (synth_err id "client closed");
    id
  end
  else begin
    let pool = t.slots.(node_of t ~key) in
    let slot = pool.(Atomic.fetch_and_add t.rr 1 mod Array.length pool) in
    (match conn_of t slot with
    | Error msg ->
      Atomic.incr t.n_transport_errors;
      on_response (synth_err id msg)
    | Ok conn ->
      let frame = Wire.encode_request t.wire { Wire.id; op; key; token; trace; value } in
      let sent =
        Sync.with_lock conn.c_lock (fun () ->
            if not (Atomic.get conn.c_alive) then false
            else begin
              Hashtbl.replace conn.c_pending id on_response;
              if write_all conn.c_fd frame then true
              else begin
                Hashtbl.remove conn.c_pending id;
                false
              end
            end)
      in
      if sent then Atomic.incr t.n_sent
      else begin
        Atomic.incr t.n_transport_errors;
        kill_conn conn "write failed";
        on_response (synth_err id "write failed")
      end);
    id
  end

let dispatch t ~op ~key ?(value = Bytes.empty) ?token ?parent ~on_response () =
  let id = Atomic.fetch_and_add t.next_id 1 in
  dispatch_with t ~id ~op ~key ~value ~token ~parent ~on_response

(* ---- synchronous retrying calls ---- *)

(* [id] = [Some i] reuses a pre-reserved request id (first SET attempt). *)
let once t ~id ~op ~key ~value ~token =
  let id =
    match id with Some i -> i | None -> Atomic.fetch_and_add t.next_id 1
  in
  let p = Promise.create () in
  let (_ : int) =
    dispatch_with t ~id ~op ~key ~value ~token ~parent:None ~on_response:(fun r ->
        Promise.fulfil p r)
  in
  (id, Promise.await p)

(* Charge the shared budget for one more retry; grants the failed
   original its credits first. *)
let budget_allows t =
  match t.budget with
  | None -> true
  | Some b -> Sync.with_lock t.budget_lock (fun () -> Retry.Budget.try_charge b)

let note_failed_original t =
  match t.budget with
  | None -> ()
  | Some b -> Sync.with_lock t.budget_lock (fun () -> Retry.Budget.note_failed_original b)

let call t ~op ~key ~value =
  match t.cfg.retry with
  | None ->
    let _, resp = once t ~id:None ~op ~key ~value ~token:None in
    resp
  | Some cfg ->
    let start = Unix.gettimeofday () in
    let deadline_ok () =
      cfg.Retry.deadline <= 0.0
      || (Unix.gettimeofday () -. start) *. 1e9 < cfg.Retry.deadline
    in
    (* SETs carry an idempotency token derived from the first attempt's
       id: it must ride along from attempt one, or a duplicate of the
       original could land after a tokenless first apply. Reserve the
       id before dispatching so attempt 1 already carries it. The token
       mixes in the per-instance nonce so tokens never collide across
       clients sharing a server. *)
    let reserved =
      match op with
      | Wire.Set -> Some (Atomic.fetch_and_add t.next_id 1)
      | Wire.Get | Wire.Delete | Wire.Cluster_info -> None
    in
    let token = Option.map (fun id -> t.token_nonce lxor id) reserved in
    let first_id = ref None in
    let rec attempt n =
      let id, resp =
        once t
          ~id:(if n = 1 then reserved else None)
          ~op ~key ~value ~token
      in
      if !first_id = None then first_id := Some id;
      if resp.Wire.status <> Wire.Err then resp
      else begin
        if n = 1 then note_failed_original t;
        if n >= cfg.Retry.max_attempts || not (deadline_ok ())
           || not (budget_allows t)
        then resp
        else begin
          Atomic.incr t.s_retries;
          let ns =
            Retry.backoff_ns cfg ~seed:t.cfg.retry_seed
              ~original:(Option.value !first_id ~default:id)
              ~attempt:n
          in
          Unix.sleepf (ns /. 1e9);
          if deadline_ok () then attempt (n + 1) else resp
        end
      end
    in
    attempt 1

let error_of resp = Bytes.to_string resp.Wire.resp_value

let get t ~key =
  let resp = call t ~op:Wire.Get ~key ~value:Bytes.empty in
  match resp.Wire.status with
  | Wire.Ok -> Ok (Some resp.Wire.resp_value)
  | Wire.Not_found -> Ok None
  | Wire.Err -> Error (error_of resp)
  | Wire.Wrong_shard | Wire.Cluster_ok -> Error "wrong shard (use C4_clusterd.Routing)"

let set t ~key ~value =
  let resp = call t ~op:Wire.Set ~key ~value in
  match resp.Wire.status with
  | Wire.Ok | Wire.Not_found -> Ok ()
  | Wire.Err -> Error (error_of resp)
  | Wire.Wrong_shard | Wire.Cluster_ok -> Error "wrong shard (use C4_clusterd.Routing)"

let delete t ~key =
  let resp = call t ~op:Wire.Delete ~key ~value:Bytes.empty in
  match resp.Wire.status with
  | Wire.Ok -> Ok true
  | Wire.Not_found -> Ok false
  | Wire.Err -> Error (error_of resp)
  | Wire.Wrong_shard | Wire.Cluster_ok -> Error "wrong shard (use C4_clusterd.Routing)"

(* One-shot CLUSTER_INFO exchange (no retry loop: the routing layer that
   calls this drives its own retries). [payload] empty = fetch the map;
   non-empty = offer a map to install if newer. *)
let cluster_info t ?(payload = Bytes.empty) () =
  let _, resp = once t ~id:None ~op:Wire.Cluster_info ~key:0 ~value:payload ~token:None in
  match resp.Wire.status with
  | Wire.Cluster_ok -> Ok resp.Wire.resp_value
  | Wire.Err -> Error (error_of resp)
  | Wire.Ok | Wire.Not_found | Wire.Wrong_shard ->
    Error ("unexpected status " ^ status_name resp.Wire.status)

type stats = {
  sent : int;
  received : int;
  retries : int;
  transport_errors : int;
  reconnects : int;
}

let stats t =
  {
    sent = Atomic.get t.n_sent;
    received = Atomic.get t.n_received;
    retries = Atomic.get t.s_retries;
    transport_errors = Atomic.get t.n_transport_errors;
    reconnects = Atomic.get t.n_reconnects;
  }

let close t =
  if not (Atomic.exchange t.closed true) then
    Array.iter
      (fun pool ->
        Array.iter
          (fun slot ->
            (* Detach under the lock; kill and join outside it.
               [fail_pending] runs response handlers that may dispatch
               again and re-enter [conn_of] (which takes [s_lock]), and
               the reader thread's exit path runs [kill_conn] too —
               holding [s_lock] across either is a self-deadlock.
               [conn_of] re-checks [t.closed] under the slot lock, so
               nothing can repopulate the slot after the detach. *)
            let detached =
              Sync.with_lock slot.s_lock (fun () ->
                  let c = slot.s_conn in
                  slot.s_conn <- None;
                  c)
            in
            match detached with
            | None -> ()
            | Some conn ->
              kill_conn conn "client closed";
              (match conn.c_reader with
              | Some r -> Thread.join r
              | None -> ()))
          pool)
      t.slots
