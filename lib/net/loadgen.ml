module Generator = C4_workload.Generator
module Request = C4_workload.Request
module Histogram = C4_stats.Histogram
module Table = C4_stats.Table
module Sync = C4_runtime.Sync

type config = {
  workload : Generator.config;
  seed : int;
  n_ops : int;
  warmup : int;
  delete_fraction : float;
  drain_timeout_s : float;
}

let default_config ~workload ~seed =
  {
    workload;
    seed;
    n_ops = 20_000;
    warmup = 1_000;
    delete_fraction = 0.0;
    drain_timeout_s = 10.0;
  }

type report = {
  issued : int;
  completed : int;
  errors : int;
  unanswered : int;
  duration_s : float;
  throughput : float;
  get_ns : Histogram.t;
  set_ns : Histogram.t;
  delete_ns : Histogram.t;
  all_ns : Histogram.t;
}

(* Deterministic write->delete demotion, decorrelated from key choice. *)
let is_delete cfg (req : Request.t) =
  cfg.delete_fraction > 0.0
  && Request.is_write req
  && C4_kvs.Hash.mix_int (req.id lxor 0x9E3779B9) land 0xFFFF
     < int_of_float (cfg.delete_fraction *. 65536.0)

let run client cfg =
  if cfg.n_ops < 1 then invalid_arg "Net.Loadgen.run: n_ops";
  if cfg.delete_fraction < 0.0 || cfg.delete_fraction > 1.0 then
    invalid_arg "Net.Loadgen.run: delete_fraction";
  let gen = Generator.create cfg.workload ~seed:cfg.seed in
  let values = Hashtbl.create 4 in
  let value_of size =
    match Hashtbl.find_opt values size with
    | Some v -> v
    | None ->
      let v = Bytes.make size 'v' in
      Hashtbl.add values size v;
      v
  in
  let hist_lock = Mutex.create () in
  let get_ns = Histogram.create () in
  let set_ns = Histogram.create () in
  let delete_ns = Histogram.create () in
  let all_ns = Histogram.create () in
  let completed = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let last_response = Atomic.make 0.0 in
  let start = Unix.gettimeofday () in
  for _ = 1 to cfg.n_ops do
    let req = Generator.next gen in
    (* Open-loop pacing: dispatch at the generator's arrival time no
       matter how many responses are outstanding. *)
    let target = start +. (req.Request.arrival *. 1e-9) in
    let delay = target -. Unix.gettimeofday () in
    if delay > 0.0 then Unix.sleepf delay;
    let op, value =
      if is_delete cfg req then (Wire.Delete, Bytes.empty)
      else if Request.is_write req then (Wire.Set, value_of req.Request.value_size)
      else (Wire.Get, Bytes.empty)
    in
    let hist =
      match op with
      | Wire.Get -> get_ns
      | Wire.Set -> set_ns
      | Wire.Delete -> delete_ns
      | Wire.Cluster_info -> assert false (* the generator never emits control ops *)
    in
    let dispatched = Unix.gettimeofday () in
    let on_response (resp : Wire.response) =
      let now = Unix.gettimeofday () in
      Atomic.set last_response now;
      if resp.Wire.status = Wire.Err then Atomic.incr errors;
      let n = Atomic.fetch_and_add completed 1 + 1 in
      if n > cfg.warmup then begin
        let lat_ns = (now -. dispatched) *. 1e9 in
        Sync.with_lock hist_lock (fun () ->
            Histogram.add hist lat_ns;
            Histogram.add all_ns lat_ns)
      end
    in
    ignore
      (Client.dispatch client ~op ~key:req.Request.key
         ~value ~on_response ())
  done;
  let drain_deadline = Unix.gettimeofday () +. cfg.drain_timeout_s in
  while
    Atomic.get completed < cfg.n_ops && Unix.gettimeofday () < drain_deadline
  do
    Unix.sleepf 0.001
  done;
  let finish =
    let lr = Atomic.get last_response in
    if lr > start then lr else Unix.gettimeofday ()
  in
  let done_n = Atomic.get completed in
  let duration_s = Float.max (finish -. start) 1e-9 in
  {
    issued = cfg.n_ops;
    completed = done_n;
    errors = Atomic.get errors;
    unanswered = cfg.n_ops - done_n;
    duration_s;
    throughput = float_of_int done_n /. duration_s;
    get_ns;
    set_ns;
    delete_ns;
    all_ns;
  }

let to_table r =
  let t =
    Table.create
      ~columns:
        [
          ("op", Table.Left);
          ("count", Table.Right);
          ("mean us", Table.Right);
          ("p50 us", Table.Right);
          ("p99 us", Table.Right);
          ("p999 us", Table.Right);
        ]
  in
  let us x = Table.cell_f ~decimals:1 (x /. 1e3) in
  let row name h =
    if Histogram.count h > 0 then
      Table.add_row t
        [
          name;
          Table.cell_i (Histogram.count h);
          us (Histogram.mean h);
          us (Histogram.median h);
          us (Histogram.p99 h);
          us (Histogram.p999 h);
        ]
  in
  row "GET" r.get_ns;
  row "SET" r.set_ns;
  row "DELETE" r.delete_ns;
  row "all" r.all_ns;
  t
