(** TCP front-end for the multicore runtime KVS: an acceptor thread plus
    a serving engine, all feeding one {!C4_runtime.Server} — CREW
    routing, write compaction, and crash recovery apply to network
    traffic unchanged.

    Two engines ({!config.engine}), identical in semantics:

    {ul
    {- [Evloop] (the default): a fixed pool of {!config.loops} event-loop
       domains (see {!Evloop}), each multiplexing its share of the
       connections with poll(2) plus a self-pipe wakeup — batched
       nonblocking reads into per-loop scratch buffers, pipelined
       responses coalesced into one write per wakeup. Scales to tens of
       thousands of connections on a handful of domains.}
    {- [Threads]: one {!Conn} (reader + ordered writer thread) per
       connection — two OS threads each; kept for comparison benchmarks
       (netbench's threads-vs-evloop rows) and as a fallback.}}

    Request handling: GET/SET/DELETE frames are submitted through the
    runtime's async API from the connection's read side (reader thread
    or loop domain — submission never blocks), and each response is
    produced by a thunk awaited in arrival order (on the connection
    writer, or on the event engine's completion executor, which keeps
    per-connection affinity) — so per-connection pipelining order is
    preserved while operations from different connections (and
    different keys) proceed in parallel. SET acks are only emitted
    after the store apply (the runtime's deferred-response rule), so an
    acknowledged write observed by a client survives worker crashes.

    Shutdown ({!stop}) drains gracefully: the listening socket closes
    first (no new connections), every live connection is half-closed and
    its already-received requests submitted, all pending responses are
    flushed, and only then does [stop] return. The runtime server is
    {e not} stopped — it is owned by the caller, who should call
    {!C4_runtime.Server.stop} after this returns (that order, plus the
    runtime's reject-then-drain stop, is what guarantees no
    accepted-but-unanswered request is ever dropped). Both engines
    honour this contract.

    Metrics (all in [registry], which must be thread-safe):
    [net.conns_accepted], [net.conns_active], [net.bytes_in],
    [net.bytes_out], [net.inflight], [net.protocol_errors],
    [net.requests], [net.accept_errors] (accepts shed to
    [EMFILE]/[ENFILE] fd exhaustion — the acceptor backs off and
    survives instead of dying), [net.slow_client_drops] (connections
    dropped for exceeding {!config.max_pending}), and per-op
    service-time histograms [net.get_ns],
    [net.set_ns], [net.delete_ns]. Each mutation additionally bumps a
    [net.routed_w<i>] counter for the worker the d-CREW policy core's
    ownership view ([C4_runtime.Server.owner_of_key], i.e.
    [C4_crew.Core.route_owner]) routes it to. One counter per worker is
    registered eagerly at start, so a telemetry scrape sees every owner
    from the first request and a count can never land on a dangling
    worker id — after a crash recovery the counts visibly migrate to
    the surviving owner while the dead worker's counter freezes.

    Tracing: with {!config.spans} set, a request that arrives carrying
    a {!Wire.trace_context} grows a three-span chain in the buffer —
    [server.recv] (decode + crew admission, annotated with the policy
    decisions taken while submitting, parented on the client's in-band
    context), [server.apply] (submission to promise fulfilment) and
    [server.respond] (closed when the connection writer finished
    writing the response) — one connected chain with the client's
    dispatch span. Context-free requests trace nothing. *)

(** Cluster-runtime hooks, injected by [C4_clusterd.Member] (which sits
    {e above} this library in the build graph — hence plain functions
    over the encoded-shard-map bytes rather than cluster types).

    With [config.cluster] set, every GET/SET/DELETE first passes
    [cl_check ~key ~write]: [Error map] answers the request with
    {!Wire.Wrong_shard} carrying [map] (the node's current encoded
    shard map) and never reaches the runtime. {!Wire.Cluster_info}
    requests are answered by [cl_info] (payload = an encoded map to
    install if newer, or empty to just fetch) with {!Wire.Cluster_ok}
    carrying the node's current map. [cl_read_fence ~key] is called on
    the connection's completion side (the connection writer on the
    threads engine, a completion-executor thread on the event engine —
    never a loop domain, precisely because the fence blocks) after a
    GET's store read and before its
    response goes out; it must block until the key's partition has no
    locally-applied-but-unreplicated suffix (quorum-ack mode), so a
    value a client observed can never be lost to a failover. Requests
    answered WRONG_SHARD bump [net.wrong_shard]. *)
type cluster = {
  cl_check : key:int -> write:bool -> (unit, bytes) result;
  cl_read_fence : key:int -> unit;
  cl_info : bytes -> (bytes, string) result;
}

(** The serving engine: [Evloop] (poll-based event-loop domains, the
    default) or [Threads] (reader + writer thread per connection). *)
type engine = Evloop | Threads

val engine_to_string : engine -> string

(** Inverse of {!engine_to_string}; [Error] names the valid forms. *)
val engine_of_string : string -> (engine, string) result

type config = {
  host : string;  (** address to bind, e.g. "127.0.0.1" *)
  port : int;  (** 0 = pick an ephemeral port (see {!port}) *)
  backlog : int;
  max_frame : int;  (** connection-fatal bound on frame size *)
  spans : C4_obs.Span.t option;
      (** adopt incoming trace contexts into this buffer; [None] (the
          default) disables server-side tracing *)
  cluster : cluster option;
      (** shard-map routing + replication hooks; [None] (the default)
          serves every key and rejects CLUSTER_INFO *)
  engine : engine;
  loops : int;  (** event-loop domains ([Evloop] engine only) *)
  max_pending : int;
      (** slow-client bound: a connection holding this many submitted
          but not-yet-flushed responses is dropped (counted in
          [net.slow_client_drops], annotated as a protocol error on
          its trace) instead of buffering unboundedly *)
}

(** Loopback, ephemeral port, 64-deep backlog, 1 MiB frames, no span
    buffer, no cluster hooks; [Evloop] engine with 2 loop domains and a
    1024-response slow-client bound. *)
val default_config : config

type t

(** Bind, listen, and start accepting. [registry] (created with
    [~thread_safe:true] when supplied) receives the metrics; a private
    thread-safe registry is used when omitted. Raises [Unix.Unix_error]
    when the address cannot be bound. *)
val start : ?registry:C4_obs.Registry.t -> config -> runtime:C4_runtime.Server.t -> t

(** The port actually bound (resolves port 0). *)
val port : t -> int

val registry : t -> C4_obs.Registry.t

(** Graceful drain as described above. Idempotent. *)
val stop : t -> unit

type stats = {
  conns_accepted : int;
  conns_active : int;
  requests : int;  (** frames decoded and submitted *)
  inflight : int;  (** submitted but not yet answered *)
  bytes_in : int;
  bytes_out : int;
  protocol_errors : int;
  accept_errors : int;  (** accepts shed to fd exhaustion *)
  slow_client_drops : int;  (** conns dropped at the max_pending bound *)
}

val stats : t -> stats
