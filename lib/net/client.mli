(** Pipelined, pooled TCP client for the {!Server} wire protocol.

    Sharding: keys are routed to [hosts.(C4_kvs.Hash.node_of_key)] —
    the same function {!C4_cluster.Cluster.node_of_key} uses server
    side, so a client talking to an N-node cluster and the cluster's
    own router always agree on key placement (memcached-style
    client-side sharding). Within a host, requests round-robin over
    [conns_per_host] pooled connections, and each connection pipelines:
    many requests can be in flight before the first response returns.

    Retries: when [retry] is set, the synchronous {!get}/{!set}/
    {!delete} calls re-issue failed requests with the policy's capped
    exponential backoff, wall-clock deadline, and shared token-bucket
    budget ({!C4_resilience.Retry}). A SET is made safe to retry by
    attaching an idempotency token — the {e first} attempt's id mixed
    with a per-client-instance nonce, so tokens are unique across every
    client sharing a server — from the very first try, so however many
    duplicates reach the server, {!C4_runtime.Server} applies exactly
    one. Transport errors
    (connection reset, decode failure) and [Err] responses are
    retryable; [Not_found] is a successful outcome, never retried. *)

type config = {
  hosts : (string * int) list;  (** node i's address; order fixes sharding *)
  conns_per_host : int;
  max_frame : int;
  retry : C4_resilience.Retry.config option;
      (** [None] = fail fast, no retries, no tokens *)
  retry_seed : int;  (** jitter determinism for {!C4_resilience.Retry.backoff_ns} *)
  spans : C4_obs.Span.t option;
      (** when set, every dispatch opens a [client.dispatch] span in
          this buffer and propagates its context in-band
          ({!Wire.request}[.trace]), making the client the root of a
          cross-process trace the server's spans stitch onto. [None]
          (the default) keeps the wire format at version 1 and costs
          nothing. *)
}

(** One connection per host, 1 MiB frames, no retry, seed 1, no span
    buffer. *)
val default_config : hosts:(string * int) list -> config

type t

(** Connect lazily: sockets are opened on first use (and re-opened
    after a connection dies). Raises [Invalid_argument] on an empty
    host list or non-positive pool size. *)
val create : config -> t

(** Which host index serves [key]. *)
val node_of : t -> key:int -> int

(** {2 Asynchronous pipelined interface}

    [dispatch] assigns a fresh request id, sends the frame, and returns
    the id immediately; [on_response] fires in the connection's reader
    thread when the response arrives (or, on a transport failure, with
    a synthesised [Err] response — every dispatch gets exactly one
    callback). Raises [Invalid_argument] if [value] is given for a
    non-SET op.

    With {!config.spans} set, the dispatch's span starts a fresh trace,
    or joins the caller's when [parent] is given. *)
val dispatch :
  t ->
  op:Wire.op ->
  key:int ->
  ?value:bytes ->
  ?token:int ->
  ?parent:C4_obs.Span.context ->
  on_response:(Wire.response -> unit) ->
  unit ->
  int

(** {2 Synchronous interface (retrying)} *)

val get : t -> key:int -> (bytes option, string) result
val set : t -> key:int -> value:bytes -> (unit, string) result

(** [Ok true] when the key was present. *)
val delete : t -> key:int -> (bool, string) result

(** One CLUSTER_INFO exchange with the host key 0 routes to — no retry loop, the
    caller (normally [C4_clusterd.Routing]) drives its own. Empty
    [payload] (the default) fetches the node's shard map; a non-empty
    payload is an encoded map to install if newer. [Ok bytes] is the
    node's current encoded map ({!Wire.Cluster_ok}); single-node
    servers answer [Err]. *)
val cluster_info : t -> ?payload:bytes -> unit -> (bytes, string) result

type stats = {
  sent : int;  (** frames written, retries included *)
  received : int;  (** responses decoded *)
  retries : int;
  transport_errors : int;  (** dispatches failed by connection death *)
  reconnects : int;
}

val stats : t -> stats

(** Close every pooled connection; in-flight dispatches get their
    synthesised [Err] callback. Idempotent. *)
val close : t -> unit
