module Runtime = C4_runtime.Server
module Promise = C4_runtime.Promise
module Sync = C4_runtime.Sync
module Registry = C4_obs.Registry
module Span = C4_obs.Span

(* Cluster hooks are plain functions over bytes (the encoded shard map)
   so this module needs no dependency on the cluster runtime that
   implements them — C4_clusterd sits above c4_net in the build graph
   and injects its member state here. *)
type cluster = {
  cl_check : key:int -> write:bool -> (unit, bytes) result;
  cl_read_fence : key:int -> unit;
  cl_info : bytes -> (bytes, string) result;
}

(* Which serving engine fronts the runtime: the event-loop pool (a few
   loop domains multiplexing every connection with poll(2)) or the
   legacy two-threads-per-connection model, kept for comparison
   benchmarks and as a fallback. *)
type engine = Evloop | Threads

let engine_to_string = function Evloop -> "evloop" | Threads -> "threads"

let engine_of_string = function
  | "evloop" -> Ok Evloop
  | "threads" -> Ok Threads
  | s -> Error (Printf.sprintf "unknown net engine %S (evloop|threads)" s)

type config = {
  host : string;
  port : int;
  backlog : int;
  max_frame : int;
  spans : Span.t option;
  cluster : cluster option;
  engine : engine;
  loops : int;
  max_pending : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 64;
    max_frame = 1 lsl 20;
    spans = None;
    cluster = None;
    engine = Evloop;
    loops = 2;
    max_pending = 1024;
  }

type metrics = {
  conns_accepted_c : Registry.counter;
  conns_active_g : Registry.gauge;
  bytes_in_c : Registry.counter;
  bytes_out_c : Registry.counter;
  inflight_g : Registry.gauge;
  protocol_errors_c : Registry.counter;
  requests_c : Registry.counter;
  wrong_shard_c : Registry.counter;
  get_h : Registry.histogram;
  set_h : Registry.histogram;
  delete_h : Registry.histogram;
  routed_c : Registry.counter array;  (* per-worker mutation attribution *)
  accept_errors_c : Registry.counter;  (* EMFILE/ENFILE backoffs survived *)
  slow_client_drops_c : Registry.counter;
}

type t = {
  cfg : config;
  runtime : Runtime.t;
  wire : Wire.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  reg : Registry.t;
  m : metrics;
  conns : (int, Conn.t) Hashtbl.t;  (* threads engine: conn id -> conn *)
  conns_lock : Mutex.t;
  mutable next_conn : int;
  mutable active : int;
  mutable acceptor : Thread.t option;
  mutable ev : Evloop.t option;  (* event engine: owns the conns itself *)
  inflight : int Atomic.t;
  stopping : bool Atomic.t;
  stop_lock : Mutex.t;
}

let now_ns () = Unix.gettimeofday () *. 1e9

let metrics_of reg ~n_workers =
  {
    conns_accepted_c = Registry.counter reg "net.conns_accepted";
    conns_active_g = Registry.gauge reg "net.conns_active";
    bytes_in_c = Registry.counter reg "net.bytes_in";
    bytes_out_c = Registry.counter reg "net.bytes_out";
    inflight_g = Registry.gauge reg "net.inflight";
    protocol_errors_c = Registry.counter reg "net.protocol_errors";
    requests_c = Registry.counter reg "net.requests";
    wrong_shard_c = Registry.counter reg "net.wrong_shard";
    get_h = Registry.histogram reg "net.get_ns";
    set_h = Registry.histogram reg "net.set_ns";
    delete_h = Registry.histogram reg "net.delete_ns";
    (* Eagerly registered for every worker the runtime was started
       with: a telemetry scrape sees all owners at zero from the first
       request, and a routed count can only ever land on a real worker
       id — never a dangling one minted from a stale ownership view. *)
    routed_c =
      Array.init n_workers (fun w ->
          Registry.counter reg (Printf.sprintf "net.routed_w%d" w));
    accept_errors_c = Registry.counter reg "net.accept_errors";
    slow_client_drops_c = Registry.counter reg "net.slow_client_drops";
  }

(* Count each mutation against the worker the policy core's ownership
   view routes it to ([Runtime.owner_of_key] = the core's pin-aware
   [route_owner]). After a crash recovery the remap changes what
   [owner_of_key] returns, so the counts visibly migrate to the
   survivor while the dead worker's counter freezes. *)
let note_routed t key =
  let owner = Runtime.owner_of_key t.runtime key in
  Registry.incr t.m.routed_c.(owner)

let err_response id msg =
  {
    Wire.resp_id = id;
    status = Wire.Err;
    timing_ns = 0;
    resp_value = Bytes.of_string msg;
  }

let op_name = function
  | Wire.Get -> "GET"
  | Wire.Set -> "SET"
  | Wire.Delete -> "DELETE"
  | Wire.Cluster_info -> "CLUSTER_INFO"

let status_name = function
  | Wire.Ok -> "ok"
  | Wire.Not_found -> "not_found"
  | Wire.Err -> "err"
  | Wire.Wrong_shard -> "wrong_shard"
  | Wire.Cluster_ok -> "cluster_ok"

(* Per-request server spans, built only when the server has a span
   buffer AND the request carried a trace context to adopt:

     server.recv    decode + crew admission (the submit), child of the
                    client's in-band context; admission decisions the
                    policy core emits on the submitting thread land
                    here as annotations via [Span.with_current]
     server.apply   submission to promise fulfilment (queueing +
                    store apply, compaction windows included)
     server.respond response serialisation + socket write, closed by
                    the connection writer's [on_response_written]

   Each parents on the previous, so the client's dispatch span and
   these three form one chain walkable from either end. *)
type req_trace = { tr_buf : Span.t; tr_recv : Span.span }

let start_trace t (req : Wire.request) ~ts =
  match (t.cfg.spans, req.Wire.trace) with
  | Some buf, Some ctx ->
    let parent =
      { Span.trace_id = ctx.Wire.trace_id; span_id = ctx.Wire.parent_span }
    in
    let recv = Span.start ~parent buf ~name:"server.recv" ~ts in
    Span.annotate buf recv ~key:"op" ~value:(op_name req.Wire.op);
    Span.annotate buf recv ~key:"key" ~value:(string_of_int req.Wire.key);
    Span.annotate buf recv ~key:"req_id" ~value:(string_of_int req.Wire.id);
    Some { tr_buf = buf; tr_recv = recv }
  | _ -> None

(* Run the runtime submission with the recv span current on this (conn
   reader) thread, so the policy core's on_decision hook can annotate
   it; the recv span closes when the submission returns, Stopped
   included. *)
let traced_submit tr f =
  match tr with
  | None -> f ()
  | Some { tr_buf; tr_recv } ->
    Fun.protect
      ~finally:(fun () -> Span.finish tr_buf tr_recv ~ts:(now_ns ()))
      (fun () -> Span.with_current tr_buf tr_recv f)

(* Wrap the completion-side thunk: the apply span opens now (submission
   done), closes when the thunk's await returns; the respond span is
   enqueued — via [push] — in the connection's respond FIFO for
   [on_response_written]. Untraced requests enqueue a [None]
   placeholder: thunks complete in arrival order and
   [on_response_written] fires in wire order, so the FIFO pairs every
   response with its (possible) span even when traced and untraced
   requests interleave. (The threads engine's strict
   thunk-then-write alternation allowed a single cell; the event
   engine overlaps later thunk completions with earlier flushes, so
   the hand-off must be a queue.) *)
let traced_thunk tr push thunk =
  match tr with
  | None ->
    fun () ->
      let resp = thunk () in
      push None;
      resp
  | Some { tr_buf; tr_recv } ->
    let apply =
      Span.start ~parent:(Span.context tr_recv) tr_buf ~name:"server.apply"
        ~ts:(now_ns ())
    in
    fun () ->
      let resp = thunk () in
      let now = now_ns () in
      Span.finish tr_buf apply ~ts:now;
      let respond =
        Span.start ~parent:(Span.context apply) tr_buf ~name:"server.respond" ~ts:now
      in
      Span.annotate tr_buf respond ~key:"status" ~value:(status_name resp.Wire.status);
      push (Some (tr_buf, respond));
      resp

(* Submit one decoded request to the runtime. Called on the connection's
   read side (reader thread or loop domain); must not block, so it
   returns the thunk the completion side awaits. Inflight counts
   submitted-but-unanswered requests. *)
let handle t push (req : Wire.request) =
  Registry.incr t.m.requests_c;
  let start = now_ns () in
  let tr = start_trace t req ~ts:start in
  let finish hist =
    let dt = now_ns () -. start in
    Registry.observe hist dt;
    Registry.set t.m.inflight_g (float_of_int (Atomic.fetch_and_add t.inflight (-1) - 1));
    int_of_float dt
  in
  Registry.set t.m.inflight_g (float_of_int (Atomic.fetch_and_add t.inflight 1 + 1));
  (* Cluster routing happens before any runtime submission: a request
     for a shard this node does not lead is answered WRONG_SHARD with
     the node's current map, and CLUSTER_INFO never touches the store. *)
  let misrouted =
    match (t.cfg.cluster, req.Wire.op) with
    | Some cl, (Wire.Get | Wire.Set | Wire.Delete) -> (
      match
        cl.cl_check ~key:req.Wire.key ~write:(req.Wire.op <> Wire.Get)
      with
      | Ok () -> None
      | Error map -> Some map)
    | _ -> None
  in
  let thunk =
    match misrouted with
    | Some map ->
      Registry.incr t.m.wrong_shard_c;
      fun () ->
        let timing_ns = finish t.m.get_h in
        {
          Wire.resp_id = req.Wire.id;
          status = Wire.Wrong_shard;
          timing_ns;
          resp_value = map;
        }
    | None -> (
    match req.Wire.op with
    | Wire.Cluster_info -> (
      match t.cfg.cluster with
      | None ->
        fun () ->
          let timing_ns = finish t.m.get_h in
          {
            Wire.resp_id = req.Wire.id;
            status = Wire.Err;
            timing_ns;
            resp_value = Bytes.of_string "not a cluster member";
          }
      | Some cl ->
        fun () ->
          let r = cl.cl_info req.Wire.value in
          let timing_ns = finish t.m.get_h in
          (match r with
          | Ok map ->
            {
              Wire.resp_id = req.Wire.id;
              status = Wire.Cluster_ok;
              timing_ns;
              resp_value = map;
            }
          | Error e ->
            {
              Wire.resp_id = req.Wire.id;
              status = Wire.Err;
              timing_ns;
              resp_value = Bytes.of_string e;
            }))
    | Wire.Get -> (
      match traced_submit tr (fun () -> Runtime.get_async t.runtime ~key:req.Wire.key) with
      | promise ->
        fun () ->
          let value = Promise.await promise in
          (* Quorum-read fence: the value just read may include writes
             applied locally but not yet replicated; in quorum-ack
             cluster mode the response waits until the key's partition
             has no unreplicated suffix, so an observed value can never
             vanish in a failover (which would break linearizability). *)
          (match t.cfg.cluster with
          | Some cl -> cl.cl_read_fence ~key:req.Wire.key
          | None -> ());
          let timing_ns = finish t.m.get_h in
          (match value with
          | Some v ->
            { Wire.resp_id = req.Wire.id; status = Wire.Ok; timing_ns; resp_value = v }
          | None ->
            {
              Wire.resp_id = req.Wire.id;
              status = Wire.Not_found;
              timing_ns;
              resp_value = Bytes.empty;
            })
      | exception Runtime.Stopped ->
        fun () ->
          ignore (finish t.m.get_h);
          err_response req.Wire.id "server shutting down")
    | Wire.Set -> (
      note_routed t req.Wire.key;
      match
        traced_submit tr (fun () ->
            Runtime.set_async ?token:req.Wire.token t.runtime ~key:req.Wire.key
              ~value:req.Wire.value)
      with
      | promise ->
        fun () ->
          Promise.await promise;
          let timing_ns = finish t.m.set_h in
          { Wire.resp_id = req.Wire.id; status = Wire.Ok; timing_ns; resp_value = Bytes.empty }
      | exception Runtime.Stopped ->
        fun () ->
          ignore (finish t.m.set_h);
          err_response req.Wire.id "server shutting down")
    | Wire.Delete -> (
      note_routed t req.Wire.key;
      match traced_submit tr (fun () -> Runtime.delete_async t.runtime ~key:req.Wire.key) with
      | promise ->
        fun () ->
          let present = Promise.await promise in
          let timing_ns = finish t.m.delete_h in
          {
            Wire.resp_id = req.Wire.id;
            status = (if present then Wire.Ok else Wire.Not_found);
            timing_ns;
            resp_value = Bytes.empty;
          }
      | exception Runtime.Stopped ->
        fun () ->
          ignore (finish t.m.delete_h);
          err_response req.Wire.id "server shutting down"))
  in
  traced_thunk tr push thunk

let spawn_conn t fd =
  (* Only the id/metric updates need [conns_lock]; the callback record
     is built outside it so the locked section stays minimal (and the
     [on_closed] closure, which takes [conns_lock] itself when the
     connection later dies, is not constructed under it). *)
  let id =
    Sync.with_lock t.conns_lock (fun () ->
        let id = t.next_conn in
        t.next_conn <- id + 1;
        Registry.incr t.m.conns_accepted_c;
        t.active <- t.active + 1;
        Registry.set t.m.conns_active_g (float_of_int t.active);
        id)
  in
  (* The respond-span hand-off FIFO: thunks push one entry per response
     at completion (in arrival order), [on_response_written] pops one
     per response written (in wire order) — the two orders agree on
     both engines, so entry k always belongs to response k. *)
  let respond_q : (Span.t * Span.span) option Queue.t = Queue.create () in
  let rq_lock = Mutex.create () in
  let push sp = Sync.with_lock rq_lock (fun () -> Queue.add sp respond_q) in
  let cb =
    {
      Conn.handle = handle t push;
      on_bytes_in = (fun n -> Registry.incr ~by:n t.m.bytes_in_c);
      on_bytes_out = (fun n -> Registry.incr ~by:n t.m.bytes_out_c);
      on_response_written =
        (fun _resp ->
          match
            Sync.with_lock rq_lock (fun () -> Queue.take_opt respond_q)
          with
          | Some (Some (buf, sp)) -> Span.finish buf sp ~ts:(now_ns ())
          | Some None | None -> ());
      on_protocol_error = (fun _msg -> Registry.incr t.m.protocol_errors_c);
      on_closed =
        (fun () ->
          Sync.with_lock t.conns_lock (fun () ->
              Hashtbl.remove t.conns id;
              t.active <- t.active - 1;
              Registry.set t.m.conns_active_g (float_of_int t.active)));
    }
  in
  match t.ev with
  | Some pool -> Evloop.add pool ~fd cb
  | None ->
    (* Start-and-register stays atomic under [conns_lock]: [on_closed]
       fires from the connection's own threads and must observe the
       table entry it removes, even if the peer disconnects instantly. *)
    Sync.with_lock t.conns_lock (fun () ->
        Hashtbl.replace t.conns id (Conn.start ~wire:t.wire ~fd cb))

let acceptor_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _addr ->
      if Atomic.get t.stopping then
        (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        spawn_conn t fd;
        loop ()
      end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ENOTCONN), _, _) ->
      (* Listening socket shut down by [stop]. *)
      ()
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
      if Atomic.get t.stopping then () else loop ()
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
      (* Out of file descriptors — process- or system-wide. Shed this
         accept and back off briefly instead of dying: the listener
         stays open (pending peers wait in the backlog), existing
         connections keep being served, and the counter makes the
         episode visible to telemetry. *)
      Registry.incr t.m.accept_errors_c;
      if Atomic.get t.stopping then ()
      else begin
        (try Unix.sleepf 0.05
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
      end
  in
  loop ()

let start ?registry cfg ~runtime =
  if cfg.backlog < 1 then invalid_arg "Net.Server.start: backlog";
  (* A peer closing mid-write must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let reg =
    match registry with Some r -> r | None -> Registry.create ~thread_safe:true ()
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.listen listen_fd cfg.backlog
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let t =
    {
      cfg;
      runtime;
      wire = Wire.create ~max_frame:cfg.max_frame ();
      listen_fd;
      bound_port;
      reg;
      m = metrics_of reg ~n_workers:(Runtime.n_workers runtime);
      conns = Hashtbl.create 64;
      conns_lock = Mutex.create ();
      next_conn = 0;
      active = 0;
      acceptor = None;
      ev = None;
      inflight = Atomic.make 0;
      stopping = Atomic.make false;
      stop_lock = Mutex.create ();
    }
  in
  (match cfg.engine with
  | Threads -> ()
  | Evloop ->
    let on_slow_drop () =
      Registry.incr t.m.slow_client_drops_c;
      match cfg.spans with
      | Some buf -> Span.event buf ~name:"net.slow_client_drop" ~ts:(now_ns ())
      | None -> ()
    in
    t.ev <-
      Some
        (Evloop.create ~wire:t.wire ~loops:cfg.loops
           ~completions:(max 4 (2 * cfg.loops))
           ~max_pending:cfg.max_pending ~on_slow_drop ()));
  t.acceptor <- Some (Thread.create (fun () -> acceptor_loop t ()) ());
  t

let port t = t.bound_port
let registry t = t.reg

let stop t =
  Sync.with_lock t.stop_lock (fun () ->
      if not (Atomic.exchange t.stopping true) then begin
        (* shutdown(2), not close(2): closing an fd does not wake a
           thread blocked in accept(2); shutting the listener down does
           (the accept fails with EINVAL), and the fd is closed only
           after the acceptor has exited. *)
        (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        (match t.acceptor with Some a -> Thread.join a | None -> ());
        t.acceptor <- None;
        (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
        match t.ev with
        | Some pool ->
          (* The pool drains every connection it owns: half-close the
             receive sides, answer everything accepted, flush, then
             join the loop domains and completion threads. *)
          Evloop.stop pool
        | None ->
          (* Snapshot under the lock, then drain outside it: conns
             remove themselves from the table via on_closed. *)
          let live =
            Sync.with_lock t.conns_lock (fun () ->
                Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
          in
          List.iter Conn.drain live;
          List.iter Conn.join live
      end)

type stats = {
  conns_accepted : int;
  conns_active : int;
  requests : int;
  inflight : int;
  bytes_in : int;
  bytes_out : int;
  protocol_errors : int;
  accept_errors : int;
  slow_client_drops : int;
}

let stats t =
  {
    conns_accepted = Registry.counter_value t.m.conns_accepted_c;
    conns_active = Sync.with_lock t.conns_lock (fun () -> t.active);
    requests = Registry.counter_value t.m.requests_c;
    inflight = Atomic.get t.inflight;
    bytes_in = Registry.counter_value t.m.bytes_in_c;
    bytes_out = Registry.counter_value t.m.bytes_out_c;
    protocol_errors = Registry.counter_value t.m.protocol_errors_c;
    accept_errors = Registry.counter_value t.m.accept_errors_c;
    slow_client_drops = Registry.counter_value t.m.slow_client_drops_c;
  }
