module Runtime = C4_runtime.Server
module Promise = C4_runtime.Promise
module Sync = C4_runtime.Sync
module Registry = C4_obs.Registry

type config = { host : string; port : int; backlog : int; max_frame : int }

let default_config =
  { host = "127.0.0.1"; port = 0; backlog = 64; max_frame = 1 lsl 20 }

type metrics = {
  conns_accepted_c : Registry.counter;
  conns_active_g : Registry.gauge;
  bytes_in_c : Registry.counter;
  bytes_out_c : Registry.counter;
  inflight_g : Registry.gauge;
  protocol_errors_c : Registry.counter;
  requests_c : Registry.counter;
  get_h : Registry.histogram;
  set_h : Registry.histogram;
  delete_h : Registry.histogram;
}

type t = {
  cfg : config;
  runtime : Runtime.t;
  wire : Wire.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  reg : Registry.t;
  m : metrics;
  conns : (int, Conn.t) Hashtbl.t;  (* conn id -> conn, guarded *)
  conns_lock : Mutex.t;
  mutable next_conn : int;
  mutable active : int;
  mutable acceptor : Thread.t option;
  inflight : int Atomic.t;
  stopping : bool Atomic.t;
  stop_lock : Mutex.t;
}

let now_ns () = Unix.gettimeofday () *. 1e9

let metrics_of reg =
  {
    conns_accepted_c = Registry.counter reg "net.conns_accepted";
    conns_active_g = Registry.gauge reg "net.conns_active";
    bytes_in_c = Registry.counter reg "net.bytes_in";
    bytes_out_c = Registry.counter reg "net.bytes_out";
    inflight_g = Registry.gauge reg "net.inflight";
    protocol_errors_c = Registry.counter reg "net.protocol_errors";
    requests_c = Registry.counter reg "net.requests";
    get_h = Registry.histogram reg "net.get_ns";
    set_h = Registry.histogram reg "net.set_ns";
    delete_h = Registry.histogram reg "net.delete_ns";
  }

(* Count each mutation against the worker the policy core's ownership
   view routes it to ([Runtime.owner_of_key] = the core's pin-aware
   [route_owner]). Registration is find-or-create, so the per-owner
   counters appear lazily as owners are first routed to; after a crash
   recovery the counts visibly migrate to the survivor. *)
let note_routed t key =
  let owner = Runtime.owner_of_key t.runtime key in
  Registry.incr (Registry.counter t.reg (Printf.sprintf "net.routed_w%d" owner))

let err_response id msg =
  {
    Wire.resp_id = id;
    status = Wire.Err;
    timing_ns = 0;
    resp_value = Bytes.of_string msg;
  }

(* Submit one decoded request to the runtime. Called in the connection's
   reader thread; must not block, so it returns the thunk the writer
   awaits. Inflight counts submitted-but-unanswered requests. *)
let handle t (req : Wire.request) =
  Registry.incr t.m.requests_c;
  let start = now_ns () in
  let finish hist =
    let dt = now_ns () -. start in
    Registry.observe hist dt;
    Registry.set t.m.inflight_g (float_of_int (Atomic.fetch_and_add t.inflight (-1) - 1));
    int_of_float dt
  in
  Registry.set t.m.inflight_g (float_of_int (Atomic.fetch_and_add t.inflight 1 + 1));
  match req.Wire.op with
  | Wire.Get -> (
    match Runtime.get_async t.runtime ~key:req.Wire.key with
    | promise ->
      fun () ->
        let value = Promise.await promise in
        let timing_ns = finish t.m.get_h in
        (match value with
        | Some v ->
          { Wire.resp_id = req.Wire.id; status = Wire.Ok; timing_ns; resp_value = v }
        | None ->
          {
            Wire.resp_id = req.Wire.id;
            status = Wire.Not_found;
            timing_ns;
            resp_value = Bytes.empty;
          })
    | exception Runtime.Stopped ->
      fun () ->
        ignore (finish t.m.get_h);
        err_response req.Wire.id "server shutting down")
  | Wire.Set -> (
    note_routed t req.Wire.key;
    match
      Runtime.set_async ?token:req.Wire.token t.runtime ~key:req.Wire.key
        ~value:req.Wire.value
    with
    | promise ->
      fun () ->
        Promise.await promise;
        let timing_ns = finish t.m.set_h in
        { Wire.resp_id = req.Wire.id; status = Wire.Ok; timing_ns; resp_value = Bytes.empty }
    | exception Runtime.Stopped ->
      fun () ->
        ignore (finish t.m.set_h);
        err_response req.Wire.id "server shutting down")
  | Wire.Delete -> (
    note_routed t req.Wire.key;
    match Runtime.delete_async t.runtime ~key:req.Wire.key with
    | promise ->
      fun () ->
        let present = Promise.await promise in
        let timing_ns = finish t.m.delete_h in
        {
          Wire.resp_id = req.Wire.id;
          status = (if present then Wire.Ok else Wire.Not_found);
          timing_ns;
          resp_value = Bytes.empty;
        }
    | exception Runtime.Stopped ->
      fun () ->
        ignore (finish t.m.delete_h);
        err_response req.Wire.id "server shutting down")

let spawn_conn t fd =
  Sync.with_lock t.conns_lock (fun () ->
      let id = t.next_conn in
      t.next_conn <- id + 1;
      Registry.incr t.m.conns_accepted_c;
      t.active <- t.active + 1;
      Registry.set t.m.conns_active_g (float_of_int t.active);
      let cb =
        {
          Conn.handle = handle t;
          on_bytes_in = (fun n -> Registry.incr ~by:n t.m.bytes_in_c);
          on_bytes_out = (fun n -> Registry.incr ~by:n t.m.bytes_out_c);
          on_protocol_error =
            (fun _msg -> Registry.incr t.m.protocol_errors_c);
          on_closed =
            (fun () ->
              Sync.with_lock t.conns_lock (fun () ->
                  Hashtbl.remove t.conns id;
                  t.active <- t.active - 1;
                  Registry.set t.m.conns_active_g (float_of_int t.active)));
        }
      in
      Hashtbl.replace t.conns id (Conn.start ~wire:t.wire ~fd cb))

let acceptor_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _addr ->
      if Atomic.get t.stopping then
        (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        spawn_conn t fd;
        loop ()
      end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ENOTCONN), _, _) ->
      (* Listening socket shut down by [stop]. *)
      ()
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
      if Atomic.get t.stopping then () else loop ()
  in
  loop ()

let start ?registry cfg ~runtime =
  if cfg.backlog < 1 then invalid_arg "Net.Server.start: backlog";
  (* A peer closing mid-write must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let reg =
    match registry with Some r -> r | None -> Registry.create ~thread_safe:true ()
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.listen listen_fd cfg.backlog
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let t =
    {
      cfg;
      runtime;
      wire = Wire.create ~max_frame:cfg.max_frame ();
      listen_fd;
      bound_port;
      reg;
      m = metrics_of reg;
      conns = Hashtbl.create 64;
      conns_lock = Mutex.create ();
      next_conn = 0;
      active = 0;
      acceptor = None;
      inflight = Atomic.make 0;
      stopping = Atomic.make false;
      stop_lock = Mutex.create ();
    }
  in
  t.acceptor <- Some (Thread.create (fun () -> acceptor_loop t ()) ());
  t

let port t = t.bound_port
let registry t = t.reg

let stop t =
  Sync.with_lock t.stop_lock (fun () ->
      if not (Atomic.exchange t.stopping true) then begin
        (* shutdown(2), not close(2): closing an fd does not wake a
           thread blocked in accept(2); shutting the listener down does
           (the accept fails with EINVAL), and the fd is closed only
           after the acceptor has exited. *)
        (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        (match t.acceptor with Some a -> Thread.join a | None -> ());
        t.acceptor <- None;
        (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
        (* Snapshot under the lock, then drain outside it: conns remove
           themselves from the table via on_closed. *)
        let live =
          Sync.with_lock t.conns_lock (fun () ->
              Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
        in
        List.iter Conn.drain live;
        List.iter Conn.join live
      end)

type stats = {
  conns_accepted : int;
  conns_active : int;
  requests : int;
  bytes_in : int;
  bytes_out : int;
  protocol_errors : int;
}

let stats t =
  {
    conns_accepted = Registry.counter_value t.m.conns_accepted_c;
    conns_active = Sync.with_lock t.conns_lock (fun () -> t.active);
    requests = Registry.counter_value t.m.requests_c;
    bytes_in = Registry.counter_value t.m.bytes_in_c;
    bytes_out = Registry.counter_value t.m.bytes_out_c;
    protocol_errors = Registry.counter_value t.m.protocol_errors_c;
  }
