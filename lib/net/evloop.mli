(** Event-loop serving engine: a fixed pool of loop domains multiplexing
    every connection with poll(2) (see {!Poll}) plus a self-pipe wakeup,
    replacing the threads engine's reader + writer pair per connection —
    the engine behind {!Server}'s [Evloop] mode.

    Per connection, the owning loop does nonblocking batched reads into
    a {e per-loop} scratch buffer, feeds the incremental
    {!Wire.Decoder}, and calls [cb.handle] inline (runtime submission is
    nonblocking). The blocking part of a request — awaiting the
    runtime's promise, the cluster read fence — runs on a completion
    executor: a small thread pool with per-connection affinity, so one
    connection's thunks execute serially in arrival order (the
    pipelining guarantee) while connections overlap. Completed
    responses accumulate in the connection's output buffer and are
    flushed with one coalesced write per wakeup, [on_response_written]
    firing per response exactly when its last byte is handed to the
    socket — in wire order, as the threads engine's writer does.

    Semantics preserved from the threads engine: per-connection response
    order = request arrival order; protocol errors are connection-fatal
    but owed responses still flush; a dead peer's thunks still run (an
    acknowledged write is applied whether or not the ack is
    deliverable) with their hooks fired; {!stop} half-closes every
    receive side, answers everything accepted, and only then tears the
    loops down.

    New behaviour: a connection whose pending-response count (submitted
    but not yet flushed) reaches [max_pending] is dropped as a slow
    client — [on_slow_drop] then [on_protocol_error] fire, buffered
    output is abandoned, already-submitted operations still apply. *)

type t

(** Start [loops] loop domains and [completions] completion threads.
    [on_slow_drop] fires once per connection dropped for exceeding
    [max_pending]. Raises [Invalid_argument] unless all three counts
    are positive. *)
val create :
  wire:Wire.t ->
  loops:int ->
  completions:int ->
  max_pending:int ->
  on_slow_drop:(unit -> unit) ->
  unit ->
  t

val n_loops : t -> int

(** Take ownership of [fd] (a connected stream socket): set it
    nonblocking and hand it to a loop (round-robin). After {!stop} has
    begun, the fd is closed and [on_closed] fired immediately. *)
val add : t -> fd:Unix.file_descr -> Conn.callbacks -> unit

(** Graceful drain: half-close every connection's receive side, decode
    and answer everything already received, flush every pending
    response, then join the loop domains and completion threads.
    Blocks until done. Idempotent (concurrent calls may return before
    the drain completes; the caller serialises, as {!Server.stop}
    does). *)
val stop : t -> unit
