(** Thin binding to poll(2) for the event-loop engine.

    [Unix.select] cannot serve here: [fd_set] is indexed by fd {e value}
    and capped at [FD_SETSIZE] (1024), so any connection whose fd number
    exceeds 1023 — routine at the 10k+ connections the event engine
    targets — is unrepresentable. poll(2) has no such cap; this is the
    only C stub in the repo and binds nothing else.

    The interest set is expressed as three parallel arrays (caller
    allocated, reused across calls; only the first [n] entries are
    consulted, so grown arrays amortise): [fds], [events] (bitwise-or
    of {!pollin} / {!pollout}; [0] = error conditions only) and
    [revents], which the call overwrites. The runtime lock is released
    for the duration of the syscall, so loop domains polling
    concurrently do not serialise each other. *)

val pollin : int
val pollout : int
val pollerr : int

val readable : int -> bool
val writable : int -> bool

(** Error/hangup/invalid-fd condition — reported even when not
    requested, per poll(2). *)
val errored : int -> bool

(** [poll ~fds ~events ~revents ~n ~timeout_ms] polls the first [n]
    entries, blocking up to [timeout_ms] milliseconds ([-1] =
    indefinitely), and fills [revents]; returns the number of entries
    with nonzero [revents]. A signal interruption ([EINTR]) returns
    [0], as if the timeout fired. Raises [Invalid_argument] when [n]
    exceeds an array's length and [Failure] on any other poll
    failure. *)
val poll :
  fds:Unix.file_descr array ->
  events:int array ->
  revents:int array ->
  n:int ->
  timeout_ms:int ->
  int
