(** The modelled KVS server (paper Fig. 2): load generation → NIC load
    balancer → worker threads, under a configurable concurrency-control
    policy, with optional write compaction and an optional cache-
    coherence cost layer.

    Since the policy extraction this module is a {e discrete-event
    driver} around the shared d-CREW policy core ([C4_crew.Core]): the
    core decides (pins, routes, window opens/closes, shed levels, stale
    evictions), and this driver feeds it simulated time and turns its
    decisions into simulated mechanism — queues, service events,
    window-close timers. The multicore runtime ([C4_runtime.Server])
    drives the same core with wall-clock events; the differential
    parity test holds the two decision streams equal on one trace.

    One [run] simulates a fixed number of requests at a fixed offered
    load and returns the measured {!Metrics.t} plus subsystem statistics.
    Runs are deterministic in (config, workload, seed). *)

(** Deterministic fault-injection hooks, consulted in simulation-event
    order (so a deterministic hook keeps the run deterministic). Built
    by [C4_resilience.Fault] from a seeded schedule; the server itself
    draws no randomness for faults. *)
type fault_hooks = {
  corrupt : C4_workload.Request.t -> now:float -> bool;
      (** the packet fails NIC header parsing: dropped before admission *)
  service_scale : worker:int -> now:float -> float;
      (** straggler / GC-pause model: multiplies on-core service time *)
  leak_release : C4_workload.Request.t -> now:float -> bool;
      (** the write's EWT release is lost; its outstanding counter sticks *)
}

type config = {
  n_workers : int;
  policy : Policy.t;
  service : Service.params;
  crew : C4_crew.Config.t;
      (** the shared d-CREW policy configuration — JBSQ bound, EWT
          sizing, compaction window, TTL sweeps, shed thresholds. The
          same record type the runtime server takes, so the two engines
          cannot drift on thresholds *)
  cache : C4_cache.Coherence.params option;
      (** [Some _] enables the full-system coherence cost layer;
          [None] reproduces the pure queueing model of Sec. 3 *)
  max_outstanding : int;  (** NIC flow-control cap *)
  ewt_release_delay : float;
      (** ns an exclusive mapping lingers after its last write completes
          (0 = release immediately, the paper's choice). Lingering trades
          balancing flexibility for write locality — the "interesting
          future direction" of Sec. 5.1 *)
  boosted_workers : (int * float) list;
      (** per-worker frequency boost: KVS service time divided by the
          factor. Models the DVFS remedy MICA's authors propose for the
          overloaded writer (Sec. 8); empty = no boost *)
  seed : int;
  trace : C4_obs.Trace.t;
      (** request-lifecycle tracer. {!C4_obs.Trace.null} (the default)
          records nothing and costs nothing; a collecting tracer gets
          every request's queue/service/deferral spans plus NIC events
          for Chrome-trace export *)
  registry : C4_obs.Registry.t option;
      (** metrics registry shared by every layer of the run (EWT,
          pipeline, compaction logs, server drop counters, the core's
          [crew.*] decision counters). [None] instruments against a
          private registry the caller never sees *)
  metrics_interval : float option;
      (** [Some ns] samples every registered metric into a CSV
          time-series each [ns] of simulated time (see
          {!result.snapshot}) *)
  faults : fault_hooks option;  (** [None] = clean run (the default) *)
  on_decision : (C4_crew.Decision.t -> unit) option;
      (** called with every policy decision the core takes, in decision
          order — the differential parity test's recorder *)
  on_drop :
    (C4_workload.Request.t ->
    now:float ->
    reason:Metrics.drop_reason ->
    C4_workload.Request.t option)
    option;
      (** client-side retry policy: called on every drop; [Some retry]
          re-injects [retry] (usually the same request with a fresh id
          and a backed-off arrival time) and extends the run's
          expected-completion count accordingly *)
}

(** 64 workers, CREW, JBSQ(2), no compaction, no cache layer — the
    paper's Baseline under the Sec. 3 queueing model. *)
val default_config : config

type result = {
  metrics : Metrics.t;
  ewt : C4_nic.Ewt.occupancy_stats option;  (** d-CREW only *)
  compaction : C4_kvs.Compaction_log.stats option;
  flow_drops : int;
  ewt_drops : int;  (** EWT exhaustion / counter saturation drops *)
  offered_rate : float;  (** requests per ns actually offered *)
  mean_service : float;  (** S̄ of the service model, for SLO math *)
  snapshot : C4_stats.Csv.t option;
      (** metric time-series rows, when {!config.metrics_interval} was
          set *)
  retries_injected : int;
      (** re-arrivals injected by the {!config.on_drop} retry hook *)
}

(** [run config ~workload ~n_requests] simulates; the first
    [warmup_fraction] (default 0.2) of requests only warm the system. *)
val run :
  ?warmup_fraction:float ->
  config ->
  workload:C4_workload.Generator.config ->
  n_requests:int ->
  result

(** [run_trace config ~trace] replays a recorded request stream instead
    of generating one — the basis for trace-driven studies, the
    multi-node cluster model, and the sim-vs-runtime differential
    parity test. [n_partitions] tells the server how many partitions
    the trace's requests were hashed into. *)
val run_trace :
  ?warmup_fraction:float ->
  config ->
  trace:C4_workload.Trace.t ->
  n_partitions:int ->
  result
