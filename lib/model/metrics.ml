module Histogram = C4_stats.Histogram
module Summary = C4_stats.Summary

type t = {
  n_workers : int;
  lat_all : Histogram.t;
  lat_read : Histogram.t;
  lat_write : Histogram.t;
  lat_small : Histogram.t;
  lat_large : Histogram.t;
  completed_n : int array;
  writes_n : int array;
  busy_ns : float array;
  service : Summary.t array;
  mutable compacted_n : int;
  mutable drops_queue_full_n : int;
  mutable drops_ewt_n : int;
  mutable drops_slo_n : int;
  mutable drops_bad_packet_n : int;
  mutable drops_shed_n : int;
  mutable t_start : float;
  mutable t_stop : float;
  mutable on : bool;
}

let create ~n_workers =
  {
    n_workers;
    lat_all = Histogram.create ();
    lat_read = Histogram.create ();
    lat_write = Histogram.create ();
    lat_small = Histogram.create ();
    lat_large = Histogram.create ();
    completed_n = Array.make n_workers 0;
    writes_n = Array.make n_workers 0;
    busy_ns = Array.make n_workers 0.0;
    service = Array.init n_workers (fun _ -> Summary.create ());
    compacted_n = 0;
    drops_queue_full_n = 0;
    drops_ewt_n = 0;
    drops_slo_n = 0;
    drops_bad_packet_n = 0;
    drops_shed_n = 0;
    t_start = 0.0;
    t_stop = 0.0;
    on = false;
  }

let start_measuring t ~now =
  t.t_start <- now;
  t.on <- true

let measuring t = t.on

let stop t ~now =
  t.t_stop <- now;
  t.on <- false

let record_service t ~op ~worker ~service =
  if t.on then begin
    (match op with
    | C4_workload.Request.Read -> ()
    | C4_workload.Request.Write -> t.writes_n.(worker) <- t.writes_n.(worker) + 1);
    t.completed_n.(worker) <- t.completed_n.(worker) + 1;
    Summary.add t.service.(worker) service
  end

let size_class_boundary = 4096

let record_latency t ~op ~latency ~compacted ~value_size =
  if t.on then begin
    Histogram.add t.lat_all latency;
    (match op with
    | C4_workload.Request.Read -> Histogram.add t.lat_read latency
    | C4_workload.Request.Write -> Histogram.add t.lat_write latency);
    Histogram.add
      (if value_size >= size_class_boundary then t.lat_large else t.lat_small)
      latency;
    if compacted then t.compacted_n <- t.compacted_n + 1
  end

let add_busy t ~worker ns = if t.on then t.busy_ns.(worker) <- t.busy_ns.(worker) +. ns

type drop_reason = Queue_full | Ewt_exhausted | Slo_expired | Bad_packet | Shed

let drop_reason_name = function
  | Queue_full -> "queue_full"
  | Ewt_exhausted -> "ewt_exhausted"
  | Slo_expired -> "slo_expired"
  | Bad_packet -> "bad_packet"
  | Shed -> "shed"

let note_drop t ~reason =
  if t.on then
    match reason with
    | Queue_full -> t.drops_queue_full_n <- t.drops_queue_full_n + 1
    | Ewt_exhausted -> t.drops_ewt_n <- t.drops_ewt_n + 1
    | Slo_expired -> t.drops_slo_n <- t.drops_slo_n + 1
    | Bad_packet -> t.drops_bad_packet_n <- t.drops_bad_packet_n + 1
    | Shed -> t.drops_shed_n <- t.drops_shed_n + 1

let drops_by_reason t ~reason =
  match reason with
  | Queue_full -> t.drops_queue_full_n
  | Ewt_exhausted -> t.drops_ewt_n
  | Slo_expired -> t.drops_slo_n
  | Bad_packet -> t.drops_bad_packet_n
  | Shed -> t.drops_shed_n

let duration t = Float.max 0.0 (t.t_stop -. t.t_start)

let completed t = Array.fold_left ( + ) 0 t.completed_n

let throughput t =
  let d = duration t in
  if d <= 0.0 then 0.0 else float_of_int (completed t) /. d

let throughput_mrps t = throughput t *. 1e3
let latency t = t.lat_all
let read_latency t = t.lat_read
let write_latency t = t.lat_write
let small_latency t = t.lat_small
let large_latency t = t.lat_large
let p99 t = Histogram.p99 t.lat_all
let mean_latency t = Histogram.mean t.lat_all
let drops t =
  t.drops_queue_full_n + t.drops_ewt_n + t.drops_slo_n + t.drops_bad_packet_n
  + t.drops_shed_n
let compacted_count t = t.compacted_n
let worker_completed t = Array.copy t.completed_n

let worker_throughput_mrps t =
  let d = duration t in
  Array.map
    (fun c -> if d <= 0.0 then 0.0 else float_of_int c /. d *. 1e3)
    t.completed_n

let worker_utilization t =
  let d = duration t in
  Array.map (fun b -> if d <= 0.0 then 0.0 else Float.min 1.0 (b /. d)) t.busy_ns

let worker_mean_service t = Array.map Summary.mean t.service

let hottest_worker t =
  let best = ref 0 in
  Array.iteri (fun i w -> if w > t.writes_n.(!best) then best := i) t.writes_n;
  !best

let pp_summary ppf t =
  Format.fprintf ppf "tput=%.1f MRPS p99=%.0f ns mean=%.0f ns drops=%d"
    (throughput_mrps t) (p99 t) (mean_latency t) (drops t)
