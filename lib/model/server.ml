module Sim = C4_dsim.Sim
module Rng = C4_dsim.Rng
module Fifo = C4_dsim.Fifo
module Request = C4_workload.Request
module Generator = C4_workload.Generator
module Ewt = C4_nic.Ewt
module Flow_control = C4_nic.Flow_control
module Coherence = C4_cache.Coherence
module Compaction_log = C4_kvs.Compaction_log
module Trace = C4_obs.Trace
module Registry = C4_obs.Registry
module Snapshot = C4_obs.Snapshot
module Crew_config = C4_crew.Config
module Core = C4_crew.Core

(* Deterministic fault-injection hooks (built by C4_resilience.Fault
   from a seeded schedule; the server only consults them). Every hook is
   called in simulation-event order, so a deterministic hook keeps the
   whole run deterministic. *)
type fault_hooks = {
  corrupt : Request.t -> now:float -> bool;
      (* packet fails header parsing at the NIC: dropped before admission *)
  service_scale : worker:int -> now:float -> float;
      (* straggler / GC-pause model: multiplies on-core service time *)
  leak_release : Request.t -> now:float -> bool;
      (* the write's EWT release is lost: the outstanding counter sticks *)
}

type config = {
  n_workers : int;
  policy : Policy.t;
  service : Service.params;
  crew : Crew_config.t;
  cache : Coherence.params option;
  max_outstanding : int;
  ewt_release_delay : float;
  boosted_workers : (int * float) list;
  seed : int;
  trace : Trace.t;
  registry : Registry.t option;
  metrics_interval : float option;
  faults : fault_hooks option;
  on_decision : (C4_crew.Decision.t -> unit) option;
  on_drop : (Request.t -> now:float -> reason:Metrics.drop_reason -> Request.t option) option;
}

let default_config =
  {
    n_workers = 64;
    policy = Policy.Crew;
    service = Service.default;
    crew = Crew_config.default;
    cache = None;
    max_outstanding = 4096;
    ewt_release_delay = 0.0;
    boosted_workers = [];
    seed = 42;
    trace = Trace.null;
    registry = None;
    metrics_interval = None;
    faults = None;
    on_decision = None;
    on_drop = None;
  }

type result = {
  metrics : Metrics.t;
  ewt : Ewt.occupancy_stats option;
  compaction : Compaction_log.stats option;
  flow_drops : int;
  ewt_drops : int;
  offered_rate : float;
  mean_service : float;
  snapshot : C4_stats.Csv.t option;
  retries_injected : int;
}

(* ------------------------------------------------------------------ *)

type worker = {
  wid : int;
  queue : Request.t Fifo.t;
  mutable busy : bool;
  window_reqs : (int, Request.t) Hashtbl.t; (* request id -> request *)
  mutable window_timer : Sim.event_id option;
  mutable rlu_writes : int;
}

(* The discrete-event driver around the crew policy core (the model's
   half of the {!C4_crew.Core.ENGINE} contract): the core decides, this
   state machine turns decisions into simulated mechanism — queue
   pushes, service events, window-close timers. *)
type state = {
  cfg : config;
  sim : Sim.t;
  svc : Service.t;
  tr : Trace.t;
  rlu_rng : Rng.t;
  workers : worker array;
  core : Core.t;
  centrals : Request.t Fifo.t array; (* one per worker class *)
  flow : Flow_control.t;
  cache : Coherence.t option;
  metrics : Metrics.t;
  jbsq_depth_h : Registry.histogram;
  drop_queue_c : Registry.counter;
  drop_ewt_c : Registry.counter;
  drop_slo_c : Registry.counter;
  drop_bad_c : Registry.counter;
  drop_shed_c : Registry.counter;
  retry_c : Registry.counter;
  leak_c : Registry.counter;
  shed_level_g : Registry.gauge;
  mutable expected : int; (* grows as dropped requests are retried *)
  warmup : int;
  mutable done_count : int;
  mutable ewt_drop_count : int;
  mutable rlu_global_writes : int;
}

let static_owner st partition =
  Core.static_owner ~partition ~lo:0 ~hi:st.cfg.n_workers

(* Size-aware partitioning of the worker pool: the last
   [reserved_workers] ids serve large items, everyone else small ones.
   Other policies see a single class spanning the whole pool. *)
let class_of_request st (r : Request.t) =
  match st.cfg.policy with
  | Policy.Size_aware p when r.value_size >= p.Policy.size_threshold -> 1
  | _ -> 0

let class_of_worker st wid =
  match st.cfg.policy with
  | Policy.Size_aware p when wid >= st.cfg.n_workers - p.Policy.reserved_workers -> 1
  | _ -> 0

let class_range st cls =
  match st.cfg.policy with
  | Policy.Size_aware p ->
    let boundary = st.cfg.n_workers - p.Policy.reserved_workers in
    if cls = 1 then (boundary, st.cfg.n_workers) else (0, boundary)
  | _ -> (0, st.cfg.n_workers)

let try_dispatch_class st cls =
  let lo, hi = class_range st cls in
  Core.try_dispatch st.core ~lo ~hi

(* The partition owner for statically hashed requests, confined to the
   request's class range under size-aware partitioning. *)
let static_owner_in_class st cls partition =
  let lo, hi = class_range st cls in
  Core.static_owner ~partition ~lo ~hi

let note_done st =
  st.done_count <- st.done_count + 1;
  if st.done_count = st.warmup then Metrics.start_measuring st.metrics ~now:(Sim.now st.sim);
  if st.done_count = st.expected then Metrics.stop st.metrics ~now:(Sim.now st.sim)

let fault_scale st wid =
  match st.cfg.faults with
  | None -> 1.0
  | Some f -> f.service_scale ~worker:wid ~now:(Sim.now st.sim)

(* Treat every request as a read under Ideal: the paper's Ideal is the
   baseline running a read-only workload, i.e. perfect balance and no
   writer-induced coherence traffic. *)
let effective_op st (r : Request.t) =
  match st.cfg.policy with Policy.Ideal -> Request.Read | _ -> r.op

let boost_factor st wid =
  match List.assoc_opt wid st.cfg.boosted_workers with
  | Some f when f > 0.0 -> f
  | _ -> 1.0

(* Service duration of a normally processed (non-compacted) request:
   the data-movement term follows the request's own value size, so
   heterogeneous (size-aware) workloads cost what they carry. *)
let normal_service st w (r : Request.t) =
  let kvs =
    Service.sample_kvs_sized st.svc ~value_size:r.value_size /. boost_factor st w.wid
  in
  let p = Service.params st.svc in
  let kvs =
    match (st.cfg.policy, effective_op st r) with
    | Policy.Crcw_rlu rlu, Request.Read -> kvs *. rlu.read_factor
    | Policy.Crcw_rlu rlu, Request.Write ->
      let kvs = kvs *. rlu.write_factor in
      st.rlu_global_writes <- st.rlu_global_writes + 1;
      (* Version-chain garbage collection is on the critical path: the
         write that needs a reclaimed slot waits out the whole cleanup
         (the ~70 µs stalls Sec. 7.1 reports for MV-RLU). *)
      if rlu.gc_period > 0 && st.rlu_global_writes mod rlu.gc_period = 0 then
        kvs +. rlu.gc_stall
      else kvs
    | _ -> kvs
  in
  let coherence_cost =
    match st.cache with
    | None -> 0.0
    | Some cache -> (
      let lines = Service.lines_for st.svc ~value_size:r.value_size in
      match effective_op st r with
      | Request.Read -> Coherence.read_cost cache ~core:w.wid ~partition:r.partition ~lines
      | Request.Write -> Coherence.write_cost cache ~core:w.wid ~partition:r.partition ~lines)
  in
  (kvs +. p.Service.t_fixed +. coherence_cost) *. fault_scale st w.wid

(* The combined write a closing window performs against the datastore. *)
let final_write_service st w ~partition =
  let kvs = Service.sample_kvs st.svc /. boost_factor st w.wid in
  let coherence_cost =
    match st.cache with
    | None -> 0.0
    | Some cache ->
      Coherence.write_cost cache ~core:w.wid ~partition ~lines:(Service.lines st.svc)
  in
  (kvs +. coherence_cost) *. fault_scale st w.wid

(* RLU log promotion runs on the worker AFTER the triggering write's
   response leaves (commit deferral): the promoting request meets its
   own SLO, but the worker is occupied for 10-20 µs. The occupancy is
   charged to the JBSQ counters, so at low load the balancer routes
   around the promoting worker; once load leaves no idle workers,
   requests pile up behind promotions — the deep-queue failure mode
   that caps RLU's throughput under SLO (Sec. 7.1). *)
let rlu_background_work st w (r : Request.t) =
  match (st.cfg.policy, r.op) with
  | Policy.Crcw_rlu rlu, Request.Write ->
    w.rlu_writes <- w.rlu_writes + 1;
    if rlu.commit_degree > 0 && w.rlu_writes mod rlu.commit_degree = 0 then
      Rng.uniform st.rlu_rng ~lo:rlu.promotion_lo ~hi:rlu.promotion_hi
    else 0.0
  | _ -> 0.0

let scan_cost st w = Core.scan_cost st.core ~queued:(Fifo.length w.queue)

(* Decrement the EWT's outstanding-write counter, either immediately
   (the paper's release-on-completion) or after a lingering delay that
   keeps the partition sticky to its writer for a while longer. A
   fault-injected leak swallows the release entirely: the counter
   sticks until the staleness sweep (if configured) reclaims it. *)
let release_exclusive st (r : Request.t) =
  let now = Sim.now st.sim in
  let leaked =
    match st.cfg.faults with
    | Some f when f.leak_release r ~now ->
      Registry.incr st.leak_c;
      Trace.instant st.tr ~name:"ewt_leak"
        ~args:[ ("partition", string_of_int r.partition) ] ~ts:now ();
      true
    | _ -> false
  in
  if not leaked then begin
    let release () = Core.write_done st.core ~partition:r.partition in
    if st.cfg.ewt_release_delay <= 0.0 then release ()
    else ignore (Sim.schedule st.sim ~after:st.cfg.ewt_release_delay (fun _ -> release ()))
  end

let shed_rejects st (r : Request.t) =
  Core.shed_rejects st.core ~is_read:(effective_op st r = Request.Read)

(* ------------------------------------------------------------------ *)

let rec start_next st w =
  if not w.busy then begin
    (* A window whose deadline passed while the worker was busy (or that
       must close because the queue ran dry under adaptive close) closes
       before new work starts. *)
    if
      Core.must_close st.core ~worker:w.wid ~now:(Sim.now st.sim)
        ~queue_empty:(Fifo.is_empty w.queue)
    then close_window st w
    else begin
      match Fifo.pop w.queue with
      | None -> ()
      | Some r -> process st w r
    end
  end

and process st w (r : Request.t) =
  let now = Sim.now st.sim in
  match (st.cfg.policy, r.op) with
  | Policy.Delegate d, Request.Write when static_owner st r.partition <> w.wid ->
    (* Software delegation: this worker does not own the partition, so
       it spends the hand-off cost shuffling the write to the owner's
       queue, where it waits again — CREW rebuilt in software. *)
    forward st w r ~t_forward:d.Policy.t_forward
  | _ -> process_local st w r ~now

and process_local st w (r : Request.t) ~now =
  match r.op with
  | Request.Write when Core.window_accepts st.core ~worker:w.wid ~key:r.key ->
    absorb st w r ~extra:0.0
  | Request.Write
    when Core.compaction_enabled st.core
         && not (Core.window_is_open st.core ~worker:w.wid) ->
    (* Hunt for dependent writes among the next few queue slots. *)
    let cost = scan_cost st w in
    let dependent =
      Fifo.exists w.queue ~depth:(Core.scan_depth st.core) ~f:(fun (q : Request.t) ->
          q.op = Request.Write && q.key = r.key)
    in
    if dependent then begin
      let deadline =
        Core.open_window st.core ~worker:w.wid ~key:r.key ~now ~arrival:r.arrival
          ~mean_service:(Service.mean_service st.svc)
      in
      Trace.request_event st.tr ~id:r.id ~name:"window_open"
        ~args:
          [ ("key", string_of_int r.key); ("deadline", Printf.sprintf "%.1f" deadline) ]
        ~ts:now ();
      let timer =
        Sim.schedule_at st.sim ~time:deadline (fun _ ->
            w.window_timer <- None;
            if not w.busy then start_next st w)
      in
      w.window_timer <- Some timer;
      absorb st w r ~extra:cost
    end
    else run_for st w r ~service:(normal_service st w r +. cost)
  | Request.Write when Core.compaction_enabled st.core ->
    (* Window open for a different key: this write is independent of the
       batch and runs normally (plus the mandatory scan). *)
    run_for st w r ~service:(normal_service st w r +. scan_cost st w)
  | _ -> run_for st w r ~service:(normal_service st w r)

and forward st w (r : Request.t) ~t_forward =
  Trace.service_begin st.tr ~id:r.id ~lane:w.wid ~ts:(Sim.now st.sim);
  w.busy <- true;
  Metrics.add_busy st.metrics ~worker:w.wid t_forward;
  ignore
    (Sim.schedule st.sim ~after:t_forward (fun _ ->
         w.busy <- false;
         Core.complete st.core ~worker:w.wid;
         Trace.service_end st.tr ~id:r.id ~lane:w.wid ~phase:Trace.Forward
           ~ts:(Sim.now st.sim);
         let owner = static_owner st r.Request.partition in
         Core.dispatch_to st.core ~worker:owner;
         let target = st.workers.(owner) in
         Fifo.push target.queue r;
         if not target.busy then start_next st target;
         refill_from_central st w.wid;
         start_next st w))

(* Buffer a write into the open window: occupies the core for
   T_fixed + T_comp, touches no shared lines, defers the response. *)
and absorb st w (r : Request.t) ~extra =
  let p = Service.params st.svc in
  let service = (p.Service.t_fixed +. p.Service.t_comp +. extra) *. fault_scale st w.wid in
  Trace.service_begin st.tr ~id:r.id ~lane:w.wid ~ts:(Sim.now st.sim);
  Core.absorb st.core ~worker:w.wid ~key:r.key ~id:r.id ~now:(Sim.now st.sim);
  Hashtbl.replace w.window_reqs r.id r;
  w.busy <- true;
  Metrics.add_busy st.metrics ~worker:w.wid service;
  ignore
    (Sim.schedule st.sim ~after:service (fun _ ->
         w.busy <- false;
         (* The request left the worker's queue slot; balancing capacity
            frees now, while the NIC buffer stays held until the
            response goes out at window close. *)
         Core.complete st.core ~worker:w.wid;
         Trace.service_end st.tr ~id:r.id ~lane:w.wid ~phase:Trace.Absorb
           ~ts:(Sim.now st.sim);
         Metrics.record_service st.metrics ~op:r.op ~worker:w.wid ~service;
         refill_from_central st w.wid;
         start_next st w))

and run_for st w (r : Request.t) ~service =
  Trace.service_begin st.tr ~id:r.id ~lane:w.wid ~ts:(Sim.now st.sim);
  w.busy <- true;
  Metrics.add_busy st.metrics ~worker:w.wid service;
  ignore
    (Sim.schedule st.sim ~after:service (fun _ ->
         let now = Sim.now st.sim in
         w.busy <- false;
         Core.complete st.core ~worker:w.wid;
         Flow_control.release st.flow;
         if Policy.uses_ewt st.cfg.policy && r.op = Request.Write then
           release_exclusive st r;
         Trace.service_end st.tr ~id:r.id ~lane:w.wid ~phase:Trace.Service ~ts:now;
         Trace.departure st.tr ~id:r.id ~lane:w.wid ~ts:now;
         Metrics.record_service st.metrics ~op:r.op ~worker:w.wid ~service;
         Metrics.record_latency st.metrics ~op:r.op ~latency:(now -. r.arrival)
           ~compacted:false ~value_size:r.value_size;
         note_done st;
         let background = rlu_background_work st w r in
         if background > 0.0 then begin
           w.busy <- true;
           Core.dispatch_to st.core ~worker:w.wid;
           Trace.lane_span st.tr ~lane:w.wid ~phase:Trace.Background ~t0:now
             ~t1:(now +. background);
           Metrics.add_busy st.metrics ~worker:w.wid background;
           ignore
             (Sim.schedule st.sim ~after:background (fun _ ->
                  w.busy <- false;
                  Core.complete st.core ~worker:w.wid;
                  refill_from_central st w.wid;
                  start_next st w))
         end
         else begin
           refill_from_central st w.wid;
           start_next st w
         end))

and close_window st w =
  (match w.window_timer with
  | Some timer ->
    Sim.cancel st.sim timer;
    w.window_timer <- None
  | None -> ());
  match Core.close_window st.core ~worker:w.wid ~now:(Sim.now st.sim) with
  | None -> start_next st w
  | Some closed ->
    let partition =
      match Hashtbl.length w.window_reqs with
      | 0 -> 0
      | _ ->
        (* All buffered requests share the key, hence the partition. *)
        let any = List.hd closed.Compaction_log.writes in
        (Hashtbl.find w.window_reqs any.Compaction_log.request_id).Request.partition
    in
    let service = final_write_service st w ~partition in
    let flush_start = Sim.now st.sim in
    w.busy <- true;
    Metrics.add_busy st.metrics ~worker:w.wid service;
    ignore
      (Sim.schedule st.sim ~after:service (fun _ ->
           let now = Sim.now st.sim in
           w.busy <- false;
           Trace.lane_span st.tr ~lane:w.wid ~phase:Trace.Flush ~t0:flush_start
             ~t1:now;
           List.iter
             (fun (pending : Compaction_log.pending) ->
               let r = Hashtbl.find w.window_reqs pending.Compaction_log.request_id in
               Hashtbl.remove w.window_reqs pending.Compaction_log.request_id;
               Flow_control.release st.flow;
               if Policy.uses_ewt st.cfg.policy then release_exclusive st r;
               Trace.departure st.tr ~id:r.Request.id ~lane:w.wid ~ts:now;
               Metrics.record_latency st.metrics ~op:r.op
                 ~latency:(now -. r.Request.arrival) ~compacted:true
                 ~value_size:r.Request.value_size;
               note_done st)
             closed.Compaction_log.writes;
           refill_from_central st w.wid;
           start_next st w))

(* After a worker frees a balanced slot, pull waiting work from the
   NIC's central queue. Pinned d-CREW writes re-resolve against the EWT
   at hand-out time and may route to a different worker. *)
and refill_from_central st wid =
  let w = st.workers.(wid) in
  let central = st.centrals.(class_of_worker st wid) in
  let rec loop () =
    if Core.has_slot st.core ~worker:wid && not (Fifo.is_empty central) then begin
      match Fifo.pop central with
      | None -> ()
      | Some r ->
        let routed_here = route_from_central st ~free_worker:wid r in
        if routed_here then begin
          if not w.busy then start_next st w;
          loop ()
        end
        else loop ()
    end
  in
  loop ()

(* Returns true when the request consumed [free_worker]'s slot. *)
and route_from_central st ~free_worker (r : Request.t) =
  let now = Sim.now st.sim in
  let enqueue wid =
    Fifo.push st.workers.(wid).queue r;
    Trace.request_event st.tr ~id:r.id ~name:"enqueue"
      ~args:[ ("worker", string_of_int wid) ] ~ts:now ();
    Registry.observe st.jbsq_depth_h (float_of_int (Core.occupancy st.core ~worker:wid));
    let target = st.workers.(wid) in
    if not target.busy then start_next st target
  in
  if Policy.uses_ewt st.cfg.policy && r.op = Request.Write then begin
    match Core.admit_write st.core ~partition:r.partition ~now ~pick:(`Worker free_worker) with
    | Core.Admitted { worker; fresh } ->
      if fresh then Trace.request_event st.tr ~id:r.id ~name:"ewt_miss" ~ts:now ()
      else
        Trace.request_event st.tr ~id:r.id ~name:"ewt_hit"
          ~args:[ ("owner", string_of_int worker) ] ~ts:now ();
      enqueue worker;
      worker = free_worker
    | Core.No_slot ->
      (* [`Worker _] picks never come back empty-handed. *)
      assert false
    | Core.Rejected { owner; _ } ->
      (match owner with
      | Some o ->
        Trace.request_event st.tr ~id:r.id ~name:"ewt_hit"
          ~args:[ ("owner", string_of_int o) ] ~ts:now ()
      | None -> Trace.request_event st.tr ~id:r.id ~name:"ewt_miss" ~ts:now ());
      drop_late st r;
      false
  end
  else begin
    Core.dispatch_to st.core ~worker:free_worker;
    enqueue free_worker;
    true
  end

(* A request already admitted by flow control that the EWT cannot
   accommodate: dropped, releasing its NIC buffer. *)
and drop_late st (r : Request.t) =
  Flow_control.release st.flow;
  st.ewt_drop_count <- st.ewt_drop_count + 1;
  Core.note_drop st.core;
  Registry.incr st.drop_ewt_c;
  Metrics.note_drop st.metrics ~reason:Metrics.Ewt_exhausted;
  Trace.drop st.tr ~id:r.id ~reason:"ewt_exhausted" ~ts:(Sim.now st.sim);
  offer_retry st r ~reason:Metrics.Ewt_exhausted;
  note_done st

(* A dropped request may come back: the client-side retry policy (when
   wired in) decides whether and when, and the re-arrival joins the
   expected-completion count so accounting stays exact. *)
and offer_retry st (r : Request.t) ~reason =
  match st.cfg.on_drop with
  | None -> ()
  | Some hook -> (
    let now = Sim.now st.sim in
    match hook r ~now ~reason with
    | None -> ()
    | Some retry ->
      st.expected <- st.expected + 1;
      Registry.incr st.retry_c;
      ignore
        (Sim.schedule st.sim
           ~after:(Float.max 0.0 (retry.Request.arrival -. now))
           (fun _ -> on_arrival st retry)))

(* ------------------------------------------------------------------ *)

and enqueue_at st wid (r : Request.t) =
  let w = st.workers.(wid) in
  Fifo.push w.queue r;
  Trace.request_event st.tr ~id:r.id ~name:"enqueue"
    ~args:[ ("worker", string_of_int wid) ] ~ts:(Sim.now st.sim) ();
  Registry.observe st.jbsq_depth_h (float_of_int (Core.occupancy st.core ~worker:wid));
  if not w.busy then start_next st w

and on_arrival st (r : Request.t) =
  let now = Sim.now st.sim in
  Core.note_arrival st.core;
  Trace.arrival st.tr ~id:r.id
    ~op:(match r.op with Request.Read -> "R" | Request.Write -> "W")
    ~partition:r.partition ~ts:now;
  let corrupt = match st.cfg.faults with Some f -> f.corrupt r ~now | None -> false in
  if corrupt then begin
    (* Header parsing precedes admission (as in Nic.Pipeline.admit), so
       a corrupted packet never charges a flow-control slot. *)
    Core.note_drop st.core;
    Registry.incr st.drop_bad_c;
    Metrics.note_drop st.metrics ~reason:Metrics.Bad_packet;
    Trace.drop st.tr ~id:r.id ~reason:"bad_packet" ~ts:now;
    offer_retry st r ~reason:Metrics.Bad_packet;
    note_done st
  end
  else if shed_rejects st r then begin
    Registry.incr st.drop_shed_c;
    Metrics.note_drop st.metrics ~reason:Metrics.Shed;
    Trace.drop st.tr ~id:r.id ~reason:"shed" ~ts:now;
    offer_retry st r ~reason:Metrics.Shed;
    note_done st
  end
  else if not (Flow_control.admit st.flow) then begin
    Core.note_drop st.core;
    Registry.incr st.drop_queue_c;
    Metrics.note_drop st.metrics ~reason:Metrics.Queue_full;
    Trace.drop st.tr ~id:r.id ~reason:"queue_full" ~ts:now;
    offer_retry st r ~reason:Metrics.Queue_full;
    note_done st
  end
  else begin
    let policy = st.cfg.policy in
    let op = effective_op st r in
    let cls = class_of_request st r in
    if Policy.uses_ewt policy && op = Request.Write then begin
      let lo, hi = class_range st cls in
      match Core.admit_write st.core ~partition:r.partition ~now ~pick:(`Balanced (lo, hi)) with
      | Core.Admitted { worker; fresh } ->
        if fresh then Trace.request_event st.tr ~id:r.id ~name:"ewt_miss" ~ts:now ()
        else
          Trace.request_event st.tr ~id:r.id ~name:"ewt_hit"
            ~args:[ ("owner", string_of_int worker) ] ~ts:now ();
        enqueue_at st worker r
      | Core.No_slot ->
        Trace.request_event st.tr ~id:r.id ~name:"ewt_miss" ~ts:now ();
        Fifo.push st.centrals.(cls) r
      | Core.Rejected { owner; _ } ->
        (match owner with
        | Some o ->
          Trace.request_event st.tr ~id:r.id ~name:"ewt_hit"
            ~args:[ ("owner", string_of_int o) ] ~ts:now ()
        | None -> Trace.request_event st.tr ~id:r.id ~name:"ewt_miss" ~ts:now ());
        drop_late st r
    end
    else if Policy.balanceable policy op then begin
      match try_dispatch_class st cls with
      | Some wid -> enqueue_at st wid r
      | None -> Fifo.push st.centrals.(cls) r
    end
    else begin
      let wid = static_owner_in_class st cls r.partition in
      Core.dispatch_to st.core ~worker:wid;
      enqueue_at st wid r
    end
  end

(* Shared driver: [next_request] yields the stream (generator- or
   trace-backed); [n_requests] is its known length. *)
let run_stream ?(warmup_fraction = 0.2) cfg ~next_request ~n_requests ~n_partitions
    ~offered_rate =
  if n_requests <= 0 then invalid_arg "Server.run: n_requests";
  (match cfg.policy with
  | Policy.Size_aware p ->
    if p.Policy.reserved_workers < 1 || p.Policy.reserved_workers >= cfg.n_workers then
      invalid_arg "Server.run: reserved_workers must leave both classes nonempty"
  | _ -> ());
  let sim = Sim.create () in
  let root = Rng.create cfg.seed in
  let svc = Service.create cfg.service (Rng.split root) in
  let rlu_rng = Rng.split root in
  (* All layers instrument against one registry; a private one when the
     caller did not ask to observe the run. *)
  let reg = match cfg.registry with Some r -> r | None -> Registry.create () in
  (* Register server-level metrics up front: record-literal evaluation
     order is unspecified, and the registry's registration order is the
     exporters' column order. *)
  let drop_queue_c = Registry.counter reg "drops.queue_full" in
  let drop_ewt_c = Registry.counter reg "drops.ewt_exhausted" in
  let drop_slo_c = Registry.counter reg "drops.slo_expired" in
  let drop_bad_c = Registry.counter reg "drops.bad_packet" in
  let drop_shed_c = Registry.counter reg "drops.shed" in
  let retry_c = Registry.counter reg "retry.injected" in
  let leak_c = Registry.counter reg "fault.ewt_leak" in
  let shed_level_g = Registry.gauge reg "shed.level" in
  let jbsq_depth_h = Registry.histogram reg "jbsq.depth" in
  let core =
    Core.create ~registry:reg ?on_decision:cfg.on_decision ~cfg:cfg.crew
      ~n_workers:cfg.n_workers ~n_partitions ()
  in
  let make_worker wid =
    {
      wid;
      queue = Fifo.create ();
      busy = false;
      window_reqs = Hashtbl.create 64;
      window_timer = None;
      rlu_writes = 0;
    }
  in
  let st =
    {
      cfg;
      sim;
      svc;
      tr = cfg.trace;
      rlu_rng;
      workers = Array.init cfg.n_workers make_worker;
      core;
      centrals = [| Fifo.create (); Fifo.create () |];
      flow = Flow_control.create ~max_outstanding:cfg.max_outstanding;
      cache =
        Option.map
          (fun params ->
            Coherence.create ~params ~n_cores:cfg.n_workers ~n_partitions ())
          cfg.cache;
      metrics = Metrics.create ~n_workers:cfg.n_workers;
      jbsq_depth_h;
      drop_queue_c;
      drop_ewt_c;
      drop_slo_c;
      drop_bad_c;
      drop_shed_c;
      retry_c;
      leak_c;
      shed_level_g;
      expected = n_requests;
      warmup = int_of_float (warmup_fraction *. float_of_int n_requests);
      done_count = 0;
      ewt_drop_count = 0;
      rlu_global_writes = 0;
    }
  in
  if st.warmup = 0 then Metrics.start_measuring st.metrics ~now:0.0;
  (* Periodic time-series rows: polled gauges are refreshed just before
     each sample. Started after every layer has registered its metrics,
     so the CSV header is complete. *)
  let flow_g = Registry.gauge reg "flow.in_flight" in
  let ewt_occ_g = Registry.gauge reg "ewt.occupancy" in
  let central_g = Registry.gauge reg "central.depth" in
  let snapshot =
    Option.map
      (fun interval_ns ->
        Snapshot.start
          ~pre:(fun () ->
            Registry.set flow_g (float_of_int (Flow_control.in_flight st.flow));
            Registry.set ewt_occ_g (float_of_int (Core.ewt_occupancy st.core));
            Registry.set central_g
              (float_of_int
                 (Fifo.length st.centrals.(0) + Fifo.length st.centrals.(1))))
          ~sim ~registry:reg ~interval_ns ())
      cfg.metrics_interval
  in
  (* Staleness sweep: reclaim EWT entries whose leaked releases would
     otherwise pin their partitions forever. Self-rescheduling stops
     once every expected request is accounted for, so the event queue
     still drains. *)
  (match cfg.crew.Crew_config.ewt_ttl with
  | None -> ()
  | Some { Crew_config.sweep_interval; _ } ->
    let rec sweep () =
      ignore
        (Sim.schedule sim ~after:sweep_interval (fun _ ->
             let evicted = Core.sweep_stale st.core ~now:(Sim.now sim) in
             if evicted <> [] then
               Trace.instant st.tr ~name:"ewt_stale_sweep"
                 ~args:[ ("evicted", string_of_int (List.length evicted)) ]
                 ~ts:(Sim.now sim) ();
             if st.done_count < st.expected then sweep ()))
    in
    sweep ());
  (* Adaptive load shedding: the periodic tick; the thresholds and the
     level live in the core. *)
  (match cfg.crew.Crew_config.shed with
  | None -> ()
  | Some sc ->
    let rec check () =
      ignore
        (Sim.schedule sim ~after:sc.Crew_config.check_interval (fun _ ->
             let prev = Core.shed_level st.core in
             let level = Core.shed_check st.core ~now:(Sim.now sim) in
             if level <> prev then begin
               Registry.set st.shed_level_g (float_of_int level);
               Trace.instant st.tr ~name:"shed_level"
                 ~args:[ ("level", string_of_int level) ]
                 ~ts:(Sim.now sim) ()
             end;
             if st.done_count < st.expected then check ()))
    in
    check ());
  let rec pump () =
    match next_request () with
    | None -> ()
    | Some r ->
      ignore
        (Sim.schedule_at st.sim ~time:r.Request.arrival (fun _ ->
             on_arrival st r;
             pump ()))
  in
  pump ();
  Sim.run st.sim;
  (* Guard against unterminated runs (a bug, not a workload property). *)
  if st.done_count <> st.expected then
    failwith
      (Printf.sprintf "Server.run: %d of %d requests unaccounted for"
         (st.expected - st.done_count) st.expected);
  {
    metrics = st.metrics;
    ewt =
      (if Policy.uses_ewt cfg.policy then Some (Core.ewt_stats st.core) else None);
    compaction = Core.compaction_stats st.core;
    flow_drops = Flow_control.rejected st.flow;
    ewt_drops = st.ewt_drop_count;
    offered_rate;
    mean_service = Service.mean_service st.svc;
    snapshot = Option.map Snapshot.csv snapshot;
    retries_injected = Registry.counter_value st.retry_c;
  }

let run ?warmup_fraction cfg ~workload ~n_requests =
  let gen = Generator.create workload ~seed:(cfg.seed lxor 0x5bd1e995) in
  let remaining = ref n_requests in
  let next_request () =
    if !remaining <= 0 then None
    else begin
      decr remaining;
      Some (Generator.next gen)
    end
  in
  run_stream ?warmup_fraction cfg ~next_request ~n_requests
    ~n_partitions:workload.Generator.n_partitions
    ~offered_rate:workload.Generator.rate

let run_trace ?warmup_fraction cfg ~trace ~n_partitions =
  let n_requests = C4_workload.Trace.length trace in
  let index = ref 0 in
  let next_request () =
    if !index >= n_requests then None
    else begin
      let r = C4_workload.Trace.get trace !index in
      incr index;
      Some r
    end
  in
  run_stream ?warmup_fraction cfg ~next_request ~n_requests ~n_partitions
    ~offered_rate:(C4_workload.Trace.offered_rate trace)
