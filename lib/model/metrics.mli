(** Measurement collected by one simulation run.

    Latencies are end-to-end (arrival at the NIC to response leaving),
    matching the paper's server-side measurement. Per-worker on-core
    service times and busy/idle accounting support the Fig. 11b / Fig. 12
    analyses. Requests completing before the warm-up boundary are
    excluded from all aggregates. *)

type t

val create : n_workers:int -> t

(** Begin the measurement interval (end of warm-up). *)
val start_measuring : t -> now:float -> unit

val measuring : t -> bool

(** Close the measurement interval. *)
val stop : t -> now:float -> unit

(** Record the on-core completion of one request at [worker]: bumps the
    per-worker counters and service-time summary. Called for every
    request a worker processes, including writes absorbed into a
    compaction window (whose responses are still pending). *)
val record_service :
  t -> op:C4_workload.Request.op -> worker:int -> service:float -> unit

(** Record a response leaving the system with end-to-end [latency].
    For compacted writes this happens at window close, long after
    {!record_service}. [value_size] additionally files the sample under
    the small- or large-item histogram (boundary: {!size_class_boundary}
    bytes), so heterogeneous-item studies can separate the classes. *)
val record_latency :
  t ->
  op:C4_workload.Request.op ->
  latency:float ->
  compacted:bool ->
  value_size:int ->
  unit

(** Item-size boundary between the small/large latency histograms (4 KiB). *)
val size_class_boundary : int

(** Account busy time on a worker (ns within the measuring window are
    the caller's responsibility to clip). *)
val add_busy : t -> worker:int -> float -> unit

(** Why an admitted-or-arriving request was dropped: NIC buffers full
    (flow control), the EWT could not accommodate the write, the
    request's SLO expired before service, the packet failed header
    parsing (fault-injected corruption), or the overloaded server shed
    it to protect the SLO of admitted work. *)
type drop_reason = Queue_full | Ewt_exhausted | Slo_expired | Bad_packet | Shed

val drop_reason_name : drop_reason -> string
val note_drop : t -> reason:drop_reason -> unit

(* -- Results ---------------------------------------------------------- *)

(** Measurement interval length (ns). *)
val duration : t -> float

(** Completed requests in the interval. *)
val completed : t -> int

(** Requests per ns (multiply by 1e3 for MRPS). *)
val throughput : t -> float

(** In MRPS, the paper's unit. *)
val throughput_mrps : t -> float

val latency : t -> C4_stats.Histogram.t
val read_latency : t -> C4_stats.Histogram.t
val write_latency : t -> C4_stats.Histogram.t

(** Latency of requests below / at-or-above the size boundary. *)
val small_latency : t -> C4_stats.Histogram.t

val large_latency : t -> C4_stats.Histogram.t
val p99 : t -> float
val mean_latency : t -> float

(** Total drops across all reasons. *)
val drops : t -> int

val drops_by_reason : t -> reason:drop_reason -> int
val compacted_count : t -> int

(** Per-worker views (length [n_workers]). *)
val worker_completed : t -> int array

val worker_throughput_mrps : t -> float array
val worker_utilization : t -> float array
val worker_mean_service : t -> float array

(** The busiest writer: worker with the most completed writes. *)
val hottest_worker : t -> int

val pp_summary : Format.formatter -> t -> unit
