(** Child-process management for crash testing real servers.

    The in-process chaos harness ({!Chaos}) kills simulated workers;
    this module is the fault injector one level up: it runs a whole
    server binary as a child process so a test can [SIGKILL] it
    mid-load and restart it on the same state directory — proving
    durability claims against a genuinely dead process (no atexit, no
    flush, no cooperative shutdown) rather than a polite stop.

    Deliberately free of networking dependencies so it sits below
    [c4_net] in the build graph; the client-side load driving lives in
    the CLI's kill-chaos command. *)

type t

(** [spawn ~prog ~args] starts [prog] with [args] (argv.(0) is set to
    [prog]); the child's stdout is captured for {!await_line}, stderr
    passes through. *)
val spawn : prog:string -> args:string list -> t

val pid : t -> int

(** Next '\n'-terminated line of the child's stdout, waiting up to
    [timeout] seconds (default 10). [None] on timeout or EOF with no
    complete buffered line. The harness's handshake channel: the server
    prints its bound port and recovery summary as single lines. *)
val await_line : ?timeout:float -> t -> string option

(** Send [signal] (default [SIGKILL] — this is a crash harness) to the
    child. No-op once the child has been reaped. *)
val kill : ?signal:int -> t -> unit

(** Reap the child, polling up to [timeout] seconds (default 10).
    [None] on timeout; the status is cached, so [wait] after a
    successful wait returns the same status without syscalls. *)
val wait : ?timeout:float -> t -> Unix.process_status option
