(* Child-process management for crash testing real servers.

   The in-process chaos harness ([Chaos]) kills simulated workers; this
   module is the fault injector one level up — it runs a whole server as
   a child process so the test can SIGKILL it mid-load and restart it,
   proving durability claims against a genuinely dead process rather
   than a cooperative shutdown. Kept free of any networking dependency
   so it sits below [c4_net] in the build graph; the client-side driving
   lives with the CLI ([cmd_chaos]). *)

type t = {
  pid : int;
  stdout : Unix.file_descr;
  mutable buf : Buffer.t;  (* bytes read but not yet returned as a line *)
  mutable status : Unix.process_status option;  (* set once reaped *)
}

let spawn ~prog ~args =
  let r, w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process prog
      (Array.of_list (prog :: args))
      Unix.stdin w Unix.stderr
  in
  Unix.close w;
  { pid; stdout = r; buf = Buffer.create 256; status = None }

let pid t = t.pid

(* Pull one '\n'-terminated line out of [buf], if present. *)
let take_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear t.buf;
    Buffer.add_string t.buf (String.sub s (i + 1) (String.length s - i - 1));
    Some (String.sub s 0 i)

let await_line ?(timeout = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match take_line t with
    | Some line -> Some line
    | None ->
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then None
      else begin
        match Unix.select [ t.stdout ] [] [] remaining with
        | [], _, _ -> None
        | _ :: _, _, _ ->
          let n = Unix.read t.stdout chunk 0 (Bytes.length chunk) in
          if n = 0 then take_line t (* EOF: flush whatever is buffered *)
          else begin
            Buffer.add_subbytes t.buf chunk 0 n;
            go ()
          end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      end
  in
  go ()

let kill ?(signal = Sys.sigkill) t =
  match t.status with
  | Some _ -> ()
  | None -> ( try Unix.kill t.pid signal with Unix.Unix_error (Unix.ESRCH, _, _) -> ())

let wait ?(timeout = 10.0) t =
  match t.status with
  | Some status -> Some status
  | None ->
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      match Unix.waitpid [ Unix.WNOHANG ] t.pid with
      | 0, _ ->
        if Unix.gettimeofday () >= deadline then None
        else begin
          Unix.sleepf 0.02;
          go ()
        end
      | _, status ->
        t.status <- Some status;
        (try Unix.close t.stdout with Unix.Unix_error _ -> ());
        Some status
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None
    in
    go ()
