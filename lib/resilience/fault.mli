(** Deterministic fault injection for the simulated server.

    A {!profile} describes WHAT can go wrong (corrupted packets,
    straggling workers, leaked EWT releases, arrival bursts) and with
    what intensity; a seed decides WHICH concrete requests, workers, and
    windows are hit. Every decision hashes (seed, fault kind,
    coordinates) into a one-shot SplitMix64 stream, so decisions are
    independent of hook-consultation order: the same seed produces the
    same fault schedule — and, because the simulator itself is
    deterministic, a byte-identical run — regardless of retries or model
    changes elsewhere. *)

type profile = {
  corrupt_p : float;  (** P(request's packet fails header parsing) *)
  leak_p : float;  (** P(a write's EWT release is lost) *)
  straggler_p : float;  (** P(a worker stalls in a given episode) *)
  straggler_scale : float;  (** service multiplier while stalled *)
  straggler_len : float;  (** ns per stall episode *)
  burst_p : float;  (** fraction of arrival windows burst-compressed *)
  burst_factor : float;  (** instantaneous rate multiplier in a burst *)
  burst_window : float;  (** ns per arrival window *)
}

(** All intensities zero: injects nothing. *)
val none : profile

(** Mild chaos: 0.2 % corruption and leaks, 1 % stall episodes at 4×,
    5 % of windows burst at 4×. *)
val default : profile

(** [parse "corrupt=0.01,leak=0.005,burst=0.1"] — keys are [corrupt],
    [leak], [straggler], [straggler_scale], [straggler_len], [burst],
    [burst_factor], [burst_window]; unset keys keep {!none}'s values.
    The empty string is {!none}. *)
val parse : string -> (profile, string) result

val to_string : profile -> string

(** The server-side hooks for {!C4_model.Server.config.faults}. *)
val hooks : profile -> seed:int -> C4_model.Server.fault_hooks

(** Deterministically compress arrivals inside the seed-chosen burst
    windows (same requests, same order, earlier arrivals) — the overload
    transient the NIC flow-control cap must absorb. Identity when the
    profile bursts nothing. *)
val burstify : profile -> seed:int -> C4_workload.Trace.t -> C4_workload.Trace.t
