(** Client-side retry policy: deadline, capped exponential backoff with
    deterministic jitter, and a token-bucket retry budget.

    Plugged into {!C4_model.Server.config.on_drop}: every dropped
    request is offered back to the policy, which either re-injects it
    (fresh id, backed-off arrival) or gives up — because its deadline
    passed, its attempts ran out, or the budget is empty. The budget
    grants [budget_ratio] credits per dropped original and charges one
    per retry, so retries <= budget_burst + budget_ratio × dropped
    originals: a failing server sees bounded amplification, never a
    retry storm. *)

type config = {
  max_attempts : int;  (** total attempts including the original *)
  base_backoff : float;  (** ns before the first retry *)
  max_backoff : float;  (** backoff growth cap, ns *)
  deadline : float;
      (** ns after the ORIGINAL arrival by which a retry must arrive;
          <= 0 disables the deadline *)
  budget_ratio : float;  (** credits granted per dropped original *)
  budget_burst : float;  (** initial credits *)
}

(** 4 attempts, 2 µs base doubling to 64 µs, 500 µs deadline,
    0.5 retry budget with a burst of 10. *)
val default : config

type t

(** [id_base] must exceed every workload request id; retries get ids
    [id_base+1, id_base+2, ...] so traces and histograms keep original
    and retried arrivals distinct. *)
val create : config -> seed:int -> id_base:int -> t

(** The [on_drop] hook. Deterministic in (config, seed, drop sequence). *)
val hook :
  t ->
  C4_workload.Request.t ->
  now:float ->
  reason:C4_model.Metrics.drop_reason ->
  C4_workload.Request.t option

type stats = {
  originals_dropped : int;
  retries : int;  (** re-injections granted *)
  denied_budget : int;
  denied_deadline : int;
  denied_attempts : int;
}

val stats : t -> stats

(** retries / dropped originals; 0 when nothing dropped. By
    construction bounded by [budget_ratio + budget_burst/originals]. *)
val amplification : t -> float

(** {2 Reusable pieces}

    The same policy arithmetic, exposed for wall-clock clients
    ([C4_net.Client]) that drive retries themselves instead of through
    the simulator's [on_drop] hook. *)

(** Backoff before attempt [attempt+1] (ns): capped exponential with
    deterministic jitter in [0.5, 1.5), decorrelated across [original]
    ids. [attempt] counts from 1 (the original try). *)
val backoff_ns : config -> seed:int -> original:int -> attempt:int -> float

(** Token-bucket retry budget: [budget_ratio] credits granted per failed
    original, one charged per retry, so retries <= burst + ratio ×
    failed originals. Not thread-safe — callers serialise access. *)
module Budget : sig
  type budget

  val create : config -> budget

  (** A fresh original failed: grant [budget_ratio] credits. *)
  val note_failed_original : budget -> unit

  (** Spend one credit for a retry; [false] = budget empty, give up. *)
  val try_charge : budget -> bool

  val credits : budget -> float
end
