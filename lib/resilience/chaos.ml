module Server = C4_model.Server
module Metrics = C4_model.Metrics
module Generator = C4_workload.Generator
module Trace = C4_workload.Trace

type report = {
  result : Server.result;
  retry : Retry.stats option;
  amplification : float;
  profile : Fault.profile;
  fault_seed : int;
  n_requests : int;
}

let run ?warmup_fraction ?retry ~server ~workload ~n_requests ~profile ~fault_seed () =
  if n_requests < 1 then invalid_arg "Chaos.run: n_requests";
  (* Record the clean arrival stream first, then let the fault schedule
     deform it: the same (workload seed, fault seed) pair always replays
     the same deformed trace. *)
  let gen = Generator.create workload ~seed:server.Server.seed in
  let trace = Trace.record gen ~n:n_requests in
  let trace = Fault.burstify profile ~seed:fault_seed trace in
  let retry_state =
    Option.map (fun rc -> Retry.create rc ~seed:fault_seed ~id_base:n_requests) retry
  in
  let cfg =
    {
      server with
      Server.faults = Some (Fault.hooks profile ~seed:fault_seed);
      on_drop = Option.map Retry.hook retry_state;
    }
  in
  let result =
    Server.run_trace ?warmup_fraction cfg ~trace
      ~n_partitions:workload.Generator.n_partitions
  in
  {
    result;
    retry = Option.map Retry.stats retry_state;
    amplification =
      (match retry_state with Some t -> Retry.amplification t | None -> 0.0);
    profile;
    fault_seed;
    n_requests;
  }

let pp_report ppf r =
  let m = r.result.Server.metrics in
  Format.fprintf ppf "@[<v>chaos run: %d requests, fault seed %d@," r.n_requests
    r.fault_seed;
  Format.fprintf ppf "profile: %s@," (Fault.to_string r.profile);
  Format.fprintf ppf "throughput: %.3f MRPS, p99: %.0f ns, completed: %d@,"
    (Metrics.throughput_mrps m) (Metrics.p99 m) (Metrics.completed m);
  let reason r = Metrics.drops_by_reason m ~reason:r in
  Format.fprintf ppf
    "drops: %d (queue_full %d, ewt %d, slo %d, bad_packet %d, shed %d)@,"
    (Metrics.drops m) (reason Metrics.Queue_full) (reason Metrics.Ewt_exhausted)
    (reason Metrics.Slo_expired) (reason Metrics.Bad_packet) (reason Metrics.Shed);
  (match r.retry with
  | None -> Format.fprintf ppf "retries: disabled"
  | Some s ->
    Format.fprintf ppf
      "retries: %d injected / %d dropped originals (amplification %.2f; denied: \
       budget %d, deadline %d, attempts %d)"
      s.Retry.retries s.Retry.originals_dropped r.amplification s.Retry.denied_budget
      s.Retry.denied_deadline s.Retry.denied_attempts);
  Format.fprintf ppf "@]"
