module Rng = C4_dsim.Rng
module Request = C4_workload.Request
module Trace = C4_workload.Trace

type profile = {
  corrupt_p : float;
  leak_p : float;
  straggler_p : float;
  straggler_scale : float;
  straggler_len : float;
  burst_p : float;
  burst_factor : float;
  burst_window : float;
}

let none =
  {
    corrupt_p = 0.0;
    leak_p = 0.0;
    straggler_p = 0.0;
    straggler_scale = 1.0;
    straggler_len = 50_000.0;
    burst_p = 0.0;
    burst_factor = 1.0;
    burst_window = 100_000.0;
  }

let default =
  {
    corrupt_p = 0.002;
    leak_p = 0.002;
    straggler_p = 0.01;
    straggler_scale = 4.0;
    straggler_len = 50_000.0;
    burst_p = 0.05;
    burst_factor = 4.0;
    burst_window = 100_000.0;
  }

let to_string p =
  Printf.sprintf
    "corrupt=%g,leak=%g,straggler=%g,straggler_scale=%g,straggler_len=%g,burst=%g,burst_factor=%g,burst_window=%g"
    p.corrupt_p p.leak_p p.straggler_p p.straggler_scale p.straggler_len
    p.burst_p p.burst_factor p.burst_window

let parse s =
  let s = String.trim s in
  if s = "" then Ok none
  else
    let parts = String.split_on_char ',' s in
    let rec go p = function
      | [] -> Ok p
      | part :: rest -> (
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "fault profile: expected key=value, got %S" part)
        | Some i -> (
          let key = String.trim (String.sub part 0 i) in
          let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
          match float_of_string_opt v with
          | None -> Error (Printf.sprintf "fault profile: bad value %S for %s" v key)
          | Some f -> (
            match key with
            | "corrupt" -> go { p with corrupt_p = f } rest
            | "leak" -> go { p with leak_p = f } rest
            | "straggler" -> go { p with straggler_p = f } rest
            | "straggler_scale" -> go { p with straggler_scale = f } rest
            | "straggler_len" -> go { p with straggler_len = f } rest
            | "burst" -> go { p with burst_p = f } rest
            | "burst_factor" -> go { p with burst_factor = f } rest
            | "burst_window" -> go { p with burst_window = f } rest
            | _ -> Error (Printf.sprintf "fault profile: unknown key %S" key))))
    in
    go none parts

(* Per-decision determinism without per-stream state: every fault
   decision hashes (seed, salt, coordinates) into a one-shot SplitMix64
   stream and draws once. Decisions are therefore independent of the
   ORDER the hooks are consulted in — retries, rescheduling, or model
   changes cannot perturb which packets a given seed corrupts. *)
let combine seed xs =
  List.fold_left
    (fun h x -> (h lxor x) * 0x9E3779B97F4A7 + 0x85EBCA6B)
    (seed * 0x2545F4914F6CDD1D)
    xs

let draw seed xs = Rng.float (Rng.create (combine seed xs))

let salt_corrupt = 1
let salt_leak = 2
let salt_straggle = 3
let salt_burst = 4

let hooks (p : profile) ~seed : C4_model.Server.fault_hooks =
  {
    corrupt =
      (fun (r : Request.t) ~now:_ ->
        p.corrupt_p > 0.0 && draw seed [ salt_corrupt; r.id ] < p.corrupt_p);
    leak_release =
      (fun (r : Request.t) ~now:_ ->
        p.leak_p > 0.0 && Request.is_write r && draw seed [ salt_leak; r.id ] < p.leak_p);
    service_scale =
      (fun ~worker ~now ->
        if p.straggler_p <= 0.0 || p.straggler_len <= 0.0 then 1.0
        else
          (* Time is sliced into episodes of [straggler_len]; a worker
             independently stalls for whole episodes, modelling a GC
             pause / frequency dip rather than per-request jitter. *)
          let slot = int_of_float (now /. p.straggler_len) in
          if draw seed [ salt_straggle; worker; slot ] < p.straggler_p then
            p.straggler_scale
          else 1.0);
  }

let burstify (p : profile) ~seed trace =
  if p.burst_p <= 0.0 || p.burst_factor <= 1.0 || p.burst_window <= 0.0 then trace
  else begin
    let n = Trace.length trace in
    let reqs = Array.init n (Trace.get trace) in
    let bursty =
      Array.map
        (fun (r : Request.t) ->
          let slot = int_of_float (r.arrival /. p.burst_window) in
          if draw seed [ salt_burst; slot ] < p.burst_p then begin
            (* Compress the window's arrivals toward its start: same
               requests, same order, [burst_factor]× the instantaneous
               rate — the overload transient flow control must absorb. *)
            let start = float_of_int slot *. p.burst_window in
            { r with arrival = start +. ((r.arrival -. start) /. p.burst_factor) }
          end
          else r)
        reqs
    in
    Trace.of_array bursty
  end
