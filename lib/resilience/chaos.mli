(** The chaos harness: one seeded fault schedule + one retry policy
    against the simulated server, end to end.

    Generates the workload trace, deforms its arrivals through
    {!Fault.burstify}, installs the {!Fault.hooks} and the {!Retry.hook}
    in the server config, replays, and reports. Everything downstream of
    (server config, workload config, [fault_seed]) is deterministic:
    equal inputs give byte-identical metrics and observability traces,
    which is what makes a chaos failure reproducible from its seed. *)

type report = {
  result : C4_model.Server.result;
  retry : Retry.stats option;  (** [None] when retries were disabled *)
  amplification : float;  (** retries per dropped original *)
  profile : Fault.profile;
  fault_seed : int;
  n_requests : int;
}

(** [run ~server ~workload ~n_requests ~profile ~fault_seed ()] replays
    the deformed trace under injected faults. [server.faults] and
    [server.on_drop] are overwritten by the harness; every other server
    knob (policy, compaction, shedding, EWT TTL, tracer, registry) is
    the caller's. [retry] enables the client retry policy. *)
val run :
  ?warmup_fraction:float ->
  ?retry:Retry.config ->
  server:C4_model.Server.config ->
  workload:C4_workload.Generator.config ->
  n_requests:int ->
  profile:Fault.profile ->
  fault_seed:int ->
  unit ->
  report

val pp_report : Format.formatter -> report -> unit
