module Rng = C4_dsim.Rng
module Request = C4_workload.Request

type config = {
  max_attempts : int;
  base_backoff : float;
  max_backoff : float;
  deadline : float;
  budget_ratio : float;
  budget_burst : float;
}

let default =
  {
    max_attempts = 4;
    base_backoff = 2_000.0;
    max_backoff = 64_000.0;
    deadline = 500_000.0;
    budget_ratio = 0.5;
    budget_burst = 10.0;
  }

type family = { original : int; mutable attempts : int; first_arrival : float }

type stats = {
  originals_dropped : int;
  retries : int;
  denied_budget : int;
  denied_deadline : int;
  denied_attempts : int;
}

type t = {
  cfg : config;
  seed : int;
  id_base : int;
  (* request id (original or retry) -> its retry family *)
  families : (int, family) Hashtbl.t;
  mutable credits : float;
  mutable originals_dropped : int;
  mutable retries : int;
  mutable denied_budget : int;
  mutable denied_deadline : int;
  mutable denied_attempts : int;
}

let create cfg ~seed ~id_base =
  if cfg.max_attempts < 1 then invalid_arg "Retry.create: max_attempts";
  if cfg.base_backoff < 0.0 || cfg.max_backoff < cfg.base_backoff then
    invalid_arg "Retry.create: backoff";
  if cfg.budget_ratio < 0.0 || cfg.budget_burst < 0.0 then
    invalid_arg "Retry.create: budget";
  {
    cfg;
    seed;
    id_base;
    families = Hashtbl.create 256;
    credits = cfg.budget_burst;
    originals_dropped = 0;
    retries = 0;
    denied_budget = 0;
    denied_deadline = 0;
    denied_attempts = 0;
  }

(* Full jitter in [0.5, 1.5), hashed from (seed, family, attempt) so the
   backoff sequence is deterministic yet decorrelated across families —
   seeded chaos runs replay byte-identically, but a dropped burst does
   not re-arrive as the same synchronised burst. *)
let jitter t ~original ~attempt =
  let h =
    ((t.seed * 0x2545F4914F6CDD1D) lxor (original * 0x9E3779B97F4A7) lxor attempt)
    * 0x85EBCA6B
  in
  0.5 +. Rng.float (Rng.create h)

let backoff t ~original ~attempt =
  let exp = Float.min t.cfg.max_backoff (t.cfg.base_backoff *. (2.0 ** float_of_int (attempt - 1))) in
  exp *. jitter t ~original ~attempt

(* Same arithmetic without a [t]: the client-side entry point. *)
let backoff_ns cfg ~seed ~original ~attempt =
  let h =
    ((seed * 0x2545F4914F6CDD1D) lxor (original * 0x9E3779B97F4A7) lxor attempt)
    * 0x85EBCA6B
  in
  let jitter = 0.5 +. Rng.float (Rng.create h) in
  let exp =
    Float.min cfg.max_backoff (cfg.base_backoff *. (2.0 ** float_of_int (attempt - 1)))
  in
  exp *. jitter

module Budget = struct
  type budget = { ratio : float; mutable b_credits : float }

  let create cfg =
    if cfg.budget_ratio < 0.0 || cfg.budget_burst < 0.0 then
      invalid_arg "Retry.Budget.create";
    { ratio = cfg.budget_ratio; b_credits = cfg.budget_burst }

  let note_failed_original b = b.b_credits <- b.b_credits +. b.ratio

  let try_charge b =
    if b.b_credits < 1.0 then false
    else begin
      b.b_credits <- b.b_credits -. 1.0;
      true
    end

  let credits b = b.b_credits
end

(* The [Model.Server.config.on_drop] hook. The retry budget is a token
   bucket granting [budget_ratio] credits per DROPPED ORIGINAL (plus the
   initial [budget_burst]), and each injected retry costs one credit —
   so total retries <= burst + ratio * dropped originals no matter how
   hard the server is failing: the retry storm cannot amplify an
   overload unboundedly (SRE retry-budget discipline). *)
let hook t (r : Request.t) ~now ~reason:_ =
  let fam =
    match Hashtbl.find_opt t.families r.id with
    | Some fam -> fam
    | None ->
      let fam = { original = r.id; attempts = 1; first_arrival = r.arrival } in
      Hashtbl.replace t.families r.id fam;
      t.originals_dropped <- t.originals_dropped + 1;
      t.credits <- t.credits +. t.cfg.budget_ratio;
      fam
  in
  if fam.attempts >= t.cfg.max_attempts then begin
    t.denied_attempts <- t.denied_attempts + 1;
    None
  end
  else begin
    let next_arrival = now +. backoff t ~original:fam.original ~attempt:fam.attempts in
    if t.cfg.deadline > 0.0 && next_arrival > fam.first_arrival +. t.cfg.deadline then begin
      t.denied_deadline <- t.denied_deadline + 1;
      None
    end
    else if t.credits < 1.0 then begin
      t.denied_budget <- t.denied_budget + 1;
      None
    end
    else begin
      t.credits <- t.credits -. 1.0;
      t.retries <- t.retries + 1;
      fam.attempts <- fam.attempts + 1;
      let id = t.id_base + t.retries in
      Hashtbl.replace t.families id fam;
      Some { r with id; arrival = next_arrival }
    end
  end

let stats t =
  {
    originals_dropped = t.originals_dropped;
    retries = t.retries;
    denied_budget = t.denied_budget;
    denied_deadline = t.denied_deadline;
    denied_attempts = t.denied_attempts;
  }

let amplification t =
  if t.originals_dropped = 0 then 0.0
  else float_of_int t.retries /. float_of_int t.originals_dropped
