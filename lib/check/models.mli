(** Model programs for the {!Sched} explorer, each mirroring one of the
    repo's concurrency protocols at the granularity of its atomic
    operations, with the protocol invariants from the paper asserted in
    every explored interleaving:

    - {!seqlock}: CREW (one writer per partition) and no torn validated
      read, against the real [C4_kvs.Seqlock].
    - {!ewt}: exclusive-writer mapping stability while writes are
      outstanding, credit conservation across responses and stale
      expiry, against the real [C4_nic.Ewt].
    - {!flow_control}: window credits conserved, never negative, never
      above the cap, against the real [C4_nic.Flow_control].
    - {!channel}: FIFO delivery, nothing lost across [close], no lost
      wakeup, against the real [C4_runtime.Channel].
    - {!promise}: resolve-exactly-once, awaiter always wakes, against
      the real [C4_runtime.Promise].
    - {!crew_core}: the engine-agnostic d-CREW policy core
      ([C4_crew.Core]) itself — an admitter, a releaser, a TTL sweeper
      and a window lifecycle interleaved over one core instance, with
      CREW routing stability, occupancy/credit conservation and
      close-answers-exactly-the-absorbed-writes asserted in every
      interleaving.
    - {!compaction}: deferred responses only after the window closes;
      every schedule's recorded history is fed to the
      [C4_consistency.Linearizability] checker.

    Each model has deliberately broken variants whose counterexample
    schedules the tests replay — the seeded-bug proof that the explorer
    actually discriminates. *)

type packed

val name : packed -> string
val explore : ?preemption_bound:int -> ?max_schedules:int -> packed -> Sched.outcome
val replay : packed -> int list -> (unit, Sched.violation) result

type seqlock_broken =
  | No_write_end  (** writer never closes the write section: lost wakeup *)
  | Unlocked_writer  (** data writes outside the version protocol: torn read *)
  | Second_writer  (** concurrent writer: CREW violation, seqlock raises *)

val seqlock : ?broken:seqlock_broken -> unit -> packed

type ewt_broken =
  | Raising_response
      (** respond via [note_response] (pre-resilience protocol): an
          expiry sweep racing the response makes it raise *)

val ewt : ?broken:ewt_broken -> unit -> packed

type flow_broken = Unmatched_release

val flow_control : ?broken:flow_broken -> unit -> packed

type channel_broken =
  | Pop_ignores_close  (** consumer never observes close: lost wakeup *)

val channel : ?broken:channel_broken -> unit -> packed

type promise_broken = Two_resolvers

val promise : ?broken:promise_broken -> unit -> packed

type crew_broken =
  | Strict_release
      (** release via [write_done ~strict:true] even though a TTL is
          configured: a sweep racing the release makes it raise *)

val crew_core : ?broken:crew_broken -> unit -> packed

type compaction_broken =
  | Early_ack  (** acknowledge at enqueue instead of window close *)

(** Returns the model plus a ref holding the history recorded by the
    most recent execution (e.g. a replayed counterexample schedule),
    ready to hand to the linearizability checker. *)
val compaction :
  ?broken:compaction_broken -> unit -> packed * C4_consistency.History.op list ref
