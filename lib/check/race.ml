type race = {
  loc : int;
  loc_name : string;
  first : Event.t;
  first_index : int;
  second : Event.t;
  second_index : int;
}

type report = {
  races : race list;
  threads : int;
  events_analyzed : int;
}

let pp_race ppf r =
  let pp_event ppf e = Event.pp ppf e in
  Format.fprintf ppf "race on %s: %a (event %d) unordered with %a (event %d)"
    r.loc_name pp_event r.first r.first_index pp_event r.second r.second_index

(* Per-location access summary: for reads and writes separately, the
   clock component of each thread's last access plus the event index
   that produced it (for reporting). *)
type loc_state = {
  last_read : int array; (* per-thread clock component at last read *)
  read_ev : int array;
  last_write : int array;
  write_ev : int array;
}

let analyze ?names events =
  let events = Array.of_list events in
  let n_threads =
    Array.fold_left
      (fun acc e ->
        let m =
          match e with
          | Event.Fork { parent; child } | Event.Join { parent; child } ->
            max parent child
          | e -> Event.thread_of e
        in
        max acc (m + 1))
      1 events
  in
  let clock = Array.init n_threads (fun i ->
      let c = Vclock.create n_threads in
      Vclock.tick c i;
      c)
  in
  let lock_clock : (int, Vclock.t) Hashtbl.t = Hashtbl.create 16 in
  let atomic_clock : (int, Vclock.t) Hashtbl.t = Hashtbl.create 16 in
  let loc_state : (int, loc_state) Hashtbl.t = Hashtbl.create 64 in
  let state_of loc =
    match Hashtbl.find_opt loc_state loc with
    | Some s -> s
    | None ->
      let s =
        {
          last_read = Array.make n_threads 0;
          read_ev = Array.make n_threads (-1);
          last_write = Array.make n_threads 0;
          write_ev = Array.make n_threads (-1);
        }
      in
      Hashtbl.replace loc_state loc s;
      s
  in
  let loc_label loc =
    match names with Some n -> Event.loc_name n loc | None -> Printf.sprintf "loc#%d" loc
  in
  let races = ref [] in
  let report_race loc prev_ev i =
    if prev_ev >= 0 then
      races :=
        {
          loc;
          loc_name = loc_label loc;
          first = events.(prev_ev);
          first_index = prev_ev;
          second = events.(i);
          second_index = i;
        }
        :: !races
  in
  Array.iteri
    (fun i e ->
      match e with
      | Event.Fork { parent; child } ->
        Vclock.join clock.(child) clock.(parent);
        Vclock.tick clock.(child) child;
        Vclock.tick clock.(parent) parent
      | Event.Join { parent; child } ->
        Vclock.join clock.(parent) clock.(child);
        Vclock.tick clock.(parent) parent
      | Event.Acquire { thread; lock } -> (
        match Hashtbl.find_opt lock_clock lock with
        | Some lc -> Vclock.join clock.(thread) lc
        | None -> ())
      | Event.Release { thread; lock } ->
        Hashtbl.replace lock_clock lock (Vclock.copy clock.(thread));
        Vclock.tick clock.(thread) thread
      | Event.Atomic_op { thread; loc; access } -> (
        (* SC atomics: a read acquires the location's published clock, a
           write publishes (join-then-store, so release chains across
           several writers accumulate). *)
        match access with
        | Event.Read -> (
          match Hashtbl.find_opt atomic_clock loc with
          | Some ac -> Vclock.join clock.(thread) ac
          | None -> ())
        | Event.Write ->
          (match Hashtbl.find_opt atomic_clock loc with
          | Some ac ->
            Vclock.join clock.(thread) ac;
            Vclock.assign ac clock.(thread)
          | None -> Hashtbl.replace atomic_clock loc (Vclock.copy clock.(thread)));
          Vclock.tick clock.(thread) thread)
      | Event.Plain { thread; loc; access } -> (
        let s = state_of loc in
        let c = clock.(thread) in
        (match access with
        | Event.Read ->
          (* A read races with any write not in our past. *)
          Array.iteri
            (fun u w -> if u <> thread && w > Vclock.get c u then report_race loc s.write_ev.(u) i)
            s.last_write
        | Event.Write ->
          Array.iteri
            (fun u w -> if u <> thread && w > Vclock.get c u then report_race loc s.write_ev.(u) i)
            s.last_write;
          Array.iteri
            (fun u r -> if u <> thread && r > Vclock.get c u then report_race loc s.read_ev.(u) i)
            s.last_read);
        match access with
        | Event.Read ->
          s.last_read.(thread) <- Vclock.get c thread;
          s.read_ev.(thread) <- i
        | Event.Write ->
          s.last_write.(thread) <- Vclock.get c thread;
          s.write_ev.(thread) <- i))
    events;
  { races = List.rev !races; threads = n_threads; events_analyzed = Array.length events }

let is_race_free report = report.races = []
