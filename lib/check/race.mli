(** Happens-before data-race detection over a recorded event trace
    (Djit+-style, full vector clocks).

    The recorder serialises events into one total order; the detector
    rebuilds the happens-before partial order from fork/join edges,
    lock acquire/release pairs and SC atomic accesses, then flags any
    pair of {e plain} accesses to the same location where at least one
    is a write and neither happens-before the other. Because the
    analysis is on the partial order, races are caught even when the
    recorder's serialisation happened to put the two accesses "safely"
    apart in time. *)

type race = {
  loc : int;
  loc_name : string;
  first : Event.t;
  first_index : int;  (** index into the analyzed trace *)
  second : Event.t;
  second_index : int;
}

type report = {
  races : race list;  (** trace order; one entry per unordered pair *)
  threads : int;
  events_analyzed : int;
}

val pp_race : Format.formatter -> race -> unit

(** [analyze ?names events] replays the trace through the vector-clock
    engine. [names] (from the recorder) makes reports name locations. *)
val analyze : ?names:Event.names -> Event.t list -> report

val is_race_free : report -> bool
