(** Events consumed by the vector-clock race detector. Threads are
    dense ids assigned by the recorder ([Instrument]); locations and
    locks are interned strings so reports stay human-readable. *)

type access = Read | Write

type t =
  | Plain of { thread : int; loc : int; access : access }
      (** Unsynchronised read/write of a mutable location (a [ref],
          record field, array slot or [Hashtbl] bucket modeled as one
          location). The only event kind that can race. *)
  | Atomic_op of { thread : int; loc : int; access : access }
      (** [Atomic.t] access — SC per OCaml's memory model, so it both
          never races and orders plain accesses around it. *)
  | Acquire of { thread : int; lock : int }
  | Release of { thread : int; lock : int }
  | Fork of { parent : int; child : int }
  | Join of { parent : int; child : int }

(** Interning table for location and lock names. *)
type names

val names : unit -> names
val loc_id : names -> string -> int
val lock_id : names -> string -> int
val loc_name : names -> int -> string
val lock_name : names -> int -> string

(** The thread that performed the event (the parent, for fork/join). *)
val thread_of : t -> int

val pp_access : Format.formatter -> access -> unit
val pp : ?names:names -> Format.formatter -> t -> unit
