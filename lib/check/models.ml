module Seqlock = C4_kvs.Seqlock
module Ewt = C4_nic.Ewt
module Flow_control = C4_nic.Flow_control
module Channel = C4_runtime.Channel
module Promise = C4_runtime.Promise
module History = C4_consistency.History
module Lin = C4_consistency.Linearizability

type packed = Pack : 'st Sched.model -> packed

let name (Pack m) = m.Sched.model_name

let explore ?preemption_bound ?max_schedules (Pack m) =
  Sched.explore ?preemption_bound ?max_schedules m

let replay (Pack m) schedule = Sched.replay m schedule

(* ---------------- Seqlock reader/writer ---------------- *)

type seqlock_broken = No_write_end | Unlocked_writer | Second_writer

type seqlock_state = {
  sl : Seqlock.t;
  mutable a : int;
  mutable b : int;
  (* reader scratch *)
  mutable r_v0 : int;
  mutable r_a : int;
  mutable r_b : int;
  mutable snapshots : (int * int) list;
}

(* The writer mirrors [Store.set]'s protocol: version bump, two data
   writes (the torn-value hazard), version bump. [n] updates end-to-end. *)
let seqlock_writer ?(skip_end = false) ?(skip_lock = false) n =
  let rec update i =
    let write_end =
      Sched.step ~touches:[ "ver" ]
        (Printf.sprintf "write_end/%d" i)
        (fun st ->
          Seqlock.write_end st.sl;
          if i < n then Sched.Continue (update (i + 1)) else Sched.stop)
    in
    let write_b =
      Sched.step ~touches:[ "b" ]
        (Printf.sprintf "write_b/%d" i)
        (fun st ->
          st.b <- st.b + 1;
          if skip_end then Sched.stop else Sched.Continue write_end)
    in
    let write_a =
      Sched.step ~touches:[ "a" ]
        (Printf.sprintf "write_a/%d" i)
        (fun st ->
          st.a <- st.a + 1;
          Sched.Continue write_b)
    in
    if skip_lock then write_a
    else
      Sched.step ~touches:[ "ver" ]
        (Printf.sprintf "write_begin/%d" i)
        (fun st ->
          Seqlock.write_begin st.sl;
          Sched.Continue write_a)
  in
  update 1

(* The reader mirrors [Seqlock.read] decomposed at its atomic accesses:
   version poll, data reads, version validation, retry on mismatch. The
   poll models the spin loop as blocking (enabled once the version is
   even), so exploration stays finite. *)
let seqlock_reader () =
  let rec read_v0 () =
    Sched.step ~touches:[ "ver" ] "read_v0"
      ~enabled:(fun st -> not (Seqlock.write_in_flight st.sl))
      (fun st ->
        st.r_v0 <- Seqlock.version st.sl;
        Sched.Continue
          (Sched.step ~touches:[ "a" ] "read_a" (fun st ->
               st.r_a <- st.a;
               Sched.Continue
                 (Sched.step ~touches:[ "b" ] "read_b" (fun st ->
                      st.r_b <- st.b;
                      Sched.Continue
                        (Sched.step ~touches:[ "ver" ] "read_validate" (fun st ->
                             if Seqlock.version st.sl = st.r_v0 then begin
                               st.snapshots <- (st.r_a, st.r_b) :: st.snapshots;
                               Sched.stop
                             end
                             else Sched.Continue (read_v0 ()))))))))
  in
  read_v0 ()

let seqlock ?broken () =
  let n_writes = 2 in
  let writer =
    match broken with
    | None -> seqlock_writer n_writes
    | Some No_write_end -> seqlock_writer ~skip_end:true 1
    | Some Unlocked_writer -> seqlock_writer ~skip_lock:true ~skip_end:true 1
    | Some Second_writer -> seqlock_writer n_writes
  in
  let threads =
    let base =
      [
        { Sched.name = "writer"; entry = writer };
        { Sched.name = "reader"; entry = seqlock_reader () };
      ]
    in
    if broken = Some Second_writer then
      base @ [ { Sched.name = "writer2"; entry = seqlock_writer 1 } ]
    else base
  in
  let model_name =
    match broken with
    | None -> "seqlock"
    | Some No_write_end -> "seqlock/no-write-end"
    | Some Unlocked_writer -> "seqlock/unlocked-writer"
    | Some Second_writer -> "seqlock/second-writer"
  in
  Pack
    {
      Sched.model_name;
      init =
        (fun () ->
          {
            sl = Seqlock.create ();
            a = 0;
            b = 0;
            r_v0 = 0;
            r_a = 0;
            r_b = 0;
            snapshots = [];
          });
      threads;
      invariant =
        (fun st ->
          (* Writer order: [a] leads [b] by at most one. *)
          if st.a < st.b || st.a > st.b + 1 then
            Error (Printf.sprintf "writer order broken: a=%d b=%d" st.a st.b)
          else (
            match
              List.find_opt (fun (x, y) -> x <> y) st.snapshots
            with
            | Some (x, y) ->
              Error (Printf.sprintf "torn read validated: a=%d b=%d" x y)
            | None -> Ok ()));
      final =
        (fun st ->
          if st.a <> st.b then
            Error (Printf.sprintf "final store torn: a=%d b=%d" st.a st.b)
          else if st.snapshots = [] then Error "reader never completed a snapshot"
          else Ok ());
    }

(* ---------------- EWT acquire / note_response / expire_stale -------- *)

type ewt_broken = Raising_response

type ewt_state = {
  ewt : Ewt.t;
  mutable now : float;
  shadow_out : (int, int) Hashtbl.t;
  shadow_thread : (int, int) Hashtbl.t;
  mutable pending_acks : int list;
  mutable oks : int;
  mutable acks : int;
  mutable orphans : int;
  mutable stale_cancelled : int;
  mutable nic_done : bool;
}

let shadow_get h p = Option.value ~default:0 (Hashtbl.find_opt h p)

let ewt_ttl = 1.5

(* One NIC dispatch = lookup + note_write as a single atomic step, the
   way the serial NIC pipeline executes it. *)
let ewt_nic dispatches =
  let rec go = function
    | [] -> assert false
    | (partition, preferred) :: rest ->
      Sched.step ~touches:[ "ewt" ]
        (Printf.sprintf "dispatch p%d" partition)
        (fun st ->
          st.now <- st.now +. 1.0;
          let thread =
            match Ewt.lookup st.ewt ~partition with
            | Some t -> t
            | None -> preferred
          in
          (match Ewt.note_write ~now:st.now st.ewt ~partition ~thread with
          | `Ok ->
            if shadow_get st.shadow_out partition = 0 then
              Hashtbl.replace st.shadow_thread partition thread;
            Hashtbl.replace st.shadow_out partition
              (shadow_get st.shadow_out partition + 1);
            st.pending_acks <- st.pending_acks @ [ partition ];
            st.oks <- st.oks + 1
          | `Full | `Counter_saturated -> ());
          if rest = [] then begin
            st.nic_done <- true;
            Sched.stop
          end
          else Sched.Continue (go rest))
  in
  go dispatches

let ewt_responder ~raising =
  let rec ack () =
    Sched.step ~touches:[ "ewt" ] "respond"
      ~enabled:(fun st -> st.pending_acks <> [] || st.nic_done)
      (fun st ->
        st.now <- st.now +. 1.0;
        match st.pending_acks with
        | [] -> Sched.stop
        | partition :: rest ->
          st.pending_acks <- rest;
          let acked =
            if raising then begin
              (* The pre-resilience protocol: assumes the mapping still
                 exists. An expiry sweep racing the response kills it. *)
              Ewt.note_response st.ewt ~partition;
              true
            end
            else Ewt.try_note_response st.ewt ~partition
          in
          if acked then begin
            st.acks <- st.acks + 1;
            let left = shadow_get st.shadow_out partition - 1 in
            if left <= 0 then begin
              Hashtbl.remove st.shadow_out partition;
              Hashtbl.remove st.shadow_thread partition
            end
            else Hashtbl.replace st.shadow_out partition left
          end
          else st.orphans <- st.orphans + 1;
          Sched.Continue (ack ()))
  in
  ack ()

let ewt_expirer () =
  Sched.step ~touches:[ "ewt" ] "expire_stale" (fun st ->
      st.now <- st.now +. 1.0;
      let evicted = Ewt.expire_stale st.ewt ~now:st.now ~ttl:ewt_ttl in
      (* Reconcile the shadow: partitions whose outstanding collapsed to
         zero inside this step were stale-evicted with writes in flight. *)
      let cancelled = ref 0 and reconciled = ref 0 in
      Hashtbl.iter
        (fun p out ->
          if out > 0 && Ewt.outstanding st.ewt ~partition:p = 0 then begin
            cancelled := !cancelled + out;
            incr reconciled
          end)
        (Hashtbl.copy st.shadow_out);
      Hashtbl.iter
        (fun p out ->
          if out > 0 && Ewt.outstanding st.ewt ~partition:p = 0 then begin
            Hashtbl.remove st.shadow_out p;
            Hashtbl.remove st.shadow_thread p
          end)
        (Hashtbl.copy st.shadow_out);
      st.stale_cancelled <- st.stale_cancelled + !cancelled;
      if !reconciled <> evicted then
        failwith
          (Printf.sprintf "expiry accounting mismatch: evicted %d, reconciled %d"
             evicted !reconciled);
      Sched.stop)

let ewt ?broken () =
  let raising = broken = Some Raising_response in
  let capacity = 8 in
  Pack
    {
      Sched.model_name = (if raising then "ewt/raising-response" else "ewt");
      init =
        (fun () ->
          {
            ewt = Ewt.create ~capacity ~max_outstanding:64 ();
            now = 0.0;
            shadow_out = Hashtbl.create 8;
            shadow_thread = Hashtbl.create 8;
            pending_acks = [];
            oks = 0;
            acks = 0;
            orphans = 0;
            stale_cancelled = 0;
            nic_done = false;
          });
      threads =
        [
          { Sched.name = "nic"; entry = ewt_nic [ (0, 1); (1, 2); (0, 9) ] };
          { Sched.name = "responder"; entry = ewt_responder ~raising };
          { Sched.name = "expirer"; entry = ewt_expirer () };
        ];
      invariant =
        (fun st ->
          if Ewt.occupancy st.ewt > Ewt.capacity st.ewt then
            Error "occupancy exceeds capacity"
          else begin
            let bad = ref None in
            Hashtbl.iter
              (fun p out ->
                let real = Ewt.outstanding st.ewt ~partition:p in
                if real <> out then
                  bad := Some (Printf.sprintf "partition %d: outstanding %d, shadow %d" p real out)
                else if
                  (* CREW: while writes are outstanding, the partition
                     stays mapped to the thread that first acquired it. *)
                  out > 0
                  && Ewt.lookup st.ewt ~partition:p
                     <> Hashtbl.find_opt st.shadow_thread p
                then bad := Some (Printf.sprintf "partition %d remapped mid-flight" p))
              st.shadow_out;
            match !bad with
            | Some msg -> Error msg
            | None ->
              let outstanding_total =
                Hashtbl.fold (fun _ out acc -> acc + out) st.shadow_out 0
              in
              (* Credit conservation: every accepted write is exactly one
                 of outstanding / acked / cancelled-by-expiry. *)
              if st.oks <> outstanding_total + st.acks + st.stale_cancelled then
                Error
                  (Printf.sprintf "credits leak: oks=%d outstanding=%d acks=%d cancelled=%d"
                     st.oks outstanding_total st.acks st.stale_cancelled)
              else Ok ()
          end);
      final =
        (fun st ->
          if not st.nic_done then Error "nic did not finish"
          else if st.pending_acks <> [] then Error "responses still pending"
          else if st.acks + st.orphans + st.stale_cancelled < st.oks then
            Error "not every accepted write was resolved"
          else Ok ());
    }

(* ---------------- Flow control ---------------- *)

type flow_broken = Unmatched_release

type flow_state = {
  fc : Flow_control.t;
  cap : int;
  mutable sh_admitted : int;
  mutable sh_released : int;
}

let flow_client i =
  Sched.step ~touches:[ "fc" ]
    (Printf.sprintf "admit/%d" i)
    ~enabled:(fun st -> Flow_control.in_flight st.fc < st.cap)
    (fun st ->
      if not (Flow_control.admit st.fc) then failwith "admit failed under guard";
      st.sh_admitted <- st.sh_admitted + 1;
      Sched.Continue
        (Sched.step ~touches:[ "fc" ]
           (Printf.sprintf "release/%d" i)
           (fun st ->
             Flow_control.release st.fc;
             st.sh_released <- st.sh_released + 1;
             Sched.stop)))

let flow_rogue () =
  Sched.step ~touches:[ "fc" ] "rogue_release" (fun st ->
      Flow_control.release st.fc;
      Sched.stop)

let flow_control ?broken () =
  let cap = 1 in
  let threads =
    [
      { Sched.name = "client0"; entry = flow_client 0 };
      { Sched.name = "client1"; entry = flow_client 1 };
    ]
    @
    if broken = Some Unmatched_release then
      [ { Sched.name = "rogue"; entry = flow_rogue () } ]
    else []
  in
  Pack
    {
      Sched.model_name =
        (if broken = Some Unmatched_release then "flow-control/unmatched-release"
         else "flow-control");
      init =
        (fun () ->
          { fc = Flow_control.create ~max_outstanding:cap; cap; sh_admitted = 0; sh_released = 0 });
      threads;
      invariant =
        (fun st ->
          let inflight = Flow_control.in_flight st.fc in
          if inflight < 0 || inflight > st.cap then
            Error (Printf.sprintf "in_flight out of range: %d" inflight)
          else if Flow_control.unmatched_releases st.fc > 0 then
            Error "release without matching admit"
          else if inflight <> st.sh_admitted - st.sh_released then
            Error
              (Printf.sprintf "credits leak: in_flight=%d admitted=%d released=%d"
                 inflight st.sh_admitted st.sh_released)
          else Ok ());
      final =
        (fun st ->
          if Flow_control.in_flight st.fc <> 0 then Error "credits not all returned"
          else Ok ());
    }

(* ---------------- Channel push/pop/close ---------------- *)

type channel_broken = Pop_ignores_close

type chan_state = {
  ch : string Channel.t;
  mutable accepted : string list; (* reversed *)
  mutable popped : string list; (* reversed *)
  mutable chan_closed : bool;
}

let chan_producer name items ~close_after =
  let rec go = function
    | [] ->
      if close_after then
        Sched.step ~touches:[ "ch" ] (name ^ ":close") (fun st ->
            Channel.close st.ch;
            st.chan_closed <- true;
            Sched.stop)
      else Sched.step (name ^ ":done") (fun _ -> Sched.stop)
    | item :: rest ->
      Sched.step ~touches:[ "ch" ]
        (Printf.sprintf "%s:push %s" name item)
        (fun st ->
          if Channel.try_push st.ch item then st.accepted <- item :: st.accepted;
          Sched.Continue (go rest))
  in
  go items

let chan_consumer ~sees_close =
  let rec pop () =
    Sched.step ~touches:[ "ch" ] "pop"
      ~enabled:(fun st ->
        Channel.length st.ch > 0 || (sees_close && st.chan_closed))
      (fun st ->
        match Channel.try_pop st.ch with
        | Some v ->
          st.popped <- v :: st.popped;
          Sched.Continue (pop ())
        | None -> Sched.stop)
  in
  pop ()

let channel ?broken () =
  let sees_close = broken <> Some Pop_ignores_close in
  Pack
    {
      Sched.model_name =
        (if sees_close then "channel" else "channel/pop-ignores-close");
      init =
        (fun () ->
          { ch = Channel.create (); accepted = []; popped = []; chan_closed = false });
      threads =
        [
          { Sched.name = "producer1"; entry = chan_producer "p1" [ "a1"; "a2" ] ~close_after:false };
          { Sched.name = "producer2"; entry = chan_producer "p2" [ "b1" ] ~close_after:true };
          { Sched.name = "consumer"; entry = chan_consumer ~sees_close };
        ];
      invariant =
        (fun st ->
          let accepted = List.rev st.accepted and popped = List.rev st.popped in
          if List.exists (fun v -> not (List.mem v accepted)) popped then
            Error "popped an element never accepted"
          else begin
            (* FIFO per producer. *)
            let sub prefix l = List.filter (fun v -> List.mem v l) prefix in
            let p1_popped = List.filter (fun v -> v.[0] = 'a') popped in
            if p1_popped <> sub [ "a1"; "a2" ] p1_popped then Error "producer1 order inverted"
            else Ok ()
          end);
      final =
        (fun st ->
          let accepted = List.sort compare st.accepted
          and popped = List.sort compare st.popped in
          if accepted <> popped then
            Error
              (Printf.sprintf "lost elements: accepted {%s}, popped {%s}"
                 (String.concat "," accepted) (String.concat "," popped))
          else Ok ());
    }

(* ---------------- Promise resolve/await ---------------- *)

type promise_broken = Two_resolvers

type prom_state = { p : int Promise.t; mutable observed : int list }

let prom_resolver name =
  Sched.step ~touches:[ "p" ] (name ^ ":fulfil") (fun st ->
      Promise.fulfil st.p 42;
      Sched.stop)

let prom_awaiter () =
  Sched.step ~touches:[ "p" ] "await"
    ~enabled:(fun st -> Promise.peek st.p <> None)
    (fun st ->
      (match Promise.peek st.p with
      | Some v -> st.observed <- v :: st.observed
      | None -> failwith "await ran while empty");
      Sched.stop)

let promise ?broken () =
  let threads =
    [
      { Sched.name = "resolver"; entry = prom_resolver "r1" };
      { Sched.name = "awaiter"; entry = prom_awaiter () };
    ]
    @
    if broken = Some Two_resolvers then
      [ { Sched.name = "resolver2"; entry = prom_resolver "r2" } ]
    else []
  in
  Pack
    {
      Sched.model_name =
        (if broken = Some Two_resolvers then "promise/two-resolvers" else "promise");
      init = (fun () -> { p = Promise.create (); observed = [] });
      threads;
      invariant =
        (fun st ->
          if List.exists (fun v -> v <> 42) st.observed then
            Error "observed a value never resolved"
          else Ok ());
      final =
        (fun st -> if st.observed = [] then Error "awaiter never woke" else Ok ());
    }

(* ---------------- Crew policy core ---------------- *)

module Crew_core = C4_crew.Core
module Crew_config = C4_crew.Config
module Decision = C4_crew.Decision

type crew_broken = Strict_release

type crew_state = {
  core : Crew_core.t;
  mutable crew_now : float;
  crew_out : (int, int) Hashtbl.t; (* partition -> outstanding (shadow) *)
  crew_owner : (int, int) Hashtbl.t; (* partition -> pinned worker (shadow) *)
  mutable crew_pending : int list; (* partitions awaiting release, in order *)
  mutable crew_admitted : int;
  mutable crew_released : int;
  mutable crew_orphans : int;
  mutable crew_cancelled : int; (* outstanding cancelled by stale sweeps *)
  mutable crew_absorbed : int list; (* write ids absorbed, in order *)
  mutable crew_closed : int list option; (* ids close_window answered *)
  mutable crew_admit_done : bool;
}

let crew_cfg =
  {
    Crew_config.default with
    Crew_config.ewt_capacity = 8;
    pin_fallback = Crew_config.Static;
    compaction = Some Crew_config.default_compaction;
    ewt_ttl = Some { Crew_config.ttl = 1.5; sweep_interval = 1.0 };
  }

(* Admissions run through the real [Core.admit_write]; the shadow tables
   record what the core promised (owner, outstanding) so the invariant
   can hold it to that. *)
let crew_admitter partitions =
  let rec go = function
    | [] -> assert false
    | partition :: rest ->
      Sched.step ~touches:[ "core" ]
        (Printf.sprintf "admit p%d" partition)
        (fun st ->
          st.crew_now <- st.crew_now +. 0.1;
          (match
             Crew_core.admit_write st.core ~partition ~now:st.crew_now ~pick:`Static
           with
          | Crew_core.Admitted { worker; fresh } ->
            if fresh then Hashtbl.replace st.crew_owner partition worker;
            Hashtbl.replace st.crew_out partition
              (shadow_get st.crew_out partition + 1);
            st.crew_pending <- st.crew_pending @ [ partition ];
            st.crew_admitted <- st.crew_admitted + 1
          | Crew_core.No_slot | Crew_core.Rejected _ -> ());
          if rest = [] then begin
            st.crew_admit_done <- true;
            Sched.stop
          end
          else Sched.Continue (go rest))
  in
  go partitions

let crew_releaser ~strict =
  let rec release () =
    Sched.step ~touches:[ "core" ] "write_done"
      ~enabled:(fun st -> st.crew_pending <> [] || st.crew_admit_done)
      (fun st ->
        st.crew_now <- st.crew_now +. 0.1;
        match st.crew_pending with
        | [] -> Sched.stop
        | partition :: rest ->
          st.crew_pending <- rest;
          (* With [strict], this is the pre-resilience protocol: it
             raises if a TTL sweep already reclaimed the pin. *)
          Crew_core.write_done ~strict st.core ~partition;
          if shadow_get st.crew_out partition > 0 then begin
            let left = shadow_get st.crew_out partition - 1 in
            if left = 0 then begin
              Hashtbl.remove st.crew_out partition;
              Hashtbl.remove st.crew_owner partition
            end
            else Hashtbl.replace st.crew_out partition left;
            st.crew_released <- st.crew_released + 1
          end
          else st.crew_orphans <- st.crew_orphans + 1;
          Sched.Continue (release ()))
  in
  release ()

let crew_sweeper () =
  Sched.step ~touches:[ "core" ] "sweep_stale" (fun st ->
      (* Jump past the TTL so every idle pin is reclaimable. *)
      st.crew_now <- st.crew_now +. 10.0;
      let evicted = Crew_core.sweep_stale st.core ~now:st.crew_now in
      List.iter
        (fun p ->
          st.crew_cancelled <- st.crew_cancelled + shadow_get st.crew_out p;
          Hashtbl.remove st.crew_out p;
          Hashtbl.remove st.crew_owner p)
        evicted;
      Sched.stop)

(* A compaction window on worker 0 riding the same core instance the
   sweeps hit: open, absorb three writes, close — the close must answer
   exactly the absorbed ids no matter how sweeps interleave. *)
let crew_windower () =
  let close =
    Sched.step ~touches:[ "core" ] "window_close" (fun st ->
        st.crew_now <- st.crew_now +. 0.1;
        (match Crew_core.close_window st.core ~worker:0 ~now:st.crew_now with
        | Some closed ->
          st.crew_closed <-
            Some
              (List.map
                 (fun p -> p.C4_kvs.Compaction_log.request_id)
                 closed.C4_kvs.Compaction_log.writes)
        | None -> ());
        Sched.stop)
  in
  let rec absorb i =
    Sched.step ~touches:[ "core" ]
      (Printf.sprintf "absorb/%d" i)
      (fun st ->
        st.crew_now <- st.crew_now +. 0.1;
        Crew_core.absorb st.core ~worker:0 ~key:7 ~id:i ~now:st.crew_now;
        st.crew_absorbed <- st.crew_absorbed @ [ i ];
        if i < 2 then Sched.Continue (absorb (i + 1)) else Sched.Continue close)
  in
  Sched.step ~touches:[ "core" ] "window_open" (fun st ->
      st.crew_now <- st.crew_now +. 0.1;
      ignore
        (Crew_core.open_window st.core ~worker:0 ~key:7 ~now:st.crew_now
           ~arrival:st.crew_now ~mean_service:1.0);
      Sched.Continue (absorb 0))

let crew_core ?broken () =
  let strict = broken = Some Strict_release in
  Pack
    {
      Sched.model_name = (if strict then "crew-core/strict-release" else "crew-core");
      init =
        (fun () ->
          {
            core =
              Crew_core.create ~cfg:crew_cfg ~n_workers:2 ~n_partitions:4 ();
            crew_now = 0.0;
            crew_out = Hashtbl.create 8;
            crew_owner = Hashtbl.create 8;
            crew_pending = [];
            crew_admitted = 0;
            crew_released = 0;
            crew_orphans = 0;
            crew_cancelled = 0;
            crew_absorbed = [];
            crew_closed = None;
            crew_admit_done = false;
          });
      threads =
        [
          { Sched.name = "admitter"; entry = crew_admitter [ 0; 1; 0 ] };
          { Sched.name = "releaser"; entry = crew_releaser ~strict };
          { Sched.name = "sweeper"; entry = crew_sweeper () };
          { Sched.name = "windower"; entry = crew_windower () };
        ];
      invariant =
        (fun st ->
          let bad = ref None in
          Hashtbl.iter
            (fun p out ->
              (* CREW: while (un-evicted) writes are outstanding, the
                 routing view must keep pointing at the pinning worker. *)
              if out > 0 then begin
                let owner = Hashtbl.find st.crew_owner p in
                if Crew_core.route_owner st.core ~partition:p <> owner then
                  bad :=
                    Some (Printf.sprintf "partition %d remapped mid-flight" p)
                else if Crew_core.ewt_outstanding st.core ~partition:p <> out
                then
                  bad :=
                    Some
                      (Printf.sprintf "partition %d: core outstanding %d, shadow %d" p
                         (Crew_core.ewt_outstanding st.core ~partition:p)
                         out)
              end)
            st.crew_out;
          match !bad with
          | Some msg -> Error msg
          | None ->
            if Crew_core.ewt_occupancy st.core <> Hashtbl.length st.crew_out then
              Error
                (Printf.sprintf "occupancy %d, shadow has %d pinned partitions"
                   (Crew_core.ewt_occupancy st.core)
                   (Hashtbl.length st.crew_out))
            else begin
              (* Credit conservation: every admitted write is exactly one
                 of outstanding / released / cancelled-by-sweep. *)
              let outstanding =
                Hashtbl.fold (fun _ out acc -> acc + out) st.crew_out 0
              in
              if
                st.crew_admitted
                <> outstanding + st.crew_released + st.crew_cancelled
              then
                Error
                  (Printf.sprintf
                     "credits leak: admitted=%d outstanding=%d released=%d cancelled=%d"
                     st.crew_admitted outstanding st.crew_released st.crew_cancelled)
              else Ok ()
            end);
      final =
        (fun st ->
          if not st.crew_admit_done then Error "admitter did not finish"
          else if st.crew_pending <> [] then Error "releases still pending"
          else
            match st.crew_closed with
            | None -> Error "window never closed"
            | Some ids when ids <> st.crew_absorbed ->
              Error
                (Printf.sprintf "window answered {%s}, absorbed {%s}"
                   (String.concat "," (List.map string_of_int ids))
                   (String.concat "," (List.map string_of_int st.crew_absorbed)))
            | Some _ -> Ok ());
    }

(* ---------------- Compaction window ---------------- *)

type compaction_broken = Early_ack

type comp_state = {
  mutable store : int;
  mutable pending : (int * float) list; (* (value, invoked), submission order *)
  hist : History.op list ref;
  mutable comp_clock : float;
  mutable writers_left : int;
}

let comp_writer ~early_ack i v =
  Sched.step ~touches:[ "window" ]
    (Printf.sprintf "submit/%d" i)
    (fun st ->
      st.comp_clock <- st.comp_clock +. 1.0;
      let invoked = st.comp_clock in
      st.pending <- st.pending @ [ (v, invoked) ];
      st.writers_left <- st.writers_left - 1;
      if early_ack then
        (* The bug C-4's deferred responses exist to avoid: acknowledge
           at enqueue, before the combined update reaches the store. *)
        st.hist :=
          History.set ~client:(Printf.sprintf "w%d" i) ~value:v ~invoked
            ~responded:(invoked +. 0.25)
          :: !(st.hist);
      Sched.stop)

let comp_compactor ~early_ack =
  let rec close () =
    Sched.step ~touches:[ "window"; "store" ] "window_close"
      ~enabled:(fun st -> st.pending <> [] || st.writers_left = 0)
      (fun st ->
        st.comp_clock <- st.comp_clock +. 1.0;
        match st.pending with
        | [] -> Sched.stop
        | ps ->
          (* One combined update: last write wins... *)
          let value, _ = List.nth ps (List.length ps - 1) in
          st.store <- value;
          st.comp_clock <- st.comp_clock +. 1.0;
          (* ...and only now, with the window closed and the store
             updated, do the deferred responses go out. *)
          if not early_ack then
            List.iteri
              (fun j (v, invoked) ->
                st.hist :=
                  History.set ~client:(Printf.sprintf "w%d" j) ~value:v ~invoked
                    ~responded:st.comp_clock
                  :: !(st.hist))
              ps;
          st.pending <- [];
          Sched.Continue (close ()))
  in
  close ()

let comp_reader () =
  Sched.step ~touches:[ "store" ] "read" (fun st ->
      st.comp_clock <- st.comp_clock +. 1.0;
      st.hist :=
        History.get ~client:"r" ~value:st.store ~invoked:st.comp_clock
          ~responded:(st.comp_clock +. 0.5)
        :: !(st.hist);
      Sched.stop)

let compaction ?broken () =
  let early_ack = broken = Some Early_ack in
  let hist = ref [] in
  let model =
    {
      Sched.model_name = (if early_ack then "compaction/early-ack" else "compaction");
      init =
        (fun () ->
          hist := [];
          { store = 0; pending = []; hist; comp_clock = 0.0; writers_left = 2 });
      threads =
        [
          { Sched.name = "writer1"; entry = comp_writer ~early_ack 1 1 };
          { Sched.name = "writer2"; entry = comp_writer ~early_ack 2 2 };
          { Sched.name = "compactor"; entry = comp_compactor ~early_ack };
          { Sched.name = "reader"; entry = comp_reader () };
        ];
      invariant = (fun _ -> Ok ());
      final =
        (fun st ->
          (* Every complete schedule's recorded history goes through the
             linearizability checker — the explorer/checker bridge. *)
          let h = History.of_ops (List.rev !(st.hist)) in
          if Lin.is_linearizable ~initial:0 h then Ok ()
          else
            Error
              (Format.asprintf "history not linearizable:@.%a" History.pp h));
    }
  in
  (Pack model, hist)
