(** DPOR-lite systematic interleaving explorer.

    A {e model program} is a small set of threads, each a chain of
    atomic steps over a shared state, plus an invariant checked after
    {e every} step of {e every} explored interleaving and a final check
    run at the end of each complete schedule. The explorer enumerates
    schedules depth-first by re-executing prefixes from a fresh state
    (stateless, CHESS-style), pruning with sleep sets (two steps are
    independent when their declared [touches] sets are disjoint) and an
    optional preemption bound.

    Any of the following is a counterexample, reported with the exact
    schedule that produced it so it can be replayed: an invariant
    failure, a final-check failure, a step raising an exception (e.g.
    the seqlock's CREW [failwith]), or a deadlock (threads pending but
    none enabled — a lost wakeup). *)

type 'st progress = Continue of 'st step | Done

and 'st step = {
  label : string;
  touches : string list;
      (** Shared objects this step may touch; used for independence. An
          empty list means "touches nothing" (independent of all). *)
  enabled : 'st -> bool;
      (** Guard evaluated without side effects; a disabled step blocks
          its thread until another thread's step re-enables it. *)
  run : 'st -> 'st progress;
}

type 'st thread = { name : string; entry : 'st step }

type 'st model = {
  model_name : string;
  init : unit -> 'st;
  threads : 'st thread list;
  invariant : 'st -> (unit, string) result;
  final : 'st -> (unit, string) result;
}

(** [step label run] with [touches] defaulting to [[]] and [enabled]
    to always-true. *)
val step :
  ?touches:string list ->
  ?enabled:('st -> bool) ->
  string ->
  ('st -> 'st progress) ->
  'st step

(** Alias for [Done], for readable model code. *)
val stop : 'st progress

type violation = {
  schedule : int list;  (** thread indices, in execution order *)
  trace : (int * string) list;  (** (thread, step label) actually run *)
  reason : string;
}

type outcome = {
  schedules : int;  (** complete schedules fully checked *)
  steps_executed : int;
  complete : bool;
      (** true iff the space was exhausted: no violation, no preemption-
          bound pruning, no schedule-cap truncation *)
  violation : violation option;
}

val pp_violation : Format.formatter -> violation -> unit

val explore : ?preemption_bound:int -> ?max_schedules:int -> 'st model -> outcome

(** Re-execute one schedule; [Error] reproduces the violation (including
    deadlock, when the schedule ends with pending threads and nothing
    enabled). *)
val replay : 'st model -> int list -> (unit, violation) result
