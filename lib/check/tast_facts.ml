(* Typed-AST fact extraction — the front half of the static analyzer.
   Loads the .cmt files dune already produces (compiled with -bin-annot)
   and walks them with [Tast_iterator], flattening each structure-level
   value binding into one [func] fact: the identifiers it references
   (the call-graph edges), the [with_lock] acquisition sites with their
   lexical nesting, the [Domain.spawn] / [Thread.create] sites, and the
   mutable-state writes with the innermost lock held at each.

   Identity conventions (all heuristic, all deterministic):
   - Function names are [Unit.path], e.g. [C4_runtime.Server.stop];
     dune's name mangling ([C4_runtime__Server]) is normalized to dots.
   - A lock is named by the record field or identifier passed to
     [with_lock], qualified by the defining unit: [t.route_lock] inside
     [C4_runtime.Server] becomes [C4_runtime.Server.route_lock]. Two
     distinct mutexes stored in same-named fields of one module
     collapse into one node — a sound over-approximation for
     lock-ORDER purposes (it can only add edges, never hide them),
     though the collapsed self-edge case is reported specially.
   - Any call to a function whose last path component is [with_lock]
     and whose first two positional arguments are present counts as an
     acquisition: this matches [Runtime.Sync.with_lock] and the local
     clones in layers below the runtime (lib/wal). *)

type call = {
  callee : string;  (** normalized target path, e.g. [Unix.fsync] *)
  c_line : int;
  c_under : string option;  (** innermost lock held at the call site *)
}

type acq = {
  a_lock : string;  (** qualified lock name *)
  a_line : int;
  a_under : string option;  (** innermost lock already held, if any *)
}

type mutation = {
  m_what : string;  (** [field f] or [ref r] *)
  m_line : int;
  m_under : string option;
}

type spawn_kind = Domain_spawn | Thread_create

type spawn = {
  s_kind : spawn_kind;
  s_line : int;
  s_target : string;  (** function name (or synthetic closure name) *)
}

type func = {
  fn_name : string;
  fn_line : int;
  fn_spawn_body : bool;
      (** synthetic node for a literal closure passed to [Domain.spawn] *)
  calls : call list;
  acquires : acq list;
  mutations : mutation list;
  spawns : spawn list;
}

type unit_facts = {
  uf_unit : string;  (** normalized module name, e.g. [C4_runtime.Server] *)
  uf_source : string;  (** source path as recorded by the compiler *)
  uf_funcs : func list;
  uf_aliases : (string * string) list;
      (** local [module M = Other.Path] renamings, alias -> target;
          needed to resolve [M.f] call targets across units *)
}

(* [C4_runtime__Server] -> [C4_runtime.Server]; a trailing [__] alias
   unit ([C4_runtime__]) normalizes to its bare library name. *)
let normalize_name s =
  let parts = String.split_on_char '.' s in
  let parts =
    List.concat_map
      (fun p ->
        (* split on "__" *)
        let out = ref [] and buf = Buffer.create (String.length p) in
        let i = ref 0 in
        let n = String.length p in
        while !i < n do
          if !i + 1 < n && p.[!i] = '_' && p.[!i + 1] = '_' then begin
            out := Buffer.contents buf :: !out;
            Buffer.clear buf;
            i := !i + 2
          end
          else begin
            Buffer.add_char buf p.[!i];
            incr i
          end
        done;
        out := Buffer.contents buf :: !out;
        List.rev !out)
      parts
  in
  String.concat "." (List.filter (fun p -> p <> "") parts)

let last_component s =
  match List.rev (String.split_on_char '.' s) with x :: _ -> x | [] -> s

(* ---------------- traversal state ---------------- *)

type frame = {
  f_name : string;
  f_line : int;
  f_spawn_body : bool;
  mutable f_calls : call list;
  mutable f_acquires : acq list;
  mutable f_mutations : mutation list;
  mutable f_spawns : spawn list;
  f_bound : (string, unit) Hashtbl.t;
      (* identifiers bound inside this frame (params, lets): a [:=] to a
         ref NOT in here is a captured-ref mutation *)
}

type state = {
  unit_name : string;
  mutable modpath : string list;  (* submodule nesting, outermost first *)
  mutable frames : frame list;  (* innermost first *)
  mutable locks : string list;  (* innermost first *)
  mutable funcs : func list;
  mutable aliases : (string * string) list;
  mutable anon : int;  (* synthetic closure counter *)
}

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let cur_frame st = match st.frames with f :: _ -> Some f | [] -> None
let cur_lock st = match st.locks with l :: _ -> Some l | [] -> None

let push_frame st ~name ~line ~spawn_body =
  let f =
    {
      f_name = name;
      f_line = line;
      f_spawn_body = spawn_body;
      f_calls = [];
      f_acquires = [];
      f_mutations = [];
      f_spawns = [];
      f_bound = Hashtbl.create 16;
    }
  in
  st.frames <- f :: st.frames;
  f

let pop_frame st =
  match st.frames with
  | f :: rest ->
    st.frames <- rest;
    st.funcs <-
      {
        fn_name = f.f_name;
        fn_line = f.f_line;
        fn_spawn_body = f.f_spawn_body;
        calls = List.rev f.f_calls;
        acquires = List.rev f.f_acquires;
        mutations = List.rev f.f_mutations;
        spawns = List.rev f.f_spawns;
      }
      :: st.funcs
  | [] -> ()

let record_call st ~callee ~line =
  match cur_frame st with
  | None -> ()
  | Some f -> f.f_calls <- { callee; c_line = line; c_under = cur_lock st } :: f.f_calls

let record_acq st ~lock ~line =
  match cur_frame st with
  | None -> ()
  | Some f ->
    f.f_acquires <- { a_lock = lock; a_line = line; a_under = cur_lock st } :: f.f_acquires

let record_mutation st ~what ~line =
  match cur_frame st with
  | None -> ()
  | Some f ->
    f.f_mutations <- { m_what = what; m_line = line; m_under = cur_lock st } :: f.f_mutations

let record_spawn st ~kind ~line ~target =
  match cur_frame st with
  | None -> ()
  | Some f ->
    f.f_spawns <- { s_kind = kind; s_line = line; s_target = target } :: f.f_spawns

let qualified st name =
  String.concat "." ((st.unit_name :: List.rev st.modpath) @ [ name ])

(* Name of the mutex expression at a [with_lock] site. *)
let lock_name_of_expr st (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_field (_, _, lbl) -> qualified st lbl.Types.lbl_name
  | Typedtree.Texp_ident (p, _, _) -> qualified st (last_component (Path.name p))
  | _ -> qualified st (Printf.sprintf "<lock@%d>" (line_of e.Typedtree.exp_loc))

let is_with_lock name = last_component name = "with_lock"

let ends_with ~suffix name =
  name = suffix
  || String.length name > String.length suffix + 1
     && String.sub name (String.length name - String.length suffix - 1)
          (String.length suffix + 1)
        = "." ^ suffix

let is_domain_spawn name = ends_with ~suffix:"Domain.spawn" name
let is_thread_create name = ends_with ~suffix:"Thread.create" name

let ref_assign_ops = [ ":="; "incr"; "decr" ]

let is_ref_assign name =
  List.exists
    (fun op -> name = op || name = "Stdlib." ^ op || ends_with ~suffix:("Stdlib." ^ op) name)
    ref_assign_ops

(* ---------------- the iterator ---------------- *)

let iterate st (str : Typedtree.structure) =
  let super = Tast_iterator.default_iterator in
  (* [pat_bound_idents] rather than matching [Tpat_var] directly: the
     constructor's arity changed in 5.2 (it gained a Uid.t), the
     helper's signature did not. Re-recording in subpatterns is
     harmless — [f_bound] is a set. *)
  let pat : 'k. Tast_iterator.iterator -> 'k Typedtree.general_pattern -> unit =
   fun (type k) it (p : k Typedtree.general_pattern) ->
    (match cur_frame st with
    | Some f ->
      List.iter
        (fun id -> Hashtbl.replace f.f_bound (Ident.name id) ())
        (Typedtree.pat_bound_idents p)
    | None -> ());
    super.Tast_iterator.pat it p
  in
  let structure_item it (si : Typedtree.structure_item) =
    match si.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          (* Binding name via [pat_bound_idents] (version-stable, see
             [pat] above); a module-level binding pattern is almost
             always a single variable. *)
          let name, line =
            match Typedtree.pat_bound_idents vb.Typedtree.vb_pat with
            | [ id ] -> (Ident.name id, line_of vb.Typedtree.vb_pat.Typedtree.pat_loc)
            | _ -> ("<pat>", line_of vb.Typedtree.vb_loc)
          in
          (* Only open a fresh frame for module-level bindings: nested
             [Tstr_value] (inside a local module in a function) keeps
             attributing to the enclosing function. *)
          if st.frames = [] then begin
            let _f = push_frame st ~name:(qualified st name) ~line ~spawn_body:false in
            it.Tast_iterator.expr it vb.Typedtree.vb_expr;
            pop_frame st
          end
          else it.Tast_iterator.expr it vb.Typedtree.vb_expr)
        vbs
    | Typedtree.Tstr_module mb -> (
      let name =
        match mb.Typedtree.mb_id with
        | Some id -> Ident.name id
        | None -> "_"
      in
      match mb.Typedtree.mb_expr.Typedtree.mod_desc with
      | Typedtree.Tmod_ident (p, _) ->
        (* [module M = Other.Path] — record the renaming so call targets
           through the alias resolve to the real unit. *)
        st.aliases <- (name, normalize_name (Path.name p)) :: st.aliases
      | _ ->
        st.modpath <- name :: st.modpath;
        super.Tast_iterator.structure_item it si;
        st.modpath <- List.tl st.modpath)
    | _ -> super.Tast_iterator.structure_item it si
  in
  let expr it (e : Typedtree.expression) =
    let line = line_of e.Typedtree.exp_loc in
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) ->
      record_call st ~callee:(normalize_name (Path.name p)) ~line
    | Typedtree.Texp_setfield (r, _, lbl, v) ->
      record_mutation st ~what:("field " ^ lbl.Types.lbl_name) ~line;
      it.Tast_iterator.expr it r;
      it.Tast_iterator.expr it v
    | Typedtree.Texp_apply (fexp, args) -> (
      let fname =
        match fexp.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> Some (normalize_name (Path.name p))
        | _ -> None
      in
      let positional =
        List.filter_map
          (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
          args
      in
      match fname with
      | Some name when is_with_lock name -> (
        record_call st ~callee:name ~line;
        match positional with
        | lock_e :: body :: rest ->
          let lock = lock_name_of_expr st lock_e in
          record_acq st ~lock ~line;
          it.Tast_iterator.expr it lock_e;
          st.locks <- lock :: st.locks;
          it.Tast_iterator.expr it body;
          st.locks <- List.tl st.locks;
          List.iter (it.Tast_iterator.expr it) rest
        | _ -> List.iter (fun (_, a) -> Option.iter (it.Tast_iterator.expr it) a) args)
      | Some name when is_domain_spawn name || is_thread_create name -> (
        let kind = if is_domain_spawn name then Domain_spawn else Thread_create in
        record_call st ~callee:name ~line;
        match positional with
        | body :: rest ->
          (let enclosing =
             match cur_frame st with Some f -> f.f_name | None -> qualified st "<top>"
           in
           match body.Typedtree.exp_desc with
           | Typedtree.Texp_function _ ->
             (* Literal closure: give it a synthetic node of its own so
                the rules can treat it as a worker entry point. *)
             st.anon <- st.anon + 1;
             let sname = Printf.sprintf "%s.<spawn:%d>" enclosing line in
             record_spawn st ~kind ~line ~target:sname;
             push_frame st ~name:sname ~line ~spawn_body:(kind = Domain_spawn)
             |> ignore;
             it.Tast_iterator.expr it body;
             pop_frame st
           | Typedtree.Texp_ident (p, _, _) ->
             record_spawn st ~kind ~line ~target:(normalize_name (Path.name p))
           | Typedtree.Texp_apply (g, gargs) ->
             (* Partial application: [Domain.spawn (run_worker t w)].
                The spawned computation is [g]; its closure arguments
                are evaluated here. Deliberately NOT recorded as a call
                edge — the body runs on the new domain/thread, so lock
                contexts must not propagate into it. *)
             (match g.Typedtree.exp_desc with
             | Typedtree.Texp_ident (p, _, _) ->
               record_spawn st ~kind ~line ~target:(normalize_name (Path.name p))
             | _ ->
               record_spawn st ~kind ~line ~target:"<unknown>";
               it.Tast_iterator.expr it g);
             List.iter (fun (_, a) -> Option.iter (it.Tast_iterator.expr it) a) gargs
           | _ ->
             record_spawn st ~kind ~line ~target:"<unknown>";
             it.Tast_iterator.expr it body);
          List.iter (it.Tast_iterator.expr it) rest
        | [] -> ())
      | Some name when is_ref_assign name ->
        record_call st ~callee:name ~line;
        (match positional with
        | { Typedtree.exp_desc = Typedtree.Texp_ident (p, _, _); _ } :: _ ->
          let r = last_component (Path.name p) in
          let bound =
            match cur_frame st with
            | Some f -> Hashtbl.mem f.f_bound r
            | None -> true
          in
          if not bound then record_mutation st ~what:("ref " ^ r) ~line
        | _ -> ());
        List.iter (fun (_, a) -> Option.iter (it.Tast_iterator.expr it) a) args
      | _ ->
        it.Tast_iterator.expr it fexp;
        List.iter (fun (_, a) -> Option.iter (it.Tast_iterator.expr it) a) args)
    | _ -> super.Tast_iterator.expr it e
  in
  let it = { super with Tast_iterator.structure_item; expr; pat } in
  it.Tast_iterator.structure it str

(* ---------------- entry point ---------------- *)

let of_structure ~unit_name ~source str =
  let st =
    {
      unit_name;
      modpath = [];
      frames = [];
      locks = [];
      funcs = [];
      aliases = [];
      anon = 0;
    }
  in
  iterate st str;
  {
    uf_unit = unit_name;
    uf_source = source;
    uf_funcs = List.rev st.funcs;
    uf_aliases = List.rev st.aliases;
  }

let load path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | infos -> (
    match infos.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      let unit_name = normalize_name infos.Cmt_format.cmt_modname in
      let source =
        match infos.Cmt_format.cmt_sourcefile with Some s -> s | None -> path
      in
      Some (of_structure ~unit_name ~source str)
    | _ -> None)
