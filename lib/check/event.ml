type access = Read | Write

type t =
  | Plain of { thread : int; loc : int; access : access }
  | Atomic_op of { thread : int; loc : int; access : access }
  | Acquire of { thread : int; lock : int }
  | Release of { thread : int; lock : int }
  | Fork of { parent : int; child : int }
  | Join of { parent : int; child : int }

type names = {
  locs : (string, int) Hashtbl.t;
  mutable loc_names : string list; (* reversed *)
  locks : (string, int) Hashtbl.t;
  mutable lock_names : string list; (* reversed *)
}

let names () =
  { locs = Hashtbl.create 64; loc_names = []; locks = Hashtbl.create 16; lock_names = [] }

let loc_id t name =
  match Hashtbl.find_opt t.locs name with
  | Some id -> id
  | None ->
    let id = Hashtbl.length t.locs in
    Hashtbl.replace t.locs name id;
    t.loc_names <- name :: t.loc_names;
    id

let lock_id t name =
  match Hashtbl.find_opt t.locks name with
  | Some id -> id
  | None ->
    let id = Hashtbl.length t.locks in
    Hashtbl.replace t.locks name id;
    t.lock_names <- name :: t.lock_names;
    id

let nth_name rev_names id =
  let arr = Array.of_list (List.rev rev_names) in
  if id >= 0 && id < Array.length arr then arr.(id) else Printf.sprintf "#%d" id

let loc_name t id = nth_name t.loc_names id
let lock_name t id = nth_name t.lock_names id

let thread_of = function
  | Plain { thread; _ } | Atomic_op { thread; _ } -> thread
  | Acquire { thread; _ } | Release { thread; _ } -> thread
  | Fork { parent; _ } | Join { parent; _ } -> parent

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"

let pp ?names:n ppf e =
  let loc id = match n with Some n -> loc_name n id | None -> Printf.sprintf "loc#%d" id in
  let lock id = match n with Some n -> lock_name n id | None -> Printf.sprintf "lock#%d" id in
  match e with
  | Plain { thread; loc = l; access } ->
    Format.fprintf ppf "T%d %a %s" thread pp_access access (loc l)
  | Atomic_op { thread; loc = l; access } ->
    Format.fprintf ppf "T%d atomic-%a %s" thread pp_access access (loc l)
  | Acquire { thread; lock = m } -> Format.fprintf ppf "T%d acquire %s" thread (lock m)
  | Release { thread; lock = m } -> Format.fprintf ppf "T%d release %s" thread (lock m)
  | Fork { parent; child } -> Format.fprintf ppf "T%d fork T%d" parent child
  | Join { parent; child } -> Format.fprintf ppf "T%d join T%d" parent child
