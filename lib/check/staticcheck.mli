(** Driver for the typed-AST concurrency analyzer: [.cmt] discovery
    under the dune build tree, {!Rules} execution, [c4-lint: allow]
    pragma filtering, and baseline diffing.

    The baseline (checked in as [analysis-baseline.json]) lists known,
    reviewed findings by their stable line-free key; the analyzer then
    fails only on {e fresh} findings, so pre-existing design-intended
    blocking (a WAL syncer calling [fsync], workers parking on their
    channel) does not wedge CI while still catching regressions. *)

type report = {
  violations : Lint.violation list;  (** everything found, post-pragma *)
  fresh : Lint.violation list;  (** not covered by the baseline *)
  baselined : Lint.violation list;
  stale : string list;  (** baseline keys matching nothing — prunable *)
  units : int;  (** compilation units analyzed *)
}

(** Recursively collect [.cmt] files (descends into dot-directories —
    dune object dirs are [.libname.objs]). *)
val find_cmts : string list -> string list

(** Load facts, skipping dune-generated alias modules and duplicate
    unit names. *)
val load_units : string list -> Tast_facts.unit_facts list

(** Stable baseline key of a finding: [rule|file|message] (messages
    are line-free by construction in {!Rules}). *)
val key : Lint.violation -> string

(** Keys from a baseline document
    [{"findings": [{"rule","file","message","note"?}]}]. Missing file
    = empty baseline; malformed file raises. *)
val load_baseline : string -> string list

(** Run the analyzer over all [.cmt]s beneath the given directories.
    [is_crew_core] is passed through to {!Rules.run}. *)
val analyze :
  ?is_crew_core:(Tast_facts.unit_facts -> bool) ->
  ?baseline:string list ->
  string list ->
  report

val to_text : report -> string

(** Compact JSON via {!C4_obs.Json} — same violation object shape as
    [c4_lint --json]. *)
val to_json : report -> string
