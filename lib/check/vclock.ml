type t = int array

let create n =
  if n <= 0 then invalid_arg "Vclock.create";
  Array.make n 0

let size t = Array.length t
let copy = Array.copy

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Vclock.get";
  t.(i)

let tick t i =
  if i < 0 || i >= Array.length t then invalid_arg "Vclock.tick";
  t.(i) <- t.(i) + 1

let join dst src =
  if Array.length dst <> Array.length src then invalid_arg "Vclock.join";
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

let leq a b =
  if Array.length a <> Array.length b then invalid_arg "Vclock.leq";
  let ok = ref true in
  Array.iteri (fun i v -> if v > b.(i) then ok := false) a;
  !ok

let assign dst src =
  if Array.length dst <> Array.length src then invalid_arg "Vclock.assign";
  Array.blit src 0 dst 0 (Array.length src)

let to_string t =
  "[" ^ String.concat " " (Array.to_list (Array.map string_of_int t)) ^ "]"

let pp ppf t = Format.pp_print_string ppf (to_string t)
