(** Per-domain vector clocks for the happens-before race detector.
    Index [i] is domain [i]'s logical clock; [leq a b] is the
    happens-before partial order ([a] ≤ [b] pointwise). Clocks are
    mutable in place — [copy] before publishing one (e.g. into a lock's
    release clock). *)

type t

(** All-zero clock over [n] domains. *)
val create : int -> t

val size : t -> int
val copy : t -> t
val get : t -> int -> int

(** Advance domain [i]'s component by one. *)
val tick : t -> int -> unit

(** [join dst src] folds [src] into [dst] (pointwise max). *)
val join : t -> t -> unit

(** [leq a b]: every component of [a] is ≤ the same component of [b]. *)
val leq : t -> t -> bool

(** [assign dst src] overwrites [dst] with [src]'s components. *)
val assign : t -> t -> unit

val to_string : t -> string
val pp : Format.formatter -> t -> unit
