(* Lock-acquisition-order graph. A node is a lock (as named by
   {!Tast_facts}); an edge A -> B means "B is acquired while A is
   held" — either lexically (a nested [with_lock] in the same
   function) or interprocedurally (a function called under A
   transitively acquires B). Any cycle, including a self-edge (the
   repo's mutexes are not reentrant), is a potential deadlock; each
   cycle is reported with one witness acquisition path per edge. *)

type edge = {
  e_from : string;
  e_to : string;
  e_file : string;
  e_line : int;  (** the inner acquisition (or the call leading to it) *)
  e_via : string list;  (** call chain from the holding site, [] if lexical *)
}

type t = { edges : edge list }

let edges t = t.edges

let build (cg : Callgraph.t) =
  let locks_of = Callgraph.transitive_locks cg in
  let acc = ref [] in
  Callgraph.iter_funcs cg (fun fn (fc : Tast_facts.func) uf ->
      let file = uf.Tast_facts.uf_source in
      (* Lexical nesting: acquisition recorded with an outer lock held. *)
      List.iter
        (fun (a : Tast_facts.acq) ->
          match a.Tast_facts.a_under with
          | Some outer ->
            acc :=
              {
                e_from = outer;
                e_to = a.Tast_facts.a_lock;
                e_file = file;
                e_line = a.Tast_facts.a_line;
                e_via = [];
              }
              :: !acc
          | None -> ())
        fc.Tast_facts.acquires;
      (* Interprocedural: a call under a lock to a function that
         transitively acquires locks of its own. *)
      List.iter
        (fun (rc : Callgraph.resolved_call) ->
          match rc.Callgraph.rc_under with
          | None -> ()
          | Some outer ->
            List.iter
              (fun (w : Callgraph.witnessed) ->
                acc :=
                  {
                    e_from = outer;
                    e_to = w.Callgraph.w_item;
                    e_file = file;
                    e_line = rc.Callgraph.rc_line;
                    e_via = (rc.Callgraph.rc_callee :: w.Callgraph.w_chain) |> fun l ->
                            (* drop a duplicated head when the witness
                               chain already starts at the callee *)
                            (match l with
                            | x :: y :: rest when x = y -> x :: rest
                            | l -> l);
                  }
                  :: !acc)
              (locks_of rc.Callgraph.rc_callee))
        (Callgraph.callees cg fn);
      ignore fn);
  (* One representative edge per (from, to), smallest witness first —
     determinism matters for the baseline keys. *)
  let all = List.sort compare !acc in
  let seen = Hashtbl.create 64 in
  let edges =
    List.filter
      (fun e ->
        let k = (e.e_from, e.e_to) in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      all
  in
  { edges }

(* ---------------- cycle detection ----------------

   DFS with a three-colour marking over the edge list; every back edge
   closes a cycle, reported as the list of edges along the stack from
   the back edge's target. Deterministic: nodes and successors are
   visited in sorted order, and each cycle is canonicalized to start
   at its smallest lock, deduplicated on the node multiset. *)

let cycles t =
  let succ : (string, edge list) Hashtbl.t = Hashtbl.create 32 in
  let nodes = ref [] in
  List.iter
    (fun e ->
      if not (List.mem e.e_from !nodes) then nodes := e.e_from :: !nodes;
      if not (List.mem e.e_to !nodes) then nodes := e.e_to :: !nodes;
      Hashtbl.replace succ e.e_from
        (Option.value (Hashtbl.find_opt succ e.e_from) ~default:[] @ [ e ]))
    t.edges;
  let nodes = List.sort compare !nodes in
  let colour : (string, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 32 in
  let found = ref [] in
  let canon cycle =
    (* rotate so the lexicographically smallest e_from leads *)
    let n = List.length cycle in
    let rec rotate k l = if k = 0 then l else
      match l with [] -> [] | x :: rest -> rotate (k - 1) (rest @ [ x ])
    in
    let best = ref cycle in
    for k = 1 to n - 1 do
      let r = rotate k cycle in
      if List.map (fun e -> e.e_from) r < List.map (fun e -> e.e_from) !best then
        best := r
    done;
    !best
  in
  let key cycle = List.sort compare (List.map (fun e -> e.e_from) cycle) in
  let rec dfs stack node =
    Hashtbl.replace colour node `Grey;
    List.iter
      (fun e ->
        match Hashtbl.find_opt colour e.e_to with
        | Some `Grey ->
          (* Back edge: grey nodes are exactly the current DFS path, so
             the cycle is the stack segment from the edge leaving
             [e.e_to] down to [node], closed by [e]. [stack] is
             leaf-to-root (head = edge into [node]); prepending while
             walking it yields the segment in path order. *)
          let cycle =
            if e.e_from = e.e_to then [ e ]  (* self-deadlock *)
            else
              let rec collect acc = function
                | [] -> acc
                | x :: rest ->
                  if x.e_from = e.e_to then x :: acc
                  else collect (x :: acc) rest
              in
              collect [] stack @ [ e ]
          in
          let cycle = canon cycle in
          if not (List.exists (fun c -> key c = key cycle) !found) then
            found := !found @ [ cycle ]
        | Some `Black -> ()
        | None -> dfs (e :: stack) e.e_to)
      (Option.value (Hashtbl.find_opt succ node) ~default:[]);
    Hashtbl.replace colour node `Black
  in
  List.iter (fun n -> if not (Hashtbl.mem colour n) then dfs [] n) nodes;
  !found
