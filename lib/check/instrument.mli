(** Instrumented concurrency primitives.

    Code written against {!PRIMS} runs in two modes: {!Bare} is direct
    aliases to the stdlib / runtime primitives (zero overhead — the
    production configuration), while {!Traced} records every access,
    lock transition and fork/join into a {!Recorder} whose trace feeds
    the vector-clock {!Race} detector.

    Traced atomics and channels serialise "do the op + record it" under
    a private mutex so the recorded total order of synchronising events
    agrees with the real one — otherwise the detector could build a
    happens-before edge the execution never had and miss a race. That
    serialisation adds synchronisation the bare build does not have,
    which is why tracing is a testing mode, not a production one. *)

module Recorder : sig
  type t

  (** Create a recorder; the calling domain becomes thread 0. *)
  val create : unit -> t

  val names : t -> Event.names

  (** Recorded events, oldest first. *)
  val events : t -> Event.t list

  (** Run the race detector over everything recorded so far. *)
  val analyze : t -> Race.report

  (** Dense thread id of the calling domain (registering it if new). *)
  val tid : t -> int

  (** Append an event (thread-safe). *)
  val record : t -> Event.t -> unit

  (** Allocate a thread id without binding it — used by traced spawn. *)
  val fresh_tid : t -> int

  (** Bind the calling domain to a pre-allocated thread id. *)
  val bind_self : t -> int -> unit
end

module type PRIMS = sig
  (** Plain mutable cell — the only primitive whose accesses can race. *)
  module Ref : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
  end

  module Atomic : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
    val incr : int t -> unit
    val compare_and_set : 'a t -> 'a -> 'a -> bool
  end

  module Mutex : sig
    type t

    val create : ?name:string -> unit -> t

    (** Exception-safe critical section (the only way to lock). *)
    val with_lock : t -> (unit -> 'a) -> 'a
  end

  (** Nonblocking view of the runtime channel. *)
  module Channel : sig
    type 'a t

    val create : ?name:string -> unit -> 'a t
    val try_push : 'a t -> 'a -> bool
    val try_pop : 'a t -> 'a option
    val drain : 'a t -> 'a list
    val close : 'a t -> unit
    val length : 'a t -> int
  end

  (** Domain spawn/join, so the detector sees fork/join edges. *)
  module Domain_ : sig
    type 'a handle

    val spawn : (unit -> 'a) -> 'a handle
    val join : 'a handle -> 'a
  end
end

(** Production configuration: direct stdlib/runtime calls, no events. *)
module Bare : PRIMS

(** Recording configuration. *)
module Traced (_ : sig
  val recorder : Recorder.t
end) : PRIMS
