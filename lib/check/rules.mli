(** The four concurrency-discipline passes over {!Tast_facts} fact
    bases, emitting {!Lint.violation}s:

    - [lock-order]: cycle in the lock-acquisition-order graph
      ({!Lockgraph}), reported with one witness call chain per edge.
    - [blocking-in-worker]: a blocking primitive (parking [Unix] call,
      [Thread.join], [Domain.join], [Condition.wait], ...) reachable
      from a [Domain.spawn] / [Thread.create] entry point.
    - [blocking-under-lock]: a blocking primitive called — directly or
      transitively — while a [with_lock] lock is held.
      [Condition.wait] is exempt (it releases the mutex it is given).
    - [crew-core-purity]: a crew-core unit calls into [Unix] / [Sys] /
      I/O / [Random]; the d-CREW policy core takes effects only
      through its ENGINE signature.
    - [shared-mutable-escape]: a mutable field or captured ref written
      without a lock in code reachable (same unit, never under a lock)
      from a spawn entry point.

    Violation [message]s are line-free and deterministic, so
    [(rule, file, message)] is a stable baseline key. *)

val all_rules : string list

val is_blocking : string -> bool

(** [is_crew_core] defaults to units named [C4_crew] / [C4_crew.*];
    tests override it to point at fixture units. Result is sorted by
    (file, line, rule, message) and deduplicated on the stable key. *)
val run :
  ?is_crew_core:(Tast_facts.unit_facts -> bool) ->
  Tast_facts.unit_facts list -> Lint.violation list
