(* The four concurrency-discipline passes over the typed-AST fact
   base. Each emits {!Lint.violation}s whose [message] is line-free
   and deterministic, so [rule ^ file ^ message] is a stable baseline
   key that survives unrelated edits shifting line numbers. *)

module F = Tast_facts

(* ---------------- blocking-primitive classification ---------------- *)

(* Calls that can park the calling systhread/domain. Whitelist, not
   module-prefix: most of Unix is non-blocking (getters, conversions)
   and flagging those would bury the signal. *)
let blocking_set =
  [
    "Unix.sleep"; "Unix.sleepf"; "Unix.select"; "Unix.connect";
    "Unix.accept"; "Unix.read"; "Unix.write"; "Unix.single_write";
    "Unix.fsync"; "Unix.fdatasync"; "Unix.openfile"; "Unix.recv";
    "Unix.send"; "Unix.recvfrom"; "Unix.sendto"; "Unix.waitpid";
    "Unix.wait"; "Unix.system"; "Unix.lockf";
    "Thread.join"; "Thread.delay"; "Domain.join";
    "Condition.wait"; "Mutex.lock";
  ]

(* OCaml 5 records [Domain] / [Condition] / [Mutex] references as
   [Stdlib.Domain.join] etc. — compare modulo that prefix. *)
let strip_stdlib name =
  if String.starts_with ~prefix:"Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

let is_blocking name = List.mem (strip_stdlib name) blocking_set

(* Blocking reached transitively. [with_lock] helpers are excluded at
   the source: their [Mutex.lock] is the modelled acquisition itself,
   and propagating it would tag every locking function as blocking. *)
let transitive_blocking cg =
  Callgraph.transitive cg ~direct:(fun (fc : F.func) ->
      if F.last_component fc.F.fn_name = "with_lock" then []
      else
        List.filter_map
          (fun (c : F.call) ->
            if is_blocking c.F.callee then Some (c.F.callee, c.F.c_line)
            else None)
          fc.F.calls)

let via_suffix = function
  | [] -> ""
  | chain -> Printf.sprintf " (via %s)" (String.concat " -> " chain)

let v ~file ~line ~rule message =
  { Lint.file; line; rule; message }

(* ---------------- 1. lock-order ---------------- *)

let lock_order_pass lg =
  List.map
    (fun cycle ->
      let locks = List.map (fun e -> e.Lockgraph.e_from) cycle in
      let ring = String.concat " -> " (locks @ [ List.hd locks ]) in
      let detail =
        List.map
          (fun (e : Lockgraph.edge) ->
            Printf.sprintf "%s acquired under %s%s" e.Lockgraph.e_to
              e.Lockgraph.e_from
              (via_suffix e.Lockgraph.e_via))
          cycle
        |> String.concat "; "
      in
      let e0 = List.hd cycle in
      v ~file:e0.Lockgraph.e_file ~line:e0.Lockgraph.e_line ~rule:"lock-order"
        (Printf.sprintf "potential deadlock cycle %s: %s" ring detail))
    (Lockgraph.cycles lg)

(* ---------------- 2. blocking-in-worker ---------------- *)

(* Roots: every resolved [Domain.spawn] / [Thread.create] target plus
   the synthetic frames for literal spawn closures. These are the
   entry points of sync/worker domains; anything blocking reachable
   from one stalls a whole scheduling unit. *)
let spawn_roots cg =
  let roots = ref [] in
  Callgraph.iter_funcs cg (fun fn (fc : F.func) uf ->
      if fc.F.fn_spawn_body then roots := fn :: !roots;
      List.iter
        (fun (s : F.spawn) ->
          List.iter
            (fun r -> roots := r :: !roots)
            (Callgraph.resolve cg ~caller_unit:uf.F.uf_unit s.F.s_target))
        fc.F.spawns);
  List.sort_uniq compare !roots

let blocking_in_worker_pass cg =
  let blocking_of = transitive_blocking cg in
  List.concat_map
    (fun root ->
      let file = Callgraph.source_of cg root in
      List.filter_map
        (fun (w : Callgraph.witnessed) ->
          (* Mutex.lock only ever appears inside with_lock helpers
             (enforced by the token lint); acquisitions under workers
             are the lock-order pass's business. *)
          if strip_stdlib w.Callgraph.w_item = "Mutex.lock" then None
          else
            Some
              (v ~file ~line:w.Callgraph.w_line ~rule:"blocking-in-worker"
                 (Printf.sprintf "worker entry %s reaches blocking %s%s" root
                    (strip_stdlib w.Callgraph.w_item)
                    (via_suffix w.Callgraph.w_chain))))
        (blocking_of root))
    (spawn_roots cg)

(* ---------------- 3. blocking-under-lock ---------------- *)

(* [Condition.wait] atomically releases the mutex it is given, so it
   is not "blocking while holding" that lock. It could still hold an
   *outer* lock, but the fact base records only the innermost — accept
   the false-negative rather than flag every condition loop. *)
let blocking_under_lock_pass cg =
  let blocking_of = transitive_blocking cg in
  let acc = ref [] in
  Callgraph.iter_funcs cg (fun fn (fc : F.func) uf ->
      let file = uf.F.uf_source in
      (* direct blocking calls made with a lock held *)
      List.iter
        (fun (c : F.call) ->
          let callee = strip_stdlib c.F.callee in
          match c.F.c_under with
          | Some lock when is_blocking callee && callee <> "Condition.wait"
                           && callee <> "Mutex.lock" ->
            acc :=
              v ~file ~line:c.F.c_line ~rule:"blocking-under-lock"
                (Printf.sprintf "%s calls blocking %s while holding %s" fn
                   callee lock)
              :: !acc
          | _ -> ())
        fc.F.calls;
      (* calls under a lock into functions that transitively block *)
      List.iter
        (fun (rc : Callgraph.resolved_call) ->
          match rc.Callgraph.rc_under with
          | None -> ()
          | Some lock ->
            List.iter
              (fun (w : Callgraph.witnessed) ->
                let item = strip_stdlib w.Callgraph.w_item in
                if item <> "Condition.wait" && item <> "Mutex.lock" then
                  acc :=
                    v ~file ~line:rc.Callgraph.rc_line ~rule:"blocking-under-lock"
                      (Printf.sprintf
                         "%s calls blocking %s while holding %s%s" fn
                         item lock
                         (via_suffix
                            (rc.Callgraph.rc_callee :: w.Callgraph.w_chain)))
                    :: !acc)
              (blocking_of rc.Callgraph.rc_callee))
        (Callgraph.callees cg fn))
    ;
  List.rev !acc

(* ---------------- 4. crew-core-purity ---------------- *)

(* The d-CREW policy core must stay engine-agnostic: no clocks, no
   I/O, no environment — effects arrive only through its ENGINE
   signature. Flag any call into the impure world. *)
let impure_roots = [ "Unix"; "Sys"; "Printf"; "Format"; "Scanf";
                     "In_channel"; "Out_channel"; "Random" ]

let impure_stdlib =
  [ "Stdlib.print_string"; "Stdlib.print_endline"; "Stdlib.print_newline";
    "Stdlib.prerr_string"; "Stdlib.prerr_endline"; "Stdlib.read_line";
    "Stdlib.open_in"; "Stdlib.open_out"; "Stdlib.exit" ]

let is_impure callee =
  match String.index_opt callee '.' with
  | None -> false
  | Some i -> List.mem (String.sub callee 0 i) impure_roots
              || List.mem callee impure_stdlib

let default_is_crew_core (uf : F.unit_facts) =
  uf.F.uf_unit = "C4_crew" || String.starts_with ~prefix:"C4_crew." uf.F.uf_unit

let crew_purity_pass ~is_crew_core cg =
  let acc = ref [] in
  Callgraph.iter_funcs cg (fun fn (fc : F.func) uf ->
      if is_crew_core uf then
        List.iter
          (fun (c : F.call) ->
            if is_impure c.F.callee then
              acc :=
                v ~file:uf.F.uf_source ~line:c.F.c_line ~rule:"crew-core-purity"
                  (Printf.sprintf
                     "%s calls %s; the crew core takes effects only through ENGINE"
                     fn c.F.callee)
                :: !acc)
          fc.F.calls);
  List.rev !acc

(* ---------------- 5. shared-mutable-escape ---------------- *)

(* From every spawn root, walk same-unit call edges; a call made under
   a lock guards its whole subtree. Any mutation reached unguarded and
   itself outside a lock is a write to state shared with the spawning
   domain without synchronisation. (Ref mutations are only recorded by
   {!Tast_facts} when the ref is captured, i.e. not bound locally.) *)
let mutable_escape_pass cg =
  let acc = ref [] in
  let flagged = Hashtbl.create 32 in
  let roots = spawn_roots cg in
  List.iter
    (fun root ->
      let unit = Callgraph.unit_of_fn root in
      let seen = Hashtbl.create 16 in
      let rec walk fn path =
        if not (Hashtbl.mem seen fn) then begin
          Hashtbl.replace seen fn ();
          (match Callgraph.find cg fn with
          | None -> ()
          | Some fc ->
            List.iter
              (fun (m : F.mutation) ->
                let k = (fn, m.F.m_what) in
                if m.F.m_under = None && not (Hashtbl.mem flagged k) then begin
                  Hashtbl.replace flagged k ();
                  acc :=
                    v ~file:(Callgraph.source_of cg fn) ~line:m.F.m_line
                      ~rule:"shared-mutable-escape"
                      (Printf.sprintf
                         "%s writes %s without a lock, reachable from spawn of %s%s"
                         fn m.F.m_what root
                         (via_suffix (List.rev path)))
                    :: !acc
                end)
              fc.F.mutations);
          List.iter
            (fun (rc : Callgraph.resolved_call) ->
              (* stay in the spawn's unit; a guarded call protects its
                 subtree *)
              if rc.Callgraph.rc_under = None
                 && Callgraph.unit_of_fn rc.Callgraph.rc_callee = unit then
                walk rc.Callgraph.rc_callee (rc.Callgraph.rc_callee :: path))
            (Callgraph.callees cg fn)
        end
      in
      walk root [])
    roots;
  List.rev !acc

(* ---------------- driver ---------------- *)

let all_rules =
  [ "lock-order"; "blocking-in-worker"; "blocking-under-lock";
    "crew-core-purity"; "shared-mutable-escape" ]

let run ?(is_crew_core = default_is_crew_core) (units : F.unit_facts list) =
  let cg = Callgraph.build units in
  let lg = Lockgraph.build cg in
  let vs =
    lock_order_pass lg
    @ blocking_in_worker_pass cg
    @ blocking_under_lock_pass cg
    @ crew_purity_pass ~is_crew_core cg
    @ mutable_escape_pass cg
  in
  (* Deduplicate on the stable key, keeping the smallest line; order by
     (file, line, rule, message) for stable output. *)
  let key (x : Lint.violation) = (x.Lint.rule, x.Lint.file, x.Lint.message) in
  let best = Hashtbl.create 64 in
  List.iter
    (fun (x : Lint.violation) ->
      match Hashtbl.find_opt best (key x) with
      | Some (y : Lint.violation) when y.Lint.line <= x.Lint.line -> ()
      | _ -> Hashtbl.replace best (key x) x)
    vs;
  Hashtbl.fold (fun _ x acc -> x :: acc) best []
  |> List.sort (fun (a : Lint.violation) (b : Lint.violation) ->
         compare
           (a.Lint.file, a.Lint.line, a.Lint.rule, a.Lint.message)
           (b.Lint.file, b.Lint.line, b.Lint.rule, b.Lint.message))
