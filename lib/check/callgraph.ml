(* Interprocedural layer over {!Tast_facts}: resolves textual call
   targets to defined functions, and computes the two transitive
   closures the rules need — which locks a function eventually takes
   and which blocking primitives it eventually reaches — each with a
   shortest witness call chain for the report. *)

module F = Tast_facts

type resolved_call = {
  rc_caller : string;
  rc_callee : string;  (** defined function name *)
  rc_line : int;
  rc_under : string option;
}

type t = {
  units : F.unit_facts list;
  funcs : (string, F.func * F.unit_facts) Hashtbl.t;  (* fn_name -> def *)
  by_suffix : (string, string list) Hashtbl.t;
      (* "M.f" and "f" suffix -> candidate fn_names *)
  aliases : (string, string) Hashtbl.t;  (* "Unit|M" -> target path *)
  mutable adj : (string, resolved_call list) Hashtbl.t;
}

let suffixes_of name =
  (* every dot-suffix of [A.B.c]: ["A.B.c"; "B.c"; "c"] *)
  let parts = String.split_on_char '.' name in
  let rec go = function
    | [] -> []
    | _ :: rest as l -> String.concat "." l :: go rest
  in
  go parts

let source_of t fn =
  match Hashtbl.find_opt t.funcs fn with
  | Some (_, uf) -> uf.F.uf_source
  | None -> ""

let unit_of_fn fn =
  match String.rindex_opt fn '.' with
  | Some i -> String.sub fn 0 i
  | None -> fn

(* Expand a leading local module alias: in a unit with
   [module Core = C4_crew.Core], target [Core.sweep] becomes
   [C4_crew.Core.sweep]. *)
let expand_alias t ~caller_unit target =
  match String.index_opt target '.' with
  | None -> target
  | Some i -> (
    let head = String.sub target 0 i in
    let rest = String.sub target (i + 1) (String.length target - i - 1) in
    match Hashtbl.find_opt t.aliases (caller_unit ^ "|" ^ head) with
    | Some real -> real ^ "." ^ rest
    | None -> target)

(* Resolve a textual target to defined functions. Bare names (no dot)
   resolve only inside the caller's unit — cross-unit references always
   carry a module component, and a global single-name match would drown
   the graph in [create]/[stop] false edges. Dotted names resolve by
   longest-suffix match; ambiguity keeps every candidate (the rules
   over-approximate). *)
let resolve t ~caller_unit target =
  let target = expand_alias t ~caller_unit target in
  if not (String.contains target '.') then
    let local = caller_unit ^ "." ^ target in
    if Hashtbl.mem t.funcs local then [ local ] else []
  else
    match Hashtbl.find_opt t.funcs target with
    | Some _ -> [ target ]
    | None -> (
      match Hashtbl.find_opt t.by_suffix target with
      | Some fns -> List.sort compare fns
      | None -> [])

let build (units : F.unit_facts list) =
  let funcs = Hashtbl.create 512 in
  let by_suffix = Hashtbl.create 1024 in
  let aliases = Hashtbl.create 64 in
  List.iter
    (fun uf ->
      List.iter
        (fun (a, target) -> Hashtbl.replace aliases (uf.F.uf_unit ^ "|" ^ a) target)
        uf.F.uf_aliases;
      List.iter
        (fun (f : F.func) ->
          Hashtbl.replace funcs f.F.fn_name (f, uf);
          (* Register dotted proper suffixes (not the full name — exact
             matches hit [funcs] first; not the bare last component —
             single names stay unit-local). *)
          match suffixes_of f.F.fn_name with
          | _full :: rest ->
            List.iter
              (fun s ->
                if String.contains s '.' then
                  Hashtbl.replace by_suffix s
                    (f.F.fn_name
                    :: (Option.value (Hashtbl.find_opt by_suffix s) ~default:[])))
              rest
          | [] -> ())
        uf.F.uf_funcs)
    units;
  let t = { units; funcs; by_suffix; aliases; adj = Hashtbl.create 512 } in
  (* Resolve every call once, up front. *)
  Hashtbl.iter
    (fun fn ((f : F.func), (uf : F.unit_facts)) ->
      let edges =
        List.concat_map
          (fun (c : F.call) ->
            List.map
              (fun callee ->
                { rc_caller = fn; rc_callee = callee; rc_line = c.F.c_line;
                  rc_under = c.F.c_under })
              (resolve t ~caller_unit:uf.F.uf_unit c.F.callee))
          f.F.calls
      in
      (* Deterministic order, deduplicated. *)
      let edges = List.sort_uniq compare edges in
      Hashtbl.replace t.adj fn edges)
    funcs;
  t

let callees t fn = Option.value (Hashtbl.find_opt t.adj fn) ~default:[]
let find t fn = Option.map fst (Hashtbl.find_opt t.funcs fn)

let iter_funcs t f =
  let all =
    Hashtbl.fold (fun fn (fc, uf) acc -> (fn, fc, uf) :: acc) t.funcs []
  in
  List.iter (fun (fn, fc, uf) -> f fn fc uf) (List.sort compare all)

(* ---------------- transitive closures with witness chains ----------------

   Generic fixpoint: each function starts with a set of directly
   produced items (lock acquired, blocking primitive called) and
   inherits its callees' sets, extending the witness chain through the
   call edge. Chains are shortest-first because propagation is
   breadth-first over rounds. An item is (name, site-line-in-origin);
   the witness is the call path from [fn] to the origin function. *)

type witnessed = { w_item : string; w_line : int; w_chain : string list }

let transitive ~direct t =
  let table : (string, witnessed list) Hashtbl.t =
    Hashtbl.create (Hashtbl.length t.funcs)
  in
  let get fn = Option.value (Hashtbl.find_opt table fn) ~default:[] in
  let keys l = List.map (fun w -> w.w_item) l in
  iter_funcs t (fun fn fc _uf ->
      Hashtbl.replace table fn
        (List.map (fun (item, line) -> { w_item = item; w_line = line; w_chain = [] })
           (direct fc)));
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    iter_funcs t (fun fn _fc _uf ->
        let mine = get fn in
        let have = keys mine in
        let extra =
          List.concat_map
            (fun rc ->
              List.filter_map
                (fun w ->
                  if List.mem w.w_item have then None
                  else
                    Some
                      {
                        w_item = w.w_item;
                        w_line = rc.rc_line;
                        w_chain = rc.rc_callee :: w.w_chain;
                      })
                (get rc.rc_callee))
            (callees t fn)
        in
        match extra with
        | [] -> ()
        | _ ->
          (* keep first witness per item, deterministically *)
          let extra =
            List.fold_left
              (fun acc w ->
                if List.exists (fun x -> x.w_item = w.w_item) acc then acc
                else acc @ [ w ])
              []
              (List.sort compare extra)
          in
          Hashtbl.replace table fn (mine @ extra);
          changed := true)
  done;
  fun fn -> get fn

(* Locks a function (transitively) acquires, with a witness chain. *)
let transitive_locks t =
  transitive t ~direct:(fun (fc : F.func) ->
      List.map (fun (a : F.acq) -> (a.F.a_lock, a.F.a_line)) fc.F.acquires)

(* Blocking primitives a function (transitively) calls. [is_blocking]
   classifies raw callee names (resolved or not — blocking primitives
   live in Unix/Thread/Domain/Condition, outside the fact base). *)
let transitive_blocking t ~is_blocking =
  let direct (fc : F.func) =
    List.filter_map
      (fun (c : F.call) ->
        if is_blocking c.F.callee then Some (c.F.callee, c.F.c_line) else None)
      fc.F.calls
  in
  transitive t ~direct

(* Reachability from a set of roots, returning for each reached
   function the call path from its root. *)
let reachable t ~roots =
  let seen : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if Hashtbl.mem t.funcs r && not (Hashtbl.mem seen r) then begin
        Hashtbl.replace seen r [ r ];
        Queue.push r q
      end)
    roots;
  while not (Queue.is_empty q) do
    let fn = Queue.pop q in
    let path = Hashtbl.find seen fn in
    List.iter
      (fun rc ->
        if not (Hashtbl.mem seen rc.rc_callee) then begin
          Hashtbl.replace seen rc.rc_callee (path @ [ rc.rc_callee ]);
          Queue.push rc.rc_callee q
        end)
      (callees t fn)
  done;
  seen
