(** Repo-specific static lint over OCaml sources. Token-level — no
    compiler-libs dependency — after stripping comments, strings and
    char literals with line numbers preserved.

    Rules (a file opts out of a rule with a
    [(* c4-lint: allow <rule> *)] comment anywhere in the file):

    - [mli-required]: every [.ml] outside bin/test/examples/bench
      directories has a sibling [.mli].
    - [bare-mutex-lock]: [Mutex.lock] / [Mutex.unlock] appear only in
      [lib/runtime/sync.ml]; everything else goes through the
      exception-safe [Sync.with_lock].
    - [no-obj-magic]: no [Obj.magic] anywhere.
    - [poly-compare-mutable]: no structural [=], [<>] or bare [compare]
      on a variable annotated with a mutable record type declared in the
      same file (heuristic; catches the racy-snapshot-comparison
      pattern).
    - [no-stdout-print]: no [Printf.printf] / [Format.printf] /
      [print_endline]-family calls in [lib/] implementation files —
      libraries must take an [out_channel] or formatter. *)

type violation = { file : string; line : int; rule : string; message : string }

type report = { violations : violation list; files_scanned : int }

val all_rules : string list

(** Blank comments, strings and char literals to spaces, preserving
    newlines (and hence line numbers). Exposed for tests. *)
val strip : string -> string

(** Rules a source opts out of via [c4-lint: allow] pragmas. *)
val pragmas : string -> string list

(** Lint source text as if it lived at [path] ([path] determines
    directory-based rule applicability; [mli-required] consults the
    filesystem for the sibling [.mli]). *)
val lint_source : path:string -> string -> violation list

val lint_file : string -> violation list

(** Lint every [.ml] / [.mli] under the given directories. *)
val lint_dirs : string list -> report

val to_text : report -> string
val to_json : report -> string
