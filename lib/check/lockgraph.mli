(** Lock-acquisition-order graph and deadlock-cycle detection.

    An edge [A -> B] means "lock B is acquired while A is held",
    observed either lexically (nested [with_lock] in one function) or
    interprocedurally (a call made under A reaches a function that
    acquires B, via {!Callgraph.transitive_locks}). Cycles — including
    self-edges, since the repo's mutexes are non-reentrant — are
    potential deadlocks; each comes with one witness per edge. *)

type edge = {
  e_from : string;
  e_to : string;
  e_file : string;  (** unit where the inner acquisition happens *)
  e_line : int;  (** the nested acquisition, or the call leading to it *)
  e_via : string list;
      (** witness call chain from the holding site to the acquiring
          function; [[]] when the nesting is lexical *)
}

type t

(** One representative edge per ordered lock pair, deterministic. *)
val build : Callgraph.t -> t

val edges : t -> edge list

(** Every distinct cycle found by DFS over the sorted edge list, each
    as its edge sequence canonicalized to start at the smallest lock.
    Deduplicated on the participating lock set. Empty = no potential
    lock-order deadlock observed. *)
val cycles : t -> edge list list
