type violation = { file : string; line : int; rule : string; message : string }

type report = { violations : violation list; files_scanned : int }

let all_rules =
  [
    "mli-required";
    "bare-mutex-lock";
    "no-obj-magic";
    "poly-compare-mutable";
    "no-stdout-print";
  ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Replace comments, string literals and char literals with spaces,
   preserving newlines so line numbers survive. Follows the OCaml lexer
   closely enough for linting: nested [(* *)], strings inside comments
   (where a ["*)"] does not close the comment), backslash escapes,
   [{id|...|id}] quoted strings, and char literals vs. type variables
   (['a'] is a literal, ['a] in [('a, 'b) t] is not). *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  (* Consume a string body starting after the opening quote, blanking as
     we go; returns with [i] past the closing quote. *)
  let skip_string () =
    let fin = ref false in
    while (not !fin) && !i < n do
      blank !i;
      (match src.[!i] with
      | '\\' when !i + 1 < n ->
        blank (!i + 1);
        incr i
      | '"' -> fin := true
      | _ -> ());
      incr i
    done
  in
  let skip_quoted_string delim =
    (* inside {delim|...|delim}; find "|delim}" *)
    let needle = "|" ^ delim ^ "}" in
    let len = String.length needle in
    let fin = ref false in
    while (not !fin) && !i < n do
      if !i + len <= n && String.sub src !i len = needle then begin
        for k = 0 to len - 1 do
          blank (!i + k)
        done;
        i := !i + len;
        fin := true
      end
      else begin
        blank !i;
        incr i
      end
    done
  in
  let rec skip_comment depth =
    if depth > 0 && !i < n then
      if peek 0 = '(' && peek 1 = '*' then begin
        blank !i;
        blank (!i + 1);
        i := !i + 2;
        skip_comment (depth + 1)
      end
      else if peek 0 = '*' && peek 1 = ')' then begin
        blank !i;
        blank (!i + 1);
        i := !i + 2;
        skip_comment (depth - 1)
      end
      else if peek 0 = '"' then begin
        blank !i;
        incr i;
        skip_string ();
        skip_comment depth
      end
      else begin
        blank !i;
        incr i;
        skip_comment depth
      end
  in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && peek 1 = '*' then begin
      blank !i;
      blank (!i + 1);
      i := !i + 2;
      skip_comment 1
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      skip_string ()
    end
    else if c = '{' then begin
      (* {|...|} or {id|...|id} quoted string *)
      let j = ref (!i + 1) in
      while !j < n && src.[!j] >= 'a' && src.[!j] <= 'z' do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let delim = String.sub src (!i + 1) (!j - !i - 1) in
        for k = !i to !j do
          blank k
        done;
        i := !j + 1;
        skip_quoted_string delim
      end
      else incr i
    end
    else if c = '\'' then begin
      (* Char literal iff it closes: 'x' or '\..'. Otherwise a type
         variable or the prime in an identifier like [x']. *)
      let prev_ident = !i > 0 && is_ident_char src.[!i - 1] in
      if prev_ident then incr i
      else if peek 1 = '\\' then begin
        (* escape: '\n' '\\' '\042' '\xFF' — blank to the closing quote *)
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' && src.[!j] <> '\n' do
          incr j
        done;
        if !j < n && src.[!j] = '\'' then begin
          for k = !i to !j do
            blank k
          done;
          i := !j + 1
        end
        else incr i
      end
      else if peek 2 = '\'' && peek 1 <> '\'' then begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else incr i
    end
    else incr i
  done;
  Bytes.to_string out

(* File-level exemptions: [(* c4-lint: allow rule-a rule-b *)] anywhere
   in the original source (typically the first line). *)
let pragmas src =
  let tag = "c4-lint: allow" in
  let acc = ref [] in
  let rec find from =
    match
      if from >= String.length src then None
      else
        let rec search i =
          if i + String.length tag > String.length src then None
          else if String.sub src i (String.length tag) = tag then Some i
          else search (i + 1)
        in
        search from
    with
    | None -> ()
    | Some at ->
      let i = ref (at + String.length tag) in
      let n = String.length src in
      let fin = ref false in
      while not !fin do
        while !i < n && (src.[!i] = ' ' || src.[!i] = '\t') do
          incr i
        done;
        let start = !i in
        while
          !i < n
          && (is_ident_char src.[!i] || src.[!i] = '-')
        do
          incr i
        done;
        if !i > start then acc := String.sub src start (!i - start) :: !acc
        else fin := true
      done;
      find !i
  in
  find 0;
  !acc

(* Needle occurrence with token boundaries. [qualified] needles (leading
   uppercase, e.g. "Mutex.lock") may be preceded by '.', so
   [Stdlib.Mutex.lock] still matches; bare lowercase needles must not
   be, so [String.compare] does not match "compare". *)
let occurrences ~needle ~qualified line =
  let n = String.length line and m = String.length needle in
  let ok_before i =
    i = 0
    || (not (is_ident_char line.[i - 1]))
       && (qualified || line.[i - 1] <> '.')
  in
  let ok_after i = i + m >= n || not (is_ident_char line.[i + m]) in
  let rec go i acc =
    if i + m > n then List.rev acc
    else if String.sub line i m = needle && ok_before i && ok_after i then
      go (i + m) (i :: acc)
    else go (i + 1) acc
  in
  go 0 []

let split_lines s = String.split_on_char '\n' s

let path_components path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")

let has_component names path =
  List.exists (fun c -> List.mem c names) (path_components path)

let mli_exempt_dirs = [ "bin"; "test"; "tests"; "examples"; "bench" ]

(* The one module allowed to take locks directly: it provides the
   exception-safe wrapper everything else must use. *)
let lock_exempt path =
  match List.rev (path_components path) with
  | file :: dir :: _ -> dir = "runtime" && (file = "sync.ml" || file = "sync.mli")
  | _ -> false

let token_rule ~rule ~needles ~message path stripped =
  List.concat
    (List.mapi
       (fun lineno line ->
         List.concat_map
           (fun needle ->
             let qualified = needle.[0] >= 'A' && needle.[0] <= 'Z' in
             List.map
               (fun _ ->
                 {
                   file = path;
                   line = lineno + 1;
                   rule;
                   message = message needle;
                 })
               (occurrences ~needle ~qualified line))
           needles)
       (split_lines stripped))

let bare_mutex_lock path stripped =
  if lock_exempt path then []
  else
    token_rule ~rule:"bare-mutex-lock"
      ~needles:[ "Mutex.lock"; "Mutex.unlock" ]
      ~message:(fun needle ->
        needle
        ^ " outside Runtime.Sync: use Sync.with_lock so exceptions cannot leak a held lock")
      path stripped

let no_obj_magic path stripped =
  token_rule ~rule:"no-obj-magic" ~needles:[ "Obj.magic" ]
    ~message:(fun _ -> "Obj.magic defeats the type system; restructure instead")
    path stripped

let stdout_needles =
  [
    "Printf.printf";
    "Format.printf";
    "print_endline";
    "print_string";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
  ]

let no_stdout_print path stripped =
  if
    (not (has_component [ "lib" ] path))
    || Filename.check_suffix path ".mli"
  then []
  else
    token_rule ~rule:"no-stdout-print" ~needles:stdout_needles
      ~message:(fun needle ->
        needle
        ^ " in library code writes to stdout; take an out_channel or a Format formatter instead")
      path stripped

(* Heuristic: find record types declared [mutable] in this file, then
   variables annotated [(x : t)] with such a type, then flag structural
   [=] / [<>] / [compare] applied to those variables. Physical equality
   [==] and field access [x.f = ...] are not flagged. *)
let poly_compare_mutable path stripped =
  let lines = Array.of_list (split_lines stripped) in
  let text = stripped in
  let n = String.length text in
  let token_at i needle =
    let m = String.length needle in
    i + m <= n
    && String.sub text i m = needle
    && (i = 0 || not (is_ident_char text.[i - 1]))
    && (i + m >= n || not (is_ident_char text.[i + m]))
  in
  (* pass 1: names of record types with a [mutable] field *)
  let mutable_types = ref [] in
  let rec scan_types i =
    if i < n then
      if token_at i "type" then begin
        (* parse: type <params>? <name> = { ... } ; mutable inside braces *)
        let j = ref (i + 4) in
        let skip_ws () =
          while !j < n && (text.[!j] = ' ' || text.[!j] = '\n' || text.[!j] = '\t') do
            incr j
          done
        in
        skip_ws ();
        (* optional type parameters: 'a or ('a, 'b) *)
        if !j < n && text.[!j] = '\'' then begin
          while !j < n && is_ident_char text.[!j] do
            incr j
          done;
          skip_ws ()
        end
        else if !j < n && text.[!j] = '(' then begin
          while !j < n && text.[!j] <> ')' do
            incr j
          done;
          if !j < n then incr j;
          skip_ws ()
        end;
        let name_start = !j in
        while !j < n && is_ident_char text.[!j] do
          incr j
        done;
        let name = String.sub text name_start (!j - name_start) in
        skip_ws ();
        if name <> "" && !j < n && text.[!j] = '=' then begin
          incr j;
          skip_ws ();
          if !j < n && text.[!j] = '{' then begin
            let brace_start = !j in
            let depth = ref 1 in
            incr j;
            while !j < n && !depth > 0 do
              (match text.[!j] with
              | '{' -> incr depth
              | '}' -> decr depth
              | _ -> ());
              incr j
            done;
            let body = String.sub text brace_start (!j - brace_start) in
            if occurrences ~needle:"mutable" ~qualified:false body <> [] then
              mutable_types := name :: !mutable_types
          end
        end;
        scan_types !j
      end
      else scan_types (i + 1)
  in
  scan_types 0;
  if !mutable_types = [] then []
  else begin
    (* pass 2: variables annotated with a mutable record type *)
    let annotated = ref [] in
    Array.iter
      (fun line ->
        List.iter
          (fun ty ->
            List.iter
              (fun at ->
                (* walk back over ": ... (" to grab the variable name *)
                let k = ref (at - 1) in
                let skip_back_ws () =
                  while !k >= 0 && (line.[!k] = ' ' || line.[!k] = '\t') do
                    decr k
                  done
                in
                skip_back_ws ();
                if !k >= 0 && line.[!k] = ':' then begin
                  decr k;
                  skip_back_ws ();
                  let ende = !k in
                  while !k >= 0 && is_ident_char line.[!k] do
                    decr k
                  done;
                  (* only parenthesised annotations [(x : t)] — record
                     field declarations [x : t;] are not variables *)
                  let b = ref !k in
                  while !b >= 0 && (line.[!b] = ' ' || line.[!b] = '\t') do
                    decr b
                  done;
                  if ende > !k && !b >= 0 && line.[!b] = '(' then
                    annotated := String.sub line (!k + 1) (ende - !k) :: !annotated
                end)
              (occurrences ~needle:ty ~qualified:false line))
          !mutable_types)
      lines;
    let annotated = List.sort_uniq compare !annotated in
    (* pass 3: structural comparison of an annotated variable *)
    let hits = ref [] in
    Array.iteri
      (fun lineno line ->
        let flag var msg =
          hits :=
            {
              file = path;
              line = lineno + 1;
              rule = "poly-compare-mutable";
              message =
                Printf.sprintf
                  "%s: polymorphic %s on a mutable record; write a typed equal/compare"
                  var msg;
            }
            :: !hits
        in
        List.iter
          (fun var ->
            (* [compare var] *)
            List.iter
              (fun at ->
                let rest = at + String.length "compare" in
                let k = ref rest in
                while !k < String.length line && line.[!k] = ' ' do
                  incr k
                done;
                if occurrences ~needle:var ~qualified:false
                     (String.sub line !k (min (String.length var + 1) (String.length line - !k)))
                   |> List.mem 0
                then flag var "compare")
              (occurrences ~needle:"compare" ~qualified:false line);
            (* [var = ] / [var <> ] as a comparison, not a let-binding or
               field assignment *)
            List.iter
              (fun at ->
                let before = String.sub line 0 at in
                (* last identifier-ish token of [s], or the last
                   punctuation char; "." means [var] is a field path *)
                let last_token s =
                  let m = String.length s in
                  let e = ref (m - 1) in
                  while !e >= 0 && (s.[!e] = ' ' || s.[!e] = '\t') do
                    decr e
                  done;
                  if !e < 0 then None
                  else if not (is_ident_char s.[!e]) then Some (String.make 1 s.[!e])
                  else begin
                    let b = ref !e in
                    while !b >= 0 && is_ident_char s.[!b] do
                      decr b
                    done;
                    if !b >= 0 && s.[!b] = '.' then Some "."
                    else Some (String.sub s (!b + 1) (!e - !b))
                  end
                in
                let after = at + String.length var in
                let k = ref after in
                while !k < String.length line && line.[!k] = ' ' do
                  incr k
                done;
                let op =
                  if !k < String.length line && line.[!k] = '='
                     && (!k + 1 >= String.length line || line.[!k + 1] <> '=')
                  then Some "="
                  else if
                    !k + 1 < String.length line
                    && line.[!k] = '<' && line.[!k + 1] = '>'
                  then Some "<>"
                  else None
                in
                match op with
                | None -> ()
                | Some op ->
                  (* not a comparison when [var] is the bound name or a
                     parameter of a [let]/[and] definition head, or a
                     field path component *)
                  let prev = last_token before in
                  let def_head =
                    let s = String.trim before in
                    (String.length s >= 4 && String.sub s 0 4 = "let ")
                    || (String.length s >= 4 && String.sub s 0 4 = "and ")
                  in
                  let head_is_simple =
                    String.for_all
                      (fun c ->
                        is_ident_char c || c = ' ' || c = '\t' || c = '('
                        || c = ')' || c = ':' || c = '~' || c = '?')
                      before
                  in
                  let binding =
                    (def_head && head_is_simple)
                    ||
                    match prev with
                    | Some ("let" | "and" | "rec" | ".") -> true
                    | _ -> false
                  in
                  if not binding then flag var op)
              (occurrences ~needle:var ~qualified:false line))
          annotated)
      lines;
    List.rev !hits
  end

let mli_required path =
  if Filename.check_suffix path ".ml" && not (has_component mli_exempt_dirs path)
  then
    let mli = path ^ "i" in
    if Sys.file_exists mli then []
    else
      [
        {
          file = path;
          line = 1;
          rule = "mli-required";
          message = "library module has no interface file (" ^ Filename.basename mli ^ ")";
        };
      ]
  else []

let lint_source ~path src =
  let allow = pragmas src in
  let stripped = strip src in
  let vs =
    mli_required path
    @ bare_mutex_lock path stripped
    @ no_obj_magic path stripped
    @ poly_compare_mutable path stripped
    @ no_stdout_print path stripped
  in
  List.filter (fun v -> not (List.mem v.rule allow)) vs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path = lint_source ~path (read_file path)

let rec source_files dir =
  match Sys.is_directory dir with
  | exception Sys_error _ -> []
  | false ->
    if Filename.check_suffix dir ".ml" || Filename.check_suffix dir ".mli" then
      [ dir ]
    else []
  | true ->
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f -> not (String.length f > 0 && f.[0] = '.'))
    |> List.concat_map (fun f -> source_files (Filename.concat dir f))

let lint_dirs dirs =
  let files = List.concat_map source_files dirs in
  let violations = List.concat_map lint_file files in
  { violations; files_scanned = List.length files }

let to_text { violations; files_scanned } =
  let buf = Buffer.create 256 in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d: [%s] %s\n" v.file v.line v.rule v.message))
    violations;
  Buffer.add_string buf
    (Printf.sprintf "c4_lint: %d file(s) scanned, %d violation(s)\n" files_scanned
       (List.length violations));
  Buffer.contents buf

(* Serialise through the shared Obs.Json writer so escaping (control
   characters, quotes in messages) matches every other exporter. *)
let to_json { violations; files_scanned } =
  let module J = C4_obs.Json in
  let item v =
    J.Obj
      [
        ("file", J.Str v.file);
        ("line", J.Int v.line);
        ("rule", J.Str v.rule);
        ("message", J.Str v.message);
      ]
  in
  J.to_string
    (J.Obj
       [
         ("files_scanned", J.Int files_scanned);
         ("violations", J.List (List.map item violations));
       ])
  ^ "\n"
