(** Typed-AST fact extraction over [.cmt] files — the front half of the
    static concurrency-discipline analyzer ({!Staticcheck}).

    Each compilation unit is flattened into per-function fact records:
    referenced identifiers (call-graph edges), [with_lock] acquisition
    sites with lexical nesting, [Domain.spawn] / [Thread.create] sites,
    and mutable-state writes with the innermost lock held at each.

    All names are heuristic but deterministic:
    - functions: [Unit.path] ([C4_runtime.Server.stop]);
    - locks: the field/identifier passed to [with_lock], qualified by
      the defining unit ([C4_runtime.Server.route_lock]). Same-named
      mutex fields within one unit collapse to one node — an
      over-approximation that can only add lock-order edges, never
      hide them. *)

type call = {
  callee : string;  (** normalized target path, e.g. [Unix.fsync] *)
  c_line : int;
  c_under : string option;  (** innermost lock held at the call site *)
}

type acq = {
  a_lock : string;
  a_line : int;
  a_under : string option;  (** innermost lock already held, if any *)
}

type mutation = {
  m_what : string;  (** [field f] or [ref r] *)
  m_line : int;
  m_under : string option;
}

type spawn_kind = Domain_spawn | Thread_create

type spawn = { s_kind : spawn_kind; s_line : int; s_target : string }

type func = {
  fn_name : string;
  fn_line : int;
  fn_spawn_body : bool;
      (** synthetic node for a literal closure passed to [Domain.spawn] *)
  calls : call list;
  acquires : acq list;
  mutations : mutation list;
  spawns : spawn list;
}

type unit_facts = {
  uf_unit : string;  (** normalized unit name, e.g. [C4_runtime.Server] *)
  uf_source : string;  (** source path as recorded by the compiler *)
  uf_funcs : func list;
  uf_aliases : (string * string) list;
      (** local [module M = Other.Path] renamings, alias -> target *)
}

(** [C4_runtime__Server] -> [C4_runtime.Server]. *)
val normalize_name : string -> string

val last_component : string -> string

(** Extract facts from an already-typed structure (used by tests that
    compile fixture sources in memory). *)
val of_structure :
  unit_name:string -> source:string -> Typedtree.structure -> unit_facts

(** Read one [.cmt]; [None] if it is unreadable or not an
    implementation (e.g. a [.cmti] or a packed module). *)
val load : string -> unit_facts option
