type 'st progress = Continue of 'st step | Done

and 'st step = {
  label : string;
  touches : string list;
  enabled : 'st -> bool;
  run : 'st -> 'st progress;
}

type 'st thread = { name : string; entry : 'st step }

type 'st model = {
  model_name : string;
  init : unit -> 'st;
  threads : 'st thread list;
  invariant : 'st -> (unit, string) result;
  final : 'st -> (unit, string) result;
}

let step ?(touches = []) ?(enabled = fun _ -> true) label run =
  { label; touches; enabled; run }

let stop = Done

type violation = {
  schedule : int list;
  trace : (int * string) list;
  reason : string;
}

type outcome = {
  schedules : int;
  steps_executed : int;
  complete : bool;
  violation : violation option;
}

let pp_violation ppf v =
  Format.fprintf ppf "%s@.schedule:" v.reason;
  List.iter (fun (tid, label) -> Format.fprintf ppf "@.  T%d: %s" tid label) v.trace

(* Mutable per-execution cursors: [None] = thread finished. *)
type 'st cursors = 'st step option array

exception Invariant_failed of string

let check_invariant model st =
  match model.invariant st with
  | Ok () -> ()
  | Error msg -> raise (Invariant_failed msg)

(* Execute [schedule] (a list of thread indices) from a fresh state.
   Returns the final state and cursors, the executed trace, or a
   violation if an invariant failed / a step raised along the way. *)
let execute model schedule =
  let st = model.init () in
  let threads = Array.of_list model.threads in
  let cursors : _ cursors = Array.map (fun t -> Some t.entry) threads in
  let trace = ref [] in
  let executed = ref 0 in
  let fail prefix_rev reason =
    Error { schedule; trace = List.rev prefix_rev; reason }
  in
  let rec go = function
    | [] -> Ok (st, cursors, List.rev !trace, !executed)
    | tid :: rest -> (
      match cursors.(tid) with
      | None -> fail !trace (Printf.sprintf "schedule picks finished thread %d" tid)
      | Some step ->
        if not (step.enabled st) then
          fail !trace (Printf.sprintf "schedule picks disabled step T%d:%s" tid step.label)
        else begin
          trace := (tid, step.label) :: !trace;
          incr executed;
          match
            let progress = step.run st in
            check_invariant model st;
            progress
          with
          | Continue next ->
            cursors.(tid) <- Some next;
            go rest
          | Done ->
            cursors.(tid) <- None;
            go rest
          | exception Invariant_failed msg ->
            fail !trace (Printf.sprintf "invariant violated after T%d:%s: %s" tid step.label msg)
          | exception exn ->
            fail !trace
              (Printf.sprintf "step T%d:%s raised %s" tid step.label (Printexc.to_string exn))
        end)
  in
  go schedule

let independent (a : _ step) (b : _ step) =
  not (List.exists (fun x -> List.mem x b.touches) a.touches)

(* Count preemptions in [schedule]: a switch away from a thread that was
   still runnable (not finished, still enabled) at the switch point.
   [runnable] is supplied by the caller per position. *)

let explore ?(preemption_bound = max_int) ?(max_schedules = 1_000_000) model =
  let n = List.length model.threads in
  let schedules = ref 0 in
  let steps_executed = ref 0 in
  let truncated = ref false in
  let found : violation option ref = ref None in
  let exception Stop_search in
  (* Re-execute the prefix each time we branch (stateless exploration,
     CHESS-style). Models are a handful of steps, so quadratic replay
     is cheap and spares states from having to be copyable. *)
  let rec dfs prefix_rev preemptions sleep =
    if !schedules >= max_schedules then begin
      truncated := true;
      raise Stop_search
    end;
    let schedule = List.rev prefix_rev in
    match execute model schedule with
    | Error v ->
      found := Some v;
      raise Stop_search
    | Ok (st, cursors, trace, executed) ->
      steps_executed := !steps_executed + executed;
      let enabled tid =
        match cursors.(tid) with Some s -> s.enabled st | None -> false
      in
      let enabled_tids = List.filter enabled (List.init n (fun i -> i)) in
      let finished = Array.for_all (fun c -> c = None) cursors in
      if enabled_tids = [] then begin
        if finished then begin
          incr schedules;
          match model.final st with
          | Ok () -> ()
          | Error msg ->
            found := Some { schedule; trace; reason = "final check failed: " ^ msg };
            raise Stop_search
        end
        else begin
          let stuck =
            List.filteri (fun i _ -> cursors.(i) <> None) model.threads
            |> List.map (fun t -> t.name)
          in
          found :=
            Some
              {
                schedule;
                trace;
                reason =
                  "deadlock: no step enabled but threads still pending: "
                  ^ String.concat ", " stuck;
              };
          raise Stop_search
        end
      end
      else begin
        let last = match prefix_rev with t :: _ -> Some t | [] -> None in
        let step_of tid = Option.get cursors.(tid) in
        let explored = ref [] in
        List.iter
          (fun tid ->
            if not (List.mem tid sleep) then begin
              (* A switch away from a still-enabled thread costs one
                 preemption; continuing the same thread (or leaving a
                 finished/disabled one) is free. *)
              let preempts =
                match last with
                | Some l when l <> tid && enabled l -> preemptions + 1
                | _ -> preemptions
              in
              if preempts > preemption_bound then truncated := true
              else begin
                let sleep' =
                  List.filter
                    (fun s -> independent (step_of s) (step_of tid))
                    (sleep @ !explored)
                in
                dfs (tid :: prefix_rev) preempts sleep';
                explored := tid :: !explored
              end
            end)
          enabled_tids
      end
  in
  (try dfs [] 0 [] with Stop_search -> ());
  {
    schedules = !schedules;
    steps_executed = !steps_executed;
    complete = (not !truncated) && !found = None;
    violation = !found;
  }

let replay model schedule =
  match execute model schedule with
  | Error v -> Error v
  | Ok (st, cursors, trace, _) ->
    if Array.exists (fun c -> c <> None) cursors then begin
      let threads = Array.of_list model.threads in
      let enabled_left =
        Array.exists
          (fun c -> match c with Some s -> s.enabled st | None -> false)
          cursors
      in
      let stuck =
        Array.to_list
          (Array.mapi (fun i c -> if c = None then None else Some threads.(i).name) cursors)
        |> List.filter_map Fun.id
      in
      Error
        {
          schedule;
          trace;
          reason =
            (if enabled_left then "replayed schedule is a strict prefix: threads still pending"
             else
               "deadlock: no step enabled but threads still pending: "
               ^ String.concat ", " stuck);
        }
    end
    else (
      match model.final st with
      | Ok () -> Ok ()
      | Error msg -> Error { schedule; trace; reason = "final check failed: " ^ msg })
