(** Interprocedural layer over {!Tast_facts}: call-target resolution,
    reachability, and witnessed transitive closures (locks eventually
    acquired, blocking primitives eventually reached).

    Resolution is deliberately conservative-by-over-approximation:
    dotted targets resolve through local module aliases then by
    longest dotted suffix (every candidate is kept on ambiguity);
    bare names resolve only within the caller's unit. *)

type resolved_call = {
  rc_caller : string;
  rc_callee : string;  (** defined function name *)
  rc_line : int;
  rc_under : string option;  (** innermost lock held at the call site *)
}

type t

val build : Tast_facts.unit_facts list -> t

(** Resolved outgoing edges of a defined function, sorted. *)
val callees : t -> string -> resolved_call list

val find : t -> string -> Tast_facts.func option

(** Source path of the unit defining [fn] ("" if unknown). *)
val source_of : t -> string -> string

(** [A.B.c] -> [A.B]. *)
val unit_of_fn : string -> string

(** Iterate all defined functions in sorted order. *)
val iter_funcs : t -> (string -> Tast_facts.func -> Tast_facts.unit_facts -> unit) -> unit

(** Resolve a textual call target as seen from [caller_unit]. *)
val resolve : t -> caller_unit:string -> string -> string list

type witnessed = {
  w_item : string;
  w_line : int;
      (** line of the acquisition/blocking call itself (chain empty) or
          of the call edge that leads towards it *)
  w_chain : string list;  (** callee path towards the item's origin *)
}

(** Generic witnessed fixpoint: [direct fc] lists the (item, line)
    pairs a function produces itself; the result maps each function to
    every item it transitively produces, with a shortest witness call
    chain. Exposed so rules can plug custom item extractors. *)
val transitive :
  direct:(Tast_facts.func -> (string * int) list) ->
  t -> string -> witnessed list

(** For each function, every lock it transitively acquires with a
    shortest witness call chain. *)
val transitive_locks : t -> string -> witnessed list

(** For each function, every blocking primitive it transitively calls.
    [is_blocking] classifies raw callee names ([Unix.fsync], ...). *)
val transitive_blocking : t -> is_blocking:(string -> bool) -> string -> witnessed list

(** BFS from [roots] (unknown roots are skipped); maps each reached
    function to its call path [root; ...; fn]. *)
val reachable : t -> roots:string list -> (string, string list) Hashtbl.t
