module Sync = C4_runtime.Sync

module Recorder = struct
  type t = {
    mutex : Mutex.t;
    mutable events : Event.t list; (* reversed *)
    names : Event.names;
    threads : (int, int) Hashtbl.t; (* raw Domain.self id -> dense tid *)
    mutable next_tid : int;
    mutable next_anon : int;
  }

  let raw_self () = (Domain.self () :> int)

  let create () =
    let t =
      {
        mutex = Mutex.create ();
        events = [];
        names = Event.names ();
        threads = Hashtbl.create 8;
        next_tid = 0;
        next_anon = 0;
      }
    in
    (* The creating domain is thread 0. *)
    Hashtbl.replace t.threads (raw_self ()) 0;
    t.next_tid <- 1;
    t

  let names t = t.names

  let fresh_tid t =
    Sync.with_lock t.mutex (fun () ->
        let tid = t.next_tid in
        t.next_tid <- tid + 1;
        tid)

  let bind_self t tid =
    Sync.with_lock t.mutex (fun () -> Hashtbl.replace t.threads (raw_self ()) tid)

  (* Dense tid of the calling domain. Domains entered via the traced
     [Domain_.spawn] are pre-bound; anything else (defensively)
     registers itself without a fork edge, so its accesses start
     unordered against everyone — exactly what an untracked thread
     deserves. *)
  let tid t =
    Sync.with_lock t.mutex (fun () ->
        match Hashtbl.find_opt t.threads (raw_self ()) with
        | Some tid -> tid
        | None ->
          let tid = t.next_tid in
          t.next_tid <- tid + 1;
          Hashtbl.replace t.threads (raw_self ()) tid;
          tid)

  let record t e = Sync.with_lock t.mutex (fun () -> t.events <- e :: t.events)
  let events t = Sync.with_lock t.mutex (fun () -> List.rev t.events)

  let anon t prefix =
    Sync.with_lock t.mutex (fun () ->
        let n = t.next_anon in
        t.next_anon <- n + 1;
        Printf.sprintf "%s#%d" prefix n)

  let loc t = function
    | Some name -> Event.loc_id t.names name
    | None -> Event.loc_id t.names (anon t "loc")

  let lock t = function
    | Some name -> Event.lock_id t.names name
    | None -> Event.lock_id t.names (anon t "lock")

  let analyze t = Race.analyze ~names:t.names (events t)
end

module type PRIMS = sig
  module Ref : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
  end

  module Atomic : sig
    type 'a t

    val make : ?name:string -> 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
    val incr : int t -> unit
    val compare_and_set : 'a t -> 'a -> 'a -> bool
  end

  module Mutex : sig
    type t

    val create : ?name:string -> unit -> t
    val with_lock : t -> (unit -> 'a) -> 'a
  end

  module Channel : sig
    type 'a t

    val create : ?name:string -> unit -> 'a t
    val try_push : 'a t -> 'a -> bool
    val try_pop : 'a t -> 'a option
    val drain : 'a t -> 'a list
    val close : 'a t -> unit
    val length : 'a t -> int
  end

  module Domain_ : sig
    type 'a handle

    val spawn : (unit -> 'a) -> 'a handle
    val join : 'a handle -> 'a
  end
end

module Bare : PRIMS = struct
  module Ref = struct
    type 'a t = 'a ref

    let make ?name:_ v = ref v
    let get = ( ! )
    let set r v = r := v
  end

  module Atomic = struct
    type 'a t = 'a Stdlib.Atomic.t

    let make ?name:_ v = Stdlib.Atomic.make v
    let get = Stdlib.Atomic.get
    let set = Stdlib.Atomic.set
    let incr = Stdlib.Atomic.incr
    let compare_and_set = Stdlib.Atomic.compare_and_set
  end

  module Mutex = struct
    type t = Stdlib.Mutex.t

    let create ?name:_ () = Stdlib.Mutex.create ()
    let with_lock = Sync.with_lock
  end

  module Channel = struct
    type 'a t = 'a C4_runtime.Channel.t

    let create ?name:_ () = C4_runtime.Channel.create ()
    let try_push = C4_runtime.Channel.try_push
    let try_pop = C4_runtime.Channel.try_pop
    let drain c = C4_runtime.Channel.drain_matching c ~f:(fun _ -> true)
    let close = C4_runtime.Channel.close
    let length = C4_runtime.Channel.length
  end

  module Domain_ = struct
    type 'a handle = 'a Domain.t

    let spawn = Domain.spawn
    let join = Domain.join
  end
end

module Traced (R : sig
  val recorder : Recorder.t
end) : PRIMS = struct
  let r = R.recorder
  let tid () = Recorder.tid r

  module Ref = struct
    type 'a t = { mutable v : 'a; loc : int }

    let make ?name v = { v; loc = Recorder.loc r name }

    let get t =
      Recorder.record r (Event.Plain { thread = tid (); loc = t.loc; access = Event.Read });
      t.v

    let set t v =
      Recorder.record r (Event.Plain { thread = tid (); loc = t.loc; access = Event.Write });
      t.v <- v
  end

  module Atomic = struct
    (* [serial] makes "perform the op" and "record the event" one
       indivisible step, so the recorded order of atomic ops on a
       location matches their real SC order and the detector never
       builds a happens-before edge the execution did not have. *)
    type 'a t = { v : 'a Stdlib.Atomic.t; loc : int; serial : Stdlib.Mutex.t }

    let make ?name v =
      { v = Stdlib.Atomic.make v; loc = Recorder.loc r name; serial = Stdlib.Mutex.create () }

    let op t access f =
      Sync.with_lock t.serial (fun () ->
          let result = f t.v in
          Recorder.record r (Event.Atomic_op { thread = tid (); loc = t.loc; access });
          result)

    let get t = op t Event.Read Stdlib.Atomic.get
    let set t v = op t Event.Write (fun a -> Stdlib.Atomic.set a v)
    let incr t = op t Event.Write Stdlib.Atomic.incr

    let compare_and_set t expected desired =
      op t Event.Write (fun a -> Stdlib.Atomic.compare_and_set a expected desired)
  end

  module Mutex = struct
    type t = { m : Stdlib.Mutex.t; lock : int }

    let create ?name () = { m = Stdlib.Mutex.create (); lock = Recorder.lock r name }

    let with_lock t f =
      Sync.with_lock t.m (fun () ->
          Recorder.record r (Event.Acquire { thread = tid (); lock = t.lock });
          Fun.protect
            ~finally:(fun () ->
              Recorder.record r (Event.Release { thread = tid (); lock = t.lock }))
            f)
  end

  module Channel = struct
    (* The real channel synchronises every operation through one
       internal mutex; model that as acquire/release of a per-channel
       lock. [serial] keeps the recorded order equal to the real
       serialisation order, as for atomics. *)
    type 'a t = { ch : 'a C4_runtime.Channel.t; lock : int; serial : Stdlib.Mutex.t }

    let create ?name () =
      { ch = C4_runtime.Channel.create (); lock = Recorder.lock r name;
        serial = Stdlib.Mutex.create () }

    let op t f =
      Sync.with_lock t.serial (fun () ->
          Recorder.record r (Event.Acquire { thread = tid (); lock = t.lock });
          Fun.protect
            ~finally:(fun () ->
              Recorder.record r (Event.Release { thread = tid (); lock = t.lock }))
            (fun () -> f t.ch))

    let try_push t v = op t (fun ch -> C4_runtime.Channel.try_push ch v)
    let try_pop t = op t C4_runtime.Channel.try_pop
    let drain t = op t (fun ch -> C4_runtime.Channel.drain_matching ch ~f:(fun _ -> true))
    let close t = op t C4_runtime.Channel.close
    let length t = op t C4_runtime.Channel.length
  end

  module Domain_ = struct
    type 'a handle = { d : 'a Domain.t; child : int }

    let spawn f =
      let parent = tid () in
      let child = Recorder.fresh_tid r in
      Recorder.record r (Event.Fork { parent; child });
      let d =
        Domain.spawn (fun () ->
            Recorder.bind_self r child;
            f ())
      in
      { d; child }

    let join h =
      let v = Domain.join h.d in
      Recorder.record r (Event.Join { parent = tid (); child = h.child });
      v
  end
end
