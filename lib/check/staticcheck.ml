(* Driver for the typed-AST analyzer: discovers [.cmt] files under the
   build tree, extracts facts, runs {!Rules}, filters through source
   pragmas, and diffs against the checked-in baseline so CI fails only
   on findings that are new. *)

module Json = C4_obs.Json

type report = {
  violations : Lint.violation list;  (** everything found, post-pragma *)
  fresh : Lint.violation list;  (** not covered by the baseline *)
  baselined : Lint.violation list;
  stale : string list;  (** baseline keys matching nothing — prunable *)
  units : int;  (** compilation units analyzed *)
}

(* ---------------- discovery ---------------- *)

let rec walk acc path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
    (* dune hides object dirs as [.libname.objs] — do NOT skip
       dot-directories here, unlike a source walk *)
    Array.fold_left
      (fun acc entry -> walk acc (Filename.concat path entry))
      acc
      (let es = Sys.readdir path in Array.sort compare es; es)
  | Unix.S_REG when Filename.check_suffix path ".cmt" -> path :: acc
  | _ -> acc
  | exception Unix.Unix_error _ -> acc

let find_cmts dirs =
  List.sort_uniq compare (List.fold_left walk [] dirs)

let load_units cmts =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun cmt ->
      match Tast_facts.load cmt with
      | None -> None
      | Some uf ->
        (* skip dune-generated library alias modules and duplicates *)
        if Filename.check_suffix uf.Tast_facts.uf_source ".ml-gen"
           || Hashtbl.mem seen uf.Tast_facts.uf_unit
        then None
        else begin
          Hashtbl.replace seen uf.Tast_facts.uf_unit ();
          Some uf
        end)
    cmts

(* ---------------- pragmas ---------------- *)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  with Sys_error _ -> None

(* A source file opts out of a rule with the same
   [(* c4-lint: allow <rule> *)] pragma the token lint honours. *)
let apply_pragmas vs =
  let allowed = Hashtbl.create 8 in
  let allowed_for file =
    match Hashtbl.find_opt allowed file with
    | Some rules -> rules
    | None ->
      let rules =
        match read_file file with Some src -> Lint.pragmas src | None -> []
      in
      Hashtbl.replace allowed file rules;
      rules
  in
  List.filter
    (fun (v : Lint.violation) -> not (List.mem v.Lint.rule (allowed_for v.Lint.file)))
    vs

(* ---------------- baseline ---------------- *)

(* Stable line-free key: messages are deterministic and carry the
   function/lock/primitive names, so this survives line drift. *)
let key (v : Lint.violation) =
  Printf.sprintf "%s|%s|%s" v.Lint.rule v.Lint.file v.Lint.message

(* Baseline document: {"findings": [{"rule","file","message","note"?}]}.
   Raises [Json.Parse_error] or [Failure] on a malformed file. *)
let load_baseline path =
  match read_file path with
  | None -> []
  | Some src ->
    let j = Json.of_string src in
    (match Json.member "findings" j with
    | Some (Json.List items) ->
      List.map
        (fun item ->
          let field k =
            match Option.bind (Json.member k item) Json.to_string_opt with
            | Some s -> s
            | None -> failwith (Printf.sprintf "baseline finding missing %S" k)
          in
          Printf.sprintf "%s|%s|%s" (field "rule") (field "file")
            (field "message"))
        items
    | _ -> failwith "baseline: expected top-level {\"findings\": [...]}")

(* ---------------- analysis ---------------- *)

let analyze ?is_crew_core ?(baseline = []) cmt_dirs =
  let units = load_units (find_cmts cmt_dirs) in
  let vs = apply_pragmas (Rules.run ?is_crew_core units) in
  let fresh, baselined =
    List.partition (fun v -> not (List.mem (key v) baseline)) vs
  in
  let live = List.map key vs in
  let stale = List.filter (fun k -> not (List.mem k live)) baseline in
  { violations = vs; fresh; baselined; stale = List.sort_uniq compare stale;
    units = List.length units }

(* ---------------- rendering ---------------- *)

let to_text r =
  let buf = Buffer.create 256 in
  List.iter
    (fun (v : Lint.violation) ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d: [%s] %s%s\n" v.Lint.file v.Lint.line v.Lint.rule
           v.Lint.message
           (if List.memq v r.baselined then " (baselined)" else "")))
    r.violations;
  Buffer.add_string buf
    (Printf.sprintf "%d finding%s (%d fresh, %d baselined) in %d units\n"
       (List.length r.violations)
       (if List.length r.violations = 1 then "" else "s")
       (List.length r.fresh) (List.length r.baselined) r.units);
  List.iter
    (fun k ->
      Buffer.add_string buf (Printf.sprintf "stale baseline entry: %s\n" k))
    r.stale;
  Buffer.contents buf

let violation_json (v : Lint.violation) =
  Json.Obj
    [
      ("file", Json.Str v.Lint.file);
      ("line", Json.Int v.Lint.line);
      ("rule", Json.Str v.Lint.rule);
      ("message", Json.Str v.Lint.message);
    ]

let to_json r =
  Json.to_string
    (Json.Obj
       [
         ("violations", Json.List (List.map violation_json r.violations));
         ("fresh", Json.List (List.map violation_json r.fresh));
         ("baselined", Json.Int (List.length r.baselined));
         ("stale_baseline", Json.List (List.map (fun k -> Json.Str k) r.stale));
         ("units", Json.Int r.units);
       ])
