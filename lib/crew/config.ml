type compaction = {
  scan_depth : int;
  window_slo_multiplier : float;
  window_budget_fraction : float;
  scan_cost_per_slot : float;
  adaptive_close : bool;
  deadline_from_arrival : bool;
  max_batch : int;
}

type ewt_ttl = { ttl : float; sweep_interval : float }

type shed = {
  check_interval : float;
  shed_threshold : float;
  recover_threshold : float;
}

type pin_fallback = Balanced | Static

type t = {
  jbsq_bound : int;
  ewt_capacity : int;
  ewt_max_outstanding : int;
  pin_fallback : pin_fallback;
  compaction : compaction option;
  ewt_ttl : ewt_ttl option;
  shed : shed option;
}

let default_compaction =
  {
    scan_depth = 8;
    window_slo_multiplier = 10.0;
    window_budget_fraction = 0.5;
    scan_cost_per_slot = 5.0;
    adaptive_close = false;
    deadline_from_arrival = false;
    max_batch = 64;
  }

let default_shed =
  { check_interval = 20_000.0; shed_threshold = 0.05; recover_threshold = 0.01 }

let default =
  {
    jbsq_bound = 2;
    ewt_capacity = 128;
    ewt_max_outstanding = 64;
    pin_fallback = Balanced;
    compaction = None;
    ewt_ttl = None;
    shed = None;
  }

(* The runtime's channels hold the backlog the NIC's buffer slots would;
   a saturating per-entry counter must therefore never reject. *)
let queued =
  {
    default with
    compaction = Some default_compaction;
    ewt_max_outstanding = 1_000_000;
  }

let validate t =
  if t.jbsq_bound < 1 then invalid_arg "Crew.Config: jbsq_bound must be >= 1";
  if t.ewt_capacity < 1 then invalid_arg "Crew.Config: ewt_capacity must be >= 1";
  if t.ewt_max_outstanding < 1 then
    invalid_arg "Crew.Config: ewt_max_outstanding must be >= 1";
  (match t.compaction with
  | None -> ()
  | Some c ->
    if c.scan_depth < 1 then invalid_arg "Crew.Config: scan_depth must be >= 1";
    if c.max_batch < 1 then invalid_arg "Crew.Config: max_batch must be >= 1";
    if c.window_slo_multiplier < 1.0 then
      invalid_arg "Crew.Config: window_slo_multiplier must be >= 1";
    if c.window_budget_fraction <= 0.0 then
      invalid_arg "Crew.Config: window_budget_fraction must be positive");
  (match t.ewt_ttl with
  | None -> ()
  | Some { ttl; sweep_interval } ->
    if ttl <= 0.0 || sweep_interval <= 0.0 then
      invalid_arg "Crew.Config: ewt_ttl fields must be positive");
  match t.shed with
  | None -> ()
  | Some sc ->
    if sc.check_interval <= 0.0 then
      invalid_arg "Crew.Config: shed.check_interval must be positive"
