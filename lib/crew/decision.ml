type reject_reason = Table_full | Counter_saturated

type t =
  | Pin of { partition : int; worker : int }
  | Route of { partition : int; worker : int }
  | Unpin of { partition : int }
  | Reject of { partition : int; reason : reject_reason }
  | Window_open of { worker : int; key : int }
  | Window_close of { worker : int; key : int; absorbed : int }
  | Shed_level of { level : int }
  | Stale_evict of { partition : int }
  | Remap of { partition : int; from_worker : int; to_worker : int }

let to_string = function
  | Pin { partition; worker } -> Printf.sprintf "pin p%d -> w%d" partition worker
  | Route { partition; worker } -> Printf.sprintf "route p%d -> w%d" partition worker
  | Unpin { partition } -> Printf.sprintf "unpin p%d" partition
  | Reject { partition; reason } ->
    Printf.sprintf "reject p%d (%s)" partition
      (match reason with
      | Table_full -> "table_full"
      | Counter_saturated -> "counter_saturated")
  | Window_open { worker; key } -> Printf.sprintf "window_open w%d k%d" worker key
  | Window_close { worker; key; absorbed } ->
    Printf.sprintf "window_close w%d k%d n=%d" worker key absorbed
  | Shed_level { level } -> Printf.sprintf "shed_level %d" level
  | Stale_evict { partition } -> Printf.sprintf "stale_evict p%d" partition
  | Remap { partition; from_worker; to_worker } ->
    Printf.sprintf "remap p%d w%d -> w%d" partition from_worker to_worker
