module Ewt = C4_nic.Ewt
module Jbsq = C4_nic.Jbsq
module Compaction_log = C4_kvs.Compaction_log
module Registry = C4_obs.Registry

module type ENGINE = sig
  val now : unit -> float
  val at : float -> (unit -> unit) -> unit
  val dependent_queued : worker:int -> key:int -> bool
  val respond : request:int -> unit
end

type t = {
  cfg : Config.t;
  n_workers : int;
  n_partitions : int;
  owners : int array; (* durable partition -> worker assignment *)
  ewt : Ewt.t;
  jbsq : Jbsq.t;
  logs : Compaction_log.t array; (* empty when compaction is off *)
  mutable shed : int;
  mutable win_arrivals : int;
  mutable win_drops : int;
  on_decision : (Decision.t -> unit) option;
  pin_c : Registry.counter;
  route_c : Registry.counter;
  unpin_c : Registry.counter;
  reject_c : Registry.counter;
  window_open_c : Registry.counter;
  window_close_c : Registry.counter;
  shed_c : Registry.counter;
  stale_c : Registry.counter;
  remap_c : Registry.counter;
}

let emit t counter d =
  Registry.incr counter;
  match t.on_decision with None -> () | Some f -> f d

let create ?registry ?on_decision ~cfg ~n_workers ~n_partitions () =
  Config.validate cfg;
  if n_workers < 1 then invalid_arg "Crew.Core.create: n_workers";
  if n_partitions < 1 then invalid_arg "Crew.Core.create: n_partitions";
  let reg = match registry with Some r -> r | None -> Registry.create () in
  let ewt =
    Ewt.create ~registry:reg ~capacity:cfg.Config.ewt_capacity
      ~max_outstanding:cfg.Config.ewt_max_outstanding ()
  in
  let logs =
    match cfg.Config.compaction with
    | None -> [||]
    | Some c ->
      Array.init n_workers (fun _ ->
          Compaction_log.create ~registry:reg ~scan_depth:c.Config.scan_depth ())
  in
  {
    cfg;
    n_workers;
    n_partitions;
    owners = Array.init n_partitions (fun p -> p mod n_workers);
    ewt;
    jbsq = Jbsq.create ~n_workers ~bound:cfg.Config.jbsq_bound;
    logs;
    shed = 0;
    win_arrivals = 0;
    win_drops = 0;
    on_decision;
    pin_c = Registry.counter reg "crew.pin";
    route_c = Registry.counter reg "crew.route";
    unpin_c = Registry.counter reg "crew.unpin";
    reject_c = Registry.counter reg "crew.reject";
    window_open_c = Registry.counter reg "crew.window_open";
    window_close_c = Registry.counter reg "crew.window_close";
    shed_c = Registry.counter reg "crew.shed_change";
    stale_c = Registry.counter reg "crew.stale_evict";
    remap_c = Registry.counter reg "crew.remap";
  }

let config t = t.cfg
let n_workers t = t.n_workers
let n_partitions t = t.n_partitions

(* ---------------- ownership ---------------- *)

let assigned_owner t ~partition = t.owners.(partition)

let ownership_counts t =
  let counts = Array.make t.n_workers 0 in
  Array.iter (fun w -> counts.(w) <- counts.(w) + 1) t.owners;
  counts

let route_owner t ~partition =
  match Ewt.lookup t.ewt ~partition with
  | Some owner -> owner
  | None -> t.owners.(partition)

let reassign t ~from_worker ~to_worker =
  if from_worker = to_worker then 0
  else begin
  (* Transient pins first: a pin left pointing at the dead worker would
     keep routing writes onto its channel after the durable map moved. *)
  List.iter
    (fun partition -> emit t t.unpin_c (Decision.Unpin { partition }))
    (Ewt.evict_thread t.ewt ~thread:from_worker);
  let moved = ref 0 in
  Array.iteri
    (fun partition owner ->
      if owner = from_worker then begin
        t.owners.(partition) <- to_worker;
        incr moved;
        emit t t.remap_c
          (Decision.Remap { partition; from_worker; to_worker })
      end)
    t.owners;
  !moved
  end

let static_owner ~partition ~lo ~hi = lo + (partition mod (hi - lo))

(* ---------------- JBSQ ---------------- *)

let try_dispatch t ~lo ~hi = Jbsq.try_dispatch_range t.jbsq ~lo ~hi
let dispatch_to t ~worker = Jbsq.dispatch_to t.jbsq worker
let complete t ~worker = Jbsq.complete t.jbsq worker
let has_slot t ~worker = Jbsq.has_slot t.jbsq worker
let occupancy t ~worker = Jbsq.occupancy t.jbsq worker

(* ---------------- EWT admission ---------------- *)

type admit =
  | Admitted of { worker : int; fresh : bool }
  | No_slot
  | Rejected of { reason : Decision.reject_reason; owner : int option }

let admit_write t ~partition ~now ~pick =
  (* JBSQ occupancy is the NIC's queue accounting; a [`Static] engine
     (the runtime) accounts for its own channels instead. *)
  let charge = pick <> `Static in
  match Ewt.lookup t.ewt ~partition with
  | Some owner -> (
    match Ewt.note_write ~now t.ewt ~partition ~thread:owner with
    | `Ok ->
      if charge then Jbsq.dispatch_to t.jbsq owner;
      emit t t.route_c (Decision.Route { partition; worker = owner });
      Admitted { worker = owner; fresh = false }
    | `Counter_saturated ->
      emit t t.reject_c
        (Decision.Reject { partition; reason = Decision.Counter_saturated });
      Rejected { reason = Decision.Counter_saturated; owner = Some owner }
    | `Full ->
      (* note_write on an existing entry never reports a full table *)
      assert false)
  | None -> (
    (* Unowned: pick the pinning worker. Only a genuinely balanced JBSQ
       pick charges a slot as a side effect of picking. *)
    let chosen =
      match pick with
      | `Worker w -> Some (w, charge)
      | `Static -> Some (t.owners.(partition), false)
      | `Balanced (lo, hi) -> (
        match t.cfg.Config.pin_fallback with
        | Config.Static -> Some (static_owner ~partition ~lo ~hi, charge)
        | Config.Balanced -> (
          match Jbsq.try_dispatch_range t.jbsq ~lo ~hi with
          | None -> None
          | Some w -> Some (w, false) (* try_dispatch already charged *)))
    in
    match chosen with
    | None -> No_slot
    | Some (w, charge_now) -> (
      match Ewt.note_write ~now t.ewt ~partition ~thread:w with
      | `Ok ->
        if charge_now then Jbsq.dispatch_to t.jbsq w;
        emit t t.pin_c (Decision.Pin { partition; worker = w });
        Admitted { worker = w; fresh = true }
      | (`Full | `Counter_saturated) as r ->
        (* Undo the slot a balanced pick charged before the table said no. *)
        (match pick with
        | `Balanced _ when t.cfg.Config.pin_fallback = Config.Balanced ->
          Jbsq.complete t.jbsq w
        | _ -> ());
        let reason =
          match r with
          | `Full -> Decision.Table_full
          | `Counter_saturated -> Decision.Counter_saturated
        in
        emit t t.reject_c (Decision.Reject { partition; reason });
        Rejected { reason; owner = None }))

let write_done ?strict t ~partition =
  let strict =
    match strict with Some s -> s | None -> t.cfg.Config.ewt_ttl = None
  in
  let released =
    if strict then begin
      Ewt.note_response t.ewt ~partition;
      true
    end
    else Ewt.try_note_response t.ewt ~partition
  in
  if released && Ewt.outstanding t.ewt ~partition = 0 then
    emit t t.unpin_c (Decision.Unpin { partition })

let sweep_stale t ~now =
  match t.cfg.Config.ewt_ttl with
  | None -> []
  | Some { Config.ttl; _ } ->
    let evicted = Ewt.expire_stale_partitions t.ewt ~now ~ttl in
    List.iter
      (fun partition -> emit t t.stale_c (Decision.Stale_evict { partition }))
      evicted;
    evicted

let ewt_occupancy t = Ewt.occupancy t.ewt
let ewt_outstanding t ~partition = Ewt.outstanding t.ewt ~partition
let ewt_stats t = Ewt.occupancy_stats t.ewt

(* ---------------- compaction windows ---------------- *)

let compaction_enabled t = t.cfg.Config.compaction <> None

let scan_depth t =
  match t.cfg.Config.compaction with None -> 0 | Some c -> c.Config.scan_depth

let max_batch t =
  match t.cfg.Config.compaction with None -> 1 | Some c -> c.Config.max_batch

let scan_cost t ~queued =
  match t.cfg.Config.compaction with
  | None -> 0.0
  | Some c ->
    c.Config.scan_cost_per_slot *. float_of_int (min queued c.Config.scan_depth)

let window_is_open t ~worker =
  compaction_enabled t && Compaction_log.window_open t.logs.(worker)

let window_accepts t ~worker ~key =
  compaction_enabled t && Compaction_log.is_open_for t.logs.(worker) ~key

let window_buffered t ~worker =
  if compaction_enabled t then Compaction_log.buffered t.logs.(worker) else 0

let open_window t ~worker ~key ~now ~arrival ~mean_service =
  match t.cfg.Config.compaction with
  | None -> invalid_arg "Crew.Core.open_window: compaction disabled"
  | Some c ->
    (* "Just in time before the SLO expires": the batch must complete
       before the opener's own deadline. Each window consumes at most
       [window_budget_fraction] of the SLO slack S̄·(SLO−1), so a write
       that waits out one window's tail and rides the whole next one
       still answers within SLO; the paper's formula is the
       fraction-1, anchor-at-open special case. *)
    let anchor = if c.Config.deadline_from_arrival then arrival else now in
    let slack =
      mean_service
      *. (c.Config.window_slo_multiplier -. 1.0)
      *. c.Config.window_budget_fraction
    in
    let deadline = Float.max now (anchor +. slack) in
    Compaction_log.open_window t.logs.(worker) ~key ~now ~expires_at:deadline;
    emit t t.window_open_c (Decision.Window_open { worker; key });
    deadline

let absorb t ~worker ~key ~id ~now =
  Compaction_log.absorb t.logs.(worker) ~key
    { Compaction_log.request_id = id; sender = 0; value = Bytes.empty; buffered_at = now }

let must_close t ~worker ~now ~queue_empty =
  match t.cfg.Config.compaction with
  | None -> false
  | Some c ->
    let log = t.logs.(worker) in
    Compaction_log.window_open log
    && (Compaction_log.expired log ~now || (c.Config.adaptive_close && queue_empty))

let close_window t ~worker ~now =
  if not (compaction_enabled t) then None
  else
    match Compaction_log.close t.logs.(worker) ~now with
    | None -> None
    | Some closed ->
      emit t t.window_close_c
        (Decision.Window_close
           {
             worker;
             key = closed.Compaction_log.key;
             absorbed = List.length closed.Compaction_log.writes;
           });
      Some closed

let compaction_stats t =
  if not (compaction_enabled t) then None
  else
    Array.fold_left
      (fun acc log ->
        let s = Compaction_log.stats log in
        match acc with
        | None -> Some s
        | Some a ->
          Some
            {
              Compaction_log.windows_opened =
                a.Compaction_log.windows_opened + s.Compaction_log.windows_opened;
              writes_compacted =
                a.Compaction_log.writes_compacted + s.Compaction_log.writes_compacted;
              largest_window =
                max a.Compaction_log.largest_window s.Compaction_log.largest_window;
            })
      None t.logs

(* ---------------- adaptive load shedding ---------------- *)

let shed_level t = t.shed
let note_arrival t = t.win_arrivals <- t.win_arrivals + 1
let note_drop t = t.win_drops <- t.win_drops + 1

let shed_check t ~now:_ =
  match t.cfg.Config.shed with
  | None -> t.shed
  | Some sc ->
    let rate =
      if t.win_arrivals = 0 then 0.0
      else float_of_int t.win_drops /. float_of_int t.win_arrivals
    in
    let level =
      if rate > sc.Config.shed_threshold then min 2 (t.shed + 1)
      else if rate < sc.Config.recover_threshold then max 0 (t.shed - 1)
      else t.shed
    in
    if level <> t.shed then begin
      t.shed <- level;
      emit t t.shed_c (Decision.Shed_level { level })
    end;
    t.win_arrivals <- 0;
    t.win_drops <- 0;
    t.shed

(* Shed cheap-to-retry work first: reads, then only the writes
   compaction cannot absorb — losing an absorbable write would forfeit
   the batching capacity that is digging the server out. *)
let shed_rejects t ~is_read =
  t.shed >= 1 && (is_read || (t.shed >= 2 && t.cfg.Config.compaction = None))
