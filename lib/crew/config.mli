(** Unified d-CREW policy configuration.

    Every engine that executes the paper's policy — the discrete-event
    model ([C4_model.Server]), the multicore runtime
    ([C4_runtime.Server]) and, through it, the network stack — is
    parameterised by this one record, so the stacks cannot drift on
    thresholds: the scan depth the simulator validates is the scan depth
    the real server runs.

    All durations are nanoseconds of the driving engine's clock
    (simulated time for the model, wall-clock for the runtime). *)

(** Write-compaction window parameters (paper Sec. 4.3, 5.3). *)
type compaction = {
  scan_depth : int;  (** queue slots scanned for dependent writes *)
  window_slo_multiplier : float;
      (** the SLO (in multiples of S̄) the window must respect *)
  window_budget_fraction : float;
      (** fraction of the SLO slack S̄·(multiplier − 1) one window may
          consume. 0.5 (default) keeps even a write that just missed one
          window inside the SLO; 1.0 reproduces the paper's
          T_expiry = T_open + S̄·(SLO−1) formula *)
  scan_cost_per_slot : float;  (** ns of service added per scanned slot *)
  adaptive_close : bool;
      (** close the window early when the worker would otherwise idle
          (the Sec. 7.2 "software modification"); off = paper default *)
  deadline_from_arrival : bool;
      (** anchor the window deadline at the opening request's arrival
          instead of the open instant (the paper's choice): arrival
          anchoring protects the opener's SLO but collapses window
          lengths once queueing delay builds *)
  max_batch : int;  (** cap on writes combined into one window *)
}

(** EWT staleness: entries idle for [ttl] ns are reclaimed by a sweep
    every [sweep_interval] ns, so a leaked release cannot pin a
    partition to one worker forever. *)
type ewt_ttl = { ttl : float; sweep_interval : float }

(** Adaptive load shedding. Every [check_interval] ns the non-shed drop
    rate of the last window is compared against the thresholds: above
    [shed_threshold] the shed level rises one step (1 = shed reads,
    2 = also shed writes compaction cannot absorb), below
    [recover_threshold] it falls one step. *)
type shed = {
  check_interval : float;
  shed_threshold : float;
  recover_threshold : float;
}

(** Where a write to an UNOWNED partition pins when the engine asks for
    a balanced pick: [Balanced] consults JBSQ (the paper's NIC, and the
    model's default); [Static] hashes the partition onto the pick range
    (deterministic regardless of queue state — what the runtime does,
    and what the differential parity test sets on both engines). *)
type pin_fallback = Balanced | Static

type t = {
  jbsq_bound : int;  (** k of JBSQ(k); the paper uses 2 *)
  ewt_capacity : int;  (** EWT entries (default 128, the paper's sizing) *)
  ewt_max_outstanding : int;  (** per-entry outstanding-write cap *)
  pin_fallback : pin_fallback;
  compaction : compaction option;  (** [None] = never open windows *)
  ewt_ttl : ewt_ttl option;  (** [None] = entries never expire *)
  shed : shed option;  (** [None] = never shed *)
}

val default_compaction : compaction
val default_shed : shed

(** The paper's NIC profile: JBSQ(2), 128-entry EWT with 64 outstanding
    writes per entry, balanced pin fallback, no compaction, no TTL, no
    shedding — the model's baseline. *)
val default : t

(** The queued-engine profile the multicore runtime starts from. Same
    thresholds as {!default} with two documented deltas: compaction on
    (the runtime's historical default), and [ewt_max_outstanding] so
    large it never rejects — a real server's channel provides the
    backpressure the NIC's buffer-slot counter models, so saturating a
    6-bit counter must not drop writes that the channel can hold. *)
val queued : t

(** Raises [Invalid_argument] on non-positive bounds/intervals. *)
val validate : t -> unit
