(** Policy decisions emitted by {!Core} — the core's entire effect on
    the outside world.

    Each value names one state transition the d-CREW policy took:
    pinning a partition to a writer, routing along an existing pin,
    opening or closing a compaction window, changing the shed level,
    evicting a stale mapping, or remapping ownership after a crash. The
    driving engine turns decisions into mechanism (queue pushes, store
    writes, timers); the differential parity test replays one trace
    through the discrete-event model and the multicore runtime and
    asserts the two decision sequences are identical.

    Deliberately engine-comparable: payloads carry only stable
    identifiers (partitions, workers, keys, counts, levels), never
    timestamps — sim-time and wall-clock could never agree on those. *)

type reject_reason =
  | Table_full  (** EWT at capacity; no entry could be allocated *)
  | Counter_saturated  (** the pin exists but its write counter is maxed *)

type t =
  | Pin of { partition : int; worker : int }
      (** first outstanding write: partition enters exclusive-write mode *)
  | Route of { partition : int; worker : int }
      (** subsequent write routed along the existing pin *)
  | Unpin of { partition : int }
      (** last outstanding write completed: partition balanceable again *)
  | Reject of { partition : int; reason : reject_reason }
  | Window_open of { worker : int; key : int }
  | Window_close of { worker : int; key : int; absorbed : int }
      (** [absorbed] counts every write answered by the window, opener
          included *)
  | Shed_level of { level : int }
  | Stale_evict of { partition : int }
      (** TTL sweep reclaimed an idle pin *)
  | Remap of { partition : int; from_worker : int; to_worker : int }
      (** durable ownership moved (crash recovery) *)

val to_string : t -> string
