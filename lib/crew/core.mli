(** The engine-agnostic d-CREW policy core.

    One explicit-state machine holds every policy the paper contributes
    — EWT exclusive-writer ownership, JBSQ(k) queue selection, the
    compaction-window lifecycle (open / absorb / apply / deferred
    respond / close), EWT TTL staleness sweeps, and adaptive load-shed
    levels — as transition functions with no wall-clock, no threads and
    no I/O inside. Both execution engines drive the same instance of
    this code: the discrete-event model feeds it simulated time, the
    multicore runtime feeds it wall-clock time, and the differential
    parity test checks that the two produce identical
    {!Decision.t} sequences for one recorded trace.

    {2 The clock/effects signature}

    The core is pure with respect to its engine: time only enters
    through explicit [~now] arguments, and effects only leave through
    return values and the {!Decision.t} stream. {!ENGINE} names the
    obligations a driver discharges around the core; it is the contract
    both [C4_model.Server] (simulated) and [C4_runtime.Server]
    (domains + channels) implement. *)

(** What a driving engine must supply around the core. The core never
    calls these — inversion of control runs the other way: the engine
    reads the clock, hands [now] to each transition, and turns the
    returned instructions into mechanism. *)
module type ENGINE = sig
  (** Current time in ns (simulated or wall-clock — the core does not
      care, only that it is monotone per driver). *)
  val now : unit -> float

  (** Arrange for a callback at an absolute deadline — window-close
      timers and periodic sweep/shed ticks. A queued engine that closes
      windows as soon as the harvest is applied may discharge this
      trivially. *)
  val at : float -> (unit -> unit) -> unit

  (** Look ahead in the worker's queue for a dependent (same-key)
      write, up to the core's scan depth. *)
  val dependent_queued : worker:int -> key:int -> bool

  (** Deliver a response. The compaction contract: responses for
      absorbed writes are delivered only after {!val-close_window}
      returns them — never early — which is what keeps compacted
      histories linearizable on both engines. *)
  val respond : request:int -> unit
end

type t

(** The admission verdict for one write. *)
type admit =
  | Admitted of { worker : int; fresh : bool }
      (** route to [worker]; [fresh] means this write created the pin
          (an EWT miss), otherwise it rode an existing one (a hit) *)
  | No_slot
      (** partition unowned and no balanced slot free: the engine
          should park the write in its central queue and retry via
          [pick:`Worker] when a slot frees *)
  | Rejected of { reason : Decision.reject_reason; owner : int option }
      (** dropped by the EWT; [owner] is the pinned worker when the
          reject was a saturated counter (a hit), [None] on a full
          table (a miss) *)

(** [create ~cfg ~n_workers ~n_partitions ()] validates [cfg]
    ({!Config.validate}) and builds the initial state: durable
    ownership assigns partition [p] to worker [p mod n_workers], the
    EWT is empty, no windows are open, shed level 0.

    @param registry receives the EWT / compaction metrics plus one
    [crew.*] counter per decision kind; private when omitted. Pass a
    thread-safe registry when workers on several domains drive the
    core.
    @param on_decision called synchronously with every decision, in
    decision order — the parity recorder. *)
val create :
  ?registry:C4_obs.Registry.t ->
  ?on_decision:(Decision.t -> unit) ->
  cfg:Config.t ->
  n_workers:int ->
  n_partitions:int ->
  unit ->
  t

val config : t -> Config.t
val n_workers : t -> int
val n_partitions : t -> int

(** {2 Ownership}

    Two layers, consulted pin-first. The durable assignment is the
    crash-recovery ground truth (what the runtime's owner map used to
    be); the EWT pin is the transient exclusive-writer mapping the NIC
    holds while writes are outstanding. *)

(** Durable assignment of [partition]. *)
val assigned_owner : t -> partition:int -> int

(** Per-worker durable-assignment census: [counts.(w)] partitions are
    assigned to worker [w] (they sum to [n_partitions]). The balance —
    and, after a {!reassign}, the skew — a telemetry plane should show.
    Snapshot semantics only under the engine's routing lock, like every
    other read of the ownership map. *)
val ownership_counts : t -> int array

(** Pin-aware view: the EWT pin when one exists (it always agrees with
    the durable assignment under static pinning), else the durable
    assignment. This is the ownership view the network stack routes
    through. *)
val route_owner : t -> partition:int -> int

(** Move every durable assignment (and evict every EWT pin) of
    [from_worker] to [to_worker], emitting one [Remap] per moved
    partition; returns how many moved. Crash recovery. No-op when
    [from_worker = to_worker] (sole-survivor recovery). *)
val reassign : t -> from_worker:int -> to_worker:int -> int

(** The static hash fallback for unowned writes confined to the worker
    range [lo, hi) — pure, shared by both engines so they cannot
    disagree on it. *)
val static_owner : partition:int -> lo:int -> hi:int -> int

(** {2 JBSQ(k) queue selection}

    Occupancy counts and choice logic only; the request objects live in
    the engine's queues. *)

val try_dispatch : t -> lo:int -> hi:int -> int option
val dispatch_to : t -> worker:int -> unit
val complete : t -> worker:int -> unit
val has_slot : t -> worker:int -> bool
val occupancy : t -> worker:int -> int

(** {2 EWT write admission}

    [admit_write] runs the paper's d-CREW dispatch for one write:
    consult the EWT; on a hit bump the pin's counter and route to the
    owner; on a miss pick a worker — [`Balanced (lo, hi)] asks JBSQ
    (or the static hash, per {!Config.pin_fallback}), [`Worker w] pins
    to a given worker (central-queue hand-out), [`Static] uses the
    durable assignment — and install the pin. JBSQ occupancy is charged
    for every admission except [`Static] picks, whose engine owns its
    own queue accounting (the runtime's channels). *)
val admit_write :
  t ->
  partition:int ->
  now:float ->
  pick:[ `Balanced of int * int | `Static | `Worker of int ] ->
  admit

(** The write's response left: decrement the pin's counter, emitting
    [Unpin] when it frees. [strict] defaults to [true] exactly when no
    TTL is configured: then a missing pin is a protocol violation and
    raises; with a TTL (or [~strict:false]) a missing pin counts an
    orphan release instead — the sweep may legitimately have reclaimed
    the mapping. *)
val write_done : ?strict:bool -> t -> partition:int -> unit

(** Evict pins idle past the TTL, emitting [Stale_evict] per partition
    (ascending); no-op returning [[]] when no TTL is configured. *)
val sweep_stale : t -> now:float -> int list

val ewt_occupancy : t -> int
val ewt_outstanding : t -> partition:int -> int
val ewt_stats : t -> C4_nic.Ewt.occupancy_stats

(** {2 Compaction windows}

    One window per worker, at most. The engine detects the trigger (a
    dependent write within scan depth — a queue scan in the model, a
    channel harvest in the runtime), and the core owns the lifecycle:
    when a window may open, what its deadline is, what it absorbed, and
    when it must close. Absorbed writes are answered only from the list
    {!close_window} returns. *)

val compaction_enabled : t -> bool

(** Scan depth (0 when compaction is disabled). *)
val scan_depth : t -> int

(** Max writes per window (1 when compaction is disabled). *)
val max_batch : t -> int

(** Service-time cost of scanning [queued] slots (capped at scan
    depth); 0 when compaction is disabled. *)
val scan_cost : t -> queued:int -> float

val window_is_open : t -> worker:int -> bool

(** Does [worker]'s open window accept [key]? (False when no window.) *)
val window_accepts : t -> worker:int -> key:int -> bool

val window_buffered : t -> worker:int -> int

(** Open a window on [worker] for [key] and return its absolute close
    deadline: [max now (anchor + S̄·(multiplier−1)·budget)] where the
    anchor is [arrival] or [now] per {!Config.compaction}. Emits
    [Window_open]. Raises if compaction is off or a window is already
    open on this worker. *)
val open_window :
  t -> worker:int -> key:int -> now:float -> arrival:float -> mean_service:float -> float

(** Buffer write [id] into the open window (deferring its response). *)
val absorb : t -> worker:int -> key:int -> id:int -> now:float -> unit

(** Must [worker]'s window close now — deadline reached, or queue dry
    under adaptive close? False when no window is open. *)
val must_close : t -> worker:int -> now:float -> queue_empty:bool -> bool

(** Close the window and return the absorbed writes in buffering order
    — the engine applies ONE combined update and only then delivers
    these responses. Emits [Window_close]; [None] if no window. *)
val close_window : t -> worker:int -> now:float -> C4_kvs.Compaction_log.closed option

(** Lifetime window stats merged across workers; [None] when
    compaction is disabled. *)
val compaction_stats : t -> C4_kvs.Compaction_log.stats option

(** {2 Adaptive load shedding}

    The engine feeds arrival/drop counts and a periodic tick; the core
    owns the thresholds and the level. *)

val shed_level : t -> int
val note_arrival : t -> unit

(** Count one non-shed drop in the current window. *)
val note_drop : t -> unit

(** Periodic tick: compare the window's drop rate against the
    thresholds, move the level one step, reset the window, return the
    (possibly new) level. Emits [Shed_level] on change. *)
val shed_check : t -> now:float -> int

(** Would the current level reject this request? Level ≥ 1 sheds reads;
    level ≥ 2 also sheds writes when compaction cannot absorb them. *)
val shed_rejects : t -> is_read:bool -> bool
