module Server = C4_model.Server
module Policy = C4_model.Policy
module Service = C4_model.Service
module Generator = C4_workload.Generator

type system = Baseline | Erew | Ideal | Rlu | Mv_rlu | Dcrew | Comp

let all = [ Baseline; Erew; Ideal; Rlu; Mv_rlu; Dcrew; Comp ]

let name = function
  | Baseline -> "Baseline"
  | Erew -> "EREW"
  | Ideal -> "Ideal"
  | Rlu -> "RLU"
  | Mv_rlu -> "MV-RLU"
  | Dcrew -> "d-CREW"
  | Comp -> "Comp"

let of_name s =
  match String.lowercase_ascii s with
  | "baseline" | "crew" -> Ok Baseline
  | "erew" -> Ok Erew
  | "ideal" -> Ok Ideal
  | "rlu" -> Ok Rlu
  | "mv-rlu" | "mvrlu" -> Ok Mv_rlu
  | "d-crew" | "dcrew" -> Ok Dcrew
  | "comp" | "compaction" -> Ok Comp
  | _ ->
    Error
      (Printf.sprintf
         "unknown system %S (expected baseline|erew|ideal|rlu|mv-rlu|d-crew|comp)" s)

let policy_of = function
  | Baseline | Comp -> Policy.Crew
  | Erew -> Policy.Erew
  | Ideal -> Policy.Ideal
  | Rlu -> Policy.Crcw_rlu Policy.rlu_default
  | Mv_rlu -> Policy.Crcw_rlu Policy.mvrlu_default
  | Dcrew -> Policy.Dcrew

let model ?(seed = 42) system =
  {
    Server.default_config with
    Server.policy = policy_of system;
    crew =
      (match system with
      | Comp ->
        {
          C4_crew.Config.default with
          C4_crew.Config.compaction = Some C4_crew.Config.default_compaction;
        }
      | _ -> C4_crew.Config.default);
    seed;
  }

let full ?seed ?(item = C4_kvs.Item.large) system =
  {
    (model ?seed system) with
    Server.cache = Some C4_cache.Coherence.default_params;
    service = Service.with_item item;
  }

(* The paper's dataset: 1.6 M items; we group the 1 M-bucket index into
   8 K partitions (the NIC's minimal balancing unit spans a couple of
   hundred keys). The rate placeholder is overwritten per experiment. *)
let base_workload =
  {
    Generator.n_keys = 1_600_000;
    n_partitions = 8192;
    theta = 0.0;
    write_fraction = 0.5;
    rate = 0.05;
    value_size = 512;
    large_value_size = 0;
    large_fraction = 0.0;
  }

let workload_wi_uni ~write_fraction =
  { base_workload with Generator.theta = 0.0; write_fraction }

let workload_rw_sk ~theta ~write_fraction =
  { base_workload with Generator.theta; write_fraction }

let slo_default = 10.0
let slo_relaxed = 20.0
