module Generator = C4_workload.Generator
module Trace = C4_workload.Trace
module Request = C4_workload.Request
module Server = C4_model.Server
module Metrics = C4_model.Metrics
module Histogram = C4_stats.Histogram

type netcache = { hot_keys : int; t_switch : float }

type config = {
  n_nodes : int;
  node : Server.config;
  workload : Generator.config;
  netcache : netcache option;
}

type node_result = {
  node_id : int;
  requests : int;
  result : Server.result;
}

type t = {
  nodes : node_result list;
  cluster_p99 : float;
  cluster_mean : float;
  cluster_tput_mrps : float;
  imbalance : float;
  switch_hits : int;
}

(* Node sharding is independent of the in-node partition function (a
   real deployment hashes twice: consistent hashing across nodes, bucket
   hashing within one). The shared helper keeps this model and the real
   network client (C4_net.Client) routing identically. *)
let node_of_key ~n_nodes key = C4_kvs.Hash.node_of_key ~n_nodes key

let run ?(seed = 42) config ~n_requests =
  if config.n_nodes <= 0 then invalid_arg "Cluster.run: n_nodes";
  let gen = Generator.create config.workload ~seed in
  let per_node = Array.make config.n_nodes [] in
  let switch_hits = ref 0 in
  let forwarded = ref 0 in
  (* Keys are popularity ranks in the generator, so the switch's hot set
     is exactly the keys below [hot_keys] — how NetCache's sampled
     hot-key reports converge in steady state. Reads there are answered
     in the network; everything else (and every write: write-through)
     reaches the owning node. *)
  let switch_serves (r : Request.t) =
    match config.netcache with
    | Some nc -> Request.is_read r && r.Request.key < nc.hot_keys
    | None -> false
  in
  for _ = 1 to n_requests do
    let r = Generator.next gen in
    if switch_serves r then incr switch_hits
    else begin
      incr forwarded;
      let node = node_of_key ~n_nodes:config.n_nodes r.Request.key in
      per_node.(node) <- r :: per_node.(node)
    end
  done;
  let nodes =
    Array.to_list
      (Array.mapi
         (fun node_id reversed ->
           let requests = Array.of_list (List.rev reversed) in
           let node_cfg = { config.node with Server.seed = config.node.Server.seed + node_id } in
           let result =
             if Array.length requests = 0 then
               (* An idle node: simulate a token stream so the result is
                  well formed. *)
               Server.run node_cfg
                 ~workload:{ config.workload with Generator.rate = 1e-6 }
                 ~n_requests:1
             else Server.run_trace node_cfg ~trace:(Trace.of_array requests)
                    ~n_partitions:config.workload.Generator.n_partitions
           in
           { node_id; requests = Array.length requests; result })
         per_node)
  in
  let merged = Histogram.create () in
  List.iter
    (fun n -> Histogram.merge merged ~other:(Metrics.latency n.result.Server.metrics))
    nodes;
  (match config.netcache with
  | Some nc when !switch_hits > 0 -> Histogram.add_many merged nc.t_switch !switch_hits
  | _ -> ());
  let tput =
    List.fold_left
      (fun acc n -> acc +. Metrics.throughput_mrps n.result.Server.metrics)
      0.0 nodes
  in
  let max_requests = List.fold_left (fun acc n -> max acc n.requests) 0 nodes in
  let fair = float_of_int (max 1 !forwarded) /. float_of_int config.n_nodes in
  {
    nodes;
    cluster_p99 = Histogram.p99 merged;
    cluster_mean = Histogram.mean merged;
    cluster_tput_mrps = tput;
    imbalance = (if fair > 0.0 then float_of_int max_requests /. fair else 1.0);
    switch_hits = !switch_hits;
  }
