(** Periodic time-series snapshots of a {!Registry}.

    [start ~sim ~registry ~interval_ns] schedules a recurring simulator
    tick that appends one CSV row (time plus every registered metric's
    current scalar) per [interval_ns] of simulated time. The tick keeps
    rescheduling itself only while other events remain pending, so it
    never keeps an otherwise-drained simulation alive.

    [pre] runs just before each row is sampled — the place to refresh
    gauges that are polled rather than pushed (queue depths, table
    occupancy). *)

type t

val start :
  ?pre:(unit -> unit) ->
  sim:C4_dsim.Sim.t ->
  registry:Registry.t ->
  interval_ns:float ->
  unit ->
  t

(** Rows collected so far (header: ["t_ns"] followed by metric names). *)
val csv : t -> C4_stats.Csv.t

val rows : t -> int
