(** Per-request lifecycle tracer.

    A traced request is decomposed into a contiguous chain of typed
    spans — queue wait, on-core service (normal, forwarding or
    window-absorb), and compaction-window deferral — whose durations sum
    exactly to the request's end-to-end latency. Lane-level spans
    (window flushes, RLU background promotion) and instant events (NIC
    arrival, EWT lookup outcome, JBSQ dispatch, drops) fill in the
    worker and NIC timelines around them.

    The tracer is a function-pointer record over a {!sink}: {!null} is
    a disabled instance whose operations test one boolean and return,
    so instrumentation left in the hot path costs nothing when tracing
    is off and cannot perturb simulation results. {!create} returns a
    collecting instance that keeps every span and event in memory for
    export ({!Chrome}, {!Report}).

    Sampling: with [~sample:n], only requests whose id is a multiple of
    [n] are traced — exactly every nth request of a sequentially
    numbered stream. *)

type phase =
  | Queue  (** waiting in a worker or central queue *)
  | Service  (** normal on-core service *)
  | Forward  (** software-delegation hand-off occupancy *)
  | Absorb  (** buffering a write into an open compaction window *)
  | Deferral  (** response parked until the window flushes *)
  | Flush  (** a closing window's combined write (lane span) *)
  | Background  (** RLU log promotion etc. (lane span) *)

val phase_name : phase -> string

(** Phases that belong to a single request's latency decomposition
    (queue + service + deferral variants); [Flush] and [Background]
    occupy a lane but no one request. *)
val request_phase : phase -> bool

type span = {
  req : int;  (** request id, or [-1] for lane-only spans *)
  lane : int;  (** worker id; {!nic_lane} for the NIC *)
  phase : phase;
  t0 : float;
  t1 : float;
}

type event = {
  ev_name : string;
  ev_lane : int;
  ev_ts : float;
  ev_args : (string * string) list;
}

type sink = { on_span : span -> unit; on_event : event -> unit }

type t

(** The NIC's lane id (-1); workers use their worker id. *)
val nic_lane : int

(** Disabled tracer: every operation is a no-op. *)
val null : t

(** Collecting tracer. [sample] defaults to 1 (trace everything). *)
val create : ?sample:int -> unit -> t

(** Route spans/events to a custom sink instead of collecting. *)
val with_sink : ?sample:int -> sink -> t

val enabled : t -> bool
val sample : t -> int

(** Is request [id] selected by the sampling filter? *)
val sampled : t -> id:int -> bool

(** {1 Request lifecycle} — calls for unsampled ids are no-ops. *)

(** Start tracing request [id]: emits an [arrival] instant on the NIC
    lane and anchors the span chain at [ts]. *)
val arrival : t -> id:int -> op:string -> partition:int -> ts:float -> unit

(** Instant event attributed to a live traced request. *)
val request_event :
  t -> id:int -> name:string -> ?args:(string * string) list -> ts:float -> unit ->
  unit

(** The request left a queue and went on-core at [ts] on [lane]:
    closes the pending [Queue] span. *)
val service_begin : t -> id:int -> lane:int -> ts:float -> unit

(** On-core occupancy for the request ended at [ts]: emits a span of
    [phase] ([Service], [Forward] or [Absorb]) from the chain mark. *)
val service_end : t -> id:int -> lane:int -> phase:phase -> ts:float -> unit

(** Response left the system at [ts]: closes a [Deferral] span if time
    remains on the chain, emits a [departure] instant, and records the
    (arrival, departure) pair. *)
val departure : t -> id:int -> lane:int -> ts:float -> unit

(** Request dropped before completion (emits a [drop] instant). *)
val drop : t -> id:int -> reason:string -> ts:float -> unit

(** {1 Lane activity not tied to one request} *)

val lane_span : t -> lane:int -> phase:phase -> t0:float -> t1:float -> unit

(** Instant event on the NIC lane, independent of any live request —
    fault injections, shed-level changes, EWT stale sweeps. *)
val instant : t -> name:string -> ?args:(string * string) list -> ts:float -> unit -> unit

(** {1 Collected data} (empty unless built with {!create}) *)

(** Spans in emission order. *)
val spans : t -> span list

(** Instant events in emission order. *)
val events : t -> event list

(** Completed traced requests as [(id, arrival, departure)], in
    completion order. *)
val completed : t -> (int * float * float) list

(** Ids of requests currently mid-flight (diagnostics). *)
val live_count : t -> int
