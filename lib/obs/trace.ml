type phase = Queue | Service | Forward | Absorb | Deferral | Flush | Background

let phase_name = function
  | Queue -> "queue"
  | Service -> "service"
  | Forward -> "forward"
  | Absorb -> "absorb"
  | Deferral -> "deferral"
  | Flush -> "flush"
  | Background -> "background"

let request_phase = function
  | Queue | Service | Forward | Absorb | Deferral -> true
  | Flush | Background -> false

type span = { req : int; lane : int; phase : phase; t0 : float; t1 : float }

type event = {
  ev_name : string;
  ev_lane : int;
  ev_ts : float;
  ev_args : (string * string) list;
}

type sink = { on_span : span -> unit; on_event : event -> unit }

(* Chain state of one live traced request: [mark] is the end of the
   last emitted span (initially the arrival time), so the next span
   always starts where the previous one stopped and the chain tiles
   [arrival, departure] without gaps or overlaps. *)
type live = { mutable mark : float; arrived : float }

type t = {
  on : bool;
  every : int;
  sink : sink;
  live : (int, live) Hashtbl.t;
  mutable spans_rev : span list;
  mutable events_rev : event list;
  mutable completed_rev : (int * float * float) list;
}

let nic_lane = -1

let make ~on ~sample sink =
  if sample < 1 then invalid_arg "Trace: sample must be >= 1";
  {
    on;
    every = sample;
    sink;
    live = Hashtbl.create (if on then 256 else 0);
    spans_rev = [];
    events_rev = [];
    completed_rev = [];
  }

let null_sink = { on_span = ignore; on_event = ignore }
let null = make ~on:false ~sample:1 null_sink

let with_sink ?(sample = 1) sink = make ~on:true ~sample sink

let create ?(sample = 1) () =
  if sample < 1 then
    invalid_arg (Printf.sprintf "Trace.create: sample %d must be >= 1" sample);
  (* The collecting sink needs the tracer it feeds; tie the knot
     through a cell rather than a mutable sink field. *)
  let cell = ref None in
  let into f x = match !cell with None -> () | Some t -> f t x in
  let sink =
    {
      on_span = into (fun t s -> t.spans_rev <- s :: t.spans_rev);
      on_event = into (fun t e -> t.events_rev <- e :: t.events_rev);
    }
  in
  let t = make ~on:true ~sample sink in
  cell := Some t;
  t

let enabled t = t.on
let sample t = t.every
let sampled t ~id = t.on && (t.every = 1 || id mod t.every = 0)

let emit_span t ~req ~lane ~phase ~t0 ~t1 =
  if t1 > t0 then t.sink.on_span { req; lane; phase; t0; t1 }

let arrival t ~id ~op ~partition ~ts =
  if sampled t ~id then begin
    Hashtbl.replace t.live id { mark = ts; arrived = ts };
    t.sink.on_event
      {
        ev_name = "arrival";
        ev_lane = nic_lane;
        ev_ts = ts;
        ev_args =
          [
            ("req", string_of_int id);
            ("op", op);
            ("partition", string_of_int partition);
          ];
      }
  end

let request_event t ~id ~name ?(args = []) ~ts () =
  if t.on then
    match Hashtbl.find_opt t.live id with
    | None -> ()
    | Some _ ->
      t.sink.on_event
        {
          ev_name = name;
          ev_lane = nic_lane;
          ev_ts = ts;
          ev_args = ("req", string_of_int id) :: args;
        }

let service_begin t ~id ~lane ~ts =
  if t.on then
    match Hashtbl.find_opt t.live id with
    | None -> ()
    | Some l ->
      emit_span t ~req:id ~lane ~phase:Queue ~t0:l.mark ~t1:ts;
      l.mark <- ts

let service_end t ~id ~lane ~phase ~ts =
  if t.on then
    match Hashtbl.find_opt t.live id with
    | None -> ()
    | Some l ->
      emit_span t ~req:id ~lane ~phase ~t0:l.mark ~t1:ts;
      l.mark <- ts

let departure t ~id ~lane ~ts =
  if t.on then
    match Hashtbl.find_opt t.live id with
    | None -> ()
    | Some l ->
      emit_span t ~req:id ~lane ~phase:Deferral ~t0:l.mark ~t1:ts;
      Hashtbl.remove t.live id;
      t.completed_rev <- (id, l.arrived, ts) :: t.completed_rev;
      t.sink.on_event
        {
          ev_name = "departure";
          ev_lane = lane;
          ev_ts = ts;
          ev_args =
            [
              ("req", string_of_int id);
              ("latency_ns", Printf.sprintf "%.1f" (ts -. l.arrived));
            ];
        }

let drop t ~id ~reason ~ts =
  if t.on then
    match Hashtbl.find_opt t.live id with
    | None -> ()
    | Some _ ->
      Hashtbl.remove t.live id;
      t.sink.on_event
        {
          ev_name = "drop";
          ev_lane = nic_lane;
          ev_ts = ts;
          ev_args = [ ("req", string_of_int id); ("reason", reason) ];
        }

let lane_span t ~lane ~phase ~t0 ~t1 =
  if t.on then emit_span t ~req:(-1) ~lane ~phase ~t0 ~t1

let instant t ~name ?(args = []) ~ts () =
  if t.on then t.sink.on_event { ev_name = name; ev_lane = nic_lane; ev_ts = ts; ev_args = args }

let spans t = List.rev t.spans_rev
let events t = List.rev t.events_rev
let completed t = List.rev t.completed_rev
let live_count t = Hashtbl.length t.live
