(* c4-lint: allow bare-mutex-lock — below c4_runtime, same exemption
   (and pattern) as Registry. *)

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  registry : Registry.t;
  health : unit -> Json.t;
  mutable acceptor : Thread.t option;
  conns : (int, Thread.t) Hashtbl.t; (* live connection threads, guarded *)
  lock : Mutex.t;
  mutable next_conn : int;
  stopping : bool Atomic.t;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ---------------- HTTP/1.0-with-Content-Length responses ---------------- *)

let write_all fd b =
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status content_type (String.length body)
  in
  ignore (write_all fd (Bytes.of_string (head ^ body)))

(* First request line of a GET fits one read in practice, but headers
   may trail in; read until the blank line (or a small cap) so keep-
   alive-happy clients like curl are not answered mid-request. *)
let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 8192 then Buffer.contents buf
    else
      let has_terminator =
        let s = Buffer.contents buf in
        let rec find i =
          i + 3 < String.length s
          && (String.sub s i 4 = "\r\n\r\n" || find (i + 1))
        in
        String.length s > 3 && find 0
      in
      if has_terminator then Buffer.contents buf
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Buffer.contents buf
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (_, _, _) -> Buffer.contents buf
  in
  go ()

let path_of_request raw =
  match String.split_on_char '\r' raw with
  | [] -> None
  | line :: _ -> (
    match String.split_on_char ' ' line with
    | [ "GET"; path ] | "GET" :: path :: _ -> Some path
    | _ -> None)

let index_body =
  "c4 telemetry\n\
   /metrics  Prometheus text exposition of every registry metric\n\
   /healthz  JSON health/stats document\n"

let serve_request t fd =
  match path_of_request (read_request fd) with
  | None -> respond fd ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"
  | Some path -> (
    (* Strip any ?query. *)
    let path =
      match String.index_opt path '?' with
      | Some i -> String.sub path 0 i
      | None -> path
    in
    match path with
    | "/metrics" ->
      respond fd ~status:"200 OK"
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (Prometheus.of_registry t.registry)
    | "/healthz" | "/health" | "/stats" ->
      respond fd ~status:"200 OK" ~content_type:"application/json"
        (Json.to_string (t.health ()) ^ "\n")
    | "/" -> respond fd ~status:"200 OK" ~content_type:"text/plain" index_body
    | _ -> respond fd ~status:"404 Not Found" ~content_type:"text/plain" "not found\n")

let conn_loop t id fd () =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      locked t.lock (fun () -> Hashtbl.remove t.conns id))
    (fun () -> try serve_request t fd with _ -> ())

let acceptor_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _addr ->
      if Atomic.get t.stopping then (
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ())
      else begin
        locked t.lock (fun () ->
            let id = t.next_conn in
            t.next_conn <- id + 1;
            Hashtbl.replace t.conns id (Thread.create (conn_loop t id fd) ()));
        loop ()
      end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ENOTCONN), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
      if Atomic.get t.stopping then () else loop ()
  in
  loop ()

let start ?(host = "127.0.0.1") ~port ~registry ~health () =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen listen_fd 16
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    {
      listen_fd;
      bound_port;
      registry;
      health;
      acceptor = None;
      conns = Hashtbl.create 8;
      lock = Mutex.create ();
      next_conn = 0;
      stopping = Atomic.make false;
    }
  in
  t.acceptor <- Some (Thread.create (acceptor_loop t) ());
  t

let try_start ?host ~port ~registry ~health () =
  match start ?host ~port ~registry ~health () with
  | t -> Ok t
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
    Error (Printf.sprintf "telemetry port %d already in use" port)
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "telemetry port %d: %s" port (Unix.error_message e))

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* shutdown, not close: closing does not wake a thread blocked in
       accept(2); shutting down does (EINVAL), and the fd is closed
       only after the acceptor exits. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match t.acceptor with Some a -> Thread.join a | None -> ());
    t.acceptor <- None;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* In-flight scrapes are short; join them so stop means stopped. *)
    let live = locked t.lock (fun () -> Hashtbl.fold (fun _ th acc -> th :: acc) t.conns []) in
    List.iter Thread.join live
  end
