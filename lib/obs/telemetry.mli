(** Live telemetry plane: a tiny HTTP/1.0 listener exposing a
    {!Registry} while the server runs.

    Endpoints:
    - [/metrics] — Prometheus text exposition ({!Prometheus}) of every
      registered counter, gauge and histogram, one consistent snapshot
      per scrape;
    - [/healthz] (aliases [/health], [/stats]) — the JSON document the
      [health] callback builds on each request (uptime, connections,
      inflight, shed level, ownership counts — whatever the host
      process wires in);
    - [/] — a plain-text index.

    Deliberately {e not} built on [C4_net.Conn]: that plumbing speaks
    the binary KVS wire protocol and lives in [c4_net], which depends
    on this library — the scrape path must stay below it. One thread
    per scrape connection, response then close; scrapes are rare and
    cheap (a registry snapshot), so no pooling. *)

type t

(** Bind [host]:[port] ([port] 0 = ephemeral, see {!port}) and start
    accepting. [registry] should be thread-safe when the host process
    records from several threads (scrapes read through
    {!Registry.snapshot}). [health] is called per [/healthz] request
    from the scrape thread; keep it cheap and thread-safe. Raises
    [Unix.Unix_error] when the address cannot be bound. *)
val start :
  ?host:string ->
  port:int ->
  registry:Registry.t ->
  health:(unit -> Json.t) ->
  unit ->
  t

(** Like {!start}, but a bind failure — above all [EADDRINUSE], the
    routine "two servers on one box" collision — comes back as
    [Error] with a human-readable message instead of an exception, so
    a host process can report it and keep serving without telemetry. *)
val try_start :
  ?host:string ->
  port:int ->
  registry:Registry.t ->
  health:(unit -> Json.t) ->
  unit ->
  (t, string) result

(** The port actually bound. *)
val port : t -> int

(** Stop accepting, join in-flight scrapes, close the socket.
    Idempotent. *)
val stop : t -> unit
