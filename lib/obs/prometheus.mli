(** Prometheus text exposition (format version 0.0.4) of a
    {!Registry}.

    Counters and gauges render as their kinds; histograms render as
    summaries (p50/p90/p99/p999 quantiles plus [_sum]/[_count]) — the
    registry's log-linear buckets are not cumulative le-buckets, and
    the quantiles are the measurements that matter here. All values
    are read through {!Registry.snapshot}, so one scrape is mutually
    consistent and histogram count/sum never tear under concurrent
    writers. *)

(** Sanitise a registry metric name ([net.set_ns] → [net_set_ns]). *)
val metric_name : string -> string

(** Render one consistent snapshot (as returned by
    {!Registry.snapshot}). *)
val of_snapshot : (string * Registry.reading) list -> string

(** [of_snapshot] of a fresh {!Registry.snapshot}. *)
val of_registry : Registry.t -> string
