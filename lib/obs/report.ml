module Table = C4_stats.Table

type breakdown = {
  req : int;
  arrival : float;
  departure : float;
  latency : float;
  queue : float;
  service : float;
  deferral : float;
}

let breakdowns tr =
  let sums = Hashtbl.create 256 in
  List.iter
    (fun (s : Trace.span) ->
      if s.req >= 0 && Trace.request_phase s.phase then begin
        let q, sv, d =
          match Hashtbl.find_opt sums s.req with
          | Some acc -> acc
          | None -> (0.0, 0.0, 0.0)
        in
        let dt = s.t1 -. s.t0 in
        let acc =
          match s.phase with
          | Trace.Queue -> (q +. dt, sv, d)
          | Trace.Service | Trace.Forward | Trace.Absorb -> (q, sv +. dt, d)
          | Trace.Deferral -> (q, sv, d +. dt)
          | Trace.Flush | Trace.Background -> (q, sv, d)
        in
        Hashtbl.replace sums s.req acc
      end)
    (Trace.spans tr);
  List.map
    (fun (req, arrival, departure) ->
      let queue, service, deferral =
        match Hashtbl.find_opt sums req with
        | Some acc -> acc
        | None -> (0.0, 0.0, 0.0)
      in
      { req; arrival; departure; latency = departure -. arrival; queue; service; deferral })
    (Trace.completed tr)

let request_at_quantile tr ~q =
  match breakdowns tr with
  | [] -> None
  | bs ->
    let arr = Array.of_list bs in
    Array.sort (fun a b -> compare a.latency b.latency) arr;
    let n = Array.length arr in
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    Some arr.(rank - 1)

let violations tr ~tolerance_ns =
  List.filter
    (fun b -> abs_float (b.queue +. b.service +. b.deferral -. b.latency) > tolerance_ns)
    (breakdowns tr)

let stage_table tr =
  let bs = breakdowns tr in
  let n = List.length bs in
  let total field = List.fold_left (fun acc b -> acc +. field b) 0.0 bs in
  let tq = total (fun b -> b.queue)
  and ts = total (fun b -> b.service)
  and td = total (fun b -> b.deferral) in
  let tl = total (fun b -> b.latency) in
  let table =
    Table.create
      ~columns:
        [
          ("stage", Table.Left);
          ("requests", Table.Right);
          ("total ns", Table.Right);
          ("mean ns", Table.Right);
          ("share", Table.Right);
        ]
  in
  let row name v =
    Table.add_row table
      [
        name;
        Table.cell_i n;
        Table.cell_f ~decimals:0 v;
        Table.cell_f ~decimals:1 (if n = 0 then 0.0 else v /. float_of_int n);
        Table.cell_pct (if tl <= 0.0 then 0.0 else v /. tl);
      ]
  in
  row "queue" tq;
  row "service" ts;
  row "deferral" td;
  row "end-to-end" tl;
  table

let breakdown_table b =
  let table =
    Table.create ~columns:[ ("stage", Table.Left); ("ns", Table.Right); ("share", Table.Right) ]
  in
  let row name v =
    Table.add_row table
      [
        name;
        Table.cell_f ~decimals:1 v;
        Table.cell_pct (if b.latency <= 0.0 then 0.0 else v /. b.latency);
      ]
  in
  row "queue" b.queue;
  row "service" b.service;
  row "deferral" b.deferral;
  row "end-to-end" b.latency;
  table
