(* c4-lint: allow bare-mutex-lock — this is the one base-layer module
   (below c4_runtime, so Sync.with_lock is unavailable) that needs a
   lock; [guarded] below is the same exception-safe pattern. *)

module H = C4_stats.Histogram
module Table = C4_stats.Table

(* Handles optionally share their registry's mutex so instrumented
   multi-threaded code (the network layer) can update them racelessly;
   [None] (the default) keeps updates to one unsynchronised store. *)
type counter = { mutable n : int; c_lock : Mutex.t option }
type gauge = { mutable v : float; g_lock : Mutex.t option }
type histogram = { hist : H.t; h_lock : Mutex.t option }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* registration order, reversed *)
  lock : Mutex.t option;
}

let guarded lock f =
  match lock with
  | None -> f ()
  | Some m ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ?(thread_safe = false) () =
  {
    tbl = Hashtbl.create 32;
    order = [];
    lock = (if thread_safe then Some (Mutex.create ()) else None);
  }

let register t name make =
  guarded t.lock (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.replace t.tbl name m;
        t.order <- name :: t.order;
        m)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let wrong_kind name ~want m =
  invalid_arg
    (Printf.sprintf "Registry.%s: %S already registered as a %s" want name
       (kind_name m))

let counter t name =
  match register t name (fun () -> Counter { n = 0; c_lock = t.lock }) with
  | Counter c -> c
  | m -> wrong_kind name ~want:"counter" m

let gauge t name =
  match register t name (fun () -> Gauge { v = 0.0; g_lock = t.lock }) with
  | Gauge g -> g
  | m -> wrong_kind name ~want:"gauge" m

let histogram t name =
  match
    register t name (fun () -> Histogram { hist = H.create (); h_lock = t.lock })
  with
  | Histogram h -> h
  | m -> wrong_kind name ~want:"histogram" m

let incr ?(by = 1) c = guarded c.c_lock (fun () -> c.n <- c.n + by)
let counter_value c = guarded c.c_lock (fun () -> c.n)
let set g v = guarded g.g_lock (fun () -> g.v <- v)
let gauge_value g = guarded g.g_lock (fun () -> g.v)
let observe h v = guarded h.h_lock (fun () -> H.add h.hist v)
let histogram_values h = h.hist

let names t = guarded t.lock (fun () -> List.rev t.order)

type reading =
  | Counter_reading of int
  | Gauge_reading of float
  | Histogram_reading of H.t

(* Direct field reads, NOT counter_value/histogram_values: the registry
   lock is already held (it is the same mutex every handle shares when
   thread_safe), and H.copy under it is what makes the histogram
   reading tear-free — a concurrent [observe] can never be half-applied
   (count bumped, sum not) in the copy. *)
let reading_of = function
  | Counter c -> Counter_reading c.n
  | Gauge g -> Gauge_reading g.v
  | Histogram h -> Histogram_reading (H.copy h.hist)

let snapshot t =
  guarded t.lock (fun () ->
      List.rev_map (fun name -> (name, reading_of (Hashtbl.find t.tbl name))) t.order)

let read_metric = function
  | Counter c -> float_of_int c.n
  | Gauge g -> g.v
  | Histogram h -> float_of_int (H.count h.hist)

let read t name =
  guarded t.lock (fun () -> Option.map read_metric (Hashtbl.find_opt t.tbl name))

let csv_header t = names t

let cell_of = function
  | Counter c -> string_of_int c.n
  | Gauge g -> Printf.sprintf "%g" g.v
  | Histogram h -> string_of_int (H.count h.hist)

let csv_row t =
  guarded t.lock (fun () ->
      List.map (fun name -> cell_of (Hashtbl.find t.tbl name)) t.order |> List.rev)

let to_table t =
  guarded t.lock @@ fun () ->
  let table =
    Table.create
      ~columns:
        [
          ("metric", Table.Left);
          ("kind", Table.Left);
          ("value", Table.Right);
          ("mean", Table.Right);
          ("p99", Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let m = Hashtbl.find t.tbl name in
      let value, mean, p99 =
        match m with
        | Counter c -> (string_of_int c.n, "-", "-")
        | Gauge g -> (Printf.sprintf "%g" g.v, "-", "-")
        | Histogram h ->
          ( string_of_int (H.count h.hist),
            Table.cell_f ~decimals:1 (H.mean h.hist),
            Table.cell_f ~decimals:1 (H.p99 h.hist) )
      in
      Table.add_row table [ name; kind_name m; value; mean; p99 ])
    (* Not [names t]: the registry lock is already held. *)
    (List.rev t.order);
  table
