module H = C4_stats.Histogram
module Table = C4_stats.Table

type counter = { mutable n : int }
type gauge = { mutable v : float }
type histogram = { hist : H.t }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let register t name make =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.replace t.tbl name m;
    t.order <- name :: t.order;
    m

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let wrong_kind name ~want m =
  invalid_arg
    (Printf.sprintf "Registry.%s: %S already registered as a %s" want name
       (kind_name m))

let counter t name =
  match register t name (fun () -> Counter { n = 0 }) with
  | Counter c -> c
  | m -> wrong_kind name ~want:"counter" m

let gauge t name =
  match register t name (fun () -> Gauge { v = 0.0 }) with
  | Gauge g -> g
  | m -> wrong_kind name ~want:"gauge" m

let histogram t name =
  match
    register t name (fun () -> Histogram { hist = H.create () })
  with
  | Histogram h -> h
  | m -> wrong_kind name ~want:"histogram" m

let incr ?(by = 1) c = c.n <- c.n + by
let counter_value c = c.n
let set g v = g.v <- v
let gauge_value g = g.v
let observe h v = H.add h.hist v
let histogram_values h = h.hist

let names t = List.rev t.order

let read_metric = function
  | Counter c -> float_of_int c.n
  | Gauge g -> g.v
  | Histogram h -> float_of_int (H.count h.hist)

let read t name = Option.map read_metric (Hashtbl.find_opt t.tbl name)

let csv_header t = names t

let cell_of = function
  | Counter c -> string_of_int c.n
  | Gauge g -> Printf.sprintf "%g" g.v
  | Histogram h -> string_of_int (H.count h.hist)

let csv_row t = List.map (fun name -> cell_of (Hashtbl.find t.tbl name)) t.order |> List.rev

let to_table t =
  let table =
    Table.create
      ~columns:
        [
          ("metric", Table.Left);
          ("kind", Table.Left);
          ("value", Table.Right);
          ("mean", Table.Right);
          ("p99", Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let m = Hashtbl.find t.tbl name in
      let value, mean, p99 =
        match m with
        | Counter c -> (string_of_int c.n, "-", "-")
        | Gauge g -> (Printf.sprintf "%g" g.v, "-", "-")
        | Histogram h ->
          ( string_of_int (H.count h.hist),
            Table.cell_f ~decimals:1 (H.mean h.hist),
            Table.cell_f ~decimals:1 (H.p99 h.hist) )
      in
      Table.add_row table [ name; kind_name m; value; mean; p99 ])
    (names t);
  table
