(** Distributed request spans: parent-linked, cross-process, buffered.

    {!Trace} records the {e simulator's} request lifecycle on logical
    lanes; this module records the {e serving path's} — a client
    dispatch, its wire transit, the server's admission/apply/respond
    stages — as spans that carry explicit identity: a trace id shared
    by every span of one request, a span id, and a parent span id.
    Because identity is explicit, the chain survives a process
    boundary: {!C4_net.Wire} carries a {!context} in-band, the server
    starts its spans with [~parent] set to the client's context, and
    either side's buffer can be exported (or both merged) as one
    stitched Chrome trace, parent links intact.

    Buffers are thread-safe (client reader threads, connection threads
    and worker domains record concurrently). Timestamps are wall-clock
    ns supplied by the caller, so spans from the two ends of a loopback
    connection share a clock. *)

type t
(** A span buffer, normally one per process role ("client", "server"). *)

type span

(** The in-band identity of a span: what {!C4_net.Wire} serialises and
    a downstream process adopts as its parent. Both ids are
    non-negative and fit 8 wire bytes. *)
type context = { trace_id : int; span_id : int }

(** [create ~process ()] names the buffer's process row in Chrome
    exports (default ["main"]). *)
val create : ?process:string -> unit -> t

val process_name : t -> string

(** Open a span at [ts] (ns). Without [parent] this starts a new trace
    (fresh trace id, no parent link); with it the span joins the
    parent's trace. Ids are unique within the process and salted per
    process, so spans minted on both ends of a connection never
    collide when merged. *)
val start : ?parent:context -> t -> name:string -> ts:float -> span

(** The identity to propagate to children (in-process or over the
    wire). *)
val context : span -> context

(** Close the span. [ts] earlier than the start is clamped to it. *)
val finish : t -> span -> ts:float -> unit

(** Attach a [key]=[value] annotation (policy decisions, op names,
    status codes). *)
val annotate : t -> span -> key:string -> value:string -> unit

(** A point-in-time occurrence not tied to any span (e.g. a policy
    decision taken on a thread with no request in flight). *)
val event : ?args:(string * string) list -> t -> name:string -> ts:float -> unit

(** {2 Ambient current span}

    [with_current t s f] marks [s] as the calling thread's innermost
    span while [f] runs (nesting restores the outer one), and
    [annotate_current] annotates that span from anywhere on the same
    thread — the hook that lets [Crew.Core]'s [on_decision] callback,
    which knows nothing about requests, stamp pin/route decisions onto
    the request span being admitted. Returns [false] (and drops the
    annotation) when the thread has no current span. *)

val with_current : t -> span -> (unit -> 'a) -> 'a

val annotate_current : t -> key:string -> value:string -> bool

(** {2 Reading back} *)

(** All spans in creation order (open ones included). *)
val spans : t -> span list

type event = { ev_name : string; ev_ts : float; ev_args : (string * string) list }

val events : t -> event list
val find : t -> id:int -> span option
val span_id : span -> int
val parent_id : span -> int option
val trace_id : span -> int
val name : span -> string
val t0 : span -> float
val t1 : span -> float option  (** [None] while open *)

val finished : span -> bool

(** Annotations in attachment order. *)
val annotations : span -> (string * string) list

(** {2 Chrome export}

    The JSON-object trace-event flavour: this buffer as pid 0, each
    [extra] buffer as the next pid (with its own process_name row) —
    pass the peer's buffer to see client and server rows of one trace
    side by side. Every span event carries [trace_id]/[span_id]/
    [parent_id] args, so the stitching is greppable in the export. *)
val to_chrome : ?extra:t list -> t -> string

val save_chrome : ?extra:t list -> t -> path:string -> unit
