let git_rev () =
  match Sys.getenv_opt "C4_GIT_REV" with
  | Some r when r <> "" -> r
  | _ -> (
    (* Best-effort: benches run from a checkout in dev and CI; anywhere
       else the record still appends, just unpinned. *)
    match
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      (Unix.close_process_in ic, line)
    with
    | Unix.WEXITED 0, line when line <> "" -> line
    | _ -> "unknown"
    | exception _ -> "unknown")

let timestamp () =
  let now = Unix.gettimeofday () in
  let tm = Unix.gmtime now in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let record ~kind ~config ~results =
  Json.Obj
    [
      ("ts", Json.Str (timestamp ()));
      ("git_rev", Json.Str (git_rev ()));
      ("kind", Json.Str kind);
      ("config", Json.Obj config);
      ("results", Json.Obj results);
    ]

let append ~path value =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string value);
      output_char oc '\n')

let percentiles_of h =
  let module H = C4_stats.Histogram in
  [
    ("count", Json.Int (H.count h));
    ("mean_ns", Json.Float (H.mean h));
    ("p50_ns", Json.Float (H.median h));
    ("p99_ns", Json.Float (H.p99 h));
    ("p999_ns", Json.Float (H.p999 h));
    ("max_ns", Json.Float (H.max_recorded h));
  ]
