(** Chrome [trace_event] JSON export.

    Produces the JSON-object flavour of the trace-event format
    ([{"traceEvents": [...], "displayTimeUnit": "ns"}]) loadable in
    [chrome://tracing] and Perfetto. Each simulator lane becomes one
    thread row under pid 0: tid 0 is the NIC, tid [w+1] is worker [w].
    Spans are complete events ([ph:"X"]) with microsecond timestamps
    (the format's unit); instants are thread-scoped [ph:"i"] events. *)

(** Render a collected trace. *)
val to_string : Trace.t -> string

(** Render explicit span/event lists (exporters and tests). *)
val render : spans:Trace.span list -> events:Trace.event list -> string

(** Write {!to_string} to [path]. *)
val save : Trace.t -> path:string -> unit
