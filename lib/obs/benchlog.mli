(** Append-only benchmark trajectory log ([BENCH_net.json]).

    One complete JSON object per line (JSON Lines): append-on-rerun
    needs no parser, a truncated last line cannot corrupt earlier
    runs, and plotting the trajectory is one [jq] away. Every record
    carries the same envelope —

    {v {"ts": "...Z", "git_rev": "...", "kind": "netbench"|"microbench",
        "config": {...}, "results": {...}} v}

    — so re-anchors can diff like-for-like runs (same kind + config
    fingerprint) across commits. *)

(** [$C4_GIT_REV] when set (CI), else [git rev-parse --short HEAD],
    else ["unknown"]. *)
val git_rev : unit -> string

(** UTC, ISO-8601 seconds precision. *)
val timestamp : unit -> string

(** Build one envelope record: stamps {!timestamp} and {!git_rev},
    nests [config] (the run's fingerprint — every knob that affects
    the numbers) and [results]. *)
val record :
  kind:string ->
  config:(string * Json.t) list ->
  results:(string * Json.t) list ->
  Json.t

(** Append one record as one line, creating the file if needed. *)
val append : path:string -> Json.t -> unit

(** The standard latency-summary fields for one histogram: count,
    mean/p50/p99/p999/max in ns. *)
val percentiles_of : C4_stats.Histogram.t -> (string * Json.t) list
