(* One lane per hardware timeline: the NIC (Trace.nic_lane = -1) maps
   to tid 0 and worker w to tid w+1, so the Perfetto track order matches
   the paper's dataflow (NIC on top, workers below). *)
let tid_of_lane lane = lane + 1

let escape = Json.escape

(* Timestamps are ns in the simulator, µs in the trace-event format. *)
let us ns = ns /. 1e3

(* Integer-looking values are emitted as JSON numbers so Perfetto can
   sort and filter on them (request ids, partitions, latencies). *)
let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",";
      match int_of_string_opt v with
      | Some _ -> Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (escape k) v)
      | None ->
        Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
    args;
  Buffer.add_string buf "}"

let add_event buf ~first json =
  if not first then Buffer.add_string buf ",\n";
  Buffer.add_string buf json

let lane_name lane = if lane = Trace.nic_lane then "nic" else Printf.sprintf "worker %d" lane

let render ~spans ~events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  let first = ref true in
  let emit json =
    add_event buf ~first:!first json;
    first := false
  in
  (* Thread-name metadata rows, one per lane seen, NIC first. *)
  let lanes = Hashtbl.create 16 in
  List.iter (fun (s : Trace.span) -> Hashtbl.replace lanes s.lane ()) spans;
  List.iter (fun (e : Trace.event) -> Hashtbl.replace lanes e.ev_lane ()) events;
  let sorted_lanes = List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) lanes []) in
  List.iter
    (fun lane ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           (tid_of_lane lane) (escape (lane_name lane))))
    sorted_lanes;
  List.iter
    (fun (s : Trace.span) ->
      let args =
        if s.req >= 0 then [ ("req", string_of_int s.req) ] else []
      in
      let b = Buffer.create 160 in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.4f,\"dur\":%.4f,\"pid\":0,\"tid\":%d,\"args\":"
           (Trace.phase_name s.phase)
           (if Trace.request_phase s.phase then "request" else "lane")
           (us s.t0) (us (s.t1 -. s.t0)) (tid_of_lane s.lane));
      add_args b args;
      Buffer.add_string b "}";
      emit (Buffer.contents b))
    spans;
  List.iter
    (fun (e : Trace.event) ->
      let b = Buffer.create 160 in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.4f,\"pid\":0,\"tid\":%d,\"args\":"
           (escape e.ev_name) (us e.ev_ts) (tid_of_lane e.ev_lane));
      add_args b e.ev_args;
      Buffer.add_string b "}";
      emit (Buffer.contents b))
    events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let to_string t = render ~spans:(Trace.spans t) ~events:(Trace.events t)

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
