type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips every float; trim to %g when that is exact so the
   common cases (integers-as-floats, short decimals) stay readable. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let short = Printf.sprintf "%g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/Infinity literals. *)
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---------------- parsing ----------------

   Recursive-descent over the grammar {!to_string} emits (plus
   insignificant whitespace), so any document this module wrote — and
   ordinary hand-edited baselines — round-trip. Numbers with [.], [e]
   or [E] parse as [Float], everything else as [Int]. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin pos := !pos + String.length word; v end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'; incr pos
        | '\\' -> Buffer.add_char buf '\\'; incr pos
        | '/' -> Buffer.add_char buf '/'; incr pos
        | 'n' -> Buffer.add_char buf '\n'; incr pos
        | 't' -> Buffer.add_char buf '\t'; incr pos
        | 'r' -> Buffer.add_char buf '\r'; incr pos
        | 'b' -> Buffer.add_char buf '\b'; incr pos
        | 'f' -> Buffer.add_char buf '\012'; incr pos
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
            with _ -> fail "bad \\u escape"
          in
          pos := !pos + 5;
          (* UTF-8 encode the code point (surrogate pairs untreated —
             the serialiser only emits \u for control characters). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do incr pos done;
    let text = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text then
      try Float (float_of_string text) with _ -> fail "bad number"
    else
      try Int (int_of_string text)
      with _ -> (try Float (float_of_string text) with _ -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin incr pos; Obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin incr pos; List [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; elements ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------------- accessors ---------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
