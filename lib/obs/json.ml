type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips every float; trim to %g when that is exact so the
   common cases (integers-as-floats, short decimals) stay readable. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let short = Printf.sprintf "%g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/Infinity literals. *)
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf
