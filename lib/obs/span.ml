(* c4-lint: allow bare-mutex-lock — like Registry this sits below
   c4_runtime (Sync.with_lock is unavailable down here) yet is mutated
   from client reader threads, connection threads and worker domains at
   once; [locked] is the same exception-safe pattern. *)

type context = { trace_id : int; span_id : int }

type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_t0 : float;
  mutable sp_t1 : float; (* < sp_t0 while the span is open *)
  mutable sp_annots : (string * string) list; (* newest first *)
}

type event = {
  ev_name : string;
  ev_ts : float;
  ev_args : (string * string) list;
}

type t = {
  proc : string;
  lock : Mutex.t;
  mutable sp : span list; (* newest first *)
  mutable ev : event list; (* newest first *)
  (* Thread id -> innermost span entered via [with_current]: the
     ambient hook that lets decision callbacks annotate the request
     span in flight on their thread without threading it through. *)
  current : (int, span) Hashtbl.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Ids must be unique across every buffer that might end up stitched
   into one trace — including buffers in other processes, which share
   no state with us. A process-level seed (pid + wall clock at module
   init) mixed through a splitmix-style finaliser makes collisions
   across processes ~2^-62-improbable, while the counter keeps ids
   within this process unique by construction. *)
let id_counter = Atomic.make 1

let id_seed =
  lazy
    ((Unix.getpid () * 1_000_003)
    lxor int_of_float (Float.rem (Unix.gettimeofday () *. 1e6) 1e15))

let fresh_id () =
  let z = Atomic.fetch_and_add id_counter 1 + Lazy.force id_seed in
  let z = (z lxor (z lsr 30)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 27)) * 0x27BB2EE687B0B0FD in
  (z lxor (z lsr 31)) land max_int

let create ?(process = "main") () =
  { proc = process; lock = Mutex.create (); sp = []; ev = []; current = Hashtbl.create 8 }

let process_name t = t.proc

let start ?parent t ~name ~ts =
  let span_id = fresh_id () in
  let trace, par =
    match parent with
    | Some c -> (c.trace_id, Some c.span_id)
    | None -> (fresh_id (), None)
  in
  let s =
    {
      sp_trace = trace;
      sp_id = span_id;
      sp_parent = par;
      sp_name = name;
      sp_t0 = ts;
      sp_t1 = ts -. 1.0;
      sp_annots = [];
    }
  in
  locked t (fun () -> t.sp <- s :: t.sp);
  s

let context s = { trace_id = s.sp_trace; span_id = s.sp_id }
let finish t s ~ts = locked t (fun () -> s.sp_t1 <- Float.max ts s.sp_t0)

let annotate t s ~key ~value =
  locked t (fun () -> s.sp_annots <- (key, value) :: s.sp_annots)

let event ?(args = []) t ~name ~ts =
  locked t (fun () -> t.ev <- { ev_name = name; ev_ts = ts; ev_args = args } :: t.ev)

(* ---------------- ambient current span ---------------- *)

let with_current t s f =
  let tid = Thread.id (Thread.self ()) in
  let prev = locked t (fun () -> Hashtbl.find_opt t.current tid) in
  locked t (fun () -> Hashtbl.replace t.current tid s);
  Fun.protect
    ~finally:(fun () ->
      locked t (fun () ->
          match prev with
          | Some p -> Hashtbl.replace t.current tid p
          | None -> Hashtbl.remove t.current tid))
    f

let annotate_current t ~key ~value =
  let tid = Thread.id (Thread.self ()) in
  locked t (fun () ->
      match Hashtbl.find_opt t.current tid with
      | None -> false
      | Some s ->
        s.sp_annots <- (key, value) :: s.sp_annots;
        true)

(* ---------------- accessors ---------------- *)

let spans t = locked t (fun () -> List.rev t.sp)
let events t = locked t (fun () -> List.rev t.ev)
let find t ~id = locked t (fun () -> List.find_opt (fun s -> s.sp_id = id) t.sp)
let span_id s = s.sp_id
let parent_id s = s.sp_parent
let trace_id s = s.sp_trace
let name s = s.sp_name
let t0 s = s.sp_t0
let finished s = s.sp_t1 >= s.sp_t0
let t1 s = if finished s then Some s.sp_t1 else None
let annotations s = List.rev s.sp_annots

(* ---------------- Chrome trace-event export ---------------- *)

(* One pid per buffer: merging the client's and the server's buffers
   yields one trace with two named process rows, and the span/parent id
   args carry the cross-process stitching Perfetto cannot draw itself. *)
let us ns = ns /. 1e3

let chrome_span pid (s : span) =
  let dur = if finished s then s.sp_t1 -. s.sp_t0 else 0.0 in
  let args =
    [
      ("trace_id", Json.Int s.sp_trace);
      ("span_id", Json.Int s.sp_id);
    ]
    @ (match s.sp_parent with
      | Some p -> [ ("parent_id", Json.Int p) ]
      | None -> [])
    @ List.map (fun (k, v) -> (k, Json.Str v)) (annotations s)
  in
  Json.Obj
    [
      ("name", Json.Str s.sp_name);
      ("cat", Json.Str "span");
      ("ph", Json.Str "X");
      ("ts", Json.Float (us s.sp_t0));
      ("dur", Json.Float (us dur));
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj args);
    ]

let chrome_event pid (e : event) =
  Json.Obj
    [
      ("name", Json.Str e.ev_name);
      ("cat", Json.Str "event");
      ("ph", Json.Str "i");
      ("s", Json.Str "p");
      ("ts", Json.Float (us e.ev_ts));
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.ev_args));
    ]

let to_chrome ?(extra = []) t =
  let bufs = t :: extra in
  let rows =
    List.concat
      (List.mapi
         (fun pid b ->
           Json.Obj
             [
               ("name", Json.Str "process_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int pid);
               ("tid", Json.Int 0);
               ("args", Json.Obj [ ("name", Json.Str b.proc) ]);
             ]
           :: (List.map (chrome_span pid) (spans b)
              @ List.map (chrome_event pid) (events b)))
         bufs)
  in
  Json.to_string
    (Json.Obj
       [ ("displayTimeUnit", Json.Str "ns"); ("traceEvents", Json.List rows) ])

let save_chrome ?extra t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome ?extra t))
