module Sim = C4_dsim.Sim
module Csv = C4_stats.Csv

type t = {
  registry : Registry.t;
  pre : unit -> unit;
  interval : float;
  csv_ : Csv.t;
  mutable rows_n : int;
}

let sample t ~now =
  t.pre ();
  Csv.add_row t.csv_ (Printf.sprintf "%.1f" now :: Registry.csv_row t.registry);
  t.rows_n <- t.rows_n + 1

let start ?(pre = fun () -> ()) ~sim ~registry ~interval_ns () =
  if interval_ns <= 0.0 then invalid_arg "Snapshot.start: interval_ns";
  let t =
    {
      registry;
      pre;
      interval = interval_ns;
      csv_ = Csv.create ~header:("t_ns" :: Registry.csv_header registry);
      rows_n = 0;
    }
  in
  let rec tick sim =
    sample t ~now:(Sim.now sim);
    (* Re-arm only while the simulation still has work of its own;
       otherwise the tick would keep an empty event loop running. *)
    if Sim.pending_count sim > 0 then ignore (Sim.schedule sim ~after:t.interval tick)
  in
  ignore (Sim.schedule sim ~after:interval_ns tick);
  t

let csv t = t.csv_
let rows t = t.rows_n
