(** End-of-run analysis over a collected trace.

    Derives the paper's "where did the time go" views (Figs. 9-13
    methodology) from raw spans: per-stage aggregates, per-request
    latency decompositions, and the invariant check that the stage
    decomposition of every traced request tiles its end-to-end latency
    exactly. *)

(** Stage totals of one traced request. [queue + service + deferral]
    equals [departure - arrival] for every completed request ([service]
    folds in forwarding and window-absorb occupancy). *)
type breakdown = {
  req : int;
  arrival : float;
  departure : float;
  latency : float;
  queue : float;
  service : float;
  deferral : float;
}

(** Completed traced requests, in completion order. *)
val breakdowns : Trace.t -> breakdown list

(** The request at latency quantile [q] of the completed set. *)
val request_at_quantile : Trace.t -> q:float -> breakdown option

(** Requests whose span sum disagrees with the recorded end-to-end
    latency by more than [tolerance_ns] (expect none). *)
val violations : Trace.t -> tolerance_ns:float -> breakdown list

(** Per-stage table over all traced requests: count, total ns, mean ns,
    and share of total traced latency. *)
val stage_table : Trace.t -> C4_stats.Table.t

(** One-request decomposition as a printable table. *)
val breakdown_table : breakdown -> C4_stats.Table.t
