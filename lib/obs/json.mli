(** Minimal JSON construction — the one escaping/serialising routine
    every exporter in the observability layer shares ({!Chrome} trace
    events, the {!Telemetry} health document, {!Benchlog} records), so
    a span name with a quote in it cannot be escaped correctly in one
    exporter and incorrectly in another.

    Also carries the one JSON {e parser} in the tree ({!of_string}),
    used by the static analyzer to load its checked-in findings
    baseline and by tests to round-trip exporter output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN/infinity serialise as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Escape a string for inclusion inside JSON double quotes: quote,
    backslash, newline and all control characters below 0x20. *)
val escape : string -> string

(** Compact (single-line) serialisation. *)
val to_string : t -> string

exception Parse_error of string

(** Strict parse of a complete JSON document (whitespace-tolerant).
    Numbers containing [.], [e] or [E] become [Float]; the rest [Int].
    Raises {!Parse_error} with an offset on malformed input. *)
val of_string : string -> t

(** [member k j] is the value of field [k] if [j] is an [Obj]. *)
val member : string -> t -> t option

val to_list_opt : t -> t list option
val to_string_opt : t -> string option
val to_int_opt : t -> int option
