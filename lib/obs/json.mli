(** Minimal JSON construction — the one escaping/serialising routine
    every exporter in the observability layer shares ({!Chrome} trace
    events, the {!Telemetry} health document, {!Benchlog} records), so
    a span name with a quote in it cannot be escaped correctly in one
    exporter and incorrectly in another.

    Construction only: the tests that need to parse JSON back keep
    their own checking parser, the library never reads JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN/infinity serialise as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Escape a string for inclusion inside JSON double quotes: quote,
    backslash, newline and all control characters below 0x20. *)
val escape : string -> string

(** Compact (single-line) serialisation. *)
val to_string : t -> string
