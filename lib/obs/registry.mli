(** Named run-time metrics: counters, gauges and histograms.

    Every instrumented layer (NIC pipeline, EWT, model server, kvs
    compaction log) registers its metrics here by name; exporters walk
    the registry in registration order. Registration is find-or-create,
    so the 64 per-worker compaction logs asking for
    ["compaction.windows"] all share one counter.

    Handles are plain mutable records: bumping a counter is one integer
    store, cheap enough to leave permanently enabled (the zero-cost
    story for the {!Trace} spans does not apply here). A module that is
    instantiated without a registry can still instrument itself against
    a private throwaway registry. *)

type t

(** A monotonically increasing integer. *)
type counter

(** A point-in-time float, overwritten by each {!set}. *)
type gauge

(** A value distribution, backed by {!C4_stats.Histogram}. *)
type histogram

(** [thread_safe] (default false) guards every handle update and read
    behind one registry-wide mutex, for instrumented code that runs on
    real domains/threads (the network serving layer). The default stays
    lock-free: the simulator is single-threaded and bumps counters on
    its hot path. *)
val create : ?thread_safe:bool -> unit -> t

(** Find-or-create. Raises [Invalid_argument] if [name] is already
    registered as a different metric kind. *)
val counter : t -> string -> counter

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit
val histogram_values : histogram -> C4_stats.Histogram.t

(** Registered names, in registration order. *)
val names : t -> string list

(** One atomically-read value per metric. Histogram readings are
    private copies taken under the registry lock, so a snapshot racing
    concurrent [observe]s can never expose torn totals (a count/sum
    mismatch) — unlike {!histogram_values}, which hands out the live
    histogram and is only safe to read quiescently. Exporters (the
    telemetry endpoint's Prometheus rendering) read through this. *)
type reading =
  | Counter_reading of int
  | Gauge_reading of float
  | Histogram_reading of C4_stats.Histogram.t

(** Every metric's current {!reading}, in registration order, taken in
    one lock hold — mutually consistent for thread-safe registries. *)
val snapshot : t -> (string * reading) list

(** Current scalar reading of metric [name]: a counter's count, a
    gauge's value, a histogram's sample count. *)
val read : t -> string -> float option

(** One CSV cell label / current-value cell per metric, in registration
    order (the time-series snapshot row format). *)
val csv_header : t -> string list

val csv_row : t -> string list

(** Human-readable end-of-run table: one row per metric with count,
    mean and p99 where applicable. *)
val to_table : t -> C4_stats.Table.t
