module H = C4_stats.Histogram

(* Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; registry
   names use dots ("net.set_ns"), which map to underscores. *)
let metric_name s =
  let buf = Buffer.create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char buf c
      | '0' .. '9' ->
        if i = 0 then Buffer.add_char buf '_';
        Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    s;
  Buffer.contents buf

(* Prometheus floats: Go-style; %.17g round-trips and "Inf"/"NaN" never
   escape a histogram, so plain %g-with-fallback is enough. *)
let num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let quantiles = [ 0.5; 0.9; 0.99; 0.999 ]

let render_metric buf name reading =
  let n = metric_name name in
  match (reading : Registry.reading) with
  | Registry.Counter_reading v ->
    Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
    Buffer.add_string buf (Printf.sprintf "%s %d\n" n v)
  | Registry.Gauge_reading v ->
    Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
    Buffer.add_string buf (Printf.sprintf "%s %s\n" n (num v))
  | Registry.Histogram_reading h ->
    (* Summary, not histogram: the log-linear buckets are not the
       cumulative le-buckets Prometheus histograms require, but the
       quantiles are exactly what the paper's tail-latency story
       needs. The reading is a private copy, so count and sum agree. *)
    Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
    List.iter
      (fun q ->
        Buffer.add_string buf
          (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n (num q) (num (H.quantile h q))))
      quantiles;
    Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (num (H.mean h *. float_of_int (H.count h))));
    Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n (H.count h))

let of_snapshot readings =
  let buf = Buffer.create 1024 in
  List.iter (fun (name, r) -> render_metric buf name r) readings;
  Buffer.contents buf

let of_registry reg = of_snapshot (Registry.snapshot reg)
