type 'a entry = { prio : float; seq : int; payload : 'a }

type 'a t = {
  (* Empty until the first push: without a dummy ['a] there is nothing
     to pre-fill with, and faking one (e.g. [Obj.magic]) would break the
     moment the GC scans the array. [capacity] remembers the requested
     initial size for that first allocation. *)
  mutable entries : 'a entry array;
  capacity : int;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 64) () =
  { entries = [||]; capacity = max capacity 1; size = 0; next_seq = 0 }

let length h = h.size
let is_empty h = h.size = 0

(* [e1] sorts before [e2]: priority first, insertion order as tiebreak. *)
let before e1 e2 = e1.prio < e2.prio || (e1.prio = e2.prio && e1.seq < e2.seq)

let grow h seed =
  let cap = max 1 (Array.length h.entries) in
  let entries = Array.make (max (2 * cap) h.capacity) seed in
  Array.blit h.entries 0 entries 0 h.size;
  h.entries <- entries

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.entries.(i) h.entries.(parent) then begin
      let tmp = h.entries.(i) in
      h.entries.(i) <- h.entries.(parent);
      h.entries.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && before h.entries.(l) h.entries.(i) then l else i in
  let smallest =
    if r < h.size && before h.entries.(r) h.entries.(smallest) then r else smallest
  in
  if smallest <> i then begin
    let tmp = h.entries.(i) in
    h.entries.(i) <- h.entries.(smallest);
    h.entries.(smallest) <- tmp;
    sift_down h smallest
  end

let push h ~priority payload =
  let entry = { prio = priority; seq = h.next_seq; payload } in
  if h.size = Array.length h.entries then grow h entry;
  h.next_seq <- h.next_seq + 1;
  h.entries.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = h.entries.(0) in
    Some (e.prio, e.payload)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.entries.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.entries.(0) <- h.entries.(h.size);
      sift_down h 0
    end;
    Some (top.prio, top.payload)
  end

let clear h = h.size <- 0

let fold h ~init ~f =
  let acc = ref init in
  for i = 0 to h.size - 1 do
    let e = h.entries.(i) in
    acc := f !acc e.prio e.payload
  done;
  !acc
