(** The WAL record codec: one mutation, CRC32C-framed.

    Frame layout (all integers little-endian):

    {v
      length : 4 bytes   payload length in bytes
      crc    : 4 bytes   CRC-32C of the payload
      payload:
        seqno : 8 bytes  per-partition append sequence number
        op    : 1 byte   1 = SET, 2 = DELETE
        key   : 8 bytes
        tok?  : 1 byte   1 if an idempotency token follows, else 0
        token : 8 bytes  present iff tok? = 1
        vlen  : 4 bytes  value length (0 for DELETE)
        value : vlen bytes
    v}

    The CRC covers the payload only; the length field is validated by
    bounds checks ([vlen] must account for exactly the payload bytes, so
    a bit-flipped length cannot smuggle a shifted-but-CRC-valid record).
    Decoding distinguishes a {e torn} tail (fewer bytes than the frame
    claims — the normal result of a crash mid-append, silently
    truncated by recovery) from a {e corrupt} record (CRC mismatch or
    malformed payload — counted by recovery before truncating). *)

type op =
  | Set of { key : int; value : bytes; token : int option }
      (** [token] is the idempotency token the write carried, replayed
          through [C4_kvs.Store.set_idempotent] so a persisted-but-
          unacked write is never double-applied by a client retry that
          straddles the restart *)
  | Delete of { key : int }

type t = { seqno : int; op : op }

(** Values larger than this are refused by {!encode} (and a decoded
    length claiming more is corrupt, not torn — it bounds allocation
    when the length field itself is damaged). *)
val max_value_len : int

(** Append the framed record to [buf]. Raises [Invalid_argument] when
    the value exceeds {!max_value_len}. *)
val encode : Buffer.t -> t -> unit

(** Frame size {!encode} would emit, in bytes. *)
val encoded_size : t -> int

type decoded =
  | Ok of t * int  (** the record and the position just past its frame *)
  | Torn  (** fewer bytes than the frame needs: a truncated tail *)
  | Corrupt of string  (** CRC mismatch or malformed payload *)

(** Decode one frame starting at [pos]. [Ok (_, next)] allows iterating
    a segment; [Torn] at exactly the end of valid data is a clean tail. *)
val decode : Bytes.t -> pos:int -> decoded

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
