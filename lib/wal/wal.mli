(** Per-partition segmented write-ahead log with group commit.

    One append-only log per store partition, each a directory of
    numbered segment files of CRC32C-framed {!Record} frames. The CREW
    discipline makes the log single-writer for free: the partition's
    exclusive owner is the only domain that ever appends to it, so
    appends need no cross-partition ordering and recovery can replay
    partitions independently (per-key order is per-partition order).

    {2 Write path}

    {!append} frames the record and hands it to the OS with one
    [write(2)] — no userspace buffering, so once {!append} returns the
    bytes survive the {e process} dying ([kill -9] included); only an
    OS crash or power loss can lose them, which is what [fsync] and the
    {!fsync_policy} govern. {!commit} then schedules the acknowledgement:
    depending on the policy it runs the callback immediately or defers
    it onto the background sync domain, which coalesces every pending
    request into one [fsync] per dirty partition (group commit) and
    only then acknowledges — so an fsync never runs on a worker domain,
    and concurrent windows closing across workers share fsyncs.

    {2 Recovery}

    {!open_} scans each partition's segments in order, replaying every
    valid record through the caller's callback. At the first torn or
    corrupt record it truncates the segment right there, discards any
    later segment of that partition, and stops — nothing after the
    first bad record is ever applied, so the replayed prefix is exactly
    a prefix of what was logged. A run killed mid-append therefore
    recovers every complete record and silently drops the torn tail.

    Metrics (in [registry]): [wal.appends], [wal.bytes], [wal.fsyncs],
    [wal.group_size] (requests coalesced per group-commit fsync round),
    [wal.rotations], [wal.recoveries], [wal.replayed],
    [wal.torn_truncations]. *)

type fsync_policy =
  | Always  (** every mutation's ack waits for a (group-commit) fsync *)
  | Window
      (** group commit at compaction-window close: a closing window's
          deferred acks additionally wait for one fsync; singleton
          mutations ack after the [write(2)] and their durability rides
          the next group commit (or {!close}) *)
  | Interval of float
      (** seconds between background fsync sweeps; acks never wait *)
  | Never  (** no fsync until {!close} *)

(** ["always" | "window" | "interval:<ms>" | "never"]. *)
val fsync_policy_of_string : string -> (fsync_policy, string) result

val fsync_policy_to_string : fsync_policy -> string

type config = {
  dir : string;  (** created (with parents' leaf) when missing *)
  n_partitions : int;  (** must match the store; recorded in [wal.meta] *)
  fsync : fsync_policy;
  segment_bytes : int;  (** rotate the segment once it grows past this *)
}

(** [Window] policy, 8 MiB segments. *)
val default_config : dir:string -> n_partitions:int -> config

type recovery_stats = {
  replayed : int;  (** records applied through the replay callback *)
  truncations : int;  (** torn/corrupt tails cut (segments dropped included) *)
  recovered_partitions : int;  (** partitions holding at least one record *)
}

type t

(** Open (creating the directory tree if needed), replay existing
    segments through [replay] in per-partition seqno order, truncate
    torn tails, and position every partition log for appending. Raises
    [Invalid_argument] when [wal.meta] records a different
    [n_partitions] (replaying under a different key→partition map could
    reorder writes to the same key across partitions). [registry] must
    be thread-safe; a private one is created when omitted. *)
val open_ :
  ?registry:C4_obs.Registry.t ->
  replay:(partition:int -> Record.t -> unit) ->
  config ->
  t * recovery_stats

val config : t -> config

(** Append one mutation to [partition]'s log (caller must be the
    partition's CREW owner, or otherwise serialise appends per
    partition); returns the record's seqno. Rotates the segment when
    full. The bytes are handed to the OS before this returns. *)
val append : t -> partition:int -> op:Record.op -> int

(** Schedule [cb] for when [partition]'s appended records are durable
    per the policy. [group] marks a compaction-window close (the acks
    the window deferred): [Always] defers every callback onto the sync
    domain's group commit; [Window] defers only [group] callbacks;
    [Interval _] and [Never] run [cb] inline. Callbacks for one
    partition run in submission order. *)
val commit : t -> partition:int -> group:bool -> (unit -> unit) -> unit

(** Fsync every dirty partition now, on the calling thread. *)
val flush_sync : t -> unit

(** {2 Cluster-replication extension points}

    These exist for [C4_clusterd.Member], which taps the runtime's WAL
    to drive leader→replica streaming and gates durability acks on
    replica acknowledgements. Both are [None] by default and must be
    installed before traffic starts (plain mutable fields, not
    synchronised). *)

(** Install (or clear) a hook called by {!append} {e inside} the
    partition lock, immediately after the bytes reach the OS — so the
    hook observes each partition's records in exactly seqno order. Keep
    it cheap (enqueue work, don't do I/O that can block appends). *)
val set_append_hook : t -> (partition:int -> Record.t -> unit) option -> unit

(** Install (or clear) a gate that {!commit} threads every callback
    through: instead of [cb], the policy runs
    [gate ~partition ~seqno cb] where [seqno] is the partition's newest
    record at commit time (bound on the appending worker, so it covers
    exactly the record being acknowledged). The gate decides when local
    durability is enough — e.g. quorum replication holds [cb] until
    enough replicas acked the covering shard sequence numbers. *)
val set_ack_gate :
  t -> (partition:int -> seqno:int -> (unit -> unit) -> unit) option -> unit

(** Newest seqno appended to [partition] (0 when empty). *)
val last_seqno : t -> partition:int -> int

(** Read-only scan of [partition]'s durable records with
    [seqno >= from_seqno], in seqno order, stopping silently at the
    first torn/corrupt record (a concurrent append's in-flight tail
    reads as torn — re-export from the new watermark later). Used by
    replica catch-up. Safe to run concurrently with appends. *)
val export :
  t -> partition:int -> from_seqno:int -> f:(Record.t -> unit) -> unit

(** Drain pending commits, run their callbacks, fsync everything and
    close all segments — after this returns no tail is torn. Idempotent. *)
val close : t -> unit
