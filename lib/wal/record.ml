type op =
  | Set of { key : int; value : bytes; token : int option }
  | Delete of { key : int }

type t = { seqno : int; op : op }

let max_value_len = 16 * 1024 * 1024
let header_len = 8 (* length + crc *)

(* seqno(8) op(1) key(8) tokflag(1) [token(8)] vlen(4) value *)
let payload_len ~has_token ~vlen = 8 + 1 + 8 + 1 + (if has_token then 8 else 0) + 4 + vlen
let min_payload_len = payload_len ~has_token:false ~vlen:0
let max_payload_len = payload_len ~has_token:true ~vlen:max_value_len

let encoded_size t =
  match t.op with
  | Set { value; token; _ } ->
    header_len + payload_len ~has_token:(token <> None) ~vlen:(Bytes.length value)
  | Delete _ -> header_len + min_payload_len

let add_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
let add_i32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let encode buf t =
  let key, value, token, tag =
    match t.op with
    | Set { key; value; token } ->
      if Bytes.length value > max_value_len then invalid_arg "Record.encode: value too large";
      (key, value, token, 1)
    | Delete { key } -> (key, Bytes.empty, None, 2)
  in
  let vlen = Bytes.length value in
  let plen = payload_len ~has_token:(token <> None) ~vlen in
  (* Build the payload in a scratch buffer so the CRC can be computed
     before the header is emitted. *)
  let payload = Buffer.create plen in
  add_i64 payload t.seqno;
  Buffer.add_char payload (Char.chr tag);
  add_i64 payload key;
  (match token with
  | None -> Buffer.add_char payload '\000'
  | Some tok ->
    Buffer.add_char payload '\001';
    add_i64 payload tok);
  add_i32 payload vlen;
  Buffer.add_bytes payload value;
  assert (Buffer.length payload = plen);
  let pbytes = Buffer.to_bytes payload in
  add_i32 buf plen;
  add_i32 buf (Crc32c.digest pbytes ~pos:0 ~len:plen);
  Buffer.add_bytes buf pbytes

type decoded = Ok of t * int | Torn | Corrupt of string

let get_u32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF
let get_i64 b pos = Int64.to_int (Bytes.get_int64_le b pos)

let decode b ~pos =
  let len = Bytes.length b in
  if pos + header_len > len then Torn
  else begin
    let plen = get_u32 b pos in
    let crc = get_u32 b (pos + 4) in
    if plen < min_payload_len || plen > max_payload_len then
      Corrupt (Printf.sprintf "implausible payload length %d" plen)
    else if pos + header_len + plen > len then Torn
    else begin
      let p = pos + header_len in
      if Crc32c.digest b ~pos:p ~len:plen <> crc then Corrupt "crc mismatch"
      else begin
        let seqno = get_i64 b p in
        let tag = Char.code (Bytes.get b (p + 8)) in
        let key = get_i64 b (p + 9) in
        let tokflag = Char.code (Bytes.get b (p + 17)) in
        match (tag, tokflag) with
        | (1 | 2), (0 | 1) ->
          let token, voff =
            if tokflag = 1 then (Some (get_i64 b (p + 18)), p + 26) else (None, p + 18)
          in
          if voff + 4 > p + plen then Corrupt "payload underrun"
          else begin
            let vlen = get_u32 b voff in
            if voff + 4 + vlen <> p + plen then
              Corrupt (Printf.sprintf "value length %d inconsistent with payload" vlen)
            else if tag = 1 then
              Ok
                ( { seqno; op = Set { key; value = Bytes.sub b (voff + 4) vlen; token } },
                  p + plen )
            else if vlen <> 0 || token <> None then
              Corrupt "delete with value or token"
            else Ok ({ seqno; op = Delete { key } }, p + plen)
          end
        | _ -> Corrupt (Printf.sprintf "bad op tag %d or token flag %d" tag tokflag)
      end
    end
  end

let equal a b =
  a.seqno = b.seqno
  &&
  match (a.op, b.op) with
  | Set s1, Set s2 ->
    s1.key = s2.key && Bytes.equal s1.value s2.value && s1.token = s2.token
  | Delete d1, Delete d2 -> d1.key = d2.key
  | Set _, Delete _ | Delete _, Set _ -> false

let pp ppf t =
  match t.op with
  | Set { key; value; token } ->
    Format.fprintf ppf "#%d SET %d (%d B%s)" t.seqno key (Bytes.length value)
      (match token with None -> "" | Some tok -> Format.sprintf ", token %d" tok)
  | Delete { key } -> Format.fprintf ppf "#%d DELETE %d" t.seqno key
