(* c4-lint: allow bare-mutex-lock — c4_wal sits below c4_runtime (the
   runtime depends on it), so Runtime.Sync is unavailable; the local
   [with_lock] below is the same exception-safe wrapper. *)

module Registry = C4_obs.Registry

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

type fsync_policy = Always | Window | Interval of float | Never

let fsync_policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Always
  | "window" -> Ok Window
  | "never" -> Ok Never
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
    let ms = String.sub s 9 (String.length s - 9) in
    match float_of_string_opt ms with
    | Some ms when ms > 0.0 -> Ok (Interval (ms /. 1e3))
    | Some _ | None -> Error (Printf.sprintf "bad fsync interval %S (want ms > 0)" ms))
  | _ ->
    Error
      (Printf.sprintf "unknown fsync policy %S (always|window|interval:<ms>|never)" s)

let fsync_policy_to_string = function
  | Always -> "always"
  | Window -> "window"
  | Interval s -> Printf.sprintf "interval:%g" (s *. 1e3)
  | Never -> "never"

type config = {
  dir : string;
  n_partitions : int;
  fsync : fsync_policy;
  segment_bytes : int;
}

let default_config ~dir ~n_partitions =
  { dir; n_partitions; fsync = Window; segment_bytes = 8 * 1024 * 1024 }

type recovery_stats = {
  replayed : int;
  truncations : int;
  recovered_partitions : int;
}

type partition_log = {
  p_dir : string;
  p_lock : Mutex.t;
  p_buf : Buffer.t;  (* encode scratch, guarded by [p_lock] *)
  mutable p_fd : Unix.file_descr option;  (* current segment, append mode *)
  mutable p_seg : int;  (* current segment number *)
  mutable p_seg_bytes : int;
  mutable p_next_seqno : int;
  mutable p_dirty : bool;  (* bytes written since the last fsync *)
}

type metrics = {
  appends_c : Registry.counter;
  bytes_c : Registry.counter;
  fsyncs_c : Registry.counter;
  group_h : Registry.histogram;
  rotations_c : Registry.counter;
  recoveries_c : Registry.counter;
  replayed_c : Registry.counter;
  torn_c : Registry.counter;
}

type request = { rq_partition : int; rq_cb : unit -> unit }

type t = {
  cfg : config;
  parts : partition_log array;
  m : metrics;
  q_lock : Mutex.t;
  q_cond : Condition.t;
  mutable queue : request list;  (* newest first; reversed on drain *)
  mutable closing : bool;
  mutable syncer : unit Domain.t option;
  mutable append_hook : (partition:int -> Record.t -> unit) option;
  mutable ack_gate : (partition:int -> seqno:int -> (unit -> unit) -> unit) option;
}

(* ---------------- paths ---------------- *)

let mkdir_p path =
  let rec mk path =
    if not (Sys.file_exists path) then begin
      mk (Filename.dirname path);
      try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk path

let partition_dir cfg partition = Filename.concat cfg.dir (Printf.sprintf "p%04d" partition)
let segment_path p_dir seg = Filename.concat p_dir (Printf.sprintf "%06d.seg" seg)

let segment_number name =
  if Filename.check_suffix name ".seg" then
    int_of_string_opt (Filename.chop_suffix name ".seg")
  else None

let list_segments p_dir =
  if not (Sys.file_exists p_dir) then []
  else
    Sys.readdir p_dir |> Array.to_list
    |> List.filter_map (fun name ->
           Option.map (fun n -> (n, Filename.concat p_dir name)) (segment_number name))
    |> List.sort compare

(* ---------------- meta ---------------- *)

let meta_path cfg = Filename.concat cfg.dir "wal.meta"

let check_meta cfg =
  let path = meta_path cfg in
  if Sys.file_exists path then begin
    let ic = open_in path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match int_of_string_opt (String.trim line) with
    | Some n when n = cfg.n_partitions -> ()
    | Some n ->
      invalid_arg
        (Printf.sprintf
           "Wal.open_: %s was written with %d partitions, reopened with %d — \
            replaying under a different key map would reorder same-key writes"
           cfg.dir n cfg.n_partitions)
    | None -> invalid_arg (Printf.sprintf "Wal.open_: unreadable meta %s" path)
  end
  else begin
    let oc = open_out path in
    output_string oc (string_of_int cfg.n_partitions ^ "\n");
    close_out oc
  end

(* ---------------- fd helpers ---------------- *)

let write_all fd b pos len =
  let rec go pos len =
    if len > 0 then begin
      let n =
        try Unix.write fd b pos len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (pos + n) (len - n)
    end
  in
  go pos len

let fsync_fd fd = try Unix.fsync fd with Unix.Unix_error (Unix.EINTR, _, _) -> Unix.fsync fd

(* ---------------- recovery ---------------- *)

let read_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      let b = Bytes.create len in
      let rec go pos =
        if pos < len then
          match Unix.read fd b pos (len - pos) with
          | 0 -> pos (* shorter than stat said; scan what we have *)
          | n -> go (pos + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
        else pos
      in
      let got = go 0 in
      if got = len then b else Bytes.sub b 0 got)

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.ftruncate fd len;
      fsync_fd fd)

(* Scan one partition's segments in order, replaying valid records and
   cutting at the first torn/corrupt one. Returns
   (records replayed, truncations performed, max seqno seen, last segment number). *)
let recover_partition ~replay ~partition p_dir =
  let segments = list_segments p_dir in
  let replayed = ref 0 and truncations = ref 0 and max_seqno = ref 0 in
  let last_seg = ref (match segments with [] -> 0 | l -> fst (List.hd (List.rev l))) in
  let rec scan_segments = function
    | [] -> ()
    | (seg, path) :: rest ->
      let b = read_file path in
      let len = Bytes.length b in
      let rec scan pos =
        if pos >= len then `Clean
        else
          match Record.decode b ~pos with
          | Record.Ok (r, next) ->
            replay ~partition r;
            incr replayed;
            if r.Record.seqno > !max_seqno then max_seqno := r.Record.seqno;
            scan next
          | Record.Torn | Record.Corrupt _ -> `Bad pos
      in
      (match scan 0 with
      | `Clean -> scan_segments rest
      | `Bad pos ->
        (* Truncate here; drop every later segment so nothing after the
           first bad record can ever be applied. *)
        truncate_file path pos;
        incr truncations;
        List.iter (fun (_, later) -> Sys.remove later) rest;
        (* Appends resume in the truncated segment. *)
        last_seg := seg)
  in
  scan_segments segments;
  (!replayed, !truncations, !max_seqno, !last_seg)

(* ---------------- lifecycle ---------------- *)

let metrics_of reg =
  {
    appends_c = Registry.counter reg "wal.appends";
    bytes_c = Registry.counter reg "wal.bytes";
    fsyncs_c = Registry.counter reg "wal.fsyncs";
    group_h = Registry.histogram reg "wal.group_size";
    rotations_c = Registry.counter reg "wal.rotations";
    recoveries_c = Registry.counter reg "wal.recoveries";
    replayed_c = Registry.counter reg "wal.replayed";
    torn_c = Registry.counter reg "wal.torn_truncations";
  }

(* Fsync [t.parts.(p)] if dirty; under the partition lock so a rotation
   cannot close the fd out from under the fsync. *)
let fsync_partition t p =
  let part = t.parts.(p) in
  with_lock part.p_lock (fun () ->
      if part.p_dirty then begin
        (match part.p_fd with Some fd -> fsync_fd fd | None -> ());
        part.p_dirty <- false;
        Registry.incr t.m.fsyncs_c
      end)

let flush_sync t =
  Array.iteri (fun p _ -> fsync_partition t p) t.parts

(* One group-commit round: fsync each distinct dirty partition once,
   then acknowledge every request, in submission order. *)
let run_round t reqs =
  (match reqs with
  | [] -> ()
  | _ ->
    let seen = Hashtbl.create 8 in
    List.iter
      (fun rq ->
        if not (Hashtbl.mem seen rq.rq_partition) then begin
          Hashtbl.replace seen rq.rq_partition ();
          fsync_partition t rq.rq_partition
        end)
      reqs;
    Registry.observe t.m.group_h (float_of_int (List.length reqs)));
  List.iter (fun rq -> rq.rq_cb ()) reqs

let syncer_loop t () =
  match t.cfg.fsync with
  | Interval every ->
    (* Periodic sweep; commits never queue under this policy. Sleep in
       small slices so close is prompt even with long intervals. *)
    let slice = Float.min every 0.05 in
    let rec loop slept =
      if not (with_lock t.q_lock (fun () -> t.closing)) then begin
        Unix.sleepf slice;
        let slept = slept +. slice in
        if slept >= every then begin
          flush_sync t;
          loop 0.0
        end
        else loop slept
      end
    in
    loop 0.0
  | Always | Window | Never ->
    let rec loop () =
      let reqs, closing =
        with_lock t.q_lock (fun () ->
            while t.queue = [] && not t.closing do
              Condition.wait t.q_cond t.q_lock
            done;
            let reqs = List.rev t.queue in
            t.queue <- [];
            (reqs, t.closing))
      in
      run_round t reqs;
      if not (closing && with_lock t.q_lock (fun () -> t.queue = [])) then loop ()
    in
    loop ()

let open_ ?registry ~replay cfg =
  if cfg.n_partitions <= 0 then invalid_arg "Wal.open_: n_partitions";
  if cfg.segment_bytes <= 0 then invalid_arg "Wal.open_: segment_bytes";
  mkdir_p cfg.dir;
  check_meta cfg;
  let reg =
    match registry with Some r -> r | None -> Registry.create ~thread_safe:true ()
  in
  let m = metrics_of reg in
  let replayed = ref 0 and truncations = ref 0 and recovered = ref 0 in
  let had_segments = ref false in
  let parts =
    Array.init cfg.n_partitions (fun p ->
        let p_dir = partition_dir cfg p in
        mkdir_p p_dir;
        if list_segments p_dir <> [] then had_segments := true;
        let n, cut, max_seqno, last_seg = recover_partition ~replay ~partition:p p_dir in
        replayed := !replayed + n;
        truncations := !truncations + cut;
        if n > 0 then incr recovered;
        let seg = max last_seg 1 in
        let path = segment_path p_dir seg in
        let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
        {
          p_dir;
          p_lock = Mutex.create ();
          p_buf = Buffer.create 256;
          p_fd = Some fd;
          p_seg = seg;
          p_seg_bytes = (Unix.fstat fd).Unix.st_size;
          p_next_seqno = max_seqno + 1;
          p_dirty = false;
        })
  in
  if !had_segments then Registry.incr m.recoveries_c;
  Registry.incr ~by:!replayed m.replayed_c;
  Registry.incr ~by:!truncations m.torn_c;
  let t =
    {
      cfg;
      parts;
      m;
      q_lock = Mutex.create ();
      q_cond = Condition.create ();
      queue = [];
      closing = false;
      syncer = None;
      append_hook = None;
      ack_gate = None;
    }
  in
  (match cfg.fsync with
  | Always | Window | Interval _ -> t.syncer <- Some (Domain.spawn (syncer_loop t))
  | Never -> ());
  ( t,
    {
      replayed = !replayed;
      truncations = !truncations;
      recovered_partitions = !recovered;
    } )

let config t = t.cfg

let rotate_locked t part =
  (match part.p_fd with
  | Some fd ->
    (* The retired segment is made durable before we move on: recovery
       scans segments in order and must never find a durable successor
       after a lost predecessor. *)
    fsync_fd fd;
    part.p_dirty <- false;
    Registry.incr t.m.fsyncs_c;
    Unix.close fd
  | None -> ());
  part.p_seg <- part.p_seg + 1;
  let path = segment_path part.p_dir part.p_seg in
  part.p_fd <-
    Some (Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644);
  part.p_seg_bytes <- 0;
  Registry.incr t.m.rotations_c

let set_append_hook t hook = t.append_hook <- hook
let set_ack_gate t gate = t.ack_gate <- gate

let last_seqno t ~partition =
  if partition < 0 || partition >= Array.length t.parts then
    invalid_arg "Wal.last_seqno: partition";
  let part = t.parts.(partition) in
  with_lock part.p_lock (fun () -> part.p_next_seqno - 1)

let append t ~partition ~op =
  if partition < 0 || partition >= Array.length t.parts then
    invalid_arg "Wal.append: partition";
  let part = t.parts.(partition) in
  with_lock part.p_lock (fun () ->
      let fd =
        match part.p_fd with
        | Some fd -> fd
        | None -> invalid_arg "Wal.append: closed"
      in
      let seqno = part.p_next_seqno in
      part.p_next_seqno <- seqno + 1;
      let record = { Record.seqno; op } in
      Buffer.clear part.p_buf;
      Record.encode part.p_buf record;
      let len = Buffer.length part.p_buf in
      write_all fd (Buffer.to_bytes part.p_buf) 0 len;
      part.p_seg_bytes <- part.p_seg_bytes + len;
      part.p_dirty <- true;
      Registry.incr t.m.appends_c;
      Registry.incr ~by:len t.m.bytes_c;
      if part.p_seg_bytes >= t.cfg.segment_bytes then rotate_locked t part;
      (* Inside [p_lock]: the hook observes records in exactly seqno
         order per partition, which the replication tap relies on. *)
      (match t.append_hook with Some hook -> hook ~partition record | None -> ());
      seqno)

(* Read-only scan of a partition's durable suffix. Stops at the first
   torn/corrupt record (a concurrent append's tail reads as torn — the
   caller re-exports from its new watermark later). *)
let export t ~partition ~from_seqno ~f =
  if partition < 0 || partition >= Array.length t.parts then
    invalid_arg "Wal.export: partition";
  let p_dir = t.parts.(partition).p_dir in
  let rec scan_segments = function
    | [] -> ()
    | (_, path) :: rest ->
      let b = read_file path in
      let len = Bytes.length b in
      let rec scan pos =
        if pos >= len then `Clean
        else
          match Record.decode b ~pos with
          | Record.Ok (r, next) ->
            if r.Record.seqno >= from_seqno then f r;
            scan next
          | Record.Torn | Record.Corrupt _ -> `Cut
      in
      (match scan 0 with `Clean -> scan_segments rest | `Cut -> ())
  in
  scan_segments (list_segments p_dir)

let enqueue t rq =
  with_lock t.q_lock (fun () ->
      t.queue <- rq :: t.queue;
      Condition.signal t.q_cond)

let commit t ~partition ~group cb =
  let cb =
    match t.ack_gate with
    | None -> cb
    | Some gate ->
      (* Bind the gate to the newest seqno now, on the appending worker,
         so the durability callback carries the exact record it covers
         even when the group-commit syncer runs it later. *)
      let seqno = last_seqno t ~partition in
      fun () -> gate ~partition ~seqno cb
  in
  match t.cfg.fsync with
  | Never | Interval _ -> cb ()
  | Window when not group -> cb ()
  | Always | Window -> enqueue t { rq_partition = partition; rq_cb = cb }

let close t =
  let already =
    with_lock t.q_lock (fun () ->
        let was = t.closing in
        t.closing <- true;
        Condition.broadcast t.q_cond;
        was)
  in
  if not already then begin
    (match t.syncer with Some d -> Domain.join d | None -> ());
    t.syncer <- None;
    (* Anything enqueued after the syncer's last drain. *)
    run_round t (with_lock t.q_lock (fun () ->
        let reqs = List.rev t.queue in
        t.queue <- [];
        reqs));
    flush_sync t;
    Array.iter
      (fun part ->
        with_lock part.p_lock (fun () ->
            match part.p_fd with
            | Some fd ->
              Unix.close fd;
              part.p_fd <- None
            | None -> ()))
      t.parts
  end
