(** CRC-32C (Castagnoli, the iSCSI/ext4 polynomial 0x1EDC6F41),
    table-driven over the reflected polynomial 0x82F63B78.

    Chosen over plain CRC-32 for its better error-detection properties
    on short records and because it is the checksum real log formats
    (RocksDB WAL, LevelDB) frame records with — a WAL tail torn by a
    mid-write crash must be distinguishable from a valid record with
    overwhelming probability. *)

(** [digest b ~pos ~len] is the CRC-32C of the slice as an unsigned
    32-bit value (initial value [0xFFFFFFFF], final xor [0xFFFFFFFF]).
    The check value: [digest "123456789"] = [0xE3069283]. *)
val digest : Bytes.t -> pos:int -> len:int -> int

val digest_string : string -> int
