let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0x82F63B78 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let digest b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32c.digest";
  let tbl = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get b i) in
    crc := tbl.((!crc lxor byte) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let digest_string s =
  digest (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
