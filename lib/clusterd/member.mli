(** One node's cluster runtime: shard-map serving, leader-based
    replication, and the durability/read gates that keep acknowledged
    writes alive across failover.

    A member wraps an already-started {!C4_runtime.Server} (which must
    have a WAL — cluster mode is meaningless without local durability)
    and plugs into it at two points:

    + the runtime WAL's {e append hook}: every locally-applied mutation
      whose key's shard this node currently {e leads} is re-appended to
      a second, per-shard WAL (the {b repl-log}, [n_partitions] =
      number of shards) and streamed to the shard's replicas. The
      repl-log's auto-assigned seqno {e is} the shard sequence number
      (sseq): dense per shard, independent of which node produced it,
      and comparable across failovers — a promoted leader simply keeps
      appending where its repl-log left off. Mutations applied {e as a
      replica} also traverse the hook but fail the leadership test (the
      no-echo rule), so replication never loops;
    + the runtime WAL's {e ack gate} (quorum mode): a mutation's
      durability callback — what ultimately releases the client's
      response — is held until a majority of the shard's replicas have
      acknowledged the covering sseq, so an acked write provably
      survives the leader dying: some majority member holds it, and
      failover promotes the most-caught-up replica.

    As a {e replica} the member listens on its [repl_port]: per
    inbound stream it checks the sender's epoch (stale leaders are
    rejected — the split-brain fence), reports per-shard watermarks so
    the sender can catch it up from its repl-log, then applies records
    strictly in sseq order — runtime apply first (local durability +
    token dedup), own repl-log append second (in-order apply makes the
    assigned seqno equal the received sseq), ack third.

    Reads: {!hooks}'s [cl_read_fence] blocks a GET response (quorum
    mode) until the key's partition has no applied-but-unacked suffix,
    so no client can observe a value that a subsequent failover
    forgets. The serving layer calls it from a thread that may block
    (connection writer or completion executor, per
    {!C4_net.Server.cluster}), never from an event-loop domain.

    Metrics (in [registry]): [cluster.epoch] (gauge),
    [cluster.repl_records_out], [cluster.repl_records_in],
    [cluster.repl_acks_in], [cluster.repl_reconnects],
    [cluster.stale_epoch_rejects]. The repl-log's wal.* metrics go to a
    private registry so they cannot be conflated with the runtime
    WAL's. *)

type ack_mode =
  | Leader  (** ack on local durability; replication is asynchronous *)
  | Quorum
      (** ack only after a majority of the shard's replicas hold the
          write ({!Shardmap.quorum_needed}); GETs fence likewise *)

val ack_mode_of_string : string -> (ack_mode, string) result
val ack_mode_to_string : ack_mode -> string

type config = {
  node_id : int;  (** this node's index in [initial_map]'s node table *)
  initial_map : Shardmap.t;
  repl_dir : string;  (** repl-log directory (e.g. [<wal_dir>/repl]) *)
  ack : ack_mode;
  repl_fsync : C4_wal.Wal.fsync_policy;
  max_frame : int;  (** replication-frame size bound *)
}

(** Quorum acks, [Window] repl-log fsync, 1 MiB frames. *)
val default_config :
  node_id:int -> initial_map:Shardmap.t -> repl_dir:string -> config

type t

(** Open (or recover) the repl-log, start the replication listener and
    the outbound streams to every replica of a led shard, and install
    the WAL hooks. Call {e before} the node starts accepting client
    traffic. Raises [Invalid_argument] on an invalid map, an
    out-of-range node id, or a runtime without a WAL. *)
val create : ?registry:C4_obs.Registry.t -> runtime:C4_runtime.Server.t -> config -> t

(** The hooks to place in {!C4_net.Server.config.cluster}. *)
val hooks : t -> C4_net.Server.cluster

(** Install [m] if its epoch is strictly newer than the current map's:
    updates routing, cuts replication streams from deposed leaders, and
    reconciles outbound streams (also reachable remotely via
    CLUSTER_INFO-with-payload). No-op otherwise. *)
val install : t -> Shardmap.t -> unit

val current_map : t -> Shardmap.t

(** A ["cluster"] health-document field: node id, epoch, ack mode, led
    shards, per-shard repl-log watermarks (what the supervisor compares
    to pick the most-caught-up replica), and the count of
    streamed-but-unacked records. *)
val health_json : t -> string * C4_obs.Json.t

type stats = {
  epoch : int;
  records_out : int;  (** records streamed as leader *)
  records_in : int;  (** records applied as replica *)
  acks_in : int;
  reconnects : int;
  outstanding : int;  (** streamed, not yet quorum-acked *)
}

val stats : t -> stats

(** Detach the WAL hooks, release every held durability callback (the
    runtime is about to drain), stop all replication I/O and close the
    repl-log. Idempotent. Call before [C4_net.Server.stop]. *)
val close : t -> unit
