module Record = C4_wal.Record

let magic = 0x43345250 (* "C4RP" *)

type hello = { h_epoch : int; h_node_id : int }

type welcome =
  | Accept of int array  (** per-shard replica watermarks *)
  | Reject of { r_epoch : int }

(* ---------------- blocking fd helpers ---------------- *)

let write_all fd b =
  let len = Bytes.length b in
  let rec go pos =
    if pos < len then begin
      let n =
        try Unix.write fd b pos (len - pos)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (pos + n)
    end
  in
  go 0

(* [Ok bytes] on a full read, [Error `Eof] on clean close before or
   during, [Error `Closed] on reset/abort. *)
let read_exact fd n =
  let b = Bytes.create n in
  let rec go pos =
    if pos >= n then Ok b
    else
      match Unix.read fd b pos (n - pos) with
      | 0 -> Error `Eof
      | got -> go (pos + got)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (_, _, _) -> Error `Closed
  in
  go 0

let u32 b off = Bytes.get_int32_le b off |> Int32.to_int |> ( land ) 0xFFFFFFFF
let u64 b off = Bytes.get_int64_le b off |> Int64.to_int

let put_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let put_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

(* ---------------- handshake ---------------- *)

let write_hello fd { h_epoch; h_node_id } =
  let b = Bytes.create 20 in
  put_u32 b 0 magic;
  put_u64 b 4 h_epoch;
  put_u64 b 12 h_node_id;
  write_all fd b

let read_hello fd =
  match read_exact fd 20 with
  | Error _ -> Error "hello: connection closed"
  | Ok b ->
    if u32 b 0 <> magic then Error "hello: bad magic"
    else Ok { h_epoch = u64 b 4; h_node_id = u64 b 12 }

let write_welcome fd = function
  | Accept wms ->
    let n = Array.length wms in
    let b = Bytes.create (5 + (8 * n)) in
    Bytes.set b 0 '\000';
    put_u32 b 1 n;
    Array.iteri (fun i wm -> put_u64 b (5 + (8 * i)) wm) wms;
    write_all fd b
  | Reject { r_epoch } ->
    let b = Bytes.create 9 in
    Bytes.set b 0 '\001';
    put_u64 b 1 r_epoch;
    write_all fd b

let read_welcome fd =
  match read_exact fd 1 with
  | Error _ -> Error "welcome: connection closed"
  | Ok tag -> (
    match Bytes.get tag 0 with
    | '\000' -> (
      match read_exact fd 4 with
      | Error _ -> Error "welcome: connection closed"
      | Ok nb -> (
        let n = u32 nb 0 in
        if n < 0 || n > 1 lsl 20 then Error "welcome: implausible shard count"
        else
          match read_exact fd (8 * n) with
          | Error _ -> Error "welcome: connection closed"
          | Ok b -> Ok (Accept (Array.init n (fun i -> u64 b (8 * i))))))
    | '\001' -> (
      match read_exact fd 8 with
      | Error _ -> Error "welcome: connection closed"
      | Ok b -> Ok (Reject { r_epoch = u64 b 0 }))
    | c -> Error (Printf.sprintf "welcome: unknown tag %d" (Char.code c)))

(* ---------------- data frames (leader -> replica) ----------------

   [u32 len][u32 shard][Record frame bytes] where [len] counts the
   shard field plus the record bytes. The record keeps its own CRC
   framing, so a replica validates payload integrity with the same
   {!C4_wal.Record} codec the WAL uses on disk. *)

let write_record buf fd ~shard record =
  Buffer.clear buf;
  Record.encode buf record;
  let rlen = Buffer.length buf in
  let b = Bytes.create (8 + rlen) in
  put_u32 b 0 (4 + rlen);
  put_u32 b 4 shard;
  Buffer.blit buf 0 b 8 rlen;
  write_all fd b

let read_record fd ~max_frame =
  match read_exact fd 4 with
  | Error `Eof -> Error "eof"
  | Error `Closed -> Error "closed"
  | Ok lb -> (
    let len = u32 lb 0 in
    if len < 4 || len > max_frame then
      Error (Printf.sprintf "record frame length %d out of range" len)
    else
      match read_exact fd len with
      | Error _ -> Error "closed mid-frame"
      | Ok b -> (
        let shard = u32 b 0 in
        match Record.decode (Bytes.sub b 4 (len - 4)) ~pos:0 with
        | Record.Ok (r, _) -> Ok (shard, r)
        | Record.Torn -> Error "torn record frame"
        | Record.Corrupt msg -> Error ("corrupt record frame: " ^ msg)))

(* ---------------- acks (replica -> leader) ---------------- *)

let write_ack fd ~shard ~sseq =
  let b = Bytes.create 12 in
  put_u32 b 0 shard;
  put_u64 b 4 sseq;
  write_all fd b

let read_ack fd =
  match read_exact fd 12 with
  | Error `Eof -> Error "eof"
  | Error `Closed -> Error "closed"
  | Ok b -> Ok (u32 b 0, u64 b 4)
