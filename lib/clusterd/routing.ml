module Wire = C4_net.Wire
module Client = C4_net.Client
module Retry = C4_resilience.Retry
module Sync = C4_runtime.Sync
module Promise = C4_runtime.Promise

type config = {
  retry : Retry.config;
  retry_seed : int;
  conns_per_host : int;
  max_frame : int;
}

let default_config ~retry = { retry; retry_seed = 1; conns_per_host = 1; max_frame = 1 lsl 20 }

type t = {
  cfg : config;
  lock : Mutex.t;
  mutable map : Shardmap.t;
  mutable closed : bool;
  clients : (int, Client.t) Hashtbl.t;  (* node id -> single-node client *)
  budget : Retry.Budget.budget;
  budget_lock : Mutex.t;
  token_nonce : int;
  next_token : int Atomic.t;
  refetch_cursor : int Atomic.t;
  s_wrong_shard : int Atomic.t;
  s_refetches : int Atomic.t;
  s_installs : int Atomic.t;
  s_retries : int Atomic.t;
}

(* Same construction as Net.Client's token nonce: unique-enough across
   client instances sharing a server, folded into 60 bits so tokens
   stay non-negative after xor-ing in the counter. *)
let make_nonce () =
  let h =
    Hashtbl.hash (Unix.getpid (), Unix.gettimeofday (), Sys.opaque_identity (ref ()))
  in
  (h lsl 30) lxor Hashtbl.hash (Unix.gettimeofday ()) land max_int

let create config ~map =
  (match Shardmap.validate map with
  | Ok () -> ()
  | Error e -> invalid_arg ("Routing.create: bad map: " ^ e));
  {
    cfg = config;
    lock = Mutex.create ();
    map;
    closed = false;
    clients = Hashtbl.create 8;
    budget = Retry.Budget.create config.retry;
    budget_lock = Mutex.create ();
    token_nonce = make_nonce ();
    next_token = Atomic.make 1;
    refetch_cursor = Atomic.make 0;
    s_wrong_shard = Atomic.make 0;
    s_refetches = Atomic.make 0;
    s_installs = Atomic.make 0;
    s_retries = Atomic.make 0;
  }

let current_map t = Sync.with_lock t.lock (fun () -> t.map)

(* Node identity (host/ports) is epoch-invariant, so clients cache by
   node id for the routing handle's lifetime. *)
let client_of t node =
  Sync.with_lock t.lock (fun () ->
      if t.closed then invalid_arg "Routing: closed";
      match Hashtbl.find_opt t.clients node with
      | Some c -> c
      | None ->
        let nd = Shardmap.node t.map node in
        let c =
          Client.create
            {
              (Client.default_config ~hosts:[ (nd.Shardmap.host, nd.Shardmap.port) ]) with
              Client.conns_per_host = t.cfg.conns_per_host;
              max_frame = t.cfg.max_frame;
              retry = None;  (* this layer drives all retries itself *)
            }
        in
        Hashtbl.replace t.clients node c;
        c)

let install t m =
  Sync.with_lock t.lock (fun () ->
      if Shardmap.epoch m > Shardmap.epoch t.map then begin
        t.map <- m;
        Atomic.incr t.s_installs
      end)

let install_bytes t b =
  match Shardmap.decode b with Ok m -> install t m | Error _ -> ()

(* One CLUSTER_INFO sweep over the other nodes (round-robin start so a
   hot retry loop doesn't hammer node 0), installing the first newer
   map found. *)
let refetch_map t ~exclude =
  Atomic.incr t.s_refetches;
  let map = current_map t in
  let n = Shardmap.n_nodes map in
  let start = Atomic.fetch_and_add t.refetch_cursor 1 in
  let rec go i =
    if i < n then begin
      let node = (start + i) mod n in
      if node = exclude then go (i + 1)
      else begin
        match Client.cluster_info (client_of t node) () with
        | Ok b ->
          install_bytes t b;
          ()
        | Error _ -> go (i + 1)
      end
    end
  in
  if n > 1 then go 0

let one_shot client ~op ~key ~value ~token =
  let p = Promise.create () in
  let (_ : int) =
    Client.dispatch client ~op ~key ~value ?token
      ~on_response:(fun r -> Promise.fulfil p r)
      ()
  in
  Promise.await p

let budget_allows t =
  Sync.with_lock t.budget_lock (fun () -> Retry.Budget.try_charge t.budget)

let note_failed_original t =
  Sync.with_lock t.budget_lock (fun () -> Retry.Budget.note_failed_original t.budget)

(* The retry loop. One idempotency token per logical SET, fixed across
   every attempt and every node it lands on — the cross-node
   exactly-once story: however many duplicates reach however many
   leaders (replicas preserve the token when re-applying), each node's
   idempotent store applies one.

   WRONG_SHARD answers carry the answering node's map inline: install
   it and go again without backoff (a redirect is fresh routing
   information, not congestion). Transport errors and [Err] mean the
   cached leader may be dead: refetch the map from the surviving nodes
   and back off under the shared {!Retry.Budget}. *)
let call t ~op ~key ~value =
  let cfg = t.cfg.retry in
  let original = Atomic.fetch_and_add t.next_token 1 in
  let token =
    match op with Wire.Set -> Some (t.token_nonce lxor original) | _ -> None
  in
  let start = Unix.gettimeofday () in
  let deadline_ok () =
    cfg.Retry.deadline <= 0.0
    || (Unix.gettimeofday () -. start) *. 1e9 < cfg.Retry.deadline
  in
  let rec attempt n =
    let map = current_map t in
    let node = Shardmap.leader_of_key map key in
    let resp = one_shot (client_of t node) ~op ~key ~value ~token in
    match resp.Wire.status with
    | Wire.Ok | Wire.Not_found -> resp
    | Wire.Wrong_shard ->
      Atomic.incr t.s_wrong_shard;
      install_bytes t resp.Wire.resp_value;
      if n >= cfg.Retry.max_attempts || not (deadline_ok ()) then resp
      else attempt (n + 1)
    | Wire.Cluster_ok -> resp  (* protocol violation; surface as-is *)
    | Wire.Err ->
      if n = 1 then note_failed_original t;
      if n >= cfg.Retry.max_attempts || not (deadline_ok ()) || not (budget_allows t)
      then resp
      else begin
        refetch_map t ~exclude:node;
        Atomic.incr t.s_retries;
        let ns = Retry.backoff_ns cfg ~seed:t.cfg.retry_seed ~original ~attempt:n in
        Unix.sleepf (ns /. 1e9);
        if deadline_ok () then attempt (n + 1) else resp
      end
  in
  attempt 1

let error_of resp =
  if Bytes.length resp.Wire.resp_value > 0 then Bytes.to_string resp.Wire.resp_value
  else "request failed"

let get t ~key =
  let resp = call t ~op:Wire.Get ~key ~value:Bytes.empty in
  match resp.Wire.status with
  | Wire.Ok -> Ok (Some resp.Wire.resp_value)
  | Wire.Not_found -> Ok None
  | Wire.Err -> Error (error_of resp)
  | Wire.Wrong_shard -> Error "no route to shard (map churn outlasted the retry policy)"
  | Wire.Cluster_ok -> Error "protocol violation: CLUSTER_OK to GET"

let set t ~key ~value =
  let resp = call t ~op:Wire.Set ~key ~value in
  match resp.Wire.status with
  | Wire.Ok | Wire.Not_found -> Ok ()
  | Wire.Err -> Error (error_of resp)
  | Wire.Wrong_shard -> Error "no route to shard (map churn outlasted the retry policy)"
  | Wire.Cluster_ok -> Error "protocol violation: CLUSTER_OK to SET"

let delete t ~key =
  let resp = call t ~op:Wire.Delete ~key ~value:Bytes.empty in
  match resp.Wire.status with
  | Wire.Ok -> Ok true
  | Wire.Not_found -> Ok false
  | Wire.Err -> Error (error_of resp)
  | Wire.Wrong_shard -> Error "no route to shard (map churn outlasted the retry policy)"
  | Wire.Cluster_ok -> Error "protocol violation: CLUSTER_OK to DELETE"

type stats = {
  epoch : int;
  wrong_shard_redirects : int;
  map_refetches : int;
  map_installs : int;
  retries : int;
}

let stats t =
  {
    epoch = Shardmap.epoch (current_map t);
    wrong_shard_redirects = Atomic.get t.s_wrong_shard;
    map_refetches = Atomic.get t.s_refetches;
    map_installs = Atomic.get t.s_installs;
    retries = Atomic.get t.s_retries;
  }

let close t =
  let clients =
    Sync.with_lock t.lock (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.clients [] in
          Hashtbl.reset t.clients;
          cs
        end)
  in
  List.iter Client.close clients
