(** Shard-map-aware client: caches an epoch-versioned {!Shardmap},
    sends each request to the key's current leader, and converges on
    map changes by following WRONG_SHARD redirects (which carry the
    answering node's map inline) and by refetching the map from
    surviving nodes when a cached leader stops answering.

    Retry semantics sit on {!C4_resilience.Retry}: capped exponential
    backoff with a wall-clock deadline and a shared token-bucket
    budget, exactly as the single-node client — redirects are the one
    exception, retried immediately (a redirect is fresh routing
    information, not congestion) though still bounded by
    [max_attempts] and the deadline.

    Exactly-once across nodes: a SET carries one idempotency token,
    fixed at the first attempt and reused for every retry {e wherever
    it lands}. Leaders replicate the token with the record and replicas
    preserve it when re-applying, so a retry that reaches a {e newly
    promoted} leader whose replica already applied the original still
    deduplicates — at most one apply, cluster-wide, per logical SET. *)

type config = {
  retry : C4_resilience.Retry.config;
  retry_seed : int;
  conns_per_host : int;
  max_frame : int;
}

(** Seed 1, one connection per node, 1 MiB frames. *)
val default_config : retry:C4_resilience.Retry.config -> config

type t

(** [map] seeds the cache (fetch one via
    {!C4_net.Client.cluster_info}, or load the supervisor's file).
    Connections open lazily, one pool per node. *)
val create : config -> map:Shardmap.t -> t

val current_map : t -> Shardmap.t

(** Install a newer map directly (no-op unless strictly newer). *)
val install : t -> Shardmap.t -> unit

val get : t -> key:int -> (bytes option, string) result
val set : t -> key:int -> value:bytes -> (unit, string) result

(** [Ok true] when the key was present. *)
val delete : t -> key:int -> (bool, string) result

type stats = {
  epoch : int;  (** cached map's epoch *)
  wrong_shard_redirects : int;
  map_refetches : int;  (** CLUSTER_INFO sweeps after failures *)
  map_installs : int;  (** newer maps actually adopted *)
  retries : int;  (** backed-off re-attempts (redirect hops excluded) *)
}

val stats : t -> stats

(** Close every node client. Idempotent. *)
val close : t -> unit
