module Sync = C4_runtime.Sync
module Runtime = C4_runtime.Server
module Promise = C4_runtime.Promise
module Wal = C4_wal.Wal
module Record = C4_wal.Record
module Registry = C4_obs.Registry
module Json = C4_obs.Json

type ack_mode = Leader | Quorum

let ack_mode_of_string = function
  | "leader" -> Ok Leader
  | "quorum" -> Ok Quorum
  | s -> Error (Printf.sprintf "unknown ack mode %S (leader|quorum)" s)

let ack_mode_to_string = function Leader -> "leader" | Quorum -> "quorum"

type config = {
  node_id : int;
  initial_map : Shardmap.t;
  repl_dir : string;
  ack : ack_mode;
  repl_fsync : Wal.fsync_policy;
  max_frame : int;
}

let default_config ~node_id ~initial_map ~repl_dir =
  {
    node_id;
    initial_map;
    repl_dir;
    ack = Quorum;
    repl_fsync = Wal.Window;
    max_frame = 1 lsl 20;
  }

(* A record this node streamed but has not yet seen quorum-acked:
   runtime WAL position (partition implicit in the queue it sits in,
   [o_rseq] its seqno there) and replication position (shard + sseq). *)
type outstanding = { o_rseq : int; o_shard : int; o_sseq : int }

type sender = {
  sn_node : int;
  sn_lock : Mutex.t;
  sn_cond : Condition.t;
  mutable sn_queue : (int * Record.t) list;  (* newest first *)
  mutable sn_stop : bool;
  mutable sn_fd : Unix.file_descr option;
  mutable sn_threads : Thread.t list;
}

type inbound = { in_fd : Unix.file_descr; in_epoch : int; mutable in_open : bool }

type t = {
  cfg : config;
  runtime : Runtime.t;
  repl_log : Wal.t;
  lock : Mutex.t;
  cond : Condition.t;  (* progress signal for blocking read fences *)
  mutable map : Shardmap.t;
  mutable map_bytes : bytes;  (* encoded [map]; re-encoded once per install *)
  senders : (int, sender) Hashtbl.t;
  mutable inbound : inbound list;
  mutable listener : Unix.file_descr option;
  mutable listener_thread : Thread.t option;
  mutable inbound_threads : Thread.t list;
  mutable closing : bool;
  outstanding : outstanding Queue.t array;  (* per runtime partition, rseq order *)
  repl_wm : (int, int array) Hashtbl.t;  (* replica node -> per-shard acked sseq *)
  mutable waiters : (int * int * (unit -> unit)) list;  (* partition, rseq, cb *)
  epoch_g : Registry.gauge;
  records_out_c : Registry.counter;
  records_in_c : Registry.counter;
  acks_in_c : Registry.counter;
  reconnects_c : Registry.counter;
  stale_epoch_c : Registry.counter;
}

let key_of_op = function Record.Set { key; _ } -> key | Record.Delete { key } -> key

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()
let shutdown_fd fd = try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* ---------------- quorum bookkeeping (under [t.lock]) ---------------- *)

let quorum_reached t entry =
  let needed = Shardmap.quorum_needed t.map ~shard:entry.o_shard in
  if needed = 0 then true
  else begin
    let acks = ref 0 in
    Hashtbl.iter
      (fun _node wm ->
        if entry.o_shard < Array.length wm && wm.(entry.o_shard) >= entry.o_sseq then
          incr acks)
      t.repl_wm;
    !acks >= needed
  end

(* [true] when no streamed-and-unacked record with runtime seqno <= [rseq]
   remains in [partition] — i.e. everything a durability callback or a
   read fence up to [rseq] covers has reached quorum. *)
let drained_locked t ~partition ~rseq =
  match Queue.peek_opt t.outstanding.(partition) with
  | None -> true
  | Some head -> head.o_rseq > rseq

(* Pop every quorum-satisfied queue head, collect newly-satisfied async
   waiters, and wake blocking fences. Returns callbacks to run with the
   lock released. *)
let advance_locked t =
  let progressed = ref false in
  Array.iter
    (fun q ->
      let rec pop () =
        match Queue.peek_opt q with
        | Some head when quorum_reached t head ->
          ignore (Queue.pop q);
          progressed := true;
          pop ()
        | _ -> ()
      in
      pop ())
    t.outstanding;
  if !progressed then begin
    let fire, keep =
      List.partition
        (fun (p, rseq, _) -> drained_locked t ~partition:p ~rseq)
        t.waiters
    in
    t.waiters <- keep;
    Condition.broadcast t.cond;
    List.rev_map (fun (_, _, cb) -> cb) fire
  end
  else []

let note_ack t ~node ~shard ~sseq =
  Registry.incr t.acks_in_c;
  let cbs =
    Sync.with_lock t.lock (fun () ->
        let wm =
          match Hashtbl.find_opt t.repl_wm node with
          | Some wm -> wm
          | None ->
            let wm = Array.make (Shardmap.n_shards t.map) 0 in
            Hashtbl.replace t.repl_wm node wm;
            wm
        in
        if shard >= 0 && shard < Array.length wm && sseq > wm.(shard) then
          wm.(shard) <- sseq;
        advance_locked t)
  in
  List.iter (fun cb -> cb ()) cbs

(* ---------------- runtime WAL hooks ---------------- *)

let sender_enqueue sn item =
  Sync.with_lock sn.sn_lock (fun () ->
      sn.sn_queue <- item :: sn.sn_queue;
      Condition.signal sn.sn_cond)

(* Runs on the runtime worker inside the runtime WAL's partition lock:
   per-partition, records arrive here in exactly runtime-seqno order,
   which keeps [t.outstanding] queues sorted and the replication stream
   in order per shard. Replica-applied records also pass through (their
   apply hits this node's runtime WAL) but fail the leadership test —
   the no-echo rule that stops replication loops. *)
let on_append t ~partition record =
  Sync.with_lock t.lock (fun () ->
      if not t.closing then begin
        let key = key_of_op record.Record.op in
        let shard = Shardmap.shard_of_key t.map key in
        if Shardmap.leader_of_shard t.map shard = t.cfg.node_id then begin
          let sseq = Wal.append t.repl_log ~partition:shard ~op:record.Record.op in
          let out = { Record.seqno = sseq; op = record.Record.op } in
          if t.cfg.ack = Quorum && Shardmap.quorum_needed t.map ~shard > 0 then
            Queue.push
              { o_rseq = record.Record.seqno; o_shard = shard; o_sseq = sseq }
              t.outstanding.(partition);
          List.iter
            (fun rep ->
              match Hashtbl.find_opt t.senders rep with
              | Some sn -> sender_enqueue sn (shard, out)
              | None -> ())
            (Shardmap.replicas_of_shard t.map shard);
          Registry.incr t.records_out_c
        end
      end)

(* Durability-ack gate installed on the runtime WAL (quorum mode): the
   callback for runtime record (partition, seqno) may only run once
   every streamed record it covers is quorum-acked. Never blocks — it
   registers and the replication ack readers fire it. *)
let gate t ~partition ~seqno cb =
  let run_now =
    Sync.with_lock t.lock (fun () ->
        if t.closing || drained_locked t ~partition ~rseq:seqno then true
        else begin
          t.waiters <- (partition, seqno, cb) :: t.waiters;
          false
        end)
  in
  if run_now then cb ()

(* GET fence (quorum mode): block until the key's partition has no
   locally-applied-but-unacked suffix, so a read can never observe a
   value that a failover then forgets. Runs on the serving layer's
   completion side — the connection writer thread under the threads
   engine, a completion-executor thread under the event engine — never
   on an event-loop domain, which must not block. *)
let read_fence t ~key =
  if t.cfg.ack = Quorum then begin
    let partition = Runtime.partition_of_key t.runtime key in
    Sync.with_lock t.lock (fun () ->
        match Queue.fold (fun acc e -> max acc e.o_rseq) 0 t.outstanding.(partition) with
        | 0 -> ()
        | target ->
          while not (t.closing || drained_locked t ~partition ~rseq:target) do
            Condition.wait t.cond t.lock
          done)
  end

(* ---------------- sender (this node as leader) ---------------- *)

let led_shards_for t ~replica =
  Sync.with_lock t.lock (fun () ->
      let shards = ref [] in
      for s = Shardmap.n_shards t.map - 1 downto 0 do
        if
          Shardmap.leader_of_shard t.map s = t.cfg.node_id
          && List.mem replica (Shardmap.replicas_of_shard t.map s)
        then shards := s :: !shards
      done;
      !shards)

let sender_loop t sn () =
  let buf = Buffer.create 256 in
  let last_sent = Array.make (Shardmap.n_shards t.cfg.initial_map) 0 in
  let stop () = Sync.with_lock sn.sn_lock (fun () -> sn.sn_stop) in
  let rec connect () =
    if stop () then None
    else begin
      let node =
        Sync.with_lock t.lock (fun () -> Shardmap.node t.map sn.sn_node)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_of_string node.Shardmap.host, node.Shardmap.repl_port))
      with
      | () ->
        Sync.with_lock sn.sn_lock (fun () -> sn.sn_fd <- Some fd);
        if stop () then begin
          close_fd fd;
          None
        end
        else Some fd
      | exception Unix.Unix_error _ ->
        close_fd fd;
        Unix.sleepf 0.05;
        connect ()
    end
  in
  let session fd acker =
    let epoch = Sync.with_lock t.lock (fun () -> Shardmap.epoch t.map) in
    Repl.write_hello fd { Repl.h_epoch = epoch; h_node_id = t.cfg.node_id };
    match Repl.read_welcome fd with
    | Error _ -> ()
    | Ok (Repl.Reject _) ->
      (* Our map is stale; a newer one arrives via CLUSTER_INFO. *)
      Registry.incr t.stale_epoch_c;
      Unix.sleepf 0.1
    | Ok (Repl.Accept wms) ->
      (* Ack reader rides the same socket and dies with it. It must
         only start now — after [read_welcome] — or it would race the
         handshake read and swallow the welcome bytes as acks. *)
      acker :=
        Some
          (Thread.create
             (fun () ->
               let rec loop () =
                 match Repl.read_ack fd with
                 | Ok (shard, sseq) ->
                   note_ack t ~node:sn.sn_node ~shard ~sseq;
                   loop ()
                 | Error _ -> ()
               in
               loop ())
             ());
      (* Drop the backlog: everything appended before this instant is
         in the repl-log (append precedes enqueue under [t.lock]), so
         the export below covers it; [last_sent] dedups the overlap. *)
      Sync.with_lock sn.sn_lock (fun () -> sn.sn_queue <- []);
      let shards = led_shards_for t ~replica:sn.sn_node in
      List.iter
        (fun shard ->
          let wm = if shard < Array.length wms then wms.(shard) else 0 in
          last_sent.(shard) <- wm;
          Wal.export t.repl_log ~partition:shard ~from_seqno:(wm + 1) ~f:(fun r ->
              Repl.write_record buf fd ~shard r;
              last_sent.(shard) <- r.Record.seqno))
        shards;
      (* Live loop: drain the queue in arrival (= per-shard seqno)
         order, skipping anything the catch-up already sent. *)
      let rec live () =
        let batch =
          Sync.with_lock sn.sn_lock (fun () ->
              while sn.sn_queue = [] && not sn.sn_stop do
                Condition.wait sn.sn_cond sn.sn_lock
              done;
              let b = List.rev sn.sn_queue in
              sn.sn_queue <- [];
              b)
        in
        if not (stop ()) then begin
          List.iter
            (fun (shard, r) ->
              if r.Record.seqno > last_sent.(shard) then begin
                Repl.write_record buf fd ~shard r;
                last_sent.(shard) <- r.Record.seqno
              end)
            batch;
          live ()
        end
      in
      live ()
  in
  let rec run () =
    match connect () with
    | None -> ()
    | Some fd ->
      let acker = ref None in
      (try session fd acker with Unix.Unix_error _ -> ());
      shutdown_fd fd;
      close_fd fd;
      Option.iter Thread.join !acker;
      Sync.with_lock sn.sn_lock (fun () -> sn.sn_fd <- None);
      if not (stop ()) then begin
        Registry.incr t.reconnects_c;
        Unix.sleepf 0.05;
        run ()
      end
  in
  run ()

let start_sender t node =
  let sn =
    {
      sn_node = node;
      sn_lock = Mutex.create ();
      sn_cond = Condition.create ();
      sn_queue = [];
      sn_stop = false;
      sn_fd = None;
      sn_threads = [];
    }
  in
  sn.sn_threads <- [ Thread.create (sender_loop t sn) () ];
  sn

let stop_sender sn =
  Sync.with_lock sn.sn_lock (fun () ->
      sn.sn_stop <- true;
      (match sn.sn_fd with
      | Some fd -> shutdown_fd fd
      | None -> ());
      Condition.broadcast sn.sn_cond);
  List.iter Thread.join sn.sn_threads

(* Replicas of shards this node leads — who it must stream to. *)
let desired_replicas_locked t =
  let nodes = ref [] in
  for s = 0 to Shardmap.n_shards t.map - 1 do
    if Shardmap.leader_of_shard t.map s = t.cfg.node_id then
      List.iter
        (fun r -> if not (List.mem r !nodes) then nodes := r :: !nodes)
        (Shardmap.replicas_of_shard t.map s)
  done;
  !nodes

(* ---------------- receiver (this node as replica) ---------------- *)

let handle_inbound t fd =
  match Repl.read_hello fd with
  | Error _ -> close_fd fd
  | Ok { Repl.h_epoch; h_node_id = _ } ->
    let verdict =
      Sync.with_lock t.lock (fun () ->
          let my_epoch = Shardmap.epoch t.map in
          if h_epoch < my_epoch then Error my_epoch
          else begin
            let n = Shardmap.n_shards t.map in
            let wms =
              Array.init n (fun s -> Wal.last_seqno t.repl_log ~partition:s)
            in
            let inb = { in_fd = fd; in_epoch = h_epoch; in_open = true } in
            t.inbound <- inb :: t.inbound;
            Ok (wms, inb)
          end)
    in
    (match verdict with
    | Error my_epoch ->
      Repl.write_welcome fd (Repl.Reject { r_epoch = my_epoch });
      close_fd fd
    | Ok (wms, inb) ->
      Repl.write_welcome fd (Repl.Accept wms);
      let rec loop () =
        match Repl.read_record fd ~max_frame:t.cfg.max_frame with
        | Error _ -> ()
        | Ok (shard, r) ->
          if shard < 0 || shard >= Shardmap.n_shards t.cfg.initial_map then ()
          else begin
            let expected = Wal.last_seqno t.repl_log ~partition:shard + 1 in
            if r.Record.seqno < expected then begin
              (* Duplicate from a catch-up/live overlap: already held
                 durably, just re-ack. *)
              Repl.write_ack fd ~shard ~sseq:r.Record.seqno;
              loop ()
            end
            else if r.Record.seqno > expected then
              (* Gap: drop the connection, the sender re-handshakes and
                 catch-up restarts from our watermark. *)
              ()
            else begin
              (* Apply to the runtime first (its own WAL makes the write
                 durable here; idempotency tokens ride along so a
                 re-send after a crash dedups), then append our
                 repl-log — in-order apply makes its auto-assigned
                 seqno equal sseq by construction — then ack. *)
              (match r.Record.op with
              | Record.Set { key; value; token } ->
                Promise.await (Runtime.set_async ?token t.runtime ~key ~value)
              | Record.Delete { key } ->
                ignore (Promise.await (Runtime.delete_async t.runtime ~key)));
              let got = Wal.append t.repl_log ~partition:shard ~op:r.Record.op in
              if got <> r.Record.seqno then
                (* Impossible unless another sender interleaved — drop
                   the connection rather than diverge. *)
                ()
              else begin
                Registry.incr t.records_in_c;
                Repl.write_ack fd ~shard ~sseq:r.Record.seqno;
                loop ()
              end
            end
          end
      in
      (try loop () with Unix.Unix_error _ -> ());
      Sync.with_lock t.lock (fun () ->
          inb.in_open <- false;
          t.inbound <- List.filter (fun i -> i != inb) t.inbound);
      close_fd fd)

let listener_loop t lsock () =
  let rec loop () =
    match Unix.accept lsock with
    | fd, _ ->
      let th = Thread.create (fun () -> handle_inbound t fd) () in
      Sync.with_lock t.lock (fun () ->
          t.inbound_threads <- th :: t.inbound_threads);
      loop ()
    | exception Unix.Unix_error _ -> ()  (* listener closed: shutting down *)
  in
  loop ()

(* ---------------- shard map serving / install ---------------- *)

let current_map t = Sync.with_lock t.lock (fun () -> t.map)

(* Install [m] if strictly newer. Fences stale replication senders
   (connections whose hello carried an older epoch are cut — a deposed
   leader cannot keep feeding us) and reconciles outbound senders with
   the new replica sets. *)
let install t m =
  let to_stop, stale =
    Sync.with_lock t.lock (fun () ->
        if Shardmap.epoch m <= Shardmap.epoch t.map then ([], [])
        else begin
          t.map <- m;
          t.map_bytes <- Shardmap.encode m;
          Registry.set t.epoch_g (float_of_int (Shardmap.epoch m));
          let stale =
            List.filter (fun i -> i.in_open && i.in_epoch < Shardmap.epoch m) t.inbound
          in
          let desired = desired_replicas_locked t in
          let to_stop = ref [] in
          Hashtbl.iter
            (fun node sn -> if not (List.mem node desired) then to_stop := sn :: !to_stop)
            t.senders;
          List.iter (fun sn -> Hashtbl.remove t.senders sn.sn_node) !to_stop;
          (* Start missing senders while still holding the lock, so a
             racing install cannot double-start one; the spawned thread
             blocks on [t.lock] until we release, which is fine. *)
          List.iter
            (fun n ->
              if not (Hashtbl.mem t.senders n) then
                Hashtbl.replace t.senders n (start_sender t n))
            desired;
          (!to_stop, stale)
        end)
  in
  List.iter (fun i -> shutdown_fd i.in_fd) stale;
  List.iter stop_sender to_stop

(* ---------------- Net.Server hooks ---------------- *)

let check t ~key ~write:_ =
  Sync.with_lock t.lock (fun () ->
      if Shardmap.leader_of_key t.map key = t.cfg.node_id then Ok ()
      else Error (Bytes.copy t.map_bytes))

let info t payload =
  if Bytes.length payload > 0 then begin
    match Shardmap.decode payload with
    | Ok m -> install t m
    | Error _ -> ()  (* malformed offers are ignored, current map returned *)
  end;
  Ok (Sync.with_lock t.lock (fun () -> Bytes.copy t.map_bytes))

let hooks t =
  {
    C4_net.Server.cl_check = (fun ~key ~write -> check t ~key ~write);
    cl_read_fence = (fun ~key -> read_fence t ~key);
    cl_info = (fun payload -> info t payload);
  }

(* ---------------- health ---------------- *)

let health_json t =
  Sync.with_lock t.lock (fun () ->
      let n = Shardmap.n_shards t.map in
      let led = ref [] in
      for s = n - 1 downto 0 do
        if Shardmap.leader_of_shard t.map s = t.cfg.node_id then led := s :: !led
      done;
      let outstanding =
        Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.outstanding
      in
      ( "cluster",
        Json.Obj
          [
            ("node_id", Json.Int t.cfg.node_id);
            ("epoch", Json.Int (Shardmap.epoch t.map));
            ("ack", Json.Str (ack_mode_to_string t.cfg.ack));
            ("led_shards", Json.List (List.map (fun s -> Json.Int s) !led));
            ( "watermarks",
              Json.List
                (List.init n (fun s ->
                     Json.Int (Wal.last_seqno t.repl_log ~partition:s))) );
            ("outstanding", Json.Int outstanding);
          ] ))

(* ---------------- lifecycle ---------------- *)

let create ?registry ~runtime cfg =
  (match Shardmap.validate cfg.initial_map with
  | Ok () -> ()
  | Error e -> invalid_arg ("Member.create: bad map: " ^ e));
  if cfg.node_id < 0 || cfg.node_id >= Shardmap.n_nodes cfg.initial_map then
    invalid_arg "Member.create: node_id out of range";
  let runtime_wal =
    match Runtime.wal_handle runtime with
    | Some w -> w
    | None -> invalid_arg "Member.create: cluster mode requires a runtime WAL"
  in
  let reg =
    match registry with Some r -> r | None -> Registry.create ~thread_safe:true ()
  in
  let n_shards = Shardmap.n_shards cfg.initial_map in
  (* Private registry: a second Wal in the node's main registry would
     share (and double-count) the runtime WAL's wal.* metrics. *)
  let repl_log, _ =
    Wal.open_
      ~replay:(fun ~partition:_ _ -> ())
      {
        Wal.dir = cfg.repl_dir;
        n_partitions = n_shards;
        fsync = cfg.repl_fsync;
        segment_bytes = 8 * 1024 * 1024;
      }
  in
  let t =
    {
      cfg;
      runtime;
      repl_log;
      lock = Mutex.create ();
      cond = Condition.create ();
      map = cfg.initial_map;
      map_bytes = Shardmap.encode cfg.initial_map;
      senders = Hashtbl.create 8;
      inbound = [];
      listener = None;
      listener_thread = None;
      inbound_threads = [];
      closing = false;
      outstanding = Array.init (Runtime.n_partitions runtime) (fun _ -> Queue.create ());
      repl_wm = Hashtbl.create 8;
      waiters = [];
      epoch_g = Registry.gauge reg "cluster.epoch";
      records_out_c = Registry.counter reg "cluster.repl_records_out";
      records_in_c = Registry.counter reg "cluster.repl_records_in";
      acks_in_c = Registry.counter reg "cluster.repl_acks_in";
      reconnects_c = Registry.counter reg "cluster.repl_reconnects";
      stale_epoch_c = Registry.counter reg "cluster.stale_epoch_rejects";
    }
  in
  Registry.set t.epoch_g (float_of_int (Shardmap.epoch cfg.initial_map));
  (* Replication listener. *)
  let me = Shardmap.node cfg.initial_map cfg.node_id in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  (try
     Unix.bind lsock
       (Unix.ADDR_INET (Unix.inet_addr_of_string me.Shardmap.host, me.Shardmap.repl_port))
   with e ->
     close_fd lsock;
     raise e);
  Unix.listen lsock 16;
  t.listener <- Some lsock;
  t.listener_thread <- Some (Thread.create (listener_loop t lsock) ());
  (* Outbound streams to every node replicating a shard we lead. *)
  List.iter
    (fun node -> Hashtbl.replace t.senders node (start_sender t node))
    (Sync.with_lock t.lock (fun () -> desired_replicas_locked t));
  (* Tap the runtime WAL last: everything is in place to stream. *)
  Wal.set_append_hook runtime_wal (Some (fun ~partition record -> on_append t ~partition record));
  if cfg.ack = Quorum then
    Wal.set_ack_gate runtime_wal
      (Some (fun ~partition ~seqno cb -> gate t ~partition ~seqno cb));
  t

let close t =
  let pending =
    Sync.with_lock t.lock (fun () ->
        if t.closing then None
        else begin
          t.closing <- true;
          Condition.broadcast t.cond;
          let w = t.waiters in
          t.waiters <- [];
          Some w
        end)
  in
  match pending with
  | None -> ()
  | Some waiters ->
    (* Detach from the runtime WAL first so no new work arrives. *)
    (match Runtime.wal_handle t.runtime with
    | Some w ->
      Wal.set_append_hook w None;
      Wal.set_ack_gate w None
    | None -> ());
    (* Shutdown-flush: durability callbacks held for quorum run now —
       the runtime is stopping and will drain them through its normal
       path; holding them would hang its stop. *)
    List.iter (fun (_, _, cb) -> cb ()) (List.rev waiters);
    (match t.listener with
    | Some fd ->
      shutdown_fd fd;
      close_fd fd;
      t.listener <- None
    | None -> ());
    (match t.listener_thread with
    | Some th ->
      Thread.join th;
      t.listener_thread <- None
    | None -> ());
    let inbound, senders =
      Sync.with_lock t.lock (fun () ->
          let i = t.inbound in
          let s = Hashtbl.fold (fun _ sn acc -> sn :: acc) t.senders [] in
          Hashtbl.reset t.senders;
          (i, s))
    in
    List.iter (fun i -> shutdown_fd i.in_fd) inbound;
    List.iter stop_sender senders;
    List.iter Thread.join
      (Sync.with_lock t.lock (fun () ->
           let th = t.inbound_threads in
           t.inbound_threads <- [];
           th));
    Wal.close t.repl_log

type stats = {
  epoch : int;
  records_out : int;
  records_in : int;
  acks_in : int;
  reconnects : int;
  outstanding : int;
}

let stats t =
  Sync.with_lock t.lock (fun () ->
      {
        epoch = Shardmap.epoch t.map;
        records_out = Registry.counter_value t.records_out_c;
        records_in = Registry.counter_value t.records_in_c;
        acks_in = Registry.counter_value t.acks_in_c;
        reconnects = Registry.counter_value t.reconnects_c;
        outstanding =
          Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.outstanding;
      })
