(** Wire codec for the leader→replica replication stream — the framing
    only, kept free of cluster state so it unit-tests over a socketpair.

    One TCP connection per (leader, replica) pair, opened by the
    leader to the replica's [repl_port]:

    + leader sends a {!hello} ([magic][epoch: u64][node id: u64]);
    + replica answers {!welcome} — [Accept] with its per-shard
      replication watermarks (newest shard seqno it holds durably, one
      per shard, so the leader knows where catch-up starts), or
      [Reject] carrying its own epoch when the hello's epoch is stale
      (the split-brain fence: a deposed leader that missed the new map
      cannot feed replicas);
    + leader streams {!write_record} data frames
      ([u32 len][u32 shard][Record bytes] — the record keeps its
      on-disk CRC framing, so integrity is checked with the same
      {!C4_wal.Record} codec), strictly in shard-seqno order per shard;
    + replica sends a 12-byte {!write_ack} ([u32 shard][u64 sseq]) for
      each record once it is applied and durable on its side.

    All integers little-endian. Reads are blocking and return [Error]
    on EOF/reset rather than raising — connection death is routine
    (failover kills leaders mid-frame by design). *)

val magic : int

type hello = { h_epoch : int; h_node_id : int }

type welcome =
  | Accept of int array  (** index = shard, value = replica's watermark *)
  | Reject of { r_epoch : int }  (** replica's current map epoch *)

val write_hello : Unix.file_descr -> hello -> unit
val read_hello : Unix.file_descr -> (hello, string) result
val write_welcome : Unix.file_descr -> welcome -> unit
val read_welcome : Unix.file_descr -> (welcome, string) result

(** [buf] is caller-owned encode scratch (cleared each call). *)
val write_record :
  Buffer.t -> Unix.file_descr -> shard:int -> C4_wal.Record.t -> unit

(** [Ok (shard, record)]; [Error "eof"] on clean close. *)
val read_record :
  Unix.file_descr -> max_frame:int -> (int * C4_wal.Record.t, string) result

val write_ack : Unix.file_descr -> shard:int -> sseq:int -> unit
val read_ack : Unix.file_descr -> (int * int, string) result
