module Json = C4_obs.Json
module Client = C4_net.Client
module Sync = C4_runtime.Sync

type event =
  | Probe_failed of { node : int; consecutive : int }
  | Node_dead of int
  | Promoted of { epoch : int; dead : int; new_leaders : (int * int) list }
  | Published of { epoch : int; node : int }
  | Publish_failed of { node : int; reason : string }
  | Shard_stranded of int

type config = {
  poll_interval : float;
  fail_threshold : int;
  probe_timeout : float;
  on_event : event -> unit;
}

let default_config =
  {
    poll_interval = 0.15;
    fail_threshold = 2;
    probe_timeout = 1.0;
    on_event = (fun _ -> ());
  }

type t = {
  cfg : config;
  lock : Mutex.t;
  mutable map : Shardmap.t;
  mutable dead : int list;  (* nodes already failed over *)
  mutable stop : bool;
  mutable thread : Thread.t option;
}

(* ---------------- /healthz probe ---------------- *)

(* Minimal HTTP/1.0 GET against the node's telemetry endpoint; the
   response is tiny and Connection: close, so read-to-EOF is the
   framing. *)
let http_get_health ~timeout node =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
        Unix.connect fd
          (Unix.ADDR_INET
             ( Unix.inet_addr_of_string node.Shardmap.host,
               node.Shardmap.telemetry_port ));
        let req = Bytes.of_string "GET /healthz HTTP/1.0\r\n\r\n" in
        let _ = Unix.write fd req 0 (Bytes.length req) in
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd chunk 0 4096 with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        let s = Buffer.contents buf in
        match String.index_opt s '{' with
        | None -> Error "no JSON body"
        | Some i -> (
          match Json.of_string (String.sub s i (String.length s - i)) with
          | j -> Ok j
          | exception Json.Parse_error msg -> Error msg)
      with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let watermarks_of_health j =
  match Option.bind (Json.member "cluster" j) (Json.member "watermarks") with
  | None -> None
  | Some wms ->
    Option.map
      (fun l -> Array.of_list (List.map (fun v -> Option.value ~default:0 (Json.to_int_opt v)) l))
      (Json.to_list_opt wms)

(* ---------------- failover ---------------- *)

let publish t m =
  let nodes =
    List.filter
      (fun i -> not (List.mem i t.dead))
      (List.init (Shardmap.n_nodes m) (fun i -> i))
  in
  List.iter
    (fun i ->
      let nd = Shardmap.node m i in
      let client =
        Client.create
          (Client.default_config ~hosts:[ (nd.Shardmap.host, nd.Shardmap.port) ])
      in
      (match Client.cluster_info client ~payload:(Shardmap.encode m) () with
      | Ok _ -> t.cfg.on_event (Published { epoch = Shardmap.epoch m; node = i })
      | Error reason -> t.cfg.on_event (Publish_failed { node = i; reason }));
      Client.close client)
    nodes

(* Promote, per shard the dead node led, the live replica whose
   repl-log watermark for that shard is highest — by the quorum-ack
   invariant every acknowledged write sits at or below some majority
   member's watermark, so the argmax replica holds all of them. *)
let failover t ~dead =
  let map = t.map in
  let led = ref [] in
  for s = Shardmap.n_shards map - 1 downto 0 do
    if Shardmap.leader_of_shard map s = dead then led := s :: !led
  done;
  (* Fresh watermarks from every live replica of an affected shard. *)
  let health = Hashtbl.create 8 in
  let wm_of node shard =
    let wms =
      match Hashtbl.find_opt health node with
      | Some wms -> wms
      | None ->
        let wms =
          match http_get_health ~timeout:t.cfg.probe_timeout (Shardmap.node map node) with
          | Ok j -> Option.value ~default:[||] (watermarks_of_health j)
          | Error _ -> [||]
        in
        Hashtbl.replace health node wms;
        wms
    in
    if shard < Array.length wms then wms.(shard) else -1
  in
  let new_leaders =
    List.filter_map
      (fun s ->
        let live =
          List.filter (fun r -> not (List.mem r t.dead) && r <> dead)
            (Shardmap.replicas_of_shard map s)
        in
        let best =
          List.fold_left
            (fun acc r ->
              let wm = wm_of r s in
              match acc with
              | Some (_, best_wm) when best_wm >= wm -> acc
              | _ when wm >= 0 -> Some (r, wm)
              | _ -> acc)
            None live
        in
        match best with
        | Some (r, _) -> Some (s, r)
        | None ->
          t.cfg.on_event (Shard_stranded s);
          None)
      !led
  in
  let m = Shardmap.promote map ~dead ~new_leaders in
  t.map <- m;
  t.dead <- dead :: t.dead;
  t.cfg.on_event (Promoted { epoch = Shardmap.epoch m; dead; new_leaders });
  publish t m

(* ---------------- poll loop ---------------- *)

let loop t () =
  let n = Shardmap.n_nodes t.map in
  let failures = Array.make n 0 in
  let stopped () = Sync.with_lock t.lock (fun () -> t.stop) in
  while not (stopped ()) do
    for i = 0 to n - 1 do
      if not (stopped ()) && not (List.mem i t.dead) then begin
        match http_get_health ~timeout:t.cfg.probe_timeout (Shardmap.node t.map i) with
        | Ok _ -> failures.(i) <- 0
        | Error _ ->
          failures.(i) <- failures.(i) + 1;
          t.cfg.on_event (Probe_failed { node = i; consecutive = failures.(i) });
          if failures.(i) >= t.cfg.fail_threshold then begin
            t.cfg.on_event (Node_dead i);
            failover t ~dead:i
          end
      end
    done;
    if not (stopped ()) then Unix.sleepf t.cfg.poll_interval
  done

let start config ~map =
  (match Shardmap.validate map with
  | Ok () -> ()
  | Error e -> invalid_arg ("Supervisor.start: bad map: " ^ e));
  let t =
    { cfg = config; lock = Mutex.create (); map; dead = []; stop = false; thread = None }
  in
  t.thread <- Some (Thread.create (loop t) ());
  t

let current_map t = t.map
let dead_nodes t = t.dead

let stop t =
  Sync.with_lock t.lock (fun () -> t.stop <- true);
  match t.thread with
  | Some th ->
    Thread.join th;
    t.thread <- None
  | None -> ()
