(** Epoch-versioned shard→nodes routing map — the cluster runtime's one
    piece of shared configuration.

    A map assigns each of [n_shards] shards a leader node and an
    ordered list of replica nodes, and carries a monotonically
    increasing [epoch]. Every cluster member serves its current map
    (over {!C4_net.Wire.Cluster_info} frames and inline in
    [Wrong_shard] responses) and installs any map with a strictly
    newer epoch; the supervisor is the only writer, bumping the epoch
    exactly once per failover. Clients therefore converge on the newest
    map by gossip-free pull: any response from any member either
    confirms their cached epoch or hands them a newer map.

    Keys map to shards with {!C4_kvs.Hash.node_of_key} applied with
    [n_nodes = n_shards] — the same mixer the single-node stack uses
    for client-side sharding, so shard placement is stable across
    epochs (failover moves {e leadership}, never key→shard
    assignment; contrast with the paper's d-CREW worker-level remaps,
    which move key ownership between workers inside one node).

    The wire/file codec is the observability layer's JSON ({!encode} /
    {!decode}); [decode] validates structurally, so a member can
    install a map received off the network without further checks. *)

type node = {
  id : int;  (** index in the map's node table; stable across epochs *)
  host : string;
  port : int;  (** KVS wire-protocol port *)
  repl_port : int;  (** leader→replica replication stream port *)
  telemetry_port : int;  (** /healthz + /metrics *)
}

type shard = { leader : int; replicas : int list }  (** node indices *)

type t

val epoch : t -> int
val n_shards : t -> int
val n_nodes : t -> int
val node : t -> int -> node
val shard : t -> int -> shard

(** [C4_kvs.Hash.node_of_key ~n_nodes:(n_shards t)] — epoch-invariant. *)
val shard_of_key : t -> int -> int

val leader_of_shard : t -> int -> int
val leader_of_key : t -> int -> int
val replicas_of_shard : t -> int -> int list

(** Replica acks needed before a quorum-mode write is acknowledged:
    [(r+1)/2] for [r] replicas (a strict majority of the r+1-member
    group counting the leader's own durable append); [0] for an
    unreplicated shard. *)
val quorum_needed : t -> shard:int -> int

(** Structural checks: non-negative epoch, node ids equal their index,
    leaders/replicas in range, no replica duplicated or equal to its
    leader. *)
val validate : t -> (unit, string) result

val encode : t -> bytes

(** Parse and {!validate}. *)
val decode : bytes -> (t, string) result

(** Epoch-1 map: shard [s]'s leader is node [s mod n], every other node
    replicates it. Node ids must equal their list position. *)
val initial : nodes:node list -> n_shards:int -> t

(** The failover step: drop [dead] from every replica set, and for each
    shard it led install the promoted leader from [new_leaders]
    (shard → node index; the new leader is removed from that shard's
    replicas). Bumps the epoch by one. *)
val promote : t -> dead:int -> new_leaders:(int * int) list -> t

val pp : Format.formatter -> t -> unit
