module Json = C4_obs.Json
module Hash = C4_kvs.Hash

type node = {
  id : int;
  host : string;
  port : int;
  repl_port : int;
  telemetry_port : int;
}

type shard = { leader : int; replicas : int list }

type t = { epoch : int; n_shards : int; nodes : node array; shards : shard array }

let epoch t = t.epoch
let n_shards t = t.n_shards
let n_nodes t = Array.length t.nodes
let node t i = t.nodes.(i)
let shard t s = t.shards.(s)
let shard_of_key t key = Hash.node_of_key ~n_nodes:t.n_shards key
let leader_of_shard t s = t.shards.(s).leader
let leader_of_key t key = leader_of_shard t (shard_of_key t key)
let replicas_of_shard t s = t.shards.(s).replicas

(* Replica acks the leader must collect before acking a quorum-mode
   write: ceil(r/2) of the r replicas, i.e. (r+1)/2. Together with the
   leader's own durable append that is a strict majority of the full
   r+1-member replication group (r=1 -> 1 ack, group 2/2; r=2 -> 1+
   leader = 2 of 3; r=3 -> 2+leader = 3 of 4). r=0 -> 0: an
   unreplicated shard acks on local durability alone. *)
let quorum_needed t ~shard = (List.length t.shards.(shard).replicas + 1) / 2

let validate t =
  let n = Array.length t.nodes in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.epoch < 0 then fail "epoch %d < 0" t.epoch
  else if t.n_shards <= 0 then fail "n_shards %d <= 0" t.n_shards
  else if n = 0 then fail "no nodes"
  else if Array.length t.shards <> t.n_shards then
    fail "shards array length %d <> n_shards %d" (Array.length t.shards) t.n_shards
  else begin
    let bad = ref None in
    Array.iteri
      (fun i nd -> if !bad = None && nd.id <> i then bad := Some (`Node_id (i, nd.id)))
      t.nodes;
    Array.iteri
      (fun s sh ->
        if !bad = None then begin
          if sh.leader < 0 || sh.leader >= n then bad := Some (`Leader (s, sh.leader));
          List.iter
            (fun r ->
              if !bad = None && (r < 0 || r >= n || r = sh.leader) then
                bad := Some (`Replica (s, r)))
            sh.replicas;
          let sorted = List.sort_uniq compare sh.replicas in
          if !bad = None && List.length sorted <> List.length sh.replicas then
            bad := Some (`Dup_replica s)
        end)
      t.shards;
    match !bad with
    | None -> Ok ()
    | Some (`Node_id (i, id)) -> fail "nodes.(%d).id = %d (must equal index)" i id
    | Some (`Leader (s, l)) -> fail "shard %d leader %d out of range" s l
    | Some (`Replica (s, r)) -> fail "shard %d replica %d invalid" s r
    | Some (`Dup_replica s) -> fail "shard %d has duplicate replicas" s
  end

(* ---------------- codec ---------------- *)

let to_json t =
  Json.Obj
    [
      ("epoch", Json.Int t.epoch);
      ("n_shards", Json.Int t.n_shards);
      ( "nodes",
        Json.List
          (Array.to_list t.nodes
          |> List.map (fun nd ->
                 Json.Obj
                   [
                     ("id", Json.Int nd.id);
                     ("host", Json.Str nd.host);
                     ("port", Json.Int nd.port);
                     ("repl_port", Json.Int nd.repl_port);
                     ("telemetry_port", Json.Int nd.telemetry_port);
                   ])) );
      ( "shards",
        Json.List
          (Array.to_list t.shards
          |> List.map (fun sh ->
                 Json.Obj
                   [
                     ("leader", Json.Int sh.leader);
                     ("replicas", Json.List (List.map (fun r -> Json.Int r) sh.replicas));
                   ])) );
    ]

let encode t = Bytes.of_string (Json.to_string (to_json t))

let int_field name j =
  match Option.bind (Json.member name j) Json.to_int_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing int field %S" name)

let str_field name j =
  match Option.bind (Json.member name j) Json.to_string_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing string field %S" name)

let list_field name j =
  match Option.bind (Json.member name j) Json.to_list_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing list field %S" name)

let ( let* ) = Result.bind

let node_of_json j =
  let* id = int_field "id" j in
  let* host = str_field "host" j in
  let* port = int_field "port" j in
  let* repl_port = int_field "repl_port" j in
  let* telemetry_port = int_field "telemetry_port" j in
  Ok { id; host; port; repl_port; telemetry_port }

let shard_of_json j =
  let* leader = int_field "leader" j in
  let* reps = list_field "replicas" j in
  let* replicas =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        match Json.to_int_opt r with
        | Some i -> Ok (i :: acc)
        | None -> Error "non-int replica")
      (Ok []) reps
  in
  Ok { leader; replicas = List.rev replicas }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let decode b =
  match Json.of_string (Bytes.to_string b) with
  | exception Json.Parse_error msg -> Error ("shardmap: " ^ msg)
  | j ->
    let* epoch = int_field "epoch" j in
    let* n_shards = int_field "n_shards" j in
    let* nodes_j = list_field "nodes" j in
    let* shards_j = list_field "shards" j in
    let* nodes = map_result node_of_json nodes_j in
    let* shards = map_result shard_of_json shards_j in
    let t =
      { epoch; n_shards; nodes = Array.of_list nodes; shards = Array.of_list shards }
    in
    let* () = validate t in
    Ok t

(* ---------------- construction ---------------- *)

let initial ~nodes ~n_shards =
  if n_shards <= 0 then invalid_arg "Shardmap.initial: n_shards";
  if nodes = [] then invalid_arg "Shardmap.initial: no nodes";
  let nodes = Array.of_list nodes in
  Array.iteri
    (fun i nd -> if nd.id <> i then invalid_arg "Shardmap.initial: node ids must be 0..n-1")
    nodes;
  let n = Array.length nodes in
  let shards =
    Array.init n_shards (fun s ->
        let leader = s mod n in
        let replicas =
          List.filter (fun i -> i <> leader) (List.init n (fun i -> i))
        in
        { leader; replicas })
  in
  { epoch = 1; n_shards; nodes; shards }

let promote t ~dead ~new_leaders =
  let shards =
    Array.mapi
      (fun s sh ->
        let sh =
          if sh.leader = dead then
            match List.assoc_opt s new_leaders with
            | Some l -> { leader = l; replicas = List.filter (fun r -> r <> l) sh.replicas }
            | None -> sh
          else sh
        in
        { sh with replicas = List.filter (fun r -> r <> dead) sh.replicas })
      t.shards
  in
  { t with epoch = t.epoch + 1; shards }

let pp ppf t =
  Format.fprintf ppf "epoch %d, %d shards over %d nodes:" t.epoch t.n_shards
    (Array.length t.nodes);
  Array.iteri
    (fun s sh ->
      Format.fprintf ppf "@ s%d->n%d[%s]" s sh.leader
        (String.concat "," (List.map string_of_int sh.replicas)))
    t.shards
