(** Failure detector + failover driver: polls every node's [/healthz],
    and when a node misses [fail_threshold] consecutive probes, bumps
    the map epoch exactly once, promotes the most-caught-up live
    replica of each shard the dead node led (highest per-shard
    repl-log watermark, read from the candidates' health documents —
    by the quorum-ack invariant that replica holds every acknowledged
    write), and publishes the new map to the survivors over
    CLUSTER_INFO.

    The supervisor is the cluster's only map {e writer}; members and
    clients only ever install strictly-newer maps, so a slow publish
    or a crossed probe can delay but never un-do a failover.

    It does not spawn or restart nodes — process lifecycle belongs to
    the caller (the [c4 cluster] command uses
    {!C4_resilience.Proc}). A failed-over node stays dead from the
    supervisor's point of view even if its process returns. *)

type event =
  | Probe_failed of { node : int; consecutive : int }
  | Node_dead of int  (** threshold crossed; failover starts *)
  | Promoted of { epoch : int; dead : int; new_leaders : (int * int) list }
  | Published of { epoch : int; node : int }
  | Publish_failed of { node : int; reason : string }
  | Shard_stranded of int
      (** no live replica left to promote — the shard is lost until an
          operator intervenes *)

type config = {
  poll_interval : float;  (** seconds between probe sweeps *)
  fail_threshold : int;  (** consecutive failures = dead *)
  probe_timeout : float;  (** per-probe connect/read timeout, seconds *)
  on_event : event -> unit;
      (** observability hook (the library never prints); called from
          the supervisor thread *)
}

(** 150 ms sweeps, 2 strikes, 1 s probes, silent. *)
val default_config : config

type t

(** Start polling. Raises [Invalid_argument] on an invalid map. *)
val start : config -> map:Shardmap.t -> t

(** The newest map (epoch bumps visible after each failover). *)
val current_map : t -> Shardmap.t

val dead_nodes : t -> int list

(** Stop the poll thread (any in-flight failover completes first). *)
val stop : t -> unit
