module Registry = C4_obs.Registry

type entry = { thread : int; mutable count : int; mutable last_write : float }

type t = {
  cap : int;
  max_outstanding : int;
  table : (int, entry) Hashtbl.t;
  mutable occ_sum : int;
  mutable sample_n : int;
  mutable peak_n : int;
  hit_c : Registry.counter;
  miss_c : Registry.counter;
  insert_c : Registry.counter;
  evict_c : Registry.counter;
  reject_full_c : Registry.counter;
  reject_saturated_c : Registry.counter;
  stale_evict_c : Registry.counter;
  orphan_release_c : Registry.counter;
}

let create ?registry ?(capacity = 128) ?(max_outstanding = 64) () =
  if capacity <= 0 || max_outstanding <= 0 then invalid_arg "Ewt.create";
  (* Without a caller-supplied registry the counters live in a private
     one: instrumentation stays branch-free either way. *)
  let reg = match registry with Some r -> r | None -> Registry.create () in
  let hit_c = Registry.counter reg "ewt.hit" in
  let miss_c = Registry.counter reg "ewt.miss" in
  let insert_c = Registry.counter reg "ewt.insert" in
  let evict_c = Registry.counter reg "ewt.evict" in
  let reject_full_c = Registry.counter reg "ewt.reject_full" in
  let reject_saturated_c = Registry.counter reg "ewt.reject_saturated" in
  let stale_evict_c = Registry.counter reg "ewt.stale_evict" in
  let orphan_release_c = Registry.counter reg "ewt.orphan_release" in
  {
    cap = capacity;
    max_outstanding;
    table = Hashtbl.create capacity;
    occ_sum = 0;
    sample_n = 0;
    peak_n = 0;
    hit_c;
    miss_c;
    insert_c;
    evict_c;
    reject_full_c;
    reject_saturated_c;
    stale_evict_c;
    orphan_release_c;
  }

let capacity t = t.cap
let occupancy t = Hashtbl.length t.table

let sample t =
  let occ = occupancy t in
  t.occ_sum <- t.occ_sum + occ;
  t.sample_n <- t.sample_n + 1;
  if occ > t.peak_n then t.peak_n <- occ

let lookup t ~partition =
  match Hashtbl.find_opt t.table partition with
  | Some e ->
    Registry.incr t.hit_c;
    Some e.thread
  | None ->
    Registry.incr t.miss_c;
    None

let note_write ?(now = 0.0) t ~partition ~thread =
  match Hashtbl.find_opt t.table partition with
  | Some e ->
    if e.count >= t.max_outstanding then begin
      Registry.incr t.reject_saturated_c;
      `Counter_saturated
    end
    else begin
      e.count <- e.count + 1;
      e.last_write <- now;
      sample t;
      `Ok
    end
  | None ->
    if Hashtbl.length t.table >= t.cap then begin
      Registry.incr t.reject_full_c;
      `Full
    end
    else begin
      Hashtbl.replace t.table partition { thread; count = 1; last_write = now };
      Registry.incr t.insert_c;
      sample t;
      `Ok
    end

let note_response t ~partition =
  match Hashtbl.find_opt t.table partition with
  | None -> invalid_arg "Ewt.note_response: partition not mapped"
  | Some e ->
    e.count <- e.count - 1;
    if e.count <= 0 then begin
      Hashtbl.remove t.table partition;
      Registry.incr t.evict_c
    end;
    sample t

let try_note_response t ~partition =
  match Hashtbl.find_opt t.table partition with
  | None ->
    (* The mapping was already reclaimed (stale-evicted after a leak, or
       never created): count the orphan instead of tearing down the run. *)
    Registry.incr t.orphan_release_c;
    false
  | Some _ ->
    note_response t ~partition;
    true

let expire_stale_partitions t ~now ~ttl =
  if ttl <= 0.0 then invalid_arg "Ewt.expire_stale: ttl must be positive";
  let stale =
    Hashtbl.fold
      (fun partition e acc -> if now -. e.last_write > ttl then partition :: acc else acc)
      t.table []
  in
  let stale = List.sort compare stale in
  List.iter
    (fun partition ->
      Hashtbl.remove t.table partition;
      Registry.incr t.stale_evict_c;
      sample t)
    stale;
  stale

let expire_stale t ~now ~ttl = List.length (expire_stale_partitions t ~now ~ttl)

let evict_thread t ~thread =
  let owned =
    Hashtbl.fold
      (fun partition e acc -> if e.thread = thread then partition :: acc else acc)
      t.table []
  in
  let owned = List.sort compare owned in
  List.iter
    (fun partition ->
      Hashtbl.remove t.table partition;
      Registry.incr t.evict_c;
      sample t)
    owned;
  owned

let stale_evictions t = Registry.counter_value t.stale_evict_c
let orphan_releases t = Registry.counter_value t.orphan_release_c

let outstanding t ~partition =
  match Hashtbl.find_opt t.table partition with Some e -> e.count | None -> 0

type occupancy_stats = { average : float; peak : int; samples : int }

let occupancy_stats t =
  {
    average =
      (if t.sample_n = 0 then 0.0
       else float_of_int t.occ_sum /. float_of_int t.sample_n);
    peak = t.peak_n;
    samples = t.sample_n;
  }

let reset_stats t =
  t.occ_sum <- 0;
  t.sample_n <- 0;
  t.peak_n <- 0
