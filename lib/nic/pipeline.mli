(** The modified NIC load-balancing pipeline of Fig. 8.

    Incoming RPCs flow through three hardware stages:

    1. {b KVS header extraction} — parse opcode and key, compute the
       partition with the registered f();
    2. {b EWT} — writes look up the Exclusive Writer Table: a hit pins
       the request to the owning thread and bumps the outstanding
       counter, a miss lets stage 3 decide and then installs a mapping;
    3. {b JBSQ} — balanceable requests join the least-loaded queue
       below the bound, or wait in the NIC's central queue.

    Each stage has a latency (sub-ns at the paper's 2 GHz pipeline);
    the composite per-decision latency feeds timing-sensitive studies,
    and the stage counters feed the occupancy/fallback statistics.

    This module binds the previously independent pieces — {!Header},
    {!Ewt}, {!Jbsq}, {!Flow_control} — into the exact decision procedure
    the simulated server implements, so tests can cross-check both
    against each other packet by packet. *)

type params = {
  t_parse : float;  (** ns, stage 1 *)
  t_ewt : float;  (** ns, stage 2 *)
  t_jbsq : float;  (** ns, stage 3 *)
}

(** 0.5 ns per stage: one 2 GHz pipeline beat each. *)
val default_params : params

type t

(** [registry] receives the pipeline's stage counters
    ([pipeline.decisions], [pipeline.pinned], [pipeline.balanced],
    [pipeline.parse_error], [pipeline.overload],
    [pipeline.ewt_exhausted]), the [pipeline.central_depth] gauge, and
    the embedded {!Ewt}'s counters; a private registry is used when
    omitted. *)
val create :
  ?registry:C4_obs.Registry.t ->
  ?params:params ->
  header:Header.t ->
  n_workers:int ->
  jbsq_bound:int ->
  ewt_capacity:int ->
  max_outstanding:int ->
  unit ->
  t

type decision = {
  worker : int option;  (** [None] = held in the NIC's central queue *)
  pinned : bool;  (** routed by an EWT mapping *)
  op : Header.op;  (** deletes route like writes (they mutate) *)
  partition : int;
  latency : float;  (** summed stage latencies for this decision *)
}

type reject = [ `Bad_packet of string | `Overload | `Ewt_exhausted ]

(** Push one packet through the pipeline. *)
val admit : t -> bytes -> (decision, reject) result

(** A worker finished a request for [partition]; [was_write] releases
    the EWT counter, and the freed JBSQ slot may pull the next central-
    queue decision, returned so the caller can dispatch it. *)
val complete : t -> worker:int -> partition:int -> was_write:bool -> decision option

(** Queue the NIC holds when all workers are at the JBSQ bound. *)
val central_depth : t -> int

type stats = {
  decisions : int;
  pinned_count : int;
  balanced : int;
  parse_errors : int;
  overloads : int;
  ewt_exhausted : int;
}

val stats : t -> stats

(** Underlying EWT (occupancy statistics etc.). *)
val ewt : t -> Ewt.t
