(** NIC-level admission control (Sec. 4.2, 7.2): when request arrival
    outstrips processing, the transport throttles or drops instead of
    queueing unboundedly. Modelled as a cap on in-flight requests —
    arrivals beyond the cap are rejected and counted. Fig. 11b's service-
    time plateau past saturation comes from this mechanism. *)

type t

(** [create ~max_outstanding]. *)
val create : max_outstanding:int -> t

(** Try to admit one request; false = dropped. *)
val admit : t -> bool

(** One request left the system. A release with nothing in flight (an
    unmatched release, possible once retries re-enter the pipeline) is
    clamped at zero and counted instead of corrupting the window. *)
val release : t -> unit

val in_flight : t -> int
val admitted : t -> int
val rejected : t -> int

(** Releases that arrived with nothing in flight. *)
val unmatched_releases : t -> int

(** Fraction rejected so far. *)
val drop_rate : t -> float
