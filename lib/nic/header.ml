type layout = { opcode_offset : int; key_offset : int; key_length : int }

let default_layout = { opcode_offset = 0; key_offset = 1; key_length = 8 }

type t = { layout : layout; n_buckets : int; n_partitions : int }

let register ~layout ~n_buckets ~n_partitions =
  if layout.key_length < 1 || layout.key_length > 8 then
    invalid_arg "Header.register: key_length must be in 1..8";
  if n_buckets <= 0 || n_partitions <= 0 then invalid_arg "Header.register";
  { layout; n_buckets; n_partitions }

type op = [ `Read | `Write | `Delete ]

type parsed = { op : op; key : int; partition : int }

let mutates = function `Write | `Delete -> true | `Read -> false

(* Same mix as C4_kvs.Hash.mix_int; duplicated numerically (not as a
   dependency) because the NIC and KVS are distinct subsystems that
   must merely agree on f() — which this constant layout guarantees. *)
let mix_int key =
  let z = Int64.of_int key in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land ((1 lsl 62) - 1)

let partition_of_key t key =
  let bucket = mix_int key mod t.n_buckets in
  if t.n_partitions >= t.n_buckets then bucket mod t.n_partitions
  else bucket * t.n_partitions / t.n_buckets

let read_key_le packet ~offset ~length =
  let v = ref 0L in
  for i = length - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get packet (offset + i))))
  done;
  Int64.to_int !v

let write_key_le packet ~offset ~length key =
  let v = ref (Int64.of_int key) in
  for i = 0 to length - 1 do
    Bytes.set packet (offset + i) (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
    v := Int64.shift_right_logical !v 8
  done

let layout t = t.layout

let header_size t =
  max (t.layout.opcode_offset + 1) (t.layout.key_offset + t.layout.key_length)

let parse t packet =
  let { opcode_offset; key_offset; key_length } = t.layout in
  let needed = max (opcode_offset + 1) (key_offset + key_length) in
  if Bytes.length packet < needed then
    Error
      (Printf.sprintf "short packet: %d bytes, need %d" (Bytes.length packet) needed)
  else begin
    match Char.code (Bytes.get packet opcode_offset) with
    | (0 | 1 | 2) as c ->
      let op = match c with 0 -> `Read | 1 -> `Write | _ -> `Delete in
      let key = read_key_le packet ~offset:key_offset ~length:key_length in
      Ok { op; key; partition = partition_of_key t key }
    | c -> Error (Printf.sprintf "unknown opcode %d" c)
  end

let encode t ~op ~key ~value =
  let { opcode_offset; key_offset; key_length } = t.layout in
  let header_end = max (opcode_offset + 1) (key_offset + key_length) in
  let packet = Bytes.make (header_end + Bytes.length value) '\000' in
  Bytes.set packet opcode_offset
    (match op with `Read -> '\000' | `Write -> '\001' | `Delete -> '\002');
  write_key_le packet ~offset:key_offset ~length:key_length key;
  Bytes.blit value 0 packet header_end (Bytes.length value);
  packet

(* ---------------- response side ---------------- *)

type response_layout = {
  status_offset : int;
  value_len_offset : int;
  value_len_bytes : int;
}

let default_response_layout =
  { status_offset = 0; value_len_offset = 1; value_len_bytes = 4 }

type status = [ `Ok | `Not_found | `Err | `Wrong_shard | `Cluster_ok ]

type parsed_response = { status : status; value_len : int }

let response_size rl =
  max (rl.status_offset + 1) (rl.value_len_offset + rl.value_len_bytes)

let status_byte = function
  | `Ok -> '\000'
  | `Not_found -> '\001'
  | `Err -> '\002'
  | `Wrong_shard -> '\003'
  | `Cluster_ok -> '\004'

let encode_response rl ~status ~value =
  if rl.value_len_bytes < 1 || rl.value_len_bytes > 4 then
    invalid_arg "Header.encode_response: value_len_bytes must be in 1..4";
  let len = Bytes.length value in
  if rl.value_len_bytes < 4 && len >= 1 lsl (8 * rl.value_len_bytes) then
    invalid_arg "Header.encode_response: value too long for value_len_bytes";
  let header_end = response_size rl in
  let packet = Bytes.make (header_end + len) '\000' in
  Bytes.set packet rl.status_offset (status_byte status);
  write_key_le packet ~offset:rl.value_len_offset ~length:rl.value_len_bytes len;
  Bytes.blit value 0 packet header_end len;
  packet

let parse_response rl packet =
  let needed = response_size rl in
  if Bytes.length packet < needed then
    Error
      (Printf.sprintf "short response: %d bytes, need %d" (Bytes.length packet) needed)
  else
    match Char.code (Bytes.get packet rl.status_offset) with
    | (0 | 1 | 2 | 3 | 4) as c ->
      let status =
        match c with
        | 0 -> `Ok
        | 1 -> `Not_found
        | 2 -> `Err
        | 3 -> `Wrong_shard
        | _ -> `Cluster_ok
      in
      let value_len =
        read_key_le packet ~offset:rl.value_len_offset ~length:rl.value_len_bytes
      in
      if Bytes.length packet - needed < value_len then
        Error
          (Printf.sprintf "response value truncated: declared %d, %d present"
             value_len
             (Bytes.length packet - needed))
      else Ok ({ status; value_len }, Bytes.sub packet needed value_len)
    | c -> Error (Printf.sprintf "unknown status %d" c)

