(** Fixed-format application header parsing (Sec. 5.1).

    d-CREW needs the NIC to recover (request type, key) from each
    packet's application-level header. The KVS registers the field
    geometry — offsets and lengths within the payload — during the setup
    phase (the ioctl analogue here is {!register}), plus the number of
    hash buckets so the NIC can compute the same key→partition function
    as the software.

    The wire format modelled is the simple fixed layout of MICA/eRPC
    requests:

    {v offset 0: opcode (1 B; 0 = GET, 1 = SET, 2 = DELETE)
       offset [key_offset]: key ([key_length] <= 8 B, little endian)
       remainder: value v}

    The same geometry is what [C4_net.Wire] puts on real sockets: a
    network frame's body begins with exactly these bytes, so the
    simulated NIC and the TCP server parse identical headers. *)

type layout = {
  opcode_offset : int;
  key_offset : int;
  key_length : int;  (** 1..8 bytes *)
}

val default_layout : layout

type t

(** NIC-side parser state, configured once at setup time. *)
val register : layout:layout -> n_buckets:int -> n_partitions:int -> t

type op = [ `Read | `Write | `Delete ]

type parsed = { op : op; key : int; partition : int }

(** Does the operation mutate the store? Deletes follow the write path
    (CREW exclusivity, EWT tracking): they change partition state. *)
val mutates : op -> bool

(** Parse a packet; [Error] on short packets or unknown opcodes.
    Backward compatible: opcodes 0 (GET) and 1 (SET) parse exactly as
    they always did; 2 (DELETE) is the only addition. *)
val parse : t -> bytes -> (parsed, string) result

(** The registered layout. *)
val layout : t -> layout

(** Bytes occupied by the fixed header; the value starts here. *)
val header_size : t -> int

(** Encode a request into a packet (client-side helper used by tests and
    examples; round-trips with {!parse}). *)
val encode : t -> op:op -> key:int -> value:bytes -> bytes

(** {2 Response-side layout}

    Responses carry a status byte and an explicit value length, so a
    NIC (or any middlebox) can delimit the value without knowing the
    request it answers:

    {v offset [status_offset]: status (1 B; 0 = OK, 1 = NOT_FOUND, 2 = ERR,
                                       3 = WRONG_SHARD, 4 = CLUSTER_OK)
       offset [value_len_offset]: value length ([value_len_bytes] <= 4 B, LE)
       remainder (after {!response_size}): value v}

    Statuses 3 and 4 belong to the cluster runtime ([C4_clusterd]): a
    WRONG_SHARD response carries the answering node's current shard map
    as its value, and CLUSTER_OK answers a CLUSTER_INFO request the same
    way. Single-node deployments never emit either. *)

type response_layout = {
  status_offset : int;
  value_len_offset : int;
  value_len_bytes : int;  (** 1..4 bytes *)
}

val default_response_layout : response_layout

type status = [ `Ok | `Not_found | `Err | `Wrong_shard | `Cluster_ok ]

type parsed_response = { status : status; value_len : int }

(** Bytes occupied by the fixed response header. *)
val response_size : response_layout -> int

(** Encode a response header + value into a packet. Raises
    [Invalid_argument] when the value length does not fit in
    [value_len_bytes]. *)
val encode_response : response_layout -> status:status -> value:bytes -> bytes

(** Parse a response packet; [Error] on short packets, unknown status
    bytes, or a declared value length exceeding the bytes present. *)
val parse_response :
  response_layout -> bytes -> (parsed_response * bytes, string) result
