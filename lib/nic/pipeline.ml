module Registry = C4_obs.Registry

type params = { t_parse : float; t_ewt : float; t_jbsq : float }

let default_params = { t_parse = 0.5; t_ewt = 0.5; t_jbsq = 0.5 }

type pending = { p_op : Header.op; p_partition : int }

type t = {
  params : params;
  header : Header.t;
  ewt_ : Ewt.t;
  jbsq : Jbsq.t;
  flow : Flow_control.t;
  central : pending Queue.t;
  central_depth_g : Registry.gauge;
  decisions_c : Registry.counter;
  pinned_c : Registry.counter;
  balanced_c : Registry.counter;
  parse_err_c : Registry.counter;
  overload_c : Registry.counter;
  ewt_full_c : Registry.counter;
}

let create ?registry ?(params = default_params) ~header ~n_workers ~jbsq_bound
    ~ewt_capacity ~max_outstanding () =
  let reg = match registry with Some r -> r | None -> Registry.create () in
  let decisions_c = Registry.counter reg "pipeline.decisions" in
  let pinned_c = Registry.counter reg "pipeline.pinned" in
  let balanced_c = Registry.counter reg "pipeline.balanced" in
  let parse_err_c = Registry.counter reg "pipeline.parse_error" in
  let overload_c = Registry.counter reg "pipeline.overload" in
  let ewt_full_c = Registry.counter reg "pipeline.ewt_exhausted" in
  {
    params;
    header;
    ewt_ = Ewt.create ~registry:reg ~capacity:ewt_capacity ();
    jbsq = Jbsq.create ~n_workers ~bound:jbsq_bound;
    flow = Flow_control.create ~max_outstanding;
    central = Queue.create ();
    central_depth_g = Registry.gauge reg "pipeline.central_depth";
    decisions_c;
    pinned_c;
    balanced_c;
    parse_err_c;
    overload_c;
    ewt_full_c;
  }

type decision = {
  worker : int option;
  pinned : bool;
  op : Header.op;
  partition : int;
  latency : float;
}

type reject = [ `Bad_packet of string | `Overload | `Ewt_exhausted ]

let stage_latency t ~stages =
  let { t_parse; t_ewt; t_jbsq } = t.params in
  match stages with
  | `Parse_only -> t_parse
  | `No_ewt -> t_parse +. t_jbsq
  | `All -> t_parse +. t_ewt +. t_jbsq
  | `Ewt_hit -> t_parse +. t_ewt

(* Stage 2+3 for a request already parsed; shared by admit and the
   central-queue pull so both paths make identical choices. Dropped
   requests release their flow-control slot (they were admitted). *)
let route t (p : pending) =
  match p.p_op with
  | `Read -> (
    match Jbsq.try_dispatch t.jbsq with
    | Some worker ->
      Registry.incr t.balanced_c;
      Registry.incr t.decisions_c;
      Ok
        (Some
           {
             worker = Some worker;
             pinned = false;
             op = p.p_op;
             partition = p.p_partition;
             latency = stage_latency t ~stages:`No_ewt;
           })
    | None ->
      Queue.push p t.central;
      Registry.set t.central_depth_g (float_of_int (Queue.length t.central));
      Ok None)
  (* Deletes mutate partition state, so they take the write path: EWT
     exclusivity and the outstanding counter apply as for a SET. *)
  | `Write | `Delete -> (
    match Ewt.lookup t.ewt_ ~partition:p.p_partition with
    | Some owner -> (
      match Ewt.note_write t.ewt_ ~partition:p.p_partition ~thread:owner with
      | `Ok ->
        Jbsq.dispatch_to t.jbsq owner;
        Registry.incr t.pinned_c;
        Registry.incr t.decisions_c;
        Ok
          (Some
             {
               worker = Some owner;
               pinned = true;
               op = p.p_op;
               partition = p.p_partition;
               latency = stage_latency t ~stages:`Ewt_hit;
             })
      | `Full | `Counter_saturated ->
        Registry.incr t.ewt_full_c;
        Flow_control.release t.flow;
        Error `Ewt_exhausted)
    | None -> (
      match Jbsq.try_dispatch t.jbsq with
      | Some worker -> (
        match Ewt.note_write t.ewt_ ~partition:p.p_partition ~thread:worker with
        | `Ok ->
          Registry.incr t.balanced_c;
          Registry.incr t.decisions_c;
          Ok
            (Some
               {
                 worker = Some worker;
                 pinned = false;
                 op = p.p_op;
                 partition = p.p_partition;
                 latency = stage_latency t ~stages:`All;
               })
        | `Full | `Counter_saturated ->
          Jbsq.complete t.jbsq worker;
          Registry.incr t.ewt_full_c;
          Flow_control.release t.flow;
          Error `Ewt_exhausted)
      | None ->
        Queue.push p t.central;
        Registry.set t.central_depth_g (float_of_int (Queue.length t.central));
        Ok None))

let admit t packet =
  match Header.parse t.header packet with
  | Error msg ->
    Registry.incr t.parse_err_c;
    Error (`Bad_packet msg)
  | Ok parsed ->
    if not (Flow_control.admit t.flow) then begin
      Registry.incr t.overload_c;
      Error `Overload
    end
    else begin
      let pending = { p_op = parsed.Header.op; p_partition = parsed.Header.partition } in
      match route t pending with
      | Ok (Some d) -> Ok d
      | Ok None ->
        Ok
          {
            worker = None;
            pinned = false;
            op = parsed.Header.op;
            partition = parsed.Header.partition;
            latency = stage_latency t ~stages:`Parse_only;
          }
      | Error (`Ewt_exhausted as e) -> Error e
    end

let complete t ~worker ~partition ~was_write =
  Jbsq.complete t.jbsq worker;
  Flow_control.release t.flow;
  if was_write then Ewt.note_response t.ewt_ ~partition;
  (* The freed slot may admit the central queue's head. *)
  if Queue.is_empty t.central then None
  else begin
    let p = Queue.pop t.central in
    Registry.set t.central_depth_g (float_of_int (Queue.length t.central));
    match route t p with
    | Ok (Some d) -> Some d
    | Ok None -> None (* re-queued: still nowhere to go *)
    | Error `Ewt_exhausted -> None
  end

let central_depth t = Queue.length t.central

type stats = {
  decisions : int;
  pinned_count : int;
  balanced : int;
  parse_errors : int;
  overloads : int;
  ewt_exhausted : int;
}

let stats t =
  {
    decisions = Registry.counter_value t.decisions_c;
    pinned_count = Registry.counter_value t.pinned_c;
    balanced = Registry.counter_value t.balanced_c;
    parse_errors = Registry.counter_value t.parse_err_c;
    overloads = Registry.counter_value t.overload_c;
    ewt_exhausted = Registry.counter_value t.ewt_full_c;
  }

let ewt t = t.ewt_
