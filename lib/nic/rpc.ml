module Fifo = C4_dsim.Fifo

type rpc = {
  rpc_id : int;
  sender : int;
  parsed : Header.parsed;
  payload : bytes;
  buffer : int;
}

type response = {
  resp_rpc_id : int;
  resp_to : int;
  resp_value : bytes option;
  released_exclusive : bool;
}

type t = {
  header : Header.t;
  queues : rpc Fifo.t array;
  free_buffers : int Stack.t;
  live_buffers : (int, unit) Hashtbl.t;
  mutable next_rpc_id : int;
  mutable responses_rev : response list;
}

let create ~n_threads ~n_buffers ~header =
  if n_threads <= 0 || n_buffers <= 0 then invalid_arg "Rpc.create";
  let free_buffers = Stack.create () in
  for i = n_buffers - 1 downto 0 do
    Stack.push i free_buffers
  done;
  {
    header;
    queues = Array.init n_threads (fun _ -> Fifo.create ());
    free_buffers;
    live_buffers = Hashtbl.create n_buffers;
    next_rpc_id = 0;
    responses_rev = [];
  }

(* Everything past the fixed header is the value. *)
let value_of_packet header packet =
  let header_end = Header.header_size header in
  if Bytes.length packet <= header_end then Bytes.empty
  else Bytes.sub packet header_end (Bytes.length packet - header_end)

let deliver t ~thread ~sender packet =
  match Header.parse t.header packet with
  | Error msg -> Error (`Bad_packet msg)
  | Ok parsed ->
    if Stack.is_empty t.free_buffers then Error `No_buffers
    else begin
      let buffer = Stack.pop t.free_buffers in
      Hashtbl.replace t.live_buffers buffer ();
      let payload =
        match parsed.Header.op with
        | `Write -> value_of_packet t.header packet
        | `Read | `Delete -> Bytes.empty
      in
      let rpc = { rpc_id = t.next_rpc_id; sender; parsed; payload; buffer } in
      t.next_rpc_id <- t.next_rpc_id + 1;
      Fifo.push t.queues.(thread) rpc;
      Ok rpc
    end

let poll t ~thread = Fifo.pop t.queues.(thread)

let scan t ~thread ~depth ~f = Fifo.scan t.queues.(thread) ~depth ~f

let take_matching_writes t ~thread ~depth ~key =
  Fifo.extract t.queues.(thread) ~depth ~f:(fun rpc ->
      rpc.parsed.Header.op = `Write && rpc.parsed.Header.key = key)

let respond t rpc ?value ~release_exclusive () =
  if not (Hashtbl.mem t.live_buffers rpc.buffer) then
    invalid_arg "Rpc.respond: buffer already freed (double completion)";
  Hashtbl.remove t.live_buffers rpc.buffer;
  Stack.push rpc.buffer t.free_buffers;
  let response =
    {
      resp_rpc_id = rpc.rpc_id;
      resp_to = rpc.sender;
      resp_value = value;
      released_exclusive = release_exclusive;
    }
  in
  t.responses_rev <- response :: t.responses_rev;
  response

let responses t = List.rev t.responses_rev
let buffers_free t = Stack.length t.free_buffers
let queue_length t ~thread = Fifo.length t.queues.(thread)
