type t = {
  cap : int;
  mutable current : int;
  mutable ok_n : int;
  mutable drop_n : int;
  mutable unmatched_n : int;
}

let create ~max_outstanding =
  if max_outstanding <= 0 then invalid_arg "Flow_control.create";
  { cap = max_outstanding; current = 0; ok_n = 0; drop_n = 0; unmatched_n = 0 }

let admit t =
  if t.current < t.cap then begin
    t.current <- t.current + 1;
    t.ok_n <- t.ok_n + 1;
    true
  end
  else begin
    t.drop_n <- t.drop_n + 1;
    false
  end

(* A release without a matching admit can happen once retried requests
   re-enter the pipeline (the retry's completion releases a slot its
   original already gave back). Going negative would let the window
   admit more than [cap] in-flight requests, so clamp and count. *)
let release t =
  if t.current <= 0 then t.unmatched_n <- t.unmatched_n + 1
  else t.current <- t.current - 1

let in_flight t = t.current
let admitted t = t.ok_n
let rejected t = t.drop_n
let unmatched_releases t = t.unmatched_n

let drop_rate t =
  let total = t.ok_n + t.drop_n in
  if total = 0 then 0.0 else float_of_int t.drop_n /. float_of_int total
