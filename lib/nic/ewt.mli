(** Exclusive Writer Table (Sec. 5.2).

    A small exact-match table (the hardware uses a CAM for the partition
    id and direct-mapped RAM for the payload) holding one entry per
    partition currently in exclusive-write mode:

    {v  partition id (30b) -> { thread id (6b); outstanding writes (6b) }  v}

    - On a write to an unmapped partition: allocate an entry, pin the
      partition to the chosen thread, count = 1.
    - On a write to a mapped partition: route to the mapped thread,
      count += 1 (saturating at [max_outstanding], after which the NIC
      must apply flow control).
    - On a write response: count -= 1; at zero the entry is freed and
      the partition becomes balanceable again.

    Occupancy statistics are first-class because the paper sizes the
    hardware from them (avg 30 / max 64 entries at f_wr = 50 %,
    avg 52 / max 90 at 85 %, Sec. 7.1.1). *)

type t

(** [create ()] builds an empty table.
    @param registry observability registry receiving the table's
    counters ([ewt.hit], [ewt.miss], [ewt.insert], [ewt.evict],
    [ewt.reject_full], [ewt.reject_saturated]); a private registry is
    used when omitted.
    @param capacity number of entries (default 128, the paper's sizing).
    @param max_outstanding per-entry write counter limit (default 64,
    the 6-bit field). *)
val create :
  ?registry:C4_obs.Registry.t -> ?capacity:int -> ?max_outstanding:int -> unit -> t

val capacity : t -> int

(** Thread currently holding [partition] exclusively, if any. O(1). *)
val lookup : t -> partition:int -> int option

(** Record the dispatch of a write to [partition] on [thread].
    [`Ok] — entry created or counter bumped;
    [`Full] — table exhausted (caller must fall back: static hash or
    flow control);
    [`Counter_saturated] — entry exists but its counter is at max.
    [now] stamps the entry for {!expire_stale} (default 0.0, i.e. no
    staleness tracking). *)
val note_write :
  ?now:float -> t -> partition:int -> thread:int -> [ `Ok | `Full | `Counter_saturated ]

(** Record a write response for [partition]; frees the entry at zero.
    Raises [Invalid_argument] if the partition has no entry (protocol
    violation). *)
val note_response : t -> partition:int -> unit

(** Tolerant {!note_response}: if the partition has no entry (its
    mapping was stale-evicted after a response leak, or never existed),
    count an [ewt.orphan_release] and return [false] instead of
    raising. *)
val try_note_response : t -> partition:int -> bool

(** Evict every entry whose last write is older than [ttl] (ns before
    [now]), returning the number evicted and counting each as
    [ewt.stale_evict]. A leaked response (a write whose completion never
    decremented the counter) would otherwise pin its partition to one
    worker forever; the sweep bounds that blast radius. Requires
    [ttl > 0]. *)
val expire_stale : t -> now:float -> ttl:float -> int

(** Like {!expire_stale} but returns the evicted partitions in
    ascending order — callers that log or act per partition (the crew
    policy core's staleness decisions) need the identities, not just
    the count. *)
val expire_stale_partitions : t -> now:float -> ttl:float -> int list

(** Evict every entry pinned to [thread] (ascending partition order,
    each counted as [ewt.evict]). Crash recovery uses this: a dead
    worker's pins must not keep routing writes to its channel once its
    partitions are re-owned elsewhere. *)
val evict_thread : t -> thread:int -> int list

(** Total stale evictions / orphan releases so far. *)
val stale_evictions : t -> int

val orphan_releases : t -> int

(** Live entries. *)
val occupancy : t -> int

(** Outstanding-write count for a mapped partition. *)
val outstanding : t -> partition:int -> int

(** Occupancy sampled at every mutation: time-average and peak. *)
type occupancy_stats = { average : float; peak : int; samples : int }

val occupancy_stats : t -> occupancy_stats
val reset_stats : t -> unit
