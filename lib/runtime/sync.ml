(* The one sanctioned way to take a mutex in this repo. A bare
   [Mutex.lock]/[Mutex.unlock] pair leaks the lock if the critical
   section raises — a raising promise callback or [Queue] op inside a
   worker wedges the whole server. [c4_lint] rejects bare [Mutex.lock]
   outside this module. *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
