(** Exception-safe locking. [with_lock m f] runs [f ()] with [m] held
    and releases it on every exit path, including raising ones (via
    [Fun.protect]; an exception from [f] surfaces unchanged). This is
    the only module allowed to call [Mutex.lock] directly — the
    [bare-mutex-lock] rule in [c4_lint] enforces it repo-wide.

    [Condition.wait c m] remains legal inside the critical section: it
    atomically releases and reacquires [m], so the protect-finally
    still unlocks exactly once. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
