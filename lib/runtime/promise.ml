type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable value : 'a option;
}

let create () = { mutex = Mutex.create (); cond = Condition.create (); value = None }

let fulfil t v =
  Sync.with_lock t.mutex (fun () ->
      match t.value with
      | Some _ -> invalid_arg "Promise.fulfil: already fulfilled"
      | None ->
        t.value <- Some v;
        Condition.broadcast t.cond)

let await t =
  Sync.with_lock t.mutex (fun () ->
      let rec wait () =
        match t.value with
        | Some v -> v
        | None ->
          Condition.wait t.cond t.mutex;
          wait ()
      in
      wait ())

let peek t = Sync.with_lock t.mutex (fun () -> t.value)
