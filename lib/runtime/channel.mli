(** Multi-producer single-consumer channel backing each worker's request
    queue. Besides pop, the consumer can drain every queued element
    matching a predicate — the compaction layer's dependent-write
    harvest, done under the same lock so producers never observe a
    half-drained queue. *)

type 'a t

val create : unit -> 'a t

(** Producer side; wakes a blocked consumer. *)
val push : 'a t -> 'a -> unit

(** Like {!push} but returns [false] instead of raising when the
    channel is closed — the race-free building block for callers that
    must map "closed" to their own error (e.g. the server's [Stopped]). *)
val try_push : 'a t -> 'a -> bool

(** Consumer side: block until an element is available.
    Returns [None] after {!close} once the queue drains. *)
val pop : 'a t -> 'a option

(** Nonblocking pop. *)
val try_pop : 'a t -> 'a option

(** Remove and return (in order) every queued element satisfying [f]. *)
val drain_matching : 'a t -> f:('a -> bool) -> 'a list

val length : 'a t -> int

(** Close the channel: producers may no longer push; the consumer sees
    [None] after the backlog drains. *)
val close : 'a t -> unit
