module Store = C4_kvs.Store
module Crew_config = C4_crew.Config
module Core = C4_crew.Core
module Registry = C4_obs.Registry
module Wal = C4_wal.Wal
module Record = C4_wal.Record

exception Stopped

(* Poison value used by [inject_crash]: popping it kills the worker loop
   mid-stream, as an abrupt domain death would, except between (not
   inside) store operations — OCaml gives us no way to kill a domain
   mid-instruction, and the store's seqlock would be irrecoverable if we
   could. Acknowledged writes are still the interesting invariant: an
   ack is only sent after the store apply, so a crash never loses one. *)
exception Crash_injected

type op =
  | Get of int * bytes option Promise.t
  | Set of int * bytes * int option * unit Promise.t
      (** key, value, idempotency token, ack *)
  | Delete of int * bool Promise.t
  | Gate of unit Promise.t * unit Promise.t
      (** park the worker: fulfil [entered], block on [release] —
          deterministic-replay support (see [pause_worker]) *)
  | Crash

type worker_state = {
  id : int;
  channel : op Channel.t;
  alive : bool Atomic.t;
  mutable domain : unit Domain.t option;
  mutable ops : int;
  mutable writes_n : int;
  mutable batches : int;
  mutable batched_writes : int;
  mutable retries : int;
  mutable dups : int;
}

type config = {
  n_workers : int;
  n_buckets : int;
  n_partitions : int;
  crew : Crew_config.t;
  recovery : bool;
  monitor_interval : float;
  clock : unit -> float;
  on_decision : (C4_crew.Decision.t -> unit) option;
  registry : Registry.t option;
  wal : Wal.config option;
}

let default_config =
  {
    n_workers = 4;
    n_buckets = 4096;
    n_partitions = 256;
    crew = Crew_config.queued;
    recovery = true;
    monitor_interval = 0.0005;
    (* ns, to match the policy core's time unit across both engines *)
    clock = (fun () -> Unix.gettimeofday () *. 1e9);
    on_decision = None;
    registry = None;
    wal = None;
  }

(* The multicore driver around the crew policy core (the runtime's half
   of the {!C4_crew.Core.ENGINE} contract): the core decides, worker
   domains and channels execute. All core transitions that touch shared
   routing state (admission, releases, sweeps, recovery remaps) run
   under [route_lock]; per-worker window transitions are worker-private
   and rely on the thread-safe registry for their counters. *)
type t = {
  cfg : config;
  store : Store.t;
  workers : worker_state array;
  core : Core.t;
  (* Routing state — the core's ownership view, the reader cursor, and
     every channel push — is guarded by [route_lock], so a recovery that
     remaps ownership can never race a producer pushing along a stale
     route (the classic two-writers-after-failover bug). *)
  route_lock : Mutex.t;
  mutable next_reader : int;
  stopped : bool Atomic.t;
  stop_lock : Mutex.t;
  mutable monitor : unit Domain.t option;
  mutable recoveries_n : int;
  mutable requeued_n : int;
  (* Durability tier: [None] keeps the pre-WAL behaviour (everything
     dies with the process). With a WAL, every mutation is appended
     BEFORE its promise is fulfilled, and the fulfilment itself is
     routed through [Wal.commit] so an ack can additionally wait for
     the group-commit fsync — on the WAL's sync domain, never a worker. *)
  wal : Wal.t option;
  wal_replayed_n : int;
}

let owner_of_key t key =
  Sync.with_lock t.route_lock (fun () ->
      Core.route_owner t.core ~partition:(Store.partition_of_key t.store key))

(* Only token-free writes are harvested into a compaction batch: a
   tokened (retried) write must go through [Store.set_idempotent]'s
   check-and-record, which a combined batched update would bypass. *)
let is_plain_set_to key = function
  | Set (k, _, None, _) -> k = key
  | Set _ | Get _ | Delete _ | Gate _ | Crash -> false

(* The write's response left: hand the release to the policy core.
   Non-strict because a TTL sweep (or a recovery eviction) may have
   legitimately reclaimed the pin — the core counts the orphan. *)
let release_write t key =
  Sync.with_lock t.route_lock (fun () ->
      Core.write_done ~strict:false t.core
        ~partition:(Store.partition_of_key t.store key))

(* Log the mutation (when a WAL is configured) and route [ack] — the
   release + fulfil step — through the durability policy. Append runs
   here, on the worker, BEFORE any acknowledgement exists; the ack
   itself runs inline without a WAL, and through [Wal.commit] with one,
   so fsync-gated policies fulfil from the WAL's sync domain after the
   group commit. [group] marks a compaction-window close (the window's
   deferred responses are the natural group-commit batch). [record] is
   [None] for a mutation that changed nothing worth logging (a
   suppressed duplicate — its original is already in the log). *)
let log_then_ack t ~key ~record ~group ack =
  match t.wal with
  | None -> ack ()
  | Some wal ->
    let partition = Store.partition_of_key t.store key in
    (match record with
    | Some op -> ignore (Wal.append wal ~partition ~op)
    | None -> ());
    Wal.commit wal ~partition ~group ack

(* Worker loop: CREW writes for owned partitions, balanced reads, and
   the compaction fast path — pop a write, harvest every queued write to
   the same key, and drive the core's window lifecycle: open, absorb
   each harvested write, apply ONE batched update, close, and only then
   answer all of them (deferred responses). *)
let worker_loop t (w : worker_state) =
  let store = t.store in
  let apply_set key value token promise =
    let applied =
      match token with
      | None ->
        Store.set store ~key ~value;
        true
      | Some token -> (
        match Store.set_idempotent store ~key ~value ~token with
        | `Applied -> true
        | `Duplicate ->
          w.dups <- w.dups + 1;
          false)
    in
    w.ops <- w.ops + 1;
    w.writes_n <- w.writes_n + 1;
    let record = if applied then Some (Record.Set { key; value; token }) else None in
    log_then_ack t ~key ~record ~group:false (fun () ->
        release_write t key;
        Promise.fulfil promise ())
  in
  let rec loop () =
    match Channel.pop w.channel with
    | None -> ()
    | Some Crash -> raise Crash_injected
    | Some (Gate (entered, release)) ->
      Promise.fulfil entered ();
      Promise.await release;
      loop ()
    | Some (Get (key, promise)) ->
      let value, retries = Store.get store ~key in
      w.retries <- w.retries + retries;
      w.ops <- w.ops + 1;
      Promise.fulfil promise value;
      loop ()
    | Some (Delete (key, promise)) ->
      let present = Store.remove store ~key in
      w.ops <- w.ops + 1;
      w.writes_n <- w.writes_n + 1;
      log_then_ack t ~key ~record:(Some (Record.Delete { key })) ~group:false
        (fun () ->
          release_write t key;
          Promise.fulfil promise present);
      loop ()
    | Some (Set (key, value, (Some _ as token), promise)) ->
      (* Tokened writes bypass batching; see [is_plain_set_to]. *)
      apply_set key value token promise;
      loop ()
    | Some (Set (key, value, None, promise)) ->
      if Core.compaction_enabled t.core then begin
        let dependents = Channel.drain_matching w.channel ~f:(is_plain_set_to key) in
        let max_batch = Core.max_batch t.core in
        let dependents =
          if List.length dependents > max_batch - 1 then begin
            (* Put the overflow back in order; rare, but the window must
               stay bounded. If the channel closed under us (shutdown),
               fold the stragglers into this batch instead of losing
               their promises. *)
            let keep = List.filteri (fun i _ -> i < max_batch - 1) dependents
            and overflow = List.filteri (fun i _ -> i >= max_batch - 1) dependents in
            let orphaned =
              List.filter (fun op -> not (Channel.try_push w.channel op)) overflow
            in
            keep @ orphaned
          end
          else dependents
        in
        match dependents with
        | [] ->
          apply_set key value None promise;
          loop ()
        | _ :: _ ->
          (* The harvest found dependent writes: a compaction window in
             core terms. Wall-clock engines hold no SLO budget, so the
             window's deadline is "now" and it closes as soon as the
             harvest is absorbed — the adaptive-close limit of the
             model's policy (the queue IS empty: we just drained it). *)
          let now = t.cfg.clock () in
          ignore
            (Core.open_window t.core ~worker:w.id ~key ~now ~arrival:now
               ~mean_service:0.0);
          Core.absorb t.core ~worker:w.id ~key ~id:0 ~now;
          List.iteri
            (fun i _ -> Core.absorb t.core ~worker:w.id ~key ~id:(i + 1) ~now)
            dependents;
          let values =
            value
            :: List.map
                 (function
                   | Set (_, v, _, _) -> v
                   | Get _ | Delete _ | Gate _ | Crash -> assert false)
                 dependents
          in
          Store.set_batched store ~key ~values;
          ignore (Core.close_window t.core ~worker:w.id ~now:(t.cfg.clock ()));
          let n = List.length values in
          w.ops <- w.ops + n;
          w.writes_n <- w.writes_n + n;
          w.batches <- w.batches + 1;
          w.batched_writes <- w.batched_writes + n;
          (* Durability at window close: every absorbed write is logged
             individually (replay re-applies them in order and converges
             on the same final value the combined update produced), and
             the window's deferred responses form ONE group-commit batch
             — a single fsync covers them all. *)
          (match t.wal with
          | None -> ()
          | Some wal ->
            let partition = Store.partition_of_key store key in
            List.iter
              (fun value ->
                ignore
                  (Wal.append wal ~partition ~op:(Record.Set { key; value; token = None })))
              values);
          (* Deferred responses: nothing was acknowledged before the
             combined update hit the store, and nothing is released
             before the window closed (nor, with a WAL, before the
             group commit). *)
          log_then_ack t ~key ~record:None ~group:true (fun () ->
              release_write t key;
              Promise.fulfil promise ();
              List.iter
                (function
                  | Set (k, _, _, p) ->
                    release_write t k;
                    Promise.fulfil p ()
                  | Get _ | Delete _ | Gate _ | Crash -> assert false)
                dependents);
          loop ()
      end
      else begin
        apply_set key value None promise;
        loop ()
      end
  in
  loop ()

(* Run [worker_loop] and always publish death through [alive] — the
   signal the monitor (crash) and [stop] (clean exit, ignored because
   [stopped] is set first) both read. *)
let run_worker t (w : worker_state) () =
  (try worker_loop t w with Crash_injected -> ());
  Atomic.set w.alive false

let spawn_worker t w =
  Atomic.set w.alive true;
  w.domain <- Some (Domain.spawn (run_worker t w))

(* ---------------- crash recovery ---------------- *)

(* Called by the monitor with [route_lock] HELD and producers therefore
   blocked. Ordering: join the corpse (so the old writer provably runs
   no more store operations), remap its partitions to a survivor through
   the core (which also evicts the dead worker's EWT pins — a stale pin
   would keep routing writes at the corpse's channel), drain its
   backlog, restart it, then requeue the backlog along the new routes.
   Ownership stays with the survivor — handing partitions back would
   reopen the stale-route window; the restarted worker rejoins as read
   capacity and as a future failover target. *)
let recover_locked t (w : worker_state) =
  (match w.domain with Some d -> Domain.join d | None -> ());
  w.domain <- None;
  let survivor =
    let rec find i =
      if i >= t.cfg.n_workers then w.id
      else if i <> w.id && Atomic.get t.workers.(i).alive then i
      else find (i + 1)
    in
    find 0
  in
  ignore (Core.reassign t.core ~from_worker:w.id ~to_worker:survivor);
  let backlog = Channel.drain_matching w.channel ~f:(fun _ -> true) in
  spawn_worker t w;
  List.iter
    (fun op ->
      match op with
      | Crash ->
        (* A queued crash targeted the worker that already died; do not
           let it chase the backlog onto the survivor. *)
        ()
      | Get _ | Gate _ ->
        ignore (Channel.try_push t.workers.(survivor).channel op);
        t.requeued_n <- t.requeued_n + 1
      | Set (key, _, _, _) | Delete (key, _) ->
        let dst =
          Core.route_owner t.core ~partition:(Store.partition_of_key t.store key)
        in
        ignore (Channel.try_push t.workers.(dst).channel op);
        t.requeued_n <- t.requeued_n + 1)
    backlog;
  t.recoveries_n <- t.recoveries_n + 1

let rec monitor_loop t =
  if not (Atomic.get t.stopped) then begin
    Array.iter
      (fun w ->
        if not (Atomic.get w.alive) then
          Sync.with_lock t.route_lock (fun () ->
              (* Re-check under the lock: [stop] may have won the race, in
                 which case it owns the backlog (see [stop]'s final drain). *)
              if (not (Atomic.get t.stopped)) && not (Atomic.get w.alive) then
                recover_locked t w))
      t.workers;
    Unix.sleepf t.cfg.monitor_interval;
    monitor_loop t
  end

(* ---------------- lifecycle ---------------- *)

let start cfg =
  if cfg.n_workers < 1 then invalid_arg "Server.start: n_workers";
  let registry =
    (* A caller-supplied registry must be thread-safe (workers on
       several domains bump the crew counters); the private fallback
       always is. Sharing one registry with the network front-end is
       what lets a single telemetry scrape expose crew.*, wal.* and
       net.* metrics together. *)
    match cfg.registry with
    | Some r -> r
    | None -> Registry.create ~thread_safe:true ()
  in
  let store =
    Store.create ~n_buckets:cfg.n_buckets ~n_partitions:cfg.n_partitions ~registry ()
  in
  (* Durability: open (and recover) the WAL before any worker exists.
     Replay is single-threaded here, so it trivially satisfies CREW;
     records carrying an idempotency token go back through
     [Store.set_idempotent], re-installing the token so a client retry
     of a persisted-but-unacked write is still suppressed after the
     restart. Serving counters are reset afterwards so replay traffic
     never pollutes them. *)
  let wal, wal_replayed =
    match cfg.wal with
    | None -> (None, 0)
    | Some wcfg ->
      if wcfg.Wal.n_partitions <> cfg.n_partitions then
        invalid_arg "Server.start: wal.n_partitions must match n_partitions";
      let replay ~partition:_ (r : Record.t) =
        match r.Record.op with
        | Record.Set { key; value; token = None } -> Store.set store ~key ~value
        | Record.Set { key; value; token = Some token } ->
          ignore (Store.set_idempotent store ~key ~value ~token)
        | Record.Delete { key } -> ignore (Store.remove store ~key)
      in
      let w, rstats = Wal.open_ ~registry ~replay wcfg in
      Store.reset_stats store;
      (Some w, rstats.Wal.replayed)
  in
  let workers =
    Array.init cfg.n_workers (fun id ->
        {
          id;
          channel = Channel.create ();
          alive = Atomic.make false;
          domain = None;
          ops = 0;
          writes_n = 0;
          batches = 0;
          batched_writes = 0;
          retries = 0;
          dups = 0;
        })
  in
  (* The model's EWT is a scarce CAM; the runtime's is bookkeeping, so
     size it to hold every partition — a capacity reject here would
     only degrade the decision stream, never protect hardware. *)
  let crew_cfg =
    {
      cfg.crew with
      Crew_config.ewt_capacity =
        max cfg.crew.Crew_config.ewt_capacity cfg.n_partitions;
    }
  in
  let core =
    Core.create ~registry ?on_decision:cfg.on_decision
      ~cfg:crew_cfg ~n_workers:cfg.n_workers ~n_partitions:cfg.n_partitions ()
  in
  let t =
    {
      cfg;
      store;
      workers;
      core;
      route_lock = Mutex.create ();
      next_reader = 0;
      stopped = Atomic.make false;
      stop_lock = Mutex.create ();
      monitor = None;
      recoveries_n = 0;
      requeued_n = 0;
      wal;
      wal_replayed_n = wal_replayed;
    }
  in
  Array.iter (fun w -> spawn_worker t w) workers;
  if cfg.recovery then t.monitor <- Some (Domain.spawn (fun () -> monitor_loop t));
  t

(* Route + push as one atomic step under [route_lock]. [try_push] maps a
   closed channel (stop won the race) to [Stopped] rather than a raw
   [Invalid_argument] escaping from the channel layer. *)
let submit_routed t pick op =
  let ok =
    Sync.with_lock t.route_lock (fun () ->
        (not (Atomic.get t.stopped))
        && Channel.try_push t.workers.(pick t).channel op)
  in
  if not ok then raise Stopped

(* CREW admission through the policy core: on a pinned partition ride
   the pin, otherwise pin at the durable assignment ([`Static] — the
   runtime's channels do their own queue accounting, so no JBSQ charge).
   A reject is unreachable with the queued profile's effectively
   unbounded counter; if it ever fires, route durably anyway. *)
let pick_writer key t =
  let partition = Store.partition_of_key t.store key in
  Core.note_arrival t.core;
  match
    Core.admit_write t.core ~partition ~now:(t.cfg.clock ()) ~pick:`Static
  with
  | Core.Admitted { worker; _ } -> worker
  | Core.Rejected _ -> Core.assigned_owner t.core ~partition
  | Core.No_slot -> assert false

(* Round-robin over live workers; if none is live (every worker crashed
   at once, pre-recovery) any channel works — the monitor requeues. Read
   spray is engine mechanism, not a policy decision: the model balances
   reads through JBSQ slots, the runtime through this cursor. *)
let pick_reader t =
  Core.note_arrival t.core;
  let n = t.cfg.n_workers in
  let rec find i tries =
    if tries = 0 then i
    else if Atomic.get t.workers.(i).alive then i
    else find ((i + 1) mod n) (tries - 1)
  in
  let r = find t.next_reader n in
  t.next_reader <- (r + 1) mod n;
  r

let get_async t ~key =
  let promise = Promise.create () in
  submit_routed t pick_reader (Get (key, promise));
  promise

let set_async ?token t ~key ~value =
  let promise = Promise.create () in
  (* CREW: the partition owner is the only worker that ever writes it. *)
  submit_routed t (pick_writer key) (Set (key, value, token, promise));
  promise

let delete_async t ~key =
  let promise = Promise.create () in
  (* Deletes mutate the partition, so CREW routes them to the owner. *)
  submit_routed t (pick_writer key) (Delete (key, promise));
  promise

let get t ~key = Promise.await (get_async t ~key)
let set t ~key ~value = Promise.await (set_async t ~key ~value)
let delete t ~key = Promise.await (delete_async t ~key)

let inject_crash t ~worker =
  if worker < 0 || worker >= t.cfg.n_workers then invalid_arg "Server.inject_crash";
  submit_routed t (fun _ -> worker) Crash

let pause_worker t ~worker =
  if worker < 0 || worker >= t.cfg.n_workers then invalid_arg "Server.pause_worker";
  let entered = Promise.create () in
  let release = Promise.create () in
  submit_routed t (fun _ -> worker) (Gate (entered, release));
  Promise.await entered;
  fun () -> Promise.fulfil release ()

let sweep_stale t ~now =
  Sync.with_lock t.route_lock (fun () -> Core.sweep_stale t.core ~now)

let shed_check t ~now =
  Sync.with_lock t.route_lock (fun () -> Core.shed_check t.core ~now)

let shed_level t = Core.shed_level t.core

(* Apply an op inline — only used by [stop] once every domain is joined,
   so the single remaining thread trivially satisfies CREW. Mutations
   are still appended to the WAL (the [Wal.close] that follows fsyncs
   them), but the acks are fulfilled directly: the sync domain is about
   to be drained anyway and every promise must resolve before [stop]
   returns. *)
let apply_directly t op =
  let log key op =
    match t.wal with
    | None -> ()
    | Some wal ->
      ignore (Wal.append wal ~partition:(Store.partition_of_key t.store key) ~op)
  in
  match op with
  | Crash -> ()
  | Gate (entered, _) ->
    (* Unblock a waiting [pause_worker]; the release side no longer has
       a worker to wake. *)
    if Promise.peek entered = None then Promise.fulfil entered ()
  | Get (key, p) -> Promise.fulfil p (fst (Store.get t.store ~key))
  | Delete (key, p) ->
    let present = Store.remove t.store ~key in
    log key (Record.Delete { key });
    Promise.fulfil p present
  | Set (key, value, None, p) ->
    Store.set t.store ~key ~value;
    log key (Record.Set { key; value; token = None });
    Promise.fulfil p ()
  | Set (key, value, (Some tok as token), p) ->
    (match Store.set_idempotent t.store ~key ~value ~token:tok with
    | `Applied -> log key (Record.Set { key; value; token })
    | `Duplicate -> ());
    Promise.fulfil p ()

let is_stopping t = Atomic.get t.stopped

(* Phase 2 of [stop]: with new submissions already rejected, wait for
   the still-running workers to drain their queued backlogs before any
   channel is closed. A dead worker's backlog cannot drain (the monitor
   skips recovery once [stopped] is set), so it is excluded here and
   applied directly by [stop]'s final sweep. *)
let await_backlogs_drained t =
  let drained () =
    Array.for_all
      (fun w -> Channel.length w.channel = 0 || not (Atomic.get w.alive))
      t.workers
  in
  while not (drained ()) do
    Domain.cpu_relax ()
  done

let stop t =
  (* [stop_lock] serialises concurrent stops end-to-end: the loser
     blocks until the winner has fully shut down, then returns. *)
  Sync.with_lock t.stop_lock (fun () ->
      if not (Atomic.get t.stopped) then begin
        Atomic.set t.stopped true;
        (* Reject-new is now in force; drain in-flight backlogs while
           the workers are still up, then tear down. *)
        await_backlogs_drained t;
        (* Taking route_lock serialises with any in-flight recovery, so
           the domain handles we join below are final. *)
        Sync.with_lock t.route_lock (fun () ->
            Array.iter (fun w -> Channel.close w.channel) t.workers);
        Array.iter
          (fun w -> match w.domain with Some d -> Domain.join d | None -> ())
          t.workers;
        (match t.monitor with Some d -> Domain.join d | None -> ());
        t.monitor <- None;
        (* A worker that crashed in the stop window leaves a backlog the
           monitor never got to requeue. Every promise issued before
           [stop] must still resolve, so apply the leftovers here. *)
        Array.iter
          (fun w ->
            List.iter (apply_directly t)
              (Channel.drain_matching w.channel ~f:(fun _ -> true)))
          t.workers;
        (* Durability epilogue: drain the sync domain's pending acks,
           fsync every partition, close the segment fds. After this a
           restart replays the full log with no torn tail. *)
        Option.iter Wal.close t.wal
      end)

(* ---------------- stats ---------------- *)

type stats = {
  ops_completed : int;
  writes : int;
  batches : int;
  batched_writes : int;
  read_retries : int;
  per_worker_ops : int array;
  recoveries : int;
  requeued_ops : int;
  duplicate_writes : int;
  wal_replayed : int;
  tokens_evicted : int;
}

let stats t =
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 t.workers in
  let recoveries, requeued_ops =
    Sync.with_lock t.route_lock (fun () -> (t.recoveries_n, t.requeued_n))
  in
  {
    ops_completed = sum (fun w -> w.ops);
    writes = sum (fun w -> w.writes_n);
    batches = sum (fun w -> w.batches);
    batched_writes = sum (fun w -> w.batched_writes);
    read_retries = sum (fun w -> w.retries);
    per_worker_ops = Array.map (fun w -> w.ops) t.workers;
    recoveries;
    requeued_ops;
    duplicate_writes = sum (fun w -> w.dups);
    wal_replayed = t.wal_replayed_n;
    tokens_evicted = (Store.stats t.store).Store.tokens_evicted;
  }

let alive_workers t =
  Array.fold_left (fun acc w -> if Atomic.get w.alive then acc + 1 else acc) 0 t.workers

let partition_of_key t key = Store.partition_of_key t.store key
let n_partitions t = t.cfg.n_partitions
let n_workers t = t.cfg.n_workers
let wal_handle t = t.wal

let ownership_counts t =
  Sync.with_lock t.route_lock (fun () -> Core.ownership_counts t.core)
