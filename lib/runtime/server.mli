(** A real, multicore in-process KVS server: worker domains serving the
    {!C4_kvs.Store} under the shared d-CREW policy core
    ([C4_crew.Core]), with optional write compaction and crash
    recovery.

    Since the policy extraction this module is a {e wall-clock driver}
    around the same core the discrete-event model drives: the core
    decides (pins, routes, window opens/closes, shed levels, stale
    evictions), and this driver turns those decisions into mechanism —
    worker domains, MPSC channels, promises, a crash monitor. The
    differential parity test replays one recorded trace through both
    drivers and holds their decision streams equal.

    - writes are admitted through [Core.admit_write] and routed to the
      partition's pinned owner (CREW), so the store's per-partition
      seqlocks never see two writers — the invariant the NIC enforces
      in C-4;
    - reads are sprayed across live workers round-robin and run the
      seqlock's optimistic protocol against concurrent in-place updates;
    - with compaction enabled (via {!config.crew}), a worker that pops
      a write drains every queued write to the same key from its
      channel (the dependent-write harvest), runs the core's window
      lifecycle (open / absorb / close), applies ONE batched update,
      and only then answers all of them — C-4's deferred-response rule,
      so recorded histories remain linearizable, which the test suite
      verifies on real executions;
    - writes may carry an idempotency token: a retried write whose first
      attempt was applied (only the ack was lost) is detected in the
      store and NOT applied twice;
    - a monitor domain watches for worker death (see {!inject_crash}):
      on a crash it re-owns the dead worker's partitions on a survivor
      through [Core.reassign] (which also evicts the dead worker's EWT
      pins, so no stale pin keeps routing at the corpse), requeues the
      dead channel's backlog along the new routes, and restarts the
      worker — no acknowledged write is lost, and the recorded history
      stays linearizable;
    - with a WAL configured ({!config.wal}), every mutation is appended
      to its partition's log BEFORE the ack, and the ack is routed
      through the WAL's group-commit machinery ([C4_wal.Wal.commit]) so
      fsync-gated policies acknowledge from the WAL's sync domain —
      workers never block on fsync. A compaction window's deferred
      responses form one group-commit batch (one fsync covers the whole
      window). On {!start} the log is replayed into the store before
      any worker exists; tokened records go back through
      [Store.set_idempotent], so client retries still dedup across a
      restart.

    On a many-core machine this is a usable (if minimal) concurrent KVS;
    on a single core it still exercises every synchronisation path via
    preemptive interleaving. *)

type t

(** Raised by every operation once {!stop} has begun (or won the race
    against an in-flight submission). Distinct from the store/channel
    [Invalid_argument]s so callers can retry-or-abandon cleanly. *)
exception Stopped

type config = {
  n_workers : int;
  n_buckets : int;
  n_partitions : int;
  crew : C4_crew.Config.t;
      (** the shared d-CREW policy configuration — the same record type
          the model server takes, so the two engines cannot drift on
          thresholds. Compaction on/off and the batch cap now live
          here. The EWT capacity is raised to [n_partitions] at start
          if smaller: the runtime's table is bookkeeping, not a scarce
          CAM *)
  recovery : bool;  (** run the crash-monitor domain (default true) *)
  monitor_interval : float;  (** seconds between monitor sweeps *)
  clock : unit -> float;
      (** the time source fed to the policy core, in ns. Defaults to
          wall clock; the parity test injects a logical clock so both
          engines see the same timestamps *)
  on_decision : (C4_crew.Decision.t -> unit) option;
      (** called with every policy decision the core takes, in decision
          order — the differential parity test's recorder, and the
          tracing hook that stamps admission decisions onto request
          spans ([C4_obs.Span.annotate_current]: admission decisions
          fire synchronously on the submitting thread). Called with
          [route_lock] held for routing decisions; keep it cheap *)
  registry : C4_obs.Registry.t option;
      (** receives the policy core's crew.* / EWT / compaction metrics.
          Must be thread-safe when supplied (worker domains bump it);
          a private thread-safe registry is used when [None]. Share one
          registry with [C4_net.Server] and the telemetry endpoint to
          expose the whole stack in one scrape *)
  wal : C4_wal.Wal.config option;
      (** durability tier: [None] (default) keeps the in-memory-only
          behaviour; [Some cfg] opens (and, on restart, replays) a
          per-partition write-ahead log under [cfg.dir] before serving.
          [cfg.n_partitions] must equal [n_partitions] — the key→
          partition map fixes per-key replay order, so it may not drift
          across restarts of the same log directory *)
}

(** 4 workers, {!C4_crew.Config.queued} policy profile (compaction on,
    effectively unbounded outstanding-write counters — the channels
    provide the backpressure), recovery on, wall clock. *)
val default_config : config

(** Start the worker domains (plus the monitor when [recovery]). *)
val start : config -> t

(** Blocking operations (thread-safe, callable from any domain). *)
val get : t -> key:int -> bytes option

val set : t -> key:int -> value:bytes -> unit

(** Remove a key (routed to the partition owner like a write, since it
    mutates partition state); [true] if the key was present. *)
val delete : t -> key:int -> bool

(** Nonblocking variants returning promises. [token] is an idempotency
    key: two sets carrying the same token apply at most once — pass the
    same token on a client retry and the duplicate is suppressed. *)
val get_async : t -> key:int -> bytes option Promise.t

val set_async : ?token:int -> t -> key:int -> value:bytes -> unit Promise.t

val delete_async : t -> key:int -> bool Promise.t

(** Simulated fail-stop of one worker domain: the worker dies between
    operations (never mid-write — acks are sent only after the store
    apply, so acknowledged writes survive by construction) and the
    monitor recovers as described above. *)
val inject_crash : t -> worker:int -> unit

(** Park a worker: the call blocks until the worker has entered the
    gate, then returns a release closure. While parked the worker pops
    nothing, so ops submitted to it queue in its channel — the
    deterministic-replay hook the parity test uses to force a harvest
    batch. The caller MUST invoke the release before {!stop} (a parked
    worker never drains its backlog). *)
val pause_worker : t -> worker:int -> unit -> unit

(** Run the core's EWT TTL staleness sweep at logical time [now];
    returns the evicted partitions (ascending). Exposed for harnesses
    and tests — the server does not tick this itself. *)
val sweep_stale : t -> now:float -> int list

(** Run the core's load-shed check at logical time [now]; returns the
    (possibly new) level. Exposed for harnesses — this server never
    rejects on shed itself (its channels backpressure instead). *)
val shed_check : t -> now:float -> int

val shed_level : t -> int

(** Drain queues, join the domains. Two-phase: [stop] first rejects new
    submissions (they raise {!Stopped}), then lets the still-running
    workers drain every queued backlog op before tearing the domains
    down — so a front-end (e.g. [C4_net.Server]) that flushes its
    connection backlogs before calling [stop] never has an
    accepted-but-unanswered request dropped. Idempotent, and safe to
    race with in-flight operations: every promise issued before [stop]
    resolves (including the backlog of a worker that crashed in the stop
    window, which [stop] applies itself). With a WAL, [stop] finishes by
    flushing and fsyncing every partition's log and closing it — a clean
    shutdown leaves no torn tail. Concurrent [stop]s serialise; the
    loser returns after shutdown completes. *)
val stop : t -> unit

(** [true] once {!stop} has begun: submissions will raise {!Stopped}.
    Front-ends poll this to fail fast instead of catching. *)
val is_stopping : t -> bool

type stats = {
  ops_completed : int;
  writes : int;
  batches : int;  (** batched updates applied (compaction only) *)
  batched_writes : int;  (** writes answered from a batch *)
  read_retries : int;  (** seqlock retries observed by readers *)
  per_worker_ops : int array;
  recoveries : int;  (** worker crashes recovered *)
  requeued_ops : int;  (** backlog ops requeued by recoveries *)
  duplicate_writes : int;  (** tokened writes suppressed as duplicates *)
  wal_replayed : int;  (** records replayed from the WAL at {!start} *)
  tokens_evicted : int;
      (** idempotency tokens dropped by the store's FIFO retention bound *)
}

val stats : t -> stats

(** Workers currently marked alive (exposed for tests). *)
val alive_workers : t -> int

(** The worker that owns a key's partition — the core's pin-aware
    ownership view ([Core.route_owner]), which the network stack also
    routes through. After a recovery this reflects the re-owned map. *)
val owner_of_key : t -> int -> int

(** {2 Client-side routing helpers}

    The key→partition mapping this server computes, exported so network
    clients can shard the memcached way: [C4_net.Client] uses
    {!C4_kvs.Hash.node_of_key} to pick an endpoint and can use these to
    reason about per-server partition placement. *)

(** The partition a key hashes to (same f() as the store and the NIC). *)
val partition_of_key : t -> int -> int

val n_partitions : t -> int
val n_workers : t -> int

(** The runtime's WAL, when {!config.wal} enabled one — exposed so the
    cluster runtime ([C4_clusterd.Member]) can install its replication
    tap ({!C4_wal.Wal.set_append_hook}) and quorum ack gate
    ({!C4_wal.Wal.set_ack_gate}) before serving traffic. Owned by the
    runtime: do not close it. *)
val wal_handle : t -> C4_wal.Wal.t option

(** Per-worker durable partition-ownership census
    ([C4_crew.Core.ownership_counts] under the routing lock, so it
    never interleaves with a recovery remap): [counts.(w)] partitions
    currently assigned to worker [w]. The health-document view of who
    owns how much — uniform at start, visibly skewed after a crash
    moves a dead worker's partitions to a survivor. *)
val ownership_counts : t -> int array
