type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  mutable closed : bool;
}

let create () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    closed = false;
  }

let push t v =
  Sync.with_lock t.mutex (fun () ->
      if t.closed then invalid_arg "Channel.push: closed";
      Queue.push v t.queue;
      Condition.signal t.nonempty)

let try_push t v =
  Sync.with_lock t.mutex (fun () ->
      if t.closed then false
      else begin
        Queue.push v t.queue;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  Sync.with_lock t.mutex (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let try_pop t =
  Sync.with_lock t.mutex (fun () ->
      if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))

let drain_matching t ~f =
  Sync.with_lock t.mutex (fun () ->
      let kept = Queue.create () and matched = ref [] in
      Queue.iter
        (fun v -> if f v then matched := v :: !matched else Queue.push v kept)
        t.queue;
      Queue.clear t.queue;
      Queue.transfer kept t.queue;
      List.rev !matched)

let length t = Sync.with_lock t.mutex (fun () -> Queue.length t.queue)

let close t =
  Sync.with_lock t.mutex (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)
