type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  mutable closed : bool;
}

let create () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    closed = false;
  }

let push t v =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Channel.push: closed"
  end;
  Queue.push v t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let try_push t v =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    false
  end
  else begin
    Queue.push v t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex;
    true
  end

let pop t =
  Mutex.lock t.mutex;
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let v = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      Some v
    end
    else if t.closed then begin
      Mutex.unlock t.mutex;
      None
    end
    else begin
      Condition.wait t.nonempty t.mutex;
      wait ()
    end
  in
  wait ()

let try_pop t =
  Mutex.lock t.mutex;
  let v = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  v

let drain_matching t ~f =
  Mutex.lock t.mutex;
  let kept = Queue.create () and matched = ref [] in
  Queue.iter (fun v -> if f v then matched := v :: !matched else Queue.push v kept) t.queue;
  Queue.clear t.queue;
  Queue.transfer kept t.queue;
  Mutex.unlock t.mutex;
  List.rev !matched

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex
