(** Key hashing for the store's bucket index and the NIC's partition
    mapping (Sec. 5.1: the NIC must apply the same f() as the KVS). *)

(** FNV-1a over the bytes of a string key; 62-bit nonnegative result. *)
val fnv1a : string -> int

(** Finalised 64-bit mix of an integer key (SplitMix64 finaliser);
    62-bit nonnegative result. *)
val mix_int : int -> int

(** Bucket index for a key in an index of [n_buckets]. *)
val bucket_of_key : n_buckets:int -> int -> int

(** Partition (bucket group) for a bucket: partitions are contiguous
    groups of buckets, the minimal load-balancing unit ("a few tens of
    keys", Sec. 5.1). *)
val partition_of_bucket : n_buckets:int -> n_partitions:int -> int -> int

(** Composition of the two: the f() communicated to the NIC. *)
val partition_of_key : n_buckets:int -> n_partitions:int -> int -> int

(** Node a key routes to under memcached-style client-side sharding.
    Decorrelated from {!partition_of_key} (a different stream of the
    same mix) so a cluster node does not own a contiguous slice of the
    partition space.

    This is the {e routing contract} shared by [C4_cluster.Cluster],
    [C4_net.Client] and [C4_clusterd.Shardmap] (which calls it with
    [n_nodes] = number of {e shards}): every party that maps keys to
    cluster locations must use this exact function, or requests land
    on nodes that do not own the key. Two properties the callers rely
    on, pinned by property tests in [test_kvs]: for a fixed [n_nodes]
    the result depends only on the key (stable across processes and
    restarts — it is pure arithmetic, no seed, no global state), and
    the keyspace spreads near-uniformly over nodes so shard loads
    balance. *)
val node_of_key : n_nodes:int -> int -> int
