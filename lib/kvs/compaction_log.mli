(** Per-thread write-compaction layer (Sec. 4.3, 5.3).

    One thread owns one log. When the thread detects multiple dependent
    writes (same key) in its queue, it opens a *compaction window* for
    that key, buffers every subsequent write to the key in a private log
    (no shared cache lines touched), and on expiry applies ONE combined
    update and releases the buffered responses. Responses are deferred
    until the window closes — the property that makes compaction
    linearizable (Fig. 7: all compacted sets stay concurrent with
    overlapping gets until the window closes).

    The expiry time follows the paper: T_expiry = T_open + S·(SLO−1),
    leaving one mean service time of slack to perform the final write
    before the oldest compacted request would violate the SLO. *)

type pending = {
  request_id : int;
  sender : int;  (** node id to respond to *)
  value : bytes;
  buffered_at : float;
}

type closed = {
  key : int;
  opened_at : float;
  closed_at : float;
  writes : pending list;  (** in buffering order *)
}

type t

(** [create ()] — no window open.
    @param registry observability registry receiving the log's metrics
    ([compaction.windows], [compaction.absorbed] counters and the
    [compaction.window_size] histogram); all logs created against the
    same registry share them. A private registry is used when omitted.
    @param scan_depth queue slots inspected when hunting for dependent
    writes (default 8; the paper scans "a small number"). *)
val create : ?registry:C4_obs.Registry.t -> ?scan_depth:int -> unit -> t

val scan_depth : t -> int

(** Is a window currently open (for any key / for this key)? *)
val window_open : t -> bool

val is_open_for : t -> key:int -> bool

(** Key of the open window, if any. *)
val current_key : t -> int option

(** Expiry deadline of the open window. *)
val expires_at : t -> float option

(** Open a window for [key]. Raises if one is already open — a thread
    compacts one key at a time. [expires_at] is the absolute deadline. *)
val open_window : t -> key:int -> now:float -> expires_at:float -> unit

(** Buffer one write into the open window. Raises if no window is open
    or the key differs. O(1); models the T_c append cost. *)
val absorb : t -> key:int -> pending -> unit

(** Number of writes buffered in the open window. *)
val buffered : t -> int

(** True when [now] has reached the deadline. False when no window. *)
val expired : t -> now:float -> bool

(** Close the open window and return its contents (never raises; [None]
    if no window was open). *)
val close : t -> now:float -> closed option

(** Lifetime counters. *)
type stats = {
  windows_opened : int;
  writes_compacted : int;  (** total absorbed across closed windows *)
  largest_window : int;
}

val stats : t -> stats
