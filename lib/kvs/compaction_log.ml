type pending = {
  request_id : int;
  sender : int;
  value : bytes;
  buffered_at : float;
}

type closed = {
  key : int;
  opened_at : float;
  closed_at : float;
  writes : pending list;
}

type window = {
  key : int;
  opened_at : float;
  deadline : float;
  mutable entries : pending list; (* newest first *)
  mutable count : int;
}

module Registry = C4_obs.Registry

type t = {
  scan_depth_ : int;
  mutable window : window option;
  mutable opened_total : int;
  mutable compacted_total : int;
  mutable largest : int;
  windows_c : Registry.counter;
  absorbed_c : Registry.counter;
  window_size_h : Registry.histogram;
}

let create ?registry ?(scan_depth = 8) () =
  if scan_depth < 1 then invalid_arg "Compaction_log.create: scan_depth";
  (* Per-worker logs created against a shared registry all resolve to
     the same named metrics, aggregating across the pool for free. *)
  let reg = match registry with Some r -> r | None -> Registry.create () in
  let windows_c = Registry.counter reg "compaction.windows" in
  let absorbed_c = Registry.counter reg "compaction.absorbed" in
  let window_size_h = Registry.histogram reg "compaction.window_size" in
  {
    scan_depth_ = scan_depth;
    window = None;
    opened_total = 0;
    compacted_total = 0;
    largest = 0;
    windows_c;
    absorbed_c;
    window_size_h;
  }

let scan_depth t = t.scan_depth_
let window_open t = t.window <> None

let is_open_for t ~key =
  match t.window with Some w -> w.key = key | None -> false

let current_key t = Option.map (fun w -> w.key) t.window
let expires_at t = Option.map (fun w -> w.deadline) t.window

let open_window t ~key ~now ~expires_at =
  if t.window <> None then failwith "Compaction_log.open_window: window already open";
  if expires_at < now then invalid_arg "Compaction_log.open_window: deadline in the past";
  t.window <- Some { key; opened_at = now; deadline = expires_at; entries = []; count = 0 };
  t.opened_total <- t.opened_total + 1;
  Registry.incr t.windows_c

let absorb t ~key pending =
  match t.window with
  | None -> failwith "Compaction_log.absorb: no window open"
  | Some w ->
    if w.key <> key then failwith "Compaction_log.absorb: key mismatch";
    w.entries <- pending :: w.entries;
    w.count <- w.count + 1;
    Registry.incr t.absorbed_c

let buffered t = match t.window with Some w -> w.count | None -> 0

let expired t ~now =
  match t.window with Some w -> now >= w.deadline | None -> false

let close t ~now =
  match t.window with
  | None -> None
  | Some w ->
    t.window <- None;
    t.compacted_total <- t.compacted_total + w.count;
    Registry.observe t.window_size_h (float_of_int w.count);
    if w.count > t.largest then t.largest <- w.count;
    Some { key = w.key; opened_at = w.opened_at; closed_at = now; writes = List.rev w.entries }

type stats = {
  windows_opened : int;
  writes_compacted : int;
  largest_window : int;
}

let stats t =
  {
    windows_opened = t.opened_total;
    writes_compacted = t.compacted_total;
    largest_window = t.largest;
  }
