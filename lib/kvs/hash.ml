let mask62 = (1 lsl 62) - 1

let fnv1a s =
  let offset_basis = 0xCBF29CE484222325L and prime = 0x100000001B3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Int64.to_int !h land mask62

let mix_int key =
  let z = Int64.of_int key in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land mask62

let bucket_of_key ~n_buckets key = mix_int key mod n_buckets

let partition_of_bucket ~n_buckets ~n_partitions bucket =
  if n_partitions >= n_buckets then bucket mod n_partitions
  else bucket * n_partitions / n_buckets

let partition_of_key ~n_buckets ~n_partitions key =
  partition_of_bucket ~n_buckets ~n_partitions (bucket_of_key ~n_buckets key)

(* The xor constant decorrelates the node stream from the bucket stream:
   keys sharing a partition spread over all nodes and vice versa. *)
let node_of_key ~n_nodes key = mix_int (key lxor 0x5DEECE66D) mod n_nodes
