(** MICA-like in-memory key-value store.

    A fixed-size array of hash buckets, each holding a chain of items;
    buckets are grouped into partitions, each protected by a {!Seqlock}.
    Readers run the optimistic protocol (read, version-check, retry);
    writers follow the CREW discipline — whoever calls [set] must hold
    the exclusive write right for the key's partition, which is exactly
    what the NIC-side policies guarantee.

    Keys are 63-bit integers (the workload's key ids); values are byte
    strings mutated in place so concurrent readers genuinely need the
    version protocol. *)

type t

(** Tokens remembered per partition before FIFO eviction kicks in (see
    {!set_idempotent}); the default. *)
val default_token_capacity : int

(** [token_capacity] bounds per-partition idempotency-token retention
    (default {!default_token_capacity}); [registry] receives a
    [store.tokens_evicted] counter when supplied. *)
val create :
  ?n_buckets:int ->
  ?n_partitions:int ->
  ?token_capacity:int ->
  ?registry:C4_obs.Registry.t ->
  unit ->
  t

val n_buckets : t -> int
val n_partitions : t -> int

(** The f() shared with the NIC (Sec. 5.1). *)
val partition_of_key : t -> int -> int

(** Insert or update. Runs one seqlock write section on the partition. *)
val set : t -> key:int -> value:bytes -> unit

(** Insert or update, deduplicated by idempotency [token]: if a write
    carrying the same token was already applied to this key's partition
    (a client retry whose original ack was lost), the store leaves the
    value untouched and reports [`Duplicate]. Tokens are tracked per
    partition, inside the partition's write section, so the CREW single
    writer sees an exact record.

    Retention is bounded: each partition remembers at most
    [token_capacity] tokens, evicting the oldest (FIFO) to admit a new
    one, so long-lived servers do not leak. The implied guarantee: a
    retry dedups as long as fewer than [token_capacity] {e newer}
    tokened writes reached its partition since the original applied —
    a retry window that dwarfs any client retry deadline at the
    default capacity. Evictions are counted in {!stats} and in the
    registry's [store.tokens_evicted]. *)
val set_idempotent :
  t -> key:int -> value:bytes -> token:int -> [ `Applied | `Duplicate ]

(** Optimistic read; returns a private copy of the value and the number
    of version-check retries taken. *)
val get : t -> key:int -> (bytes option * int)

val mem : t -> key:int -> bool

(** Remove a key; true if it was present. *)
val remove : t -> key:int -> bool

(** Apply a batch of writes to a single key as ONE update: the combined
    write a closing compaction window performs (Sec. 4.3). Only the
    final value becomes visible; one version bump covers the batch. *)
val set_batched : t -> key:int -> values:bytes list -> unit

(** Number of items stored. *)
val size : t -> int

(** Partition version, for tests asserting update counts. *)
val partition_version : t -> partition:int -> int

type stats = {
  reads : int;
  writes : int;
  read_retries : int;
  duplicate_writes : int;
  tokens_evicted : int;  (** idempotency tokens dropped by the FIFO bound *)
}

val stats : t -> stats
val reset_stats : t -> unit
