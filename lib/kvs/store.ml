type entry = { key : int; mutable value : bytes }

type t = {
  buckets : entry list ref array;
  locks : Seqlock.t array;
  (* Per-partition idempotency-token sets. A token lives in its key's
     partition, so under CREW it is only ever touched by the partition's
     single writer — no extra synchronisation needed. Retention is
     bounded: [token_order] remembers arrival order and once a
     partition holds [token_capacity] tokens the oldest is evicted per
     new one, so a long-lived server's memory stays flat. The dedup
     guarantee this implies: a retry is suppressed as long as fewer
     than [token_capacity] newer tokened writes have hit its partition
     since the original applied — far beyond any client's retry
     deadline at the default capacity. *)
  applied_tokens : (int, unit) Hashtbl.t array;
  token_order : int Queue.t array;
  token_capacity : int;
  n_partitions : int;
  mutable count : int;
  mutable reads_n : int;
  mutable writes_n : int;
  mutable retries_n : int;
  mutable dup_writes_n : int;
  mutable tokens_evicted_n : int;
  evicted_c : C4_obs.Registry.counter option;
}

let default_token_capacity = 8192

let create ?(n_buckets = 65536) ?(n_partitions = 1024)
    ?(token_capacity = default_token_capacity) ?registry () =
  if n_buckets <= 0 || n_partitions <= 0 || token_capacity <= 0 then
    invalid_arg "Store.create";
  {
    buckets = Array.init n_buckets (fun _ -> ref []);
    locks = Array.init n_partitions (fun _ -> Seqlock.create ());
    applied_tokens = Array.init n_partitions (fun _ -> Hashtbl.create 16);
    token_order = Array.init n_partitions (fun _ -> Queue.create ());
    token_capacity;
    n_partitions;
    count = 0;
    reads_n = 0;
    writes_n = 0;
    retries_n = 0;
    dup_writes_n = 0;
    tokens_evicted_n = 0;
    evicted_c =
      Option.map (fun reg -> C4_obs.Registry.counter reg "store.tokens_evicted") registry;
  }

let n_buckets t = Array.length t.buckets
let n_partitions t = t.n_partitions

let partition_of_key t key =
  Hash.partition_of_key ~n_buckets:(n_buckets t) ~n_partitions:t.n_partitions key

let bucket_of_key t key = Hash.bucket_of_key ~n_buckets:(n_buckets t) key

let find_entry chain key = List.find_opt (fun e -> e.key = key) chain

(* Write [value] into [entry] in place when sizes match (the common case
   for fixed-size KVS items), otherwise swap the buffer. *)
let update_entry entry value =
  if Bytes.length entry.value = Bytes.length value then
    Bytes.blit value 0 entry.value 0 (Bytes.length value)
  else entry.value <- Bytes.copy value

let set_locked t ~key ~value =
  let bucket = t.buckets.(bucket_of_key t key) in
  (match find_entry !bucket key with
  | Some entry -> update_entry entry value
  | None ->
    bucket := { key; value = Bytes.copy value } :: !bucket;
    t.count <- t.count + 1);
  t.writes_n <- t.writes_n + 1

let set t ~key ~value =
  let lock = t.locks.(partition_of_key t key) in
  Seqlock.write_begin lock;
  set_locked t ~key ~value;
  Seqlock.write_end lock

(* Idempotent write: a retried write whose first attempt was actually
   applied (the ack was lost, not the write) must not be applied twice.
   The token set is checked and updated inside the partition's write
   section, so a duplicate can never slip between check and apply. *)
let set_idempotent t ~key ~value ~token =
  let partition = partition_of_key t key in
  let tokens = t.applied_tokens.(partition) in
  let lock = t.locks.(partition) in
  if Hashtbl.mem tokens token then begin
    t.dup_writes_n <- t.dup_writes_n + 1;
    `Duplicate
  end
  else begin
    Seqlock.write_begin lock;
    (* FIFO retention bound: make room before recording the new token,
       inside the write section so the CREW single writer sees an exact
       record at every instant. *)
    let order = t.token_order.(partition) in
    if Queue.length order >= t.token_capacity then begin
      Hashtbl.remove tokens (Queue.pop order);
      t.tokens_evicted_n <- t.tokens_evicted_n + 1;
      Option.iter C4_obs.Registry.incr t.evicted_c
    end;
    Hashtbl.replace tokens token ();
    Queue.push token order;
    set_locked t ~key ~value;
    Seqlock.write_end lock;
    `Applied
  end

let set_batched t ~key ~values =
  match List.rev values with
  | [] -> ()
  | final :: _earlier ->
    let lock = t.locks.(partition_of_key t key) in
    Seqlock.write_begin lock;
    (* The batch counts as one combined update: one version bump, one
       data-store write, regardless of how many writes were compacted. *)
    set_locked t ~key ~value:final;
    Seqlock.write_end lock

let get t ~key =
  let lock = t.locks.(partition_of_key t key) in
  let result, retries =
    Seqlock.read lock (fun () ->
        let bucket = t.buckets.(bucket_of_key t key) in
        match find_entry !bucket key with
        | Some entry -> Some (Bytes.copy entry.value)
        | None -> None)
  in
  t.reads_n <- t.reads_n + 1;
  t.retries_n <- t.retries_n + retries;
  (result, retries)

let mem t ~key =
  let bucket = t.buckets.(bucket_of_key t key) in
  find_entry !bucket key <> None

let remove t ~key =
  let lock = t.locks.(partition_of_key t key) in
  Seqlock.write_begin lock;
  let bucket = t.buckets.(bucket_of_key t key) in
  let present = find_entry !bucket key <> None in
  if present then begin
    bucket := List.filter (fun e -> e.key <> key) !bucket;
    t.count <- t.count - 1
  end;
  Seqlock.write_end lock;
  present

let size t = t.count
let partition_version t ~partition = Seqlock.version t.locks.(partition)

type stats = {
  reads : int;
  writes : int;
  read_retries : int;
  duplicate_writes : int;
  tokens_evicted : int;
}

let stats t =
  {
    reads = t.reads_n;
    writes = t.writes_n;
    read_retries = t.retries_n;
    duplicate_writes = t.dup_writes_n;
    tokens_evicted = t.tokens_evicted_n;
  }

let reset_stats t =
  t.reads_n <- 0;
  t.writes_n <- 0;
  t.retries_n <- 0;
  t.dup_writes_n <- 0
