(* Workload substrate: Zipf samplers (both methods, distribution checks),
   Poisson arrival process, generator determinism and mix, traces. *)

module Rng = C4_dsim.Rng
module Zipf = C4_workload.Zipf
module Generator = C4_workload.Generator
module Request = C4_workload.Request
module Trace = C4_workload.Trace

(* ---------------- Zipf ---------------- *)

let empirical_freqs ~method_ ~n ~theta ~samples =
  let z = Zipf.create ~method_ ~n ~theta (Rng.create 99) in
  let counts = Array.make n 0 in
  for _ = 1 to samples do
    let r = Zipf.sample z in
    counts.(r) <- counts.(r) + 1
  done;
  (z, Array.map (fun c -> float_of_int c /. float_of_int samples) counts)

let check_head_frequencies method_ () =
  let n = 1000 and theta = 0.99 and samples = 200_000 in
  let z, freqs = empirical_freqs ~method_ ~n ~theta ~samples in
  (* The head ranks carry enough mass for a tight statistical check. *)
  for rank = 0 to 4 do
    let expected = Zipf.prob z rank in
    let got = freqs.(rank) in
    if abs_float (got -. expected) > 0.2 *. expected +. 0.002 then
      Alcotest.failf "rank %d: freq %f vs prob %f" rank got expected
  done

let test_zipf_uniform_degenerate () =
  let n = 100 in
  let z, freqs = empirical_freqs ~method_:`Cdf ~n ~theta:0.0 ~samples:100_000 in
  Alcotest.(check bool) "prob uniform" true (abs_float (Zipf.prob z 0 -. 0.01) < 1e-12);
  Array.iteri
    (fun i f ->
      if abs_float (f -. 0.01) > 0.004 then Alcotest.failf "rank %d freq %f" i f)
    freqs

let test_zipf_probs_sum_to_one () =
  let z = Zipf.create ~n:10_000 ~theta:1.25 (Rng.create 5) in
  let total = ref 0.0 in
  for i = 0 to 9_999 do
    total := !total +. Zipf.prob z i
  done;
  if abs_float (!total -. 1.0) > 1e-9 then Alcotest.failf "sum %f" !total

let test_zipf_head_mass_monotone_in_theta () =
  let mass theta =
    Zipf.head_mass (Zipf.create ~n:100_000 ~theta (Rng.create 1)) 10
  in
  let m0 = mass 0.5 and m1 = mass 0.99 and m2 = mass 1.4 in
  Alcotest.(check bool) "skew concentrates mass" true (m0 < m1 && m1 < m2)

let test_zipf_methods_agree () =
  (* Both implementations sample the same distribution: compare head
     frequencies against each other. *)
  let n = 500 and theta = 1.2 and samples = 100_000 in
  let _, f_cdf = empirical_freqs ~method_:`Cdf ~n ~theta ~samples in
  let _, f_alias = empirical_freqs ~method_:`Alias ~n ~theta ~samples in
  for rank = 0 to 3 do
    if abs_float (f_cdf.(rank) -. f_alias.(rank)) > 0.015 then
      Alcotest.failf "rank %d: cdf %f vs alias %f" rank f_cdf.(rank) f_alias.(rank)
  done

let test_zipf_invalid_args () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~theta:1.0 (Rng.create 1)));
  Alcotest.check_raises "negative theta"
    (Invalid_argument "Zipf.create: theta must be nonnegative") (fun () ->
      ignore (Zipf.create ~n:10 ~theta:(-1.0) (Rng.create 1)))

let prop_zipf_sample_in_range =
  QCheck.Test.make ~name:"zipf samples stay in [0, n)" ~count:100
    QCheck.(pair (int_range 1 5000) (float_range 0.0 2.5))
    (fun (n, theta) ->
      let z = Zipf.create ~n ~theta (Rng.create (n + int_of_float (theta *. 100.))) in
      let ok = ref true in
      for _ = 1 to 200 do
        let r = Zipf.sample z in
        if r < 0 || r >= n then ok := false
      done;
      !ok)

(* ---------------- Generator ---------------- *)

let mk ?(theta = 0.0) ?(write_fraction = 0.5) ?(rate = 0.05) () =
  Generator.create
    { Generator.default with n_keys = 10_000; n_partitions = 64; theta; write_fraction; rate }
    ~seed:7

let test_generator_deterministic () =
  let a = mk () and b = mk () in
  for _ = 1 to 500 do
    let ra = Generator.next a and rb = Generator.next b in
    if ra <> rb then Alcotest.failf "divergence at request %d" ra.Request.id
  done

let test_generator_arrivals_increasing () =
  let g = mk () in
  let last = ref (-1.0) in
  for _ = 1 to 1_000 do
    let r = Generator.next g in
    if r.Request.arrival <= !last then Alcotest.failf "non-increasing arrival";
    last := r.Request.arrival
  done

let test_generator_rate () =
  let g = mk ~rate:0.05 () in
  let n = 100_000 in
  let first = Generator.next g in
  let last = ref first in
  for _ = 2 to n do
    last := Generator.next g
  done;
  let measured =
    float_of_int (n - 1) /. (!last.Request.arrival -. first.Request.arrival)
  in
  if abs_float (measured -. 0.05) > 0.002 then Alcotest.failf "rate %f" measured

let test_generator_write_fraction () =
  let g = mk ~write_fraction:0.3 () in
  let writes = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Request.is_write (Generator.next g) then incr writes
  done;
  let f = float_of_int !writes /. float_of_int n in
  if abs_float (f -. 0.3) > 0.01 then Alcotest.failf "write fraction %f" f

let test_generator_partition_range () =
  let g = mk ~theta:1.4 () in
  for _ = 1 to 10_000 do
    let r = Generator.next g in
    if r.Request.partition < 0 || r.Request.partition >= 64 then
      Alcotest.failf "partition %d out of range" r.Request.partition
  done

let test_generator_partition_consistent () =
  let g = mk () in
  for _ = 1 to 1_000 do
    let r = Generator.next g in
    Alcotest.(check int) "partition = f(key)"
      (Generator.partition_of_key g r.Request.key)
      r.Request.partition
  done

let test_generator_ids_unique_and_dense () =
  let g = mk () in
  for expected = 0 to 999 do
    let r = Generator.next g in
    Alcotest.(check int) "dense ids" expected r.Request.id
  done;
  Alcotest.(check int) "generated count" 1000 (Generator.generated g)

let test_generator_rejects_bad_config () =
  let bad f = Alcotest.(check bool) "raises" true
    (try ignore (f ()); false with Invalid_argument _ -> true) in
  bad (fun () -> Generator.create { Generator.default with n_keys = 0 } ~seed:1);
  bad (fun () -> Generator.create { Generator.default with write_fraction = 1.5 } ~seed:1);
  bad (fun () -> Generator.create { Generator.default with rate = 0.0 } ~seed:1)

let test_regions () =
  let open Generator in
  Alcotest.(check string) "R_uni" "R_uni" (Format.asprintf "%a" pp_region R_uni);
  let c = of_region WI_uni in
  Alcotest.(check bool) "WI_uni write-heavy" true (c.write_fraction >= 0.5);
  let c = of_region RW_sk in
  Alcotest.(check bool) "RW_sk skewed" true (c.theta >= 0.9)

(* ---------------- YCSB presets ---------------- *)

let test_ycsb_roundtrip () =
  List.iter
    (fun w ->
      match C4_workload.Ycsb.of_name (C4_workload.Ycsb.name w) with
      | Ok w' -> Alcotest.(check string) "roundtrip" (C4_workload.Ycsb.name w)
                   (C4_workload.Ycsb.name w')
      | Error e -> Alcotest.fail e)
    C4_workload.Ycsb.all;
  (match C4_workload.Ycsb.of_name " a " with
  | Ok C4_workload.Ycsb.A -> ()
  | _ -> Alcotest.fail "case/space-insensitive parse");
  match C4_workload.Ycsb.of_name "Z" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Z accepted"

let test_ycsb_mixes () =
  let open C4_workload.Ycsb in
  Alcotest.(check (float 1e-9)) "A is half writes" 0.5 (write_fraction A);
  Alcotest.(check (float 1e-9)) "C is read-only" 0.0 (write_fraction C);
  let cfg = config A in
  Alcotest.(check (float 1e-9)) "standard zipfian" 0.99 cfg.Generator.theta;
  Alcotest.(check (float 1e-9)) "mix applied" 0.5 cfg.Generator.write_fraction;
  (* A generated stream honours the preset's mix. *)
  let gen = Generator.create { cfg with Generator.n_keys = 10_000 } ~seed:5 in
  let writes = ref 0 in
  for _ = 1 to 20_000 do
    if Request.is_write (Generator.next gen) then incr writes
  done;
  let f = float_of_int !writes /. 20_000.0 in
  if abs_float (f -. 0.5) > 0.02 then Alcotest.failf "YCSB-A write mix %f" f

let test_ycsb_base_override () =
  let base = { Generator.default with n_keys = 77; rate = 0.123 } in
  let cfg = C4_workload.Ycsb.config ~base C4_workload.Ycsb.B in
  Alcotest.(check int) "base keys kept" 77 cfg.Generator.n_keys;
  Alcotest.(check (float 1e-9)) "base rate kept" 0.123 cfg.Generator.rate

(* ---------------- Trace ---------------- *)

let test_trace_record_replay () =
  let g = mk () in
  let t = Trace.record g ~n:100 in
  Alcotest.(check int) "length" 100 (Trace.length t);
  let r0 = Trace.get t 0 in
  Alcotest.(check int) "first id" 0 r0.Request.id

let test_trace_csv_roundtrip () =
  let g = mk ~theta:0.99 () in
  let t = Trace.record g ~n:50 in
  match Trace.of_csv (Trace.to_csv t) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok t' ->
    Alcotest.(check int) "same length" (Trace.length t) (Trace.length t');
    for i = 0 to Trace.length t - 1 do
      let a = Trace.get t i and b = Trace.get t' i in
      if a.Request.id <> b.Request.id || a.key <> b.key || a.op <> b.op then
        Alcotest.failf "row %d mismatch" i
    done

let test_trace_of_csv_errors () =
  (match Trace.of_csv "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty should error");
  match Trace.of_csv "id,op,key,partition,arrival,value_size\n1,X,2,3,4.0,5\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad op should error"

let test_trace_rescale () =
  let g = mk ~rate:0.05 () in
  let t = Trace.record g ~n:10_000 in
  let t2 = Trace.rescale t ~rate:0.1 in
  let measured = Trace.offered_rate t2 in
  if abs_float (measured -. 0.1) > 0.005 then Alcotest.failf "rescaled rate %f" measured;
  Alcotest.(check int) "same length" (Trace.length t) (Trace.length t2);
  Alcotest.(check (float 0.0001)) "write mix preserved" (Trace.write_fraction t)
    (Trace.write_fraction t2)

let tests =
  [
    Alcotest.test_case "zipf head frequencies (CDF)" `Slow (check_head_frequencies `Cdf);
    Alcotest.test_case "zipf head frequencies (alias)" `Slow (check_head_frequencies `Alias);
    Alcotest.test_case "zipf theta=0 is uniform" `Slow test_zipf_uniform_degenerate;
    Alcotest.test_case "zipf probabilities sum to 1" `Quick test_zipf_probs_sum_to_one;
    Alcotest.test_case "head mass grows with skew" `Quick test_zipf_head_mass_monotone_in_theta;
    Alcotest.test_case "CDF and alias methods agree" `Slow test_zipf_methods_agree;
    Alcotest.test_case "zipf argument validation" `Quick test_zipf_invalid_args;
    QCheck_alcotest.to_alcotest prop_zipf_sample_in_range;
    Alcotest.test_case "generator is deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "arrivals strictly increase" `Quick test_generator_arrivals_increasing;
    Alcotest.test_case "poisson rate honoured" `Slow test_generator_rate;
    Alcotest.test_case "write fraction honoured" `Slow test_generator_write_fraction;
    Alcotest.test_case "partitions in range" `Quick test_generator_partition_range;
    Alcotest.test_case "partition = f(key) always" `Quick test_generator_partition_consistent;
    Alcotest.test_case "request ids dense" `Quick test_generator_ids_unique_and_dense;
    Alcotest.test_case "config validation" `Quick test_generator_rejects_bad_config;
    Alcotest.test_case "taxonomy region presets" `Quick test_regions;
    Alcotest.test_case "YCSB name round-trip" `Quick test_ycsb_roundtrip;
    Alcotest.test_case "YCSB mixes and presets" `Slow test_ycsb_mixes;
    Alcotest.test_case "YCSB base override" `Quick test_ycsb_base_override;
    Alcotest.test_case "trace record" `Quick test_trace_record_replay;
    Alcotest.test_case "trace CSV round-trip" `Quick test_trace_csv_roundtrip;
    Alcotest.test_case "trace CSV error handling" `Quick test_trace_of_csv_errors;
    Alcotest.test_case "trace rescale" `Quick test_trace_rescale;
  ]
