(* Integration tests across substrates.

   1. Randomised single-key schedules executed against the REAL
      Store + Compaction_log with C-4's deferred-response rule, the
      resulting history checked by the linearizability checker: the
      Sec. 4.3.1 argument, validated mechanically over thousands of
      interleavings.

   2. The NIC pipeline end to end: packets through Header + Rpc, write
      compaction harvesting dependent writes from the receive queue,
      EWT bookkeeping for the d-CREW path, responses releasing
      exclusivity — buffer-exact.

   3. Server-model cross-checks tying several modules together. *)

module Store = C4_kvs.Store
module Log = C4_kvs.Compaction_log
module History = C4_consistency.History
module Lin = C4_consistency.Linearizability
module Header = C4_nic.Header
module Rpc = C4_nic.Rpc
module Ewt = C4_nic.Ewt

(* ------------------------------------------------------------------ *)
(* 1. Compaction linearizability over random schedules.                *)

type op_req = { at : float; is_set : bool; value : int }

(* Execute a schedule against the store with compaction windows of
   [window] length. Sets are buffered while a window is open and all
   answered at window close; gets read the store immediately. Returns
   the observable history. *)
let execute ~window ops =
  let key = 5 in
  let store = Store.create ~n_buckets:32 ~n_partitions:4 () in
  Store.set store ~key ~value:(Bytes.of_string "0");
  let log = Log.create () in
  let history = ref [] in
  let client = ref 0 in
  let fresh_client prefix =
    incr client;
    Printf.sprintf "%s%d" prefix !client
  in
  let close_window ~now =
    match Log.close log ~now with
    | None -> ()
    | Some closed ->
      let values = List.map (fun (p : Log.pending) -> p.Log.value) closed.Log.writes in
      Store.set_batched store ~key ~values;
      (* All buffered sets respond now — the C-4 rule. *)
      List.iter
        (fun (p : Log.pending) ->
          history :=
            History.set
              ~client:(fresh_client "w")
              ~value:(int_of_string (Bytes.to_string p.Log.value))
              ~invoked:p.Log.buffered_at ~responded:now
            :: !history)
        closed.Log.writes
  in
  let step op =
    (* Close an expired window before processing the next arrival. *)
    if Log.window_open log && Log.expired log ~now:op.at then begin
      let deadline = Option.get (Log.expires_at log) in
      close_window ~now:deadline
    end;
    if op.is_set then begin
      if not (Log.window_open log) then
        Log.open_window log ~key ~now:op.at ~expires_at:(op.at +. window);
      Log.absorb log ~key
        {
          Log.request_id = 0;
          sender = 0;
          value = Bytes.of_string (string_of_int op.value);
          buffered_at = op.at;
        }
    end
    else begin
      let seen =
        match fst (Store.get store ~key) with
        | Some b -> int_of_string (Bytes.to_string b)
        | None -> -1
      in
      history :=
        History.get ~client:(fresh_client "r") ~value:seen ~invoked:op.at
          ~responded:(op.at +. 0.001)
        :: !history
    end
  in
  List.iter step ops;
  (* Drain any open window. *)
  (match Log.expires_at log with Some deadline -> close_window ~now:deadline | None -> ());
  History.of_ops !history

let schedule_gen =
  QCheck.Gen.(
    let op =
      map3
        (fun dt is_set value -> (dt, is_set, value))
        (float_range 0.1 5.0) bool (int_range 1 9)
    in
    list_size (int_range 1 20) op
    |> map (fun steps ->
           let time = ref 0.0 in
           List.map
             (fun (dt, is_set, value) ->
               time := !time +. dt;
               { at = !time; is_set; value })
             steps))

let prop_compaction_linearizable =
  QCheck.Test.make ~name:"compaction with deferred responses linearizes (real store)"
    ~count:500
    (QCheck.make ~print:(fun ops -> string_of_int (List.length ops)) schedule_gen)
    (fun ops -> Lin.is_linearizable ~initial:0 (execute ~window:4.0 ops))

let prop_compaction_linearizable_long_windows =
  QCheck.Test.make ~name:"linearizable with long windows too" ~count:200
    (QCheck.make schedule_gen)
    (fun ops -> Lin.is_linearizable ~initial:0 (execute ~window:50.0 ops))

let test_final_value_is_last_buffered () =
  let ops =
    [
      { at = 1.0; is_set = true; value = 3 };
      { at = 2.0; is_set = true; value = 8 };
      { at = 10.0; is_set = false; value = 0 } (* after the window *);
    ]
  in
  let history = execute ~window:4.0 ops in
  Alcotest.(check bool) "linearizable" true (Lin.is_linearizable ~initial:0 history);
  let late_read =
    List.find
      (fun (op : History.op) -> match op.History.kind with History.Get _ -> true | _ -> false)
      (History.ops history)
  in
  (match late_read.History.kind with
  | History.Get v -> Alcotest.(check int) "reads last buffered value" 8 v
  | History.Set _ -> assert false)

(* ------------------------------------------------------------------ *)
(* 2. NIC pipeline end to end.                                         *)

let test_nic_pipeline_compaction () =
  let header = Header.register ~layout:Header.default_layout ~n_buckets:256 ~n_partitions:16 in
  let rpc = Rpc.create ~n_threads:4 ~n_buffers:32 ~header in
  let ewt = Ewt.create () in
  let store = Store.create ~n_buckets:256 ~n_partitions:16 () in
  let key = 77 in
  (* Client side: three dependent writes and one independent one. *)
  let send ~thread ~sender op k v =
    match Rpc.deliver rpc ~thread ~sender (Header.encode header ~op ~key:k ~value:v) with
    | Ok r -> r
    | Error _ -> Alcotest.fail "delivery failed"
  in
  let target_partition =
    match Header.parse header (Header.encode header ~op:`Write ~key ~value:Bytes.empty) with
    | Ok p -> p.Header.partition
    | Error e -> Alcotest.failf "parse: %s" e
  in
  (* NIC: d-CREW pins the partition to thread 2 on first write. *)
  Alcotest.(check bool) "ewt maps" true (Ewt.note_write ewt ~partition:target_partition ~thread:2 = `Ok);
  let w1 = send ~thread:2 ~sender:10 `Write key (Bytes.of_string "v1") in
  ignore (Ewt.note_write ewt ~partition:target_partition ~thread:2);
  let _w2 = send ~thread:2 ~sender:11 `Write key (Bytes.of_string "v2") in
  ignore (Ewt.note_write ewt ~partition:target_partition ~thread:2);
  let _w3 = send ~thread:2 ~sender:12 `Write key (Bytes.of_string "v3") in
  let other = send ~thread:2 ~sender:13 `Write (key + 1) (Bytes.of_string "zz") in
  (* Server thread 2 polls the first write, scans for dependent ones. *)
  let first = Option.get (Rpc.poll rpc ~thread:2) in
  Alcotest.(check int) "first is w1" w1.Rpc.rpc_id first.Rpc.rpc_id;
  let dependents = Rpc.take_matching_writes rpc ~thread:2 ~depth:8 ~key in
  Alcotest.(check int) "harvested both dependents" 2 (List.length dependents);
  Alcotest.(check int) "independent write left queued" 1 (Rpc.queue_length rpc ~thread:2);
  (* Compact: one combined store update from the batch. *)
  let batch = first :: dependents in
  Store.set_batched store ~key ~values:(List.map (fun r -> r.Rpc.payload) batch);
  Alcotest.(check (option string)) "store holds final value" (Some "v3")
    (Option.map Bytes.to_string (fst (Store.get store ~key)));
  (* Respond to every compacted write; the LAST response releases the
     EWT mapping (outstanding counter reaches zero). *)
  List.iteri
    (fun i r ->
      let resp = Rpc.respond rpc r ~release_exclusive:true () in
      Alcotest.(check bool) "addressed correctly" true (resp.Rpc.resp_to = 10 + i);
      Ewt.note_response ewt ~partition:target_partition)
    batch;
  Alcotest.(check (option int)) "partition balanceable again" None
    (Ewt.lookup ewt ~partition:target_partition);
  (* The independent write proceeds normally. *)
  let o = Option.get (Rpc.poll rpc ~thread:2) in
  Alcotest.(check int) "independent write polls" other.Rpc.rpc_id o.Rpc.rpc_id;
  Store.set store ~key:(key + 1) ~value:o.Rpc.payload;
  ignore (Rpc.respond rpc o ~release_exclusive:false ());
  Alcotest.(check int) "all buffers returned" 32 (Rpc.buffers_free rpc)

(* ------------------------------------------------------------------ *)
(* 3. Cross-module sanity: the model's partition function agrees with
      what the NIC parses from the wire. *)

let test_partition_agreement () =
  let n_buckets = 4096 and n_partitions = 64 in
  let header = Header.register ~layout:Header.default_layout ~n_buckets ~n_partitions in
  for key = 0 to 2_000 do
    match Header.parse header (Header.encode header ~op:`Read ~key ~value:Bytes.empty) with
    | Ok parsed ->
      let expected = C4_kvs.Hash.partition_of_key ~n_buckets ~n_partitions key in
      if parsed.Header.partition <> expected then
        Alcotest.failf "key %d: NIC %d vs KVS %d" key parsed.Header.partition expected
    | Error e -> Alcotest.failf "parse: %s" e
  done

let tests =
  [
    QCheck_alcotest.to_alcotest prop_compaction_linearizable;
    QCheck_alcotest.to_alcotest prop_compaction_linearizable_long_windows;
    Alcotest.test_case "batch final value visible after close" `Quick
      test_final_value_is_last_buffered;
    Alcotest.test_case "NIC pipeline: parse, pin, compact, respond, release" `Quick
      test_nic_pipeline_compaction;
    Alcotest.test_case "NIC and KVS agree on f(key)" `Quick test_partition_agreement;
  ]
