(* Differential validation: the coroutine-style server (Pserver) and the
   event-driven server (Server) are independent implementations of the
   same queueing model and must agree on steady-state distributions. *)

module Pserver = C4_model.Pserver
module Server = C4_model.Server
module Metrics = C4_model.Metrics
module Policy = C4_model.Policy
module Generator = C4_workload.Generator
module Histogram = C4_stats.Histogram

let workload ?(write_fraction = 0.5) rate =
  { Generator.default with n_keys = 100_000; n_partitions = 8192; write_fraction; rate }

let event_driven policy wl =
  let cfg = { Server.default_config with Server.policy } in
  let r = Server.run cfg ~workload:wl ~n_requests:60_000 in
  r.Server.metrics

let agree name a b ~tolerance =
  let rel = abs_float (a -. b) /. Float.max 1.0 (Float.max a b) in
  if rel > tolerance then
    Alcotest.failf "%s disagree: event %.1f vs process %.1f (%.1f%%)" name a b (100. *. rel)

let compare_policies ~policy ~ppolicy ~rate ~write_fraction () =
  let wl = workload ~write_fraction rate in
  let ev = event_driven policy wl in
  let pr = Pserver.run ~policy:ppolicy ~workload:wl ~n_requests:60_000 () in
  agree "mean latency" (Metrics.mean_latency ev) (Histogram.mean pr.Pserver.latency)
    ~tolerance:0.06;
  agree "p99" (Metrics.p99 ev) (Histogram.p99 pr.Pserver.latency) ~tolerance:0.15;
  agree "throughput"
    (Metrics.throughput_mrps ev)
    (Pserver.throughput_mrps pr) ~tolerance:0.05

let test_low_load_latency_is_service () =
  let pr = Pserver.run ~policy:Pserver.Ideal ~workload:(workload 0.001) ~n_requests:20_000 () in
  let mean = Histogram.mean pr.Pserver.latency in
  if abs_float (mean -. 700.0) > 25.0 then Alcotest.failf "mean %f" mean

let test_conservation () =
  let pr = Pserver.run ~policy:Pserver.Crew ~workload:(workload 0.05) ~n_requests:30_000 () in
  (* 80 % of requests fall inside the measured interval. *)
  Alcotest.(check int) "measured count" 24_000 pr.Pserver.completed

let test_crew_vs_erew_ordering () =
  let wl = workload 0.07 in
  let p99 policy =
    Histogram.p99 (Pserver.run ~policy ~workload:wl ~n_requests:60_000 ()).Pserver.latency
  in
  let ideal = p99 Pserver.Ideal and crew = p99 Pserver.Crew and erew = p99 Pserver.Erew in
  Alcotest.(check bool) "ideal <= crew <= erew" true (ideal <= crew && crew <= erew)

let tests =
  [
    Alcotest.test_case "low-load latency = service time" `Quick test_low_load_latency_is_service;
    Alcotest.test_case "conserves measured requests" `Quick test_conservation;
    Alcotest.test_case "policy ordering reproduced" `Slow test_crew_vs_erew_ordering;
    Alcotest.test_case "differential: Ideal @ 50 MRPS" `Slow
      (compare_policies ~policy:Policy.Ideal ~ppolicy:Pserver.Ideal ~rate:0.05
         ~write_fraction:0.5);
    Alcotest.test_case "differential: CREW @ 60 MRPS" `Slow
      (compare_policies ~policy:Policy.Crew ~ppolicy:Pserver.Crew ~rate:0.06
         ~write_fraction:0.5);
    Alcotest.test_case "differential: EREW @ 40 MRPS" `Slow
      (compare_policies ~policy:Policy.Erew ~ppolicy:Pserver.Erew ~rate:0.04
         ~write_fraction:0.5);
    Alcotest.test_case "differential: CREW @ 70 MRPS, 85% writes" `Slow
      (compare_policies ~policy:Policy.Crew ~ppolicy:Pserver.Crew ~rate:0.07
         ~write_fraction:0.85);
  ]
