(* NIC pipeline (Fig. 8) and setup-phase (Sec. 5.1) tests. *)

module Setup = C4_nic.Setup
module Pipeline = C4_nic.Pipeline
module Header = C4_nic.Header
module Ewt = C4_nic.Ewt

(* ---------------- Setup ---------------- *)

let ok = function Ok v -> v | Error e -> Alcotest.failf "setup: %s" (Setup.error_to_string e)

let full_setup () =
  let s = Setup.create () in
  ok (Setup.register_queues s ~n_threads:4);
  ok (Setup.register_buffers s ~n_buffers:64);
  ok (Setup.register_layout s Header.default_layout);
  ok (Setup.register_index s ~n_buckets:1024 ~n_partitions:64);
  (s, ok (Setup.activate s))

let test_setup_happy_path () =
  let s, (header, rpc) = full_setup () in
  Alcotest.(check bool) "active" true (Setup.is_active s);
  Alcotest.(check int) "header sized" 9 (Header.header_size header);
  Alcotest.(check int) "buffers allocated" 64 (C4_nic.Rpc.buffers_free rpc)

let test_setup_incomplete_rejected () =
  let s = Setup.create () in
  ok (Setup.register_queues s ~n_threads:4);
  (match Setup.activate s with
  | Error (`Not_ready steps) ->
    Alcotest.(check int) "three steps missing" 3 (List.length steps)
  | _ -> Alcotest.fail "should not activate");
  Alcotest.(check (list string)) "missing list"
    [ "buffers"; "header layout"; "index geometry" ]
    (Setup.missing s)

let test_setup_validation () =
  let s = Setup.create () in
  (match Setup.register_queues s ~n_threads:0 with
  | Error (`Invalid _) -> ()
  | _ -> Alcotest.fail "0 threads accepted");
  (match Setup.register_layout s { Header.opcode_offset = 2; key_offset = 0; key_length = 8 } with
  | Error (`Invalid_layout _) -> ()
  | _ -> Alcotest.fail "overlapping fields accepted");
  match Setup.register_index s ~n_buckets:16 ~n_partitions:64 with
  | Error (`Invalid _) -> ()
  | _ -> Alcotest.fail "partitions > buckets accepted"

let test_setup_frozen_after_activation () =
  let s, _ = full_setup () in
  match Setup.register_queues s ~n_threads:8 with
  | Error `Already_active -> ()
  | _ -> Alcotest.fail "reconfiguration after activation accepted"

(* ---------------- Pipeline ---------------- *)

let header () = Header.register ~layout:Header.default_layout ~n_buckets:1024 ~n_partitions:64

let pipeline ?(n_workers = 4) ?(jbsq_bound = 2) ?(ewt_capacity = 32) ?(max_outstanding = 64) ()
    =
  Pipeline.create ~header:(header ()) ~n_workers ~jbsq_bound ~ewt_capacity ~max_outstanding ()

let packet op key = Header.encode (header ()) ~op ~key ~value:Bytes.empty

let admit_ok p pkt =
  match Pipeline.admit p pkt with
  | Ok d -> d
  | Error `Overload -> Alcotest.fail "overload"
  | Error `Ewt_exhausted -> Alcotest.fail "ewt exhausted"
  | Error (`Bad_packet m) -> Alcotest.failf "bad packet: %s" m

let test_pipeline_read_balances () =
  let p = pipeline () in
  let d = admit_ok p (packet `Read 1) in
  Alcotest.(check bool) "assigned" true (d.Pipeline.worker <> None);
  Alcotest.(check bool) "not pinned" false d.Pipeline.pinned;
  Alcotest.(check (float 1e-9)) "two stages (no EWT)" 1.0 d.Pipeline.latency

let test_pipeline_write_pins_second () =
  let p = pipeline () in
  let d1 = admit_ok p (packet `Write 7) in
  Alcotest.(check bool) "first write balanced" false d1.Pipeline.pinned;
  Alcotest.(check (float 1e-9)) "all three stages" 1.5 d1.Pipeline.latency;
  let d2 = admit_ok p (packet `Write 7) in
  Alcotest.(check bool) "second write pinned" true d2.Pipeline.pinned;
  Alcotest.(check (option int)) "same worker" d1.Pipeline.worker d2.Pipeline.worker;
  Alcotest.(check int) "EWT counts both" 2
    (Ewt.outstanding (Pipeline.ewt p) ~partition:d1.Pipeline.partition)

let test_pipeline_release_unpins () =
  let p = pipeline () in
  let d1 = admit_ok p (packet `Write 7) in
  let worker = Option.get d1.Pipeline.worker in
  ignore (Pipeline.complete p ~worker ~partition:d1.Pipeline.partition ~was_write:true);
  Alcotest.(check (option int)) "mapping freed" None
    (Ewt.lookup (Pipeline.ewt p) ~partition:d1.Pipeline.partition)

let test_pipeline_central_queue () =
  let p = pipeline ~n_workers:2 ~jbsq_bound:1 () in
  (* Fill both workers, then overflow into the central queue. *)
  let d1 = admit_ok p (packet `Read 1) in
  let _d2 = admit_ok p (packet `Read 2) in
  let d3 = admit_ok p (packet `Read 3) in
  Alcotest.(check (option int)) "held centrally" None d3.Pipeline.worker;
  Alcotest.(check int) "central depth" 1 (Pipeline.central_depth p);
  (* Completion hands the held request out. *)
  let handed =
    Pipeline.complete p ~worker:(Option.get d1.Pipeline.worker)
      ~partition:d1.Pipeline.partition ~was_write:false
  in
  (match handed with
  | Some d -> Alcotest.(check bool) "dispatched on completion" true (d.Pipeline.worker <> None)
  | None -> Alcotest.fail "central request not handed out");
  Alcotest.(check int) "central drained" 0 (Pipeline.central_depth p)

let test_pipeline_overload () =
  let p = pipeline ~max_outstanding:2 () in
  ignore (admit_ok p (packet `Read 1));
  ignore (admit_ok p (packet `Read 2));
  (match Pipeline.admit p (packet `Read 3) with
  | Error `Overload -> ()
  | _ -> Alcotest.fail "flow control did not trip");
  Alcotest.(check int) "overload counted" 1 (Pipeline.stats p).Pipeline.overloads

let test_pipeline_bad_packet () =
  let p = pipeline () in
  (match Pipeline.admit p (Bytes.create 2) with
  | Error (`Bad_packet _) -> ()
  | _ -> Alcotest.fail "short packet accepted");
  Alcotest.(check int) "parse error counted" 1 (Pipeline.stats p).Pipeline.parse_errors

let test_pipeline_ewt_exhaustion () =
  let p = pipeline ~ewt_capacity:1 ~n_workers:8 ~jbsq_bound:8 () in
  ignore (admit_ok p (packet `Write 1));
  (* A write to a different partition cannot get a mapping. *)
  let rec exhaust key attempts =
    if attempts = 0 then Alcotest.fail "never exhausted"
    else begin
      match Pipeline.admit p (packet `Write key) with
      | Error `Ewt_exhausted -> ()
      | Ok _ -> exhaust (key + 1) (attempts - 1)
      | Error _ -> Alcotest.fail "unexpected reject"
    end
  in
  exhaust 2 20;
  Alcotest.(check bool) "exhaustion counted" true
    ((Pipeline.stats p).Pipeline.ewt_exhausted > 0)

(* Differential check: the pipeline and the simulated server implement
   the same d-CREW decision procedure — for a write-only stream with no
   completions, every partition maps to exactly one worker and repeat
   writes to a partition always land there. *)
let test_pipeline_single_writer_invariant () =
  let p = pipeline ~n_workers:8 ~jbsq_bound:64 ~ewt_capacity:512 ~max_outstanding:4096 () in
  let owner = Hashtbl.create 64 in
  for i = 0 to 499 do
    let key = i mod 37 in
    let d = admit_ok p (packet `Write key) in
    match d.Pipeline.worker with
    | None -> Alcotest.fail "unassigned write"
    | Some w -> (
      match Hashtbl.find_opt owner d.Pipeline.partition with
      | None -> Hashtbl.replace owner d.Pipeline.partition w
      | Some prev -> Alcotest.(check int) "single writer per partition" prev w)
  done

let tests =
  [
    Alcotest.test_case "setup happy path" `Quick test_setup_happy_path;
    Alcotest.test_case "setup rejects incomplete activation" `Quick
      test_setup_incomplete_rejected;
    Alcotest.test_case "setup validates arguments" `Quick test_setup_validation;
    Alcotest.test_case "setup frozen after activation" `Quick test_setup_frozen_after_activation;
    Alcotest.test_case "reads balance through JBSQ" `Quick test_pipeline_read_balances;
    Alcotest.test_case "second write pins to the owner" `Quick test_pipeline_write_pins_second;
    Alcotest.test_case "response releases the pin" `Quick test_pipeline_release_unpins;
    Alcotest.test_case "central queue holds overflow" `Quick test_pipeline_central_queue;
    Alcotest.test_case "flow control trips on overload" `Quick test_pipeline_overload;
    Alcotest.test_case "bad packets rejected" `Quick test_pipeline_bad_packet;
    Alcotest.test_case "EWT exhaustion surfaces" `Quick test_pipeline_ewt_exhaustion;
    Alcotest.test_case "single-writer invariant end to end" `Quick
      test_pipeline_single_writer_invariant;
  ]
