(* Coherence cost model: bitset, MESI-flavoured state transitions, cost
   monotonicity in sharer count and line count — the mechanism behind
   Fig. 11b's service-time inversion. *)

module Bitset = C4_cache.Bitset
module Coherence = C4_cache.Coherence

(* ---------------- Bitset ---------------- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "capacity" 100 (Bitset.capacity b);
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 99;
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem 50" false (Bitset.mem b 50);
  Bitset.add b 63;
  Alcotest.(check int) "add idempotent" 3 (Bitset.cardinal b);
  Bitset.remove b 63;
  Alcotest.(check int) "removed" 2 (Bitset.cardinal b);
  Bitset.remove b 63;
  Alcotest.(check int) "remove idempotent" 2 (Bitset.cardinal b);
  Bitset.clear b;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "over" (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.add b 10);
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem b (-1)))

let test_bitset_iter () =
  let b = Bitset.create 200 in
  List.iter (Bitset.add b) [ 3; 61; 62; 63; 150 ];
  let seen = ref [] in
  Bitset.iter b ~f:(fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "iter ascending" [ 3; 61; 62; 63; 150 ] (List.rev !seen)

let prop_bitset_models_set =
  let op =
    QCheck.(
      oneof
        [
          map (fun i -> `Add i) (int_range 0 63);
          map (fun i -> `Remove i) (int_range 0 63);
        ])
  in
  QCheck.Test.make ~name:"bitset matches a reference set" ~count:300 (QCheck.list op)
    (fun ops ->
      let b = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun operation ->
          (match operation with
          | `Add i ->
            Bitset.add b i;
            Hashtbl.replace model i ()
          | `Remove i ->
            Bitset.remove b i;
            Hashtbl.remove model i);
          Bitset.cardinal b = Hashtbl.length model)
        ops)

(* ---------------- Coherence ---------------- *)

let mk () = Coherence.create ~n_cores:64 ~n_partitions:16 ()

let test_first_read_misses_then_hits () =
  let c = mk () in
  let cost1 = Coherence.read_cost c ~core:0 ~partition:3 ~lines:1 in
  Alcotest.(check bool) "first read pays a fetch" true (cost1 > 0.0);
  let cost2 = Coherence.read_cost c ~core:0 ~partition:3 ~lines:1 in
  Alcotest.(check (float 0.0)) "second read hits" 0.0 cost2;
  Alcotest.(check int) "one sharer" 1 (Coherence.sharers c ~partition:3)

let test_write_invalidates_sharers () =
  let c = mk () in
  for core = 0 to 9 do
    ignore (Coherence.read_cost c ~core ~partition:0 ~lines:1)
  done;
  Alcotest.(check int) "ten sharers" 10 (Coherence.sharers c ~partition:0);
  let write_cost = Coherence.write_cost c ~core:50 ~partition:0 ~lines:1 in
  Alcotest.(check bool) "write pays invalidations" true (write_cost > 0.0);
  Alcotest.(check int) "sharers collapse to writer" 1 (Coherence.sharers c ~partition:0);
  Alcotest.(check (option int)) "owner is writer" (Some 50) (Coherence.owner c ~partition:0)

let test_write_cost_grows_with_sharers () =
  let cost_with_sharers n =
    let c = mk () in
    for core = 0 to n - 1 do
      ignore (Coherence.read_cost c ~core ~partition:0 ~lines:1)
    done;
    Coherence.write_cost c ~core:63 ~partition:0 ~lines:1
  in
  let c2 = cost_with_sharers 2 and c20 = cost_with_sharers 20 and c60 = cost_with_sharers 60 in
  Alcotest.(check bool) "monotone in sharer count" true (c2 < c20 && c20 < c60)

let test_read_after_write_pays_dirty_fetch () =
  let c = mk () in
  ignore (Coherence.write_cost c ~core:1 ~partition:0 ~lines:1);
  let shared_fetch = Coherence.read_cost c ~core:2 ~partition:1 ~lines:1 in
  let dirty_fetch = Coherence.read_cost c ~core:2 ~partition:0 ~lines:1 in
  Alcotest.(check bool) "dirty fetch dearer than clean" true (dirty_fetch > shared_fetch);
  Alcotest.(check (option int)) "line demoted after read" None (Coherence.owner c ~partition:0)

let test_owner_rewrites_free () =
  let c = mk () in
  ignore (Coherence.write_cost c ~core:3 ~partition:5 ~lines:4);
  Alcotest.(check (float 0.0)) "silent store in M state" 0.0
    (Coherence.write_cost c ~core:3 ~partition:5 ~lines:4);
  Alcotest.(check (float 0.0)) "owner read free" 0.0
    (Coherence.read_cost c ~core:3 ~partition:5 ~lines:4)

let test_costs_scale_with_lines () =
  (* Multi-line fetches pipeline: a 9-line miss costs more than one line
     but far less than nine sequential misses. *)
  let c = mk () in
  let one = Coherence.read_cost c ~core:0 ~partition:0 ~lines:1 in
  let c2 = mk () in
  let nine = Coherence.read_cost c2 ~core:0 ~partition:0 ~lines:9 in
  Alcotest.(check bool) "more lines cost more" true (nine > one);
  Alcotest.(check bool) "but pipelined below 9x" true (nine < 9.0 *. one);
  Alcotest.(check (float 1e-9)) "matches the pipeline formula"
    (one *. (1.0 +. (0.1 *. 8.0)))
    nine

let test_private_append_free () =
  let c = mk () in
  Alcotest.(check (float 0.0)) "private log append touches no shared lines" 0.0
    (Coherence.private_append_cost c ~lines:9)

let test_stats_and_reset () =
  let c = mk () in
  ignore (Coherence.read_cost c ~core:0 ~partition:0 ~lines:2);
  ignore (Coherence.read_cost c ~core:1 ~partition:0 ~lines:2);
  ignore (Coherence.write_cost c ~core:2 ~partition:0 ~lines:2);
  ignore (Coherence.read_cost c ~core:0 ~partition:0 ~lines:2);
  let st = Coherence.stats c in
  Alcotest.(check bool) "counted shared fetches" true (st.Coherence.shared_fetches > 0);
  Alcotest.(check bool) "counted invalidations" true (st.Coherence.invalidations > 0);
  Alcotest.(check bool) "counted dirty fetches" true (st.Coherence.dirty_fetches > 0);
  Coherence.reset c;
  let st = Coherence.stats c in
  Alcotest.(check int) "reset invalidations" 0 st.Coherence.invalidations;
  Alcotest.(check int) "reset sharers" 0 (Coherence.sharers c ~partition:0)

(* The Fig. 11b mechanism in miniature: under a read-write storm on one
   partition, per-write cost with many readers far exceeds the
   uncontended case, while reads between writes keep re-fetching. *)
let test_contention_storm () =
  let c = mk () in
  let writer_cost = ref 0.0 and reader_cost = ref 0.0 in
  for round = 1 to 100 do
    for core = 1 to 63 do
      reader_cost := !reader_cost +. Coherence.read_cost c ~core ~partition:0 ~lines:9
    done;
    ignore round;
    writer_cost := !writer_cost +. Coherence.write_cost c ~core:0 ~partition:0 ~lines:9
  done;
  let uncontended = mk () in
  let solo = ref 0.0 in
  for _ = 1 to 100 do
    solo := !solo +. Coherence.write_cost uncontended ~core:0 ~partition:0 ~lines:9
  done;
  Alcotest.(check bool) "storm writes dearer than solo writes" true (!writer_cost > !solo *. 5.0);
  Alcotest.(check bool) "readers pay dirty fetches" true (!reader_cost > 0.0)

let tests =
  [
    Alcotest.test_case "bitset basics" `Quick test_bitset_basic;
    Alcotest.test_case "bitset bounds checking" `Quick test_bitset_bounds;
    Alcotest.test_case "bitset iteration" `Quick test_bitset_iter;
    QCheck_alcotest.to_alcotest prop_bitset_models_set;
    Alcotest.test_case "read: miss then hit" `Quick test_first_read_misses_then_hits;
    Alcotest.test_case "write invalidates sharer set" `Quick test_write_invalidates_sharers;
    Alcotest.test_case "write cost grows with sharers" `Quick test_write_cost_grows_with_sharers;
    Alcotest.test_case "read after write pays dirty fetch" `Quick test_read_after_write_pays_dirty_fetch;
    Alcotest.test_case "owner re-accesses are free" `Quick test_owner_rewrites_free;
    Alcotest.test_case "costs scale with line count" `Quick test_costs_scale_with_lines;
    Alcotest.test_case "private append is free" `Quick test_private_append_free;
    Alcotest.test_case "stats and reset" `Quick test_stats_and_reset;
    Alcotest.test_case "read-write storm inflates writer cost" `Quick test_contention_storm;
  ]
