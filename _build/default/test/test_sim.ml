(* Discrete-event simulator tests: time ordering, same-time FIFO,
   cancellation, run-until semantics, re-entrant scheduling. *)

module Sim = C4_dsim.Sim

let test_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag sim = log := (tag, Sim.now sim) :: !log in
  ignore (Sim.schedule sim ~after:30.0 (note "c"));
  ignore (Sim.schedule sim ~after:10.0 (note "a"));
  ignore (Sim.schedule sim ~after:20.0 (note "b"));
  Sim.run sim;
  Alcotest.(check (list (pair string (float 0.0))))
    "events in time order"
    [ ("a", 10.0); ("b", 20.0); ("c", 30.0) ]
    (List.rev !log)

let test_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Sim.schedule sim ~after:5.0 (fun _ -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "ties run in scheduling order" [ 0; 1; 2; 3; 4 ]
    (List.rev !log)

let test_clock_advances () =
  let sim = Sim.create () in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Sim.now sim);
  ignore (Sim.schedule sim ~after:42.5 (fun _ -> ()));
  Sim.run sim;
  Alcotest.(check (float 0.0)) "clock at last event" 42.5 (Sim.now sim)

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let id = Sim.schedule sim ~after:1.0 (fun _ -> fired := true) in
  Alcotest.(check bool) "pending before" true (Sim.pending sim id);
  Sim.cancel sim id;
  Alcotest.(check bool) "not pending after" false (Sim.pending sim id);
  Sim.run sim;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_cancel_twice_is_noop () =
  let sim = Sim.create () in
  let id = Sim.schedule sim ~after:1.0 (fun _ -> ()) in
  ignore (Sim.schedule sim ~after:2.0 (fun _ -> ()));
  Sim.cancel sim id;
  Sim.cancel sim id;
  Sim.run sim;
  Alcotest.(check int) "one live event executed" 1 (Sim.executed sim)

let test_reentrant_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~after:1.0 (fun sim ->
         log := Sim.now sim :: !log;
         ignore (Sim.schedule sim ~after:2.0 (fun sim -> log := Sim.now sim :: !log))));
  Sim.run sim;
  Alcotest.(check (list (float 0.0))) "chained events" [ 1.0; 3.0 ] (List.rev !log)

let test_run_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Sim.schedule sim ~after:t (fun _ -> fired := t :: !fired)))
    [ 5.0; 15.0; 25.0 ];
  Sim.run ~until:20.0 sim;
  Alcotest.(check (list (float 0.0))) "only events before the limit" [ 5.0; 15.0 ]
    (List.rev !fired);
  Sim.run sim;
  Alcotest.(check int) "remaining event runs later" 3 (List.length !fired)

let test_schedule_at_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~after:10.0 (fun _ -> ()));
  Sim.run sim;
  Alcotest.check_raises "absolute time in the past"
    (Invalid_argument "Sim.schedule_at: time 5 is before now 10") (fun () ->
      ignore (Sim.schedule_at sim ~time:5.0 (fun _ -> ())))

let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> ignore (Sim.schedule sim ~after:(-1.0) (fun _ -> ())))

let test_step () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~after:1.0 (fun _ -> ()));
  Alcotest.(check bool) "step executes" true (Sim.step sim);
  Alcotest.(check bool) "no more events" false (Sim.step sim)

let test_pending_count () =
  let sim = Sim.create () in
  let a = Sim.schedule sim ~after:1.0 (fun _ -> ()) in
  ignore (Sim.schedule sim ~after:2.0 (fun _ -> ()));
  Alcotest.(check int) "two pending" 2 (Sim.pending_count sim);
  Sim.cancel sim a;
  Alcotest.(check int) "one after cancel" 1 (Sim.pending_count sim);
  Sim.run sim;
  Alcotest.(check int) "none after run" 0 (Sim.pending_count sim)

(* Property: N events with random delays execute exactly once each, in
   nondecreasing time order. *)
let prop_execution_order =
  QCheck.Test.make ~name:"events execute once, in time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (float_bound_exclusive 100.0))
    (fun delays ->
      let sim = Sim.create () in
      let times = ref [] in
      List.iter
        (fun d -> ignore (Sim.schedule sim ~after:d (fun sim -> times := Sim.now sim :: !times)))
        delays;
      Sim.run sim;
      let executed = List.rev !times in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      List.length executed = List.length delays && nondecreasing executed)

let tests =
  [
    Alcotest.test_case "events fire in time order" `Quick test_time_order;
    Alcotest.test_case "same-time events fire FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "clock tracks last event" `Quick test_clock_advances;
    Alcotest.test_case "cancel prevents execution" `Quick test_cancel;
    Alcotest.test_case "double cancel is a no-op" `Quick test_cancel_twice_is_noop;
    Alcotest.test_case "handlers can schedule" `Quick test_reentrant_scheduling;
    Alcotest.test_case "run ~until stops early" `Quick test_run_until;
    Alcotest.test_case "scheduling in the past rejected" `Quick test_schedule_at_past_rejected;
    Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
    Alcotest.test_case "step-by-step execution" `Quick test_step;
    Alcotest.test_case "pending count" `Quick test_pending_count;
    QCheck_alcotest.to_alcotest prop_execution_order;
  ]
