(* Binary-heap unit and property tests: ordering, FIFO tiebreak (the
   property deterministic simulation rests on), growth, clear. *)

module Heap = C4_dsim.Heap

let check = Alcotest.(check (list (pair (float 0.0) int)))

let drain h =
  let rec loop acc =
    match Heap.pop h with None -> List.rev acc | Some e -> loop (e :: acc)
  in
  loop []

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check int) "empty length" 0 (Heap.length h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair (float 0.0) int))) "peek none" None (Heap.peek h);
  Alcotest.(check (option (pair (float 0.0) int))) "pop none" None (Heap.pop h)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun (p, x) -> Heap.push h ~priority:p x)
    [ (3.0, 3); (1.0, 1); (2.0, 2); (0.5, 0); (10.0, 10) ];
  check "sorted" [ (0.5, 0); (1.0, 1); (2.0, 2); (3.0, 3); (10.0, 10) ] (drain h)

let test_fifo_tiebreak () =
  let h = Heap.create () in
  List.iter (fun x -> Heap.push h ~priority:1.0 x) [ 1; 2; 3; 4; 5 ];
  Heap.push h ~priority:0.0 0;
  check "ties pop in insertion order"
    [ (0.0, 0); (1.0, 1); (1.0, 2); (1.0, 3); (1.0, 4); (1.0, 5) ]
    (drain h)

let test_peek_does_not_remove () =
  let h = Heap.create () in
  Heap.push h ~priority:1.0 42;
  Alcotest.(check (option (pair (float 0.0) int))) "peek" (Some (1.0, 42)) (Heap.peek h);
  Alcotest.(check int) "still there" 1 (Heap.length h)

let test_growth () =
  let h = Heap.create ~capacity:2 () in
  for i = 999 downto 0 do
    Heap.push h ~priority:(float_of_int i) i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  let popped = drain h in
  Alcotest.(check int) "drained all" 1000 (List.length popped);
  Alcotest.(check (pair (float 0.0) int)) "min first" (0.0, 0) (List.hd popped)

let test_clear () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~priority:(float_of_int i) i
  done;
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Heap.push h ~priority:5.0 5;
  Alcotest.(check (option (pair (float 0.0) int))) "usable after clear" (Some (5.0, 5))
    (Heap.pop h)

let test_fold () =
  let h = Heap.create () in
  List.iter (fun x -> Heap.push h ~priority:(float_of_int x) x) [ 1; 2; 3 ];
  let sum = Heap.fold h ~init:0 ~f:(fun acc _ x -> acc + x) in
  Alcotest.(check int) "fold sum" 6 sum

let prop_pops_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~priority:p i) priorities;
      let popped = drain h in
      let rec sorted = function
        | (p1, _) :: ((p2, _) :: _ as rest) -> p1 <= p2 && sorted rest
        | _ -> true
      in
      List.length popped = List.length priorities && sorted popped)

let prop_interleaved_push_pop =
  QCheck.Test.make ~name:"heap size invariant under interleaved push/pop" ~count:200
    QCheck.(list (pair bool (float_bound_exclusive 100.0)))
    (fun ops ->
      let h = Heap.create () in
      let size = ref 0 in
      List.for_all
        (fun (is_push, p) ->
          if is_push then begin
            Heap.push h ~priority:p ();
            incr size
          end
          else begin
            match Heap.pop h with
            | Some _ ->
              decr size;
              ()
            | None -> ()
          end;
          Heap.length h = max 0 !size)
        ops)

let tests =
  [
    Alcotest.test_case "empty heap behaviour" `Quick test_empty;
    Alcotest.test_case "pops in priority order" `Quick test_ordering;
    Alcotest.test_case "equal priorities pop FIFO" `Quick test_fifo_tiebreak;
    Alcotest.test_case "peek is non-destructive" `Quick test_peek_does_not_remove;
    Alcotest.test_case "grows past initial capacity" `Quick test_growth;
    Alcotest.test_case "clear empties and stays usable" `Quick test_clear;
    Alcotest.test_case "fold visits all entries" `Quick test_fold;
    QCheck_alcotest.to_alcotest prop_pops_sorted;
    QCheck_alcotest.to_alcotest prop_interleaved_push_pop;
  ]
