(* Size-aware d-CREW (the Minos adaptation, paper Sec. 8): bimodal item
   sizes segregated by partition, reserved workers for large items, and
   the head-of-line blocking this removes for small requests. *)

module Policy = C4_model.Policy
module Server = C4_model.Server
module Metrics = C4_model.Metrics
module Generator = C4_workload.Generator
module Request = C4_workload.Request
module Service = C4_model.Service
module Rng = C4_dsim.Rng

(* Feasible bimodal mix: 0.5% of partitions hold 16 KiB items (~17 µs
   service); at 8 MRPS on 16 workers the large class needs < 1 worker,
   the small class ~6.5 — both classes comfortably provisioned. *)
let bimodal ?(large_fraction = 0.005) rate =
  {
    Generator.default with
    n_keys = 50_000;
    n_partitions = 1024;
    write_fraction = 0.3;
    rate;
    value_size = 512;
    large_value_size = 16_384;
    large_fraction;
  }

let size_aware = Policy.Size_aware { Policy.size_threshold = 4096; reserved_workers = 2 }

let cfg policy = { Server.default_config with Server.policy; n_workers = 16 }

(* ---------------- generator sizing ---------------- *)

let test_generator_bimodal_sizes () =
  let gen = Generator.create (bimodal ~large_fraction:0.1 0.01) ~seed:3 in
  let large = ref 0 and n = 20_000 in
  for _ = 1 to n do
    let r = Generator.next gen in
    match r.Request.value_size with
    | 512 -> ()
    | 16_384 -> incr large
    | other -> Alcotest.failf "unexpected size %d" other
  done;
  let f = float_of_int !large /. float_of_int n in
  (* Size is per partition (1024 of them), so the request-level share
     carries partition-sampling noise. *)
  if abs_float (f -. 0.1) > 0.04 then Alcotest.failf "large fraction %f" f

let test_generator_homogeneous_by_default () =
  let gen = Generator.create { (bimodal 0.01) with Generator.large_fraction = 0.0 } ~seed:3 in
  for _ = 1 to 1_000 do
    Alcotest.(check int) "all default size" 512 (Generator.next gen).Request.value_size
  done

let test_service_sized_sampling () =
  let svc = Service.create Service.default (Rng.create 1) in
  Alcotest.(check bool) "16KB item needs ~256 lines" true
    (Service.lines_for svc ~value_size:16_384 > 250);
  let small = Service.sample_kvs_sized svc ~value_size:512 in
  let large = Service.sample_kvs_sized svc ~value_size:16_384 in
  Alcotest.(check bool) "large far dearer" true (large > 10.0 *. small)

(* ---------------- policy plumbing ---------------- *)

let test_policy_plumbing () =
  Alcotest.(check string) "name" "Size-aware d-CREW" (Policy.name size_aware);
  Alcotest.(check bool) "uses the EWT" true (Policy.uses_ewt size_aware);
  Alcotest.(check bool) "balances everything" true
    (Policy.balanceable size_aware Request.Write)

let test_reserved_workers_validated () =
  let bad = Policy.Size_aware { Policy.size_threshold = 4096; reserved_workers = 16 } in
  Alcotest.(check bool) "must leave both classes nonempty" true
    (try
       ignore (Server.run (cfg bad) ~workload:(bimodal 0.001) ~n_requests:100);
       false
     with Invalid_argument _ -> true)

(* ---------------- behaviour ---------------- *)

let test_size_aware_conserves () =
  let r = Server.run (cfg size_aware) ~workload:(bimodal 0.004) ~n_requests:20_000 in
  let m = r.Server.metrics in
  Alcotest.(check bool) "requests conserved" true
    (Metrics.completed m + Metrics.drops m > 15_000)

let test_large_items_confined_to_reserved_pool () =
  (* Under size-aware routing the large items' service time shows up
     ONLY on the reserved workers (ids 14..15 of 16). *)
  let r = Server.run (cfg size_aware) ~workload:(bimodal 0.004) ~n_requests:30_000 in
  let services = Metrics.worker_mean_service r.Server.metrics in
  (* A 16 KiB access costs ~17 µs; any worker averaging above 2 µs must
     have served large items. *)
  Array.iteri
    (fun wid mean ->
      if wid < 14 && mean > 2_000.0 then
        Alcotest.failf "small-class worker %d shows large items (mean %.0f)" wid mean)
    services;
  let reserved_busy = Array.exists (fun m -> m > 2_000.0) (Array.sub services 14 2) in
  Alcotest.(check bool) "reserved pool served the large items" true reserved_busy

let test_small_request_tail_protected () =
  (* The Minos scenario: under CREW (the paper's baseline), small writes
     hash to workers that are stuck serving 17 µs transfers — classic
     size-induced head-of-line blocking. Size-aware d-CREW confines
     large items to the reserved pool AND balances the small writes, so
     the small-item p99 collapses. (Plain JBSQ-balanced traffic barely
     suffers — the central queue routes around stuck workers — which is
     itself a finding: size-awareness matters for the partitioned
     requests, exactly the writes.) *)
  let wl = bimodal ~large_fraction:0.03 0.010 in
  let aware_policy =
    Policy.Size_aware { Policy.size_threshold = 4096; reserved_workers = 6 }
  in
  let small_p99 policy =
    let m = (Server.run (cfg policy) ~workload:wl ~n_requests:60_000).Server.metrics in
    C4_stats.Histogram.p99 (Metrics.small_latency m)
  in
  let crew = small_p99 Policy.Crew in
  let aware = small_p99 aware_policy in
  Alcotest.(check bool)
    (Printf.sprintf "size-aware cuts small-item p99 (%.0f -> %.0f)" crew aware)
    true
    (aware < crew *. 0.6)

let test_no_large_items_degenerates_to_dcrew () =
  (* With homogeneous small items the reserved pool sits idle but the
     system still works; p99 only modestly above plain d-CREW (fewer
     balanced workers). *)
  let wl = { (bimodal 0.008) with Generator.large_fraction = 0.0 } in
  let r = Server.run (cfg size_aware) ~workload:wl ~n_requests:20_000 in
  let m = r.Server.metrics in
  Alcotest.(check bool) "still completes" true (Metrics.completed m > 14_000);
  let tputs = Metrics.worker_throughput_mrps m in
  let reserved_total = Array.fold_left ( +. ) 0.0 (Array.sub tputs 14 2) in
  Alcotest.(check bool) "reserved pool idle without large items" true (reserved_total < 0.2)

let tests =
  [
    Alcotest.test_case "generator produces bimodal sizes" `Slow test_generator_bimodal_sizes;
    Alcotest.test_case "homogeneous by default" `Quick test_generator_homogeneous_by_default;
    Alcotest.test_case "service scales with request size" `Quick test_service_sized_sampling;
    Alcotest.test_case "policy plumbing" `Quick test_policy_plumbing;
    Alcotest.test_case "reserved-worker validation" `Quick test_reserved_workers_validated;
    Alcotest.test_case "size-aware conserves requests" `Quick test_size_aware_conserves;
    Alcotest.test_case "large items confined to the reserved pool" `Quick
      test_large_items_confined_to_reserved_pool;
    Alcotest.test_case "small-request tail protected" `Slow test_small_request_tail_protected;
    Alcotest.test_case "degenerates gracefully without large items" `Quick
      test_no_large_items_degenerates_to_dcrew;
  ]
