(* MICA cache-mode storage: round-trips, overwrite semantics, tag
   collisions never return wrong values, lossy-index and log-wraparound
   eviction behave like a cache (misses, never corruption), plus a
   model-based property test with an eviction-aware oracle. *)

module Log_store = C4_kvs.Log_store

let bytes_of = Bytes.of_string

let mk ?(bucket_slots = 8) ?(log_bytes = 1 lsl 16) ?(n_buckets = 64) () =
  Log_store.create ~bucket_slots ~log_bytes ~n_buckets ()

let get_s t key = Option.map Bytes.to_string (Log_store.get t ~key)

let test_set_get_roundtrip () =
  let t = mk () in
  Alcotest.(check bool) "set ok" true (Log_store.set t ~key:1 ~value:(bytes_of "alpha") = `Ok);
  Alcotest.(check bool) "set ok" true (Log_store.set t ~key:2 ~value:(bytes_of "beta") = `Ok);
  Alcotest.(check (option string)) "get 1" (Some "alpha") (get_s t 1);
  Alcotest.(check (option string)) "get 2" (Some "beta") (get_s t 2);
  Alcotest.(check (option string)) "miss" None (get_s t 3)

let test_overwrite_latest_wins () =
  let t = mk () in
  ignore (Log_store.set t ~key:5 ~value:(bytes_of "old"));
  ignore (Log_store.set t ~key:5 ~value:(bytes_of "newer"));
  Alcotest.(check (option string)) "latest version" (Some "newer") (get_s t 5)

let test_empty_value () =
  let t = mk () in
  ignore (Log_store.set t ~key:9 ~value:Bytes.empty);
  Alcotest.(check (option string)) "empty value stored" (Some "") (get_s t 9)

let test_too_large_rejected () =
  let t = mk ~log_bytes:256 () in
  Alcotest.(check bool) "oversized item rejected" true
    (Log_store.set t ~key:1 ~value:(Bytes.make 300 'x') = `Too_large);
  Alcotest.(check (option string)) "not stored" None (get_s t 1)

let test_log_wraparound_evicts_old () =
  (* Arena of 1 KiB, 64 B values: ~12 items per lap. After many laps the
     early keys are gone (miss), recent ones present and correct. *)
  let t = mk ~log_bytes:1024 ~n_buckets:512 () in
  for key = 0 to 99 do
    ignore (Log_store.set t ~key ~value:(Bytes.make 64 (Char.chr (65 + (key mod 26)))))
  done;
  Alcotest.(check (option string)) "old key evicted by wrap" None (get_s t 0);
  (match get_s t 99 with
  | Some v -> Alcotest.(check char) "recent key intact" (Char.chr (65 + (99 mod 26))) v.[0]
  | None -> Alcotest.fail "recent key missing");
  Alcotest.(check bool) "wraps recorded" true ((Log_store.stats t).Log_store.wraps > 0)

let test_lossy_index_eviction () =
  (* One bucket, two slots: a third distinct key evicts the oldest. *)
  let t = mk ~bucket_slots:2 ~n_buckets:1 ~log_bytes:(1 lsl 16) () in
  ignore (Log_store.set t ~key:1 ~value:(bytes_of "a"));
  ignore (Log_store.set t ~key:2 ~value:(bytes_of "b"));
  ignore (Log_store.set t ~key:3 ~value:(bytes_of "c"));
  let stats = Log_store.stats t in
  Alcotest.(check int) "one eviction" 1 stats.Log_store.index_evictions;
  let present = List.filter (fun k -> get_s t k <> None) [ 1; 2; 3 ] in
  Alcotest.(check int) "two keys remain reachable" 2 (List.length present);
  Alcotest.(check bool) "newest key reachable" true (List.mem 3 present)

let test_updates_do_not_evict_siblings () =
  (* Re-setting an existing key refreshes its slot in place. *)
  let t = mk ~bucket_slots:2 ~n_buckets:1 ~log_bytes:(1 lsl 16) () in
  ignore (Log_store.set t ~key:1 ~value:(bytes_of "a"));
  ignore (Log_store.set t ~key:2 ~value:(bytes_of "b"));
  for _ = 1 to 10 do
    ignore (Log_store.set t ~key:1 ~value:(bytes_of "a2"))
  done;
  Alcotest.(check int) "no evictions from updates" 0
    (Log_store.stats t).Log_store.index_evictions;
  Alcotest.(check (option string)) "sibling survives" (Some "b") (get_s t 2)

let test_stats_accounting () =
  let t = mk () in
  ignore (Log_store.set t ~key:1 ~value:(bytes_of "xy"));
  ignore (Log_store.get t ~key:1);
  ignore (Log_store.get t ~key:2);
  let stats = Log_store.stats t in
  Alcotest.(check int) "sets" 1 stats.Log_store.sets;
  Alcotest.(check int) "gets" 2 stats.Log_store.gets;
  Alcotest.(check int) "hits" 1 stats.Log_store.hits;
  Alcotest.(check int) "bytes = header + value" 14 stats.Log_store.bytes_appended

let test_mem () =
  let t = mk () in
  Alcotest.(check bool) "absent" false (Log_store.mem t ~key:4);
  ignore (Log_store.set t ~key:4 ~value:(bytes_of "v"));
  Alcotest.(check bool) "present" true (Log_store.mem t ~key:4)

(* Cache-correctness property: against a reference map, a get returns
   either the latest written value or a miss — NEVER a stale or foreign
   value. (Misses are legal: the structure is lossy by design.) *)
let prop_cache_never_lies =
  let op =
    QCheck.(
      oneof
        [
          map (fun (k, v) -> `Set (k, v)) (pair (int_range 0 40) (string_of_size (Gen.int_range 0 40)));
          map (fun k -> `Get k) (int_range 0 40);
        ])
  in
  QCheck.Test.make ~name:"log store returns latest value or miss, never garbage" ~count:300
    (QCheck.list op)
    (fun ops ->
      let t = mk ~log_bytes:2048 ~bucket_slots:2 ~n_buckets:8 () in
      let model = Hashtbl.create 64 in
      List.for_all
        (fun operation ->
          match operation with
          | `Set (k, v) ->
            (match Log_store.set t ~key:k ~value:(Bytes.of_string v) with
            | `Ok -> Hashtbl.replace model k v
            | `Too_large -> ());
            true
          | `Get k -> (
            match get_s t k with
            | None -> true (* lossy miss is legal *)
            | Some v -> Hashtbl.find_opt model k = Some v))
        ops)

(* Hit-rate sanity: with an arena comfortably larger than the working
   set and enough slots, everything hits. *)
let test_no_eviction_when_sized_right () =
  let t = mk ~log_bytes:(1 lsl 20) ~n_buckets:4096 ~bucket_slots:8 () in
  for key = 0 to 999 do
    ignore (Log_store.set t ~key ~value:(Bytes.make 32 'z'))
  done;
  for key = 0 to 999 do
    if get_s t key = None then Alcotest.failf "key %d lost despite capacity" key
  done

let tests =
  [
    Alcotest.test_case "set/get round-trip" `Quick test_set_get_roundtrip;
    Alcotest.test_case "overwrite: latest wins" `Quick test_overwrite_latest_wins;
    Alcotest.test_case "empty values" `Quick test_empty_value;
    Alcotest.test_case "oversized items rejected" `Quick test_too_large_rejected;
    Alcotest.test_case "log wraparound evicts oldest" `Quick test_log_wraparound_evicts_old;
    Alcotest.test_case "lossy index evicts round-robin" `Quick test_lossy_index_eviction;
    Alcotest.test_case "updates refresh slots in place" `Quick test_updates_do_not_evict_siblings;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "mem" `Quick test_mem;
    QCheck_alcotest.to_alcotest prop_cache_never_lies;
    Alcotest.test_case "fully provisioned = no misses" `Quick test_no_eviction_when_sized_right;
  ]
