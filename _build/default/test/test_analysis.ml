(* Trace analysis: skew estimation recovers known Zipf coefficients from
   synthetic traces, profiles measure mixes correctly, taxonomy
   placement and recommendations match the facade's. *)

module Zipf_fit = C4_analysis.Zipf_fit
module Profile = C4_analysis.Profile
module Generator = C4_workload.Generator
module Trace = C4_workload.Trace
module Zipf = C4_workload.Zipf
module Rng = C4_dsim.Rng

let synthetic_counts ~theta ~n_keys ~samples =
  let z = Zipf.create ~n:n_keys ~theta (Rng.create 3) in
  Zipf_fit.rank_counts (Seq.init samples (fun _ -> Zipf.sample z))

let test_linear_fit_exact () =
  (* y = 2x + 1 recovered exactly. *)
  let x = [| 0.0; 1.0; 2.0; 3.0 |] and y = [| 1.0; 3.0; 5.0; 7.0 |] in
  let slope, intercept = Zipf_fit.linear_fit ~x ~y in
  Alcotest.(check (float 1e-9)) "slope" 2.0 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 intercept

let test_linear_fit_degenerate () =
  let x = [| 1.0; 1.0 |] and y = [| 2.0; 4.0 |] in
  let slope, _ = Zipf_fit.linear_fit ~x ~y in
  Alcotest.(check (float 1e-9)) "vertical data -> 0 slope" 0.0 slope

let check_theta_recovery theta () =
  let counts = synthetic_counts ~theta ~n_keys:50_000 ~samples:300_000 in
  let estimate = Zipf_fit.estimate_theta counts in
  if abs_float (estimate -. theta) > 0.12 then
    Alcotest.failf "theta %.2f estimated as %.2f" theta estimate

let test_theta_uniform_is_zero () =
  let counts = synthetic_counts ~theta:0.0 ~n_keys:1_000 ~samples:200_000 in
  let estimate = Zipf_fit.estimate_theta counts in
  if estimate > 0.1 then Alcotest.failf "uniform estimated as %.2f" estimate

let test_theta_degenerate_inputs () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Zipf_fit.estimate_theta [||]);
  Alcotest.(check (float 1e-9)) "too few ranks" 0.0 (Zipf_fit.estimate_theta [| 100; 50 |])

let test_rank_counts_sorted () =
  let counts = Zipf_fit.rank_counts (List.to_seq [ 1; 2; 2; 3; 3; 3 ]) in
  Alcotest.(check (array int)) "descending" [| 3; 2; 1 |] counts

let mk_trace ~theta ~write_fraction =
  let gen =
    Generator.create
      { Generator.default with n_keys = 20_000; n_partitions = 256; theta; write_fraction; rate = 0.05 }
      ~seed:11
  in
  Trace.record gen ~n:100_000

let test_profile_measures_mix () =
  let profile = Profile.of_trace (mk_trace ~theta:0.99 ~write_fraction:0.3) in
  Alcotest.(check bool) "write fraction ~0.3" true
    (abs_float (profile.Profile.write_fraction -. 0.3) < 0.01);
  Alcotest.(check int) "request count" 100_000 profile.Profile.n_requests;
  Alcotest.(check bool) "theta near 0.99" true
    (abs_float (profile.Profile.theta_hat -. 0.99) < 0.15);
  Alcotest.(check bool) "offered rate recovered" true
    (abs_float (profile.Profile.offered_rate -. 0.05) < 0.005);
  Alcotest.(check bool) "hot share < top10 share" true
    (profile.Profile.hottest_key_share < profile.Profile.top10_share)

let region_of ~theta ~write_fraction =
  Profile.region (Profile.of_trace (mk_trace ~theta ~write_fraction))

let test_profile_regions () =
  Alcotest.(check string) "R_uni" "R_uni"
    (Profile.region_name (region_of ~theta:0.0 ~write_fraction:0.05));
  Alcotest.(check string) "WI_uni" "WI_uni"
    (Profile.region_name (region_of ~theta:0.0 ~write_fraction:0.6));
  Alcotest.(check string) "RW_sk" "RW_sk"
    (Profile.region_name (region_of ~theta:1.3 ~write_fraction:0.05))

let test_recommendations () =
  let rec_of ~theta ~write_fraction =
    Profile.recommend (Profile.of_trace (mk_trace ~theta ~write_fraction))
  in
  Alcotest.(check bool) "WI_uni -> dcrew" true
    (rec_of ~theta:0.0 ~write_fraction:0.6 = Profile.Use_dcrew);
  Alcotest.(check bool) "RW_sk -> compaction" true
    (rec_of ~theta:1.3 ~write_fraction:0.05 = Profile.Use_compaction);
  Alcotest.(check bool) "R_uni -> baseline" true
    (rec_of ~theta:0.0 ~write_fraction:0.05 = Profile.Baseline_suffices)

let test_report_mentions_mechanism () =
  let report = Profile.report (Profile.of_trace (mk_trace ~theta:1.3 ~write_fraction:0.05)) in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "report names compaction" true (contains "compaction" report)

let test_of_accesses () =
  let accesses = Seq.init 1_000 (fun i -> (i mod 10, i mod 2 = 0)) in
  let profile = Profile.of_accesses accesses in
  Alcotest.(check int) "distinct" 10 profile.Profile.n_distinct_keys;
  Alcotest.(check (float 0.01)) "write fraction" 0.5 profile.Profile.write_fraction;
  Alcotest.(check (float 1e-9)) "no timing -> no rate" 0.0 profile.Profile.offered_rate

let tests =
  [
    Alcotest.test_case "linear fit exact" `Quick test_linear_fit_exact;
    Alcotest.test_case "linear fit degenerate" `Quick test_linear_fit_degenerate;
    Alcotest.test_case "recovers gamma=0.8" `Slow (check_theta_recovery 0.8);
    Alcotest.test_case "recovers gamma=1.0" `Slow (check_theta_recovery 1.0);
    Alcotest.test_case "recovers gamma=1.4" `Slow (check_theta_recovery 1.4);
    Alcotest.test_case "uniform estimates ~0" `Slow test_theta_uniform_is_zero;
    Alcotest.test_case "degenerate inputs" `Quick test_theta_degenerate_inputs;
    Alcotest.test_case "rank counts sorted" `Quick test_rank_counts_sorted;
    Alcotest.test_case "profile measures the mix" `Slow test_profile_measures_mix;
    Alcotest.test_case "profile regions" `Slow test_profile_regions;
    Alcotest.test_case "recommendations" `Slow test_recommendations;
    Alcotest.test_case "report names the mechanism" `Quick test_report_mentions_mechanism;
    Alcotest.test_case "profiling raw access logs" `Quick test_of_accesses;
  ]
