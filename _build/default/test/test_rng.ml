(* RNG tests: determinism, stream independence under split, range and
   moment sanity for each distribution. *)

module Rng = C4_dsim.Rng

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differ = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differ := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differ

let test_split_independence () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  (* Drawing from the child must not perturb the parent's future draws
     relative to a parent that split and ignored the child. *)
  let parent2 = Rng.create 7 in
  let _ = Rng.split parent2 in
  for _ = 1 to 50 do
    ignore (Rng.bits64 child)
  done;
  Alcotest.(check int64) "parent unaffected by child draws" (Rng.bits64 parent2)
    (Rng.bits64 parent)

let test_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %f" x
  done

let test_int_range () =
  let rng = Rng.create 13 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of range: %d" x
  done

let test_int_covers_support () =
  let rng = Rng.create 17 in
  let seen = Array.make 8 false in
  for _ = 1 to 2_000 do
    seen.(Rng.int rng 8) <- true
  done;
  Array.iteri (fun i s -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true s) seen

let test_uniform_bounds () =
  let rng = Rng.create 19 in
  for _ = 1 to 10_000 do
    let x = Rng.uniform rng ~lo:400.0 ~hi:800.0 in
    if x < 400.0 || x >= 800.0 then Alcotest.failf "uniform out of bounds: %f" x
  done

let test_exponential_mean () =
  let rng = Rng.create 23 in
  let n = 100_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng ~mean:50.0
  done;
  let mean = !total /. float_of_int n in
  if abs_float (mean -. 50.0) > 1.5 then
    Alcotest.failf "exponential mean %f too far from 50" mean

let test_bernoulli_frequency () =
  let rng = Rng.create 29 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  if abs_float (freq -. 0.3) > 0.01 then Alcotest.failf "bernoulli freq %f" freq

let test_bernoulli_extremes () =
  let rng = Rng.create 31 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng ~p:0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng ~p:1.0)
  done

let test_gaussian_moments () =
  let rng = Rng.create 37 in
  let n = 100_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  if abs_float mean > 0.02 then Alcotest.failf "gaussian mean %f" mean;
  if abs_float (var -. 1.0) > 0.03 then Alcotest.failf "gaussian var %f" var

let test_shuffle_permutes () =
  let rng = Rng.create 41 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted;
  (* Astronomically unlikely to be the identity permutation. *)
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 100 Fun.id)

let prop_int_in_range =
  QCheck.Test.make ~name:"Rng.int always lands in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let tests =
  [
    Alcotest.test_case "equal seeds, equal streams" `Quick test_determinism;
    Alcotest.test_case "different seeds diverge" `Quick test_seed_sensitivity;
    Alcotest.test_case "split streams are independent" `Quick test_split_independence;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range;
    Alcotest.test_case "int in [0,bound)" `Quick test_int_range;
    Alcotest.test_case "int covers its support" `Quick test_int_covers_support;
    Alcotest.test_case "uniform respects bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "exponential has requested mean" `Slow test_exponential_mean;
    Alcotest.test_case "bernoulli frequency ~ p" `Slow test_bernoulli_frequency;
    Alcotest.test_case "bernoulli extremes are deterministic" `Quick test_bernoulli_extremes;
    Alcotest.test_case "gaussian has unit moments" `Slow test_gaussian_moments;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutes;
    QCheck_alcotest.to_alcotest prop_int_in_range;
  ]
