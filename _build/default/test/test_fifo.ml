(* FIFO ring-buffer tests, including the scan/extract operations the
   compaction layer depends on, and a model-based property test against
   a reference list implementation. *)

module Fifo = C4_dsim.Fifo

let to_l = Fifo.to_list

let test_push_pop_order () =
  let q = Fifo.create () in
  List.iter (Fifo.push q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "pop 1" (Some 1) (Fifo.pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Fifo.pop q);
  Fifo.push q 4;
  Alcotest.(check (option int)) "pop 3" (Some 3) (Fifo.pop q);
  Alcotest.(check (option int)) "pop 4" (Some 4) (Fifo.pop q);
  Alcotest.(check (option int)) "empty" None (Fifo.pop q)

let test_peek () =
  let q = Fifo.create () in
  Alcotest.(check (option int)) "peek empty" None (Fifo.peek q);
  Fifo.push q 9;
  Alcotest.(check (option int)) "peek" (Some 9) (Fifo.peek q);
  Alcotest.(check int) "peek non-destructive" 1 (Fifo.length q)

let test_wraparound () =
  let q = Fifo.create ~capacity:4 () in
  for i = 0 to 2 do
    Fifo.push q i
  done;
  ignore (Fifo.pop q);
  ignore (Fifo.pop q);
  for i = 3 to 7 do
    Fifo.push q i
  done;
  Alcotest.(check (list int)) "wraparound growth" [ 2; 3; 4; 5; 6; 7 ] (to_l q)

let test_scan_depth () =
  let q = Fifo.create () in
  List.iter (Fifo.push q) [ 10; 20; 30; 40 ];
  let seen = ref [] in
  Fifo.scan q ~depth:2 ~f:(fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "depth-limited scan" [ 10; 20 ] (List.rev !seen);
  seen := [];
  Fifo.scan q ~depth:(-1) ~f:(fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "full scan" [ 10; 20; 30; 40 ] (List.rev !seen)

let test_exists_depth () =
  let q = Fifo.create () in
  List.iter (Fifo.push q) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "found within depth" true (Fifo.exists q ~depth:3 ~f:(( = ) 3));
  Alcotest.(check bool) "not within depth" false (Fifo.exists q ~depth:3 ~f:(( = ) 5));
  Alcotest.(check bool) "unbounded finds it" true (Fifo.exists q ~depth:(-1) ~f:(( = ) 5))

let test_extract () =
  let q = Fifo.create () in
  List.iter (Fifo.push q) [ 1; 2; 3; 4; 5; 6 ];
  let evens = Fifo.extract q ~depth:4 ~f:(fun x -> x mod 2 = 0) in
  Alcotest.(check (list int)) "extracted in order" [ 2; 4 ] evens;
  Alcotest.(check (list int)) "remainder stable" [ 1; 3; 5; 6 ] (to_l q)

let test_extract_none () =
  let q = Fifo.create () in
  List.iter (Fifo.push q) [ 1; 3; 5 ];
  Alcotest.(check (list int)) "nothing extracted" []
    (Fifo.extract q ~depth:(-1) ~f:(fun x -> x mod 2 = 0));
  Alcotest.(check (list int)) "queue untouched" [ 1; 3; 5 ] (to_l q)

let test_extract_past_depth_untouched () =
  let q = Fifo.create () in
  List.iter (Fifo.push q) [ 2; 1; 2 ];
  let got = Fifo.extract q ~depth:1 ~f:(fun x -> x = 2) in
  Alcotest.(check (list int)) "only first slot inspected" [ 2 ] got;
  Alcotest.(check (list int)) "deep match left alone" [ 1; 2 ] (to_l q)

let test_clear () =
  let q = Fifo.create () in
  List.iter (Fifo.push q) [ 1; 2; 3 ];
  Fifo.clear q;
  Alcotest.(check int) "cleared" 0 (Fifo.length q);
  Fifo.push q 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Fifo.pop q)

(* Model-based property: a Fifo behaves like a list under an arbitrary
   sequence of push/pop operations. *)
let prop_model =
  let op = QCheck.(oneof [ map (fun x -> `Push x) small_int; always `Pop ]) in
  QCheck.Test.make ~name:"fifo matches list model" ~count:300 (QCheck.list op)
    (fun ops ->
      let q = Fifo.create ~capacity:1 () in
      let model = ref [] in
      List.for_all
        (fun operation ->
          match operation with
          | `Push x ->
            Fifo.push q x;
            model := !model @ [ x ];
            to_l q = !model
          | `Pop -> (
            let expected = match !model with [] -> None | x :: rest -> model := rest; Some x in
            Fifo.pop q = expected && to_l q = !model))
        ops)

let prop_extract_partition =
  QCheck.Test.make ~name:"extract = stable partition of the prefix" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let q = Fifo.create () in
      List.iter (Fifo.push q) xs;
      let f x = x mod 3 = 0 in
      let got = Fifo.extract q ~depth:(-1) ~f in
      let expected_removed = List.filter f xs in
      let expected_kept = List.filter (fun x -> not (f x)) xs in
      got = expected_removed && to_l q = expected_kept)

let tests =
  [
    Alcotest.test_case "FIFO order with interleaving" `Quick test_push_pop_order;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "wraparound + growth" `Quick test_wraparound;
    Alcotest.test_case "scan honours depth" `Quick test_scan_depth;
    Alcotest.test_case "exists honours depth" `Quick test_exists_depth;
    Alcotest.test_case "extract removes stably" `Quick test_extract;
    Alcotest.test_case "extract with no matches" `Quick test_extract_none;
    Alcotest.test_case "extract leaves deep elements" `Quick test_extract_past_depth_untouched;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_model;
    QCheck_alcotest.to_alcotest prop_extract_partition;
  ]
