(* Extensions beyond the paper's evaluated set: the software-delegation
   baseline (Sec. 8's dismissed alternative) and the EWT hardware-cost
   model (Sec. 5.2's CACTI sizing). *)

module Policy = C4_model.Policy
module Server = C4_model.Server
module Metrics = C4_model.Metrics
module Experiment = C4_model.Experiment
module Generator = C4_workload.Generator
module Ewt_cost = C4_nic.Ewt_cost

(* ---------------- Delegation ---------------- *)

let wl rate =
  { Generator.default with n_keys = 50_000; n_partitions = 1024; write_fraction = 0.5; rate }

let cfg policy = { Server.default_config with Server.policy; n_workers = 16 }

let test_delegation_completes () =
  let r =
    Server.run (cfg (Policy.Delegate Policy.delegation_default)) ~workload:(wl 0.01)
      ~n_requests:20_000
  in
  let m = r.Server.metrics in
  Alcotest.(check bool) "conserves requests" true
    (Metrics.completed m + Metrics.drops m > 15_000)

let test_delegation_pays_forwarding_tax () =
  (* Mean write latency exceeds CREW's: the shuffle adds a hop plus a
     second queueing stage. *)
  let mean policy =
    let r = Server.run (cfg policy) ~workload:(wl 0.012) ~n_requests:30_000 in
    C4_stats.Histogram.mean (Metrics.write_latency r.Server.metrics)
  in
  let crew = mean Policy.Crew in
  let delegation = mean (Policy.Delegate Policy.delegation_default) in
  Alcotest.(check bool) "delegation write latency above CREW" true
    (delegation > crew +. 100.0)

let test_delegation_worse_than_dcrew () =
  let p99 policy =
    let r = Server.run (cfg policy) ~workload:(wl 0.018) ~n_requests:30_000 in
    Metrics.p99 r.Server.metrics
  in
  Alcotest.(check bool) "d-CREW dominates delegation" true
    (p99 Policy.Dcrew < p99 (Policy.Delegate Policy.delegation_default))

let test_delegation_zero_cost_converges_to_crew_queueing () =
  (* With a free shuffle, delegation is CREW plus an extra queueing hop:
     still worse than or equal to CREW, never better. *)
  let p99 policy =
    let r = Server.run (cfg policy) ~workload:(wl 0.015) ~n_requests:30_000 in
    Metrics.p99 r.Server.metrics
  in
  Alcotest.(check bool) "free delegation >= CREW" true
    (p99 (Policy.Delegate { Policy.t_forward = 1.0 }) >= p99 Policy.Crew *. 0.9)

let test_delegation_name_and_routing () =
  Alcotest.(check string) "name" "Delegation"
    (Policy.name (Policy.Delegate Policy.delegation_default));
  Alcotest.(check bool) "balances everything" true
    (Policy.balanceable (Policy.Delegate Policy.delegation_default) C4_workload.Request.Write);
  Alcotest.(check bool) "no EWT" false
    (Policy.uses_ewt (Policy.Delegate Policy.delegation_default))

(* ---------------- EWT hardware cost ---------------- *)

let test_paper_calibration_point () =
  let g = Ewt_cost.paper_geometry in
  Alcotest.(check (float 1e-9)) "area" 0.004 (Ewt_cost.area_mm2 g);
  Alcotest.(check (float 1e-9)) "power" 6.85 (Ewt_cost.dynamic_power_mw g);
  (* 6.85 mW of 280 W = 0.0024% — the paper's "0.002%". *)
  let frac = Ewt_cost.power_fraction g in
  Alcotest.(check bool) "negligible fraction" true (frac > 1e-5 && frac < 5e-5)

let test_cost_scales_linearly_in_entries () =
  let g = Ewt_cost.paper_geometry in
  let double = { g with Ewt_cost.entries = 256 } in
  Alcotest.(check (float 1e-9)) "2x entries = 2x area" (2.0 *. Ewt_cost.area_mm2 g)
    (Ewt_cost.area_mm2 double)

let test_cam_bits_cost_more () =
  let g = Ewt_cost.paper_geometry in
  let more_cam = { g with Ewt_cost.partition_bits = g.Ewt_cost.partition_bits + 6 } in
  let more_ram = { g with Ewt_cost.thread_bits = g.Ewt_cost.thread_bits + 6 } in
  Alcotest.(check bool) "CAM bits dearer than RAM bits" true
    (Ewt_cost.area_mm2 more_cam > Ewt_cost.area_mm2 more_ram)

let test_size_for () =
  let g =
    Ewt_cost.size_for ~n_partitions:8192 ~n_threads:64 ~max_outstanding_writes:64 ()
  in
  Alcotest.(check int) "entries: 64 * 1.4 -> 128" 128 g.Ewt_cost.entries;
  Alcotest.(check int) "partition tag bits" 13 g.Ewt_cost.partition_bits;
  Alcotest.(check int) "thread bits" 6 g.Ewt_cost.thread_bits;
  Alcotest.(check int) "counter bits" 7 g.Ewt_cost.counter_bits;
  Alcotest.(check bool) "still tiny" true (Ewt_cost.area_mm2 g < 0.01)

let test_size_for_validation () =
  Alcotest.(check bool) "rejects nonsense" true
    (try
       ignore (Ewt_cost.size_for ~n_partitions:0 ~n_threads:64 ~max_outstanding_writes:1 ());
       false
     with Invalid_argument _ -> true)

let tests =
  [
    Alcotest.test_case "delegation completes all requests" `Quick test_delegation_completes;
    Alcotest.test_case "delegation pays the forwarding tax" `Quick
      test_delegation_pays_forwarding_tax;
    Alcotest.test_case "d-CREW dominates delegation" `Quick test_delegation_worse_than_dcrew;
    Alcotest.test_case "free delegation still >= CREW" `Quick
      test_delegation_zero_cost_converges_to_crew_queueing;
    Alcotest.test_case "delegation policy plumbing" `Quick test_delegation_name_and_routing;
    Alcotest.test_case "EWT cost: paper calibration" `Quick test_paper_calibration_point;
    Alcotest.test_case "EWT cost: linear in entries" `Quick test_cost_scales_linearly_in_entries;
    Alcotest.test_case "EWT cost: CAM premium" `Quick test_cam_bits_cost_more;
    Alcotest.test_case "EWT sizing helper" `Quick test_size_for;
    Alcotest.test_case "EWT sizing validation" `Quick test_size_for_validation;
  ]
