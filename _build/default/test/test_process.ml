(* Effect-based process layer: sequencing, waits, signals, mailboxes,
   and a producer/consumer pipeline — plus interleaving determinism. *)

module Sim = C4_dsim.Sim
module Process = C4_dsim.Process

let test_wait_sequencing () =
  let sim = Sim.create () in
  let p = Process.create sim in
  let log = ref [] in
  Process.spawn p (fun () ->
      log := ("a", Process.now p) :: !log;
      Process.wait p 10.0;
      log := ("b", Process.now p) :: !log;
      Process.wait p 5.0;
      log := ("c", Process.now p) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair string (float 0.0))))
    "sequential waits"
    [ ("a", 0.0); ("b", 10.0); ("c", 15.0) ]
    (List.rev !log)

let test_two_processes_interleave () =
  let sim = Sim.create () in
  let p = Process.create sim in
  let log = ref [] in
  let proc name delay =
    Process.spawn p (fun () ->
        for _ = 1 to 3 do
          Process.wait p delay;
          log := (name, Process.now p) :: !log
        done)
  in
  proc "slow" 10.0;
  proc "fast" 4.0;
  Sim.run sim;
  Alcotest.(check (list (pair string (float 0.0))))
    "interleaving by simulated time"
    [
      ("fast", 4.0); ("fast", 8.0); ("slow", 10.0); ("fast", 12.0);
      ("slow", 20.0); ("slow", 30.0);
    ]
    (List.rev !log)

let test_spawn_at () =
  let sim = Sim.create () in
  let p = Process.create sim in
  let started = ref (-1.0) in
  Process.spawn_at p ~time:42.0 (fun () -> started := Process.now p);
  Sim.run sim;
  Alcotest.(check (float 0.0)) "deferred start" 42.0 !started

let test_signal_broadcast () =
  let sim = Sim.create () in
  let p = Process.create sim in
  let s = Process.Signal.create () in
  let got = ref [] in
  for i = 1 to 3 do
    Process.spawn p (fun () ->
        let v = Process.Signal.await p s in
        got := (i, v, Process.now p) :: !got)
  done;
  Alcotest.(check int) "three waiters" 3 (Process.Signal.waiters s);
  Process.spawn p (fun () ->
      Process.wait p 7.0;
      Process.Signal.emit p s 99);
  Sim.run sim;
  Alcotest.(check int) "no waiters left" 0 (Process.Signal.waiters s);
  Alcotest.(check (list (triple int int (float 0.0))))
    "all woken in await order at emission time"
    [ (1, 99, 7.0); (2, 99, 7.0); (3, 99, 7.0) ]
    (List.rev !got)

let test_mailbox_buffering () =
  let sim = Sim.create () in
  let p = Process.create sim in
  let m = Process.Mailbox.create () in
  let got = ref [] in
  (* Values sent before the receiver exists are buffered. *)
  Process.spawn p (fun () ->
      Process.Mailbox.send p m "x";
      Process.Mailbox.send p m "y");
  Alcotest.(check int) "buffered" 2 (Process.Mailbox.length m);
  Process.spawn p (fun () ->
      got := Process.Mailbox.recv p m :: !got;
      got := Process.Mailbox.recv p m :: !got);
  Sim.run sim;
  Alcotest.(check (list string)) "FIFO delivery" [ "x"; "y" ] (List.rev !got)

let test_mailbox_blocking_recv () =
  let sim = Sim.create () in
  let p = Process.create sim in
  let m = Process.Mailbox.create () in
  let received_at = ref (-1.0) in
  Process.spawn p (fun () ->
      let v = Process.Mailbox.recv p m in
      received_at := Process.now p;
      Alcotest.(check int) "value" 7 v);
  Process.spawn p (fun () ->
      Process.wait p 25.0;
      Process.Mailbox.send p m 7);
  Sim.run sim;
  Alcotest.(check (float 0.0)) "blocked until send" 25.0 !received_at

(* A small producer/consumer pipeline: producer emits jobs every 10 ns,
   consumer takes 15 ns per job — queue grows; all jobs processed. *)
let test_pipeline () =
  let sim = Sim.create () in
  let p = Process.create sim in
  let m = Process.Mailbox.create () in
  let processed = ref 0 in
  Process.spawn p (fun () ->
      for i = 1 to 10 do
        Process.wait p 10.0;
        Process.Mailbox.send p m i
      done);
  Process.spawn p (fun () ->
      for _ = 1 to 10 do
        let _job = Process.Mailbox.recv p m in
        Process.wait p 15.0;
        incr processed
      done);
  Sim.run sim;
  Alcotest.(check int) "all jobs processed" 10 !processed;
  (* Last job arrives at 100; consumer finishes 10 jobs, bounded below
     by service serialisation: first recv completes at 10+15=25, then
     every 15 ns when backlogged. *)
  Alcotest.(check bool) "finishes after serialised service" true (Sim.now sim >= 160.0)

let tests =
  [
    Alcotest.test_case "wait sequences within a process" `Quick test_wait_sequencing;
    Alcotest.test_case "processes interleave by time" `Quick test_two_processes_interleave;
    Alcotest.test_case "spawn_at defers start" `Quick test_spawn_at;
    Alcotest.test_case "signal broadcasts to all waiters" `Quick test_signal_broadcast;
    Alcotest.test_case "mailbox buffers sends" `Quick test_mailbox_buffering;
    Alcotest.test_case "mailbox recv blocks" `Quick test_mailbox_blocking_recv;
    Alcotest.test_case "producer/consumer pipeline" `Quick test_pipeline;
  ]
