(* Multi-node cluster model: sharding correctness, trace replay
   equivalence, the Sec. 8 claim that skewed write load overloads a
   whole node, and that per-node C-4 lifts the cluster. *)

module Cluster = C4_cluster.Cluster
module Server = C4_model.Server
module Metrics = C4_model.Metrics
module Generator = C4_workload.Generator
module Trace = C4_workload.Trace
module Request = C4_workload.Request

let workload ?(theta = 0.0) ?(write_fraction = 0.5) rate =
  { Generator.default with n_keys = 100_000; n_partitions = 1024; theta; write_fraction; rate }

let node_config policy =
  { (C4.Config.model policy) with Server.n_workers = 8 }

(* ---------------- trace replay ---------------- *)

let test_run_trace_matches_run () =
  (* Replaying a recorded trace reproduces the generator-driven run
     exactly (same seed, same stream). *)
  let wl = workload 0.01 in
  let cfg = node_config C4.Config.Baseline in
  let direct = Server.run cfg ~workload:wl ~n_requests:20_000 in
  let gen = Generator.create wl ~seed:(cfg.Server.seed lxor 0x5bd1e995) in
  let trace = Trace.record gen ~n:20_000 in
  let replayed = Server.run_trace cfg ~trace ~n_partitions:wl.Generator.n_partitions in
  Alcotest.(check (float 1e-9)) "same p99"
    (Metrics.p99 direct.Server.metrics)
    (Metrics.p99 replayed.Server.metrics);
  Alcotest.(check int) "same completions"
    (Metrics.completed direct.Server.metrics)
    (Metrics.completed replayed.Server.metrics)

let test_of_array_validation () =
  let gen = Generator.create (workload 0.01) ~seed:1 in
  let a = Generator.next gen and b = Generator.next gen in
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Trace.of_array: arrivals must be nondecreasing") (fun () ->
      ignore (Trace.of_array [| b; a |]))

(* ---------------- sharding ---------------- *)

let test_sharding_covers_nodes () =
  let seen = Array.make 4 0 in
  for key = 0 to 9_999 do
    let n = Cluster.node_of_key ~n_nodes:4 key in
    seen.(n) <- seen.(n) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 2_000 || c > 3_000 then Alcotest.failf "node %d got %d of 10000" i c)
    seen

let test_all_requests_routed () =
  let t =
    Cluster.run
      { Cluster.n_nodes = 3; node = node_config C4.Config.Baseline; workload = workload 0.01; netcache = None }
      ~n_requests:15_000
  in
  let total = List.fold_left (fun acc n -> acc + n.Cluster.requests) 0 t.Cluster.nodes in
  Alcotest.(check int) "conservation across nodes" 15_000 total;
  Alcotest.(check int) "node count" 3 (List.length t.Cluster.nodes)

let test_uniform_cluster_balanced () =
  let t =
    Cluster.run
      { Cluster.n_nodes = 4; node = node_config C4.Config.Baseline; workload = workload 0.02; netcache = None }
      ~n_requests:40_000
  in
  Alcotest.(check bool) "near-fair sharding" true (t.Cluster.imbalance < 1.1)

(* ---------------- the Sec. 8 story ---------------- *)

let test_skew_overloads_one_node () =
  (* gamma = 1.25: the hot key's node carries a disproportionate share,
     and under CREW its hottest worker bottlenecks the whole cluster's
     tail. *)
  let skewed = workload ~theta:1.25 ~write_fraction:0.05 0.03 in
  let t =
    Cluster.run
      { Cluster.n_nodes = 4; node = node_config C4.Config.Baseline; workload = skewed; netcache = None }
      ~n_requests:60_000
  in
  Alcotest.(check bool) "hot node exceeds fair share" true (t.Cluster.imbalance > 1.3)

let test_dcrew_lifts_cluster_tail () =
  let wi = workload ~write_fraction:0.75 0.035 in
  let run policy =
    (Cluster.run
       { Cluster.n_nodes = 4; node = node_config policy; workload = wi; netcache = None }
       ~n_requests:60_000)
      .Cluster.cluster_p99
  in
  let crew = run C4.Config.Baseline and dcrew = run C4.Config.Dcrew in
  Alcotest.(check bool) "per-node d-CREW cuts cluster p99" true (dcrew < crew *. 0.8)

let test_netcache_relieves_hot_node () =
  (* Extreme skew: the hot key's node is the bottleneck; a switch cache
     over the hottest keys removes both the imbalance and the tail. *)
  let extreme = workload ~theta:1.25 ~write_fraction:0.05 0.06 in
  let base =
    Cluster.run
      { Cluster.n_nodes = 4; node = node_config C4.Config.Baseline; workload = extreme; netcache = None }
      ~n_requests:60_000
  in
  let cached =
    Cluster.run
      {
        Cluster.n_nodes = 4;
        node = node_config C4.Config.Baseline;
        workload = extreme;
        netcache = Some { Cluster.hot_keys = 128; t_switch = 300.0 };
      }
      ~n_requests:60_000
  in
  Alcotest.(check bool) "switch serves hot reads" true (cached.Cluster.switch_hits > 10_000);
  Alcotest.(check bool) "imbalance shrinks" true
    (cached.Cluster.imbalance < base.Cluster.imbalance -. 0.2);
  Alcotest.(check bool) "cluster tail collapses" true
    (cached.Cluster.cluster_p99 < base.Cluster.cluster_p99 /. 2.0)

let test_netcache_write_through () =
  (* Writes always reach the nodes: hits are reads only. *)
  let wl = workload ~theta:1.25 ~write_fraction:1.0 0.01 in
  let t =
    Cluster.run
      {
        Cluster.n_nodes = 2;
        node = node_config C4.Config.Baseline;
        workload = wl;
        netcache = Some { Cluster.hot_keys = 1_000; t_switch = 300.0 };
      }
      ~n_requests:10_000
  in
  Alcotest.(check int) "no write served by the switch" 0 t.Cluster.switch_hits;
  let forwarded = List.fold_left (fun acc n -> acc + n.Cluster.requests) 0 t.Cluster.nodes in
  Alcotest.(check int) "all writes forwarded" 10_000 forwarded

let tests =
  [
    Alcotest.test_case "trace replay = generator run" `Quick test_run_trace_matches_run;
    Alcotest.test_case "of_array validates ordering" `Quick test_of_array_validation;
    Alcotest.test_case "sharding covers all nodes" `Quick test_sharding_covers_nodes;
    Alcotest.test_case "requests conserved across nodes" `Quick test_all_requests_routed;
    Alcotest.test_case "uniform keys shard fairly" `Quick test_uniform_cluster_balanced;
    Alcotest.test_case "skew overloads one node" `Slow test_skew_overloads_one_node;
    Alcotest.test_case "per-node d-CREW lifts the cluster" `Slow test_dcrew_lifts_cluster_tail;
    Alcotest.test_case "NetCache-style switch relieves the hot node" `Slow
      test_netcache_relieves_hot_node;
    Alcotest.test_case "switch cache is write-through" `Quick test_netcache_write_through;
  ]
