test/test_size_aware.ml: Alcotest Array C4_dsim C4_model C4_stats C4_workload Printf
