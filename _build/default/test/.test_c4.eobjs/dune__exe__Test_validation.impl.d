test/test_validation.ml: Alcotest C4_model C4_workload Float List Printf
