test/test_stats.ml: Alcotest Array C4_stats Gen List QCheck QCheck_alcotest String
