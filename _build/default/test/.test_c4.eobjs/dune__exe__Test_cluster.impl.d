test/test_cluster.ml: Alcotest Array C4 C4_cluster C4_model C4_workload List
