test/test_extensions.ml: Alcotest C4_model C4_nic C4_stats C4_workload
