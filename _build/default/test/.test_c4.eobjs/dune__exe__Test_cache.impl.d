test/test_cache.ml: Alcotest C4_cache Hashtbl List QCheck QCheck_alcotest
