test/test_c4_facade.ml: Alcotest C4 C4_kvs C4_model C4_workload List
