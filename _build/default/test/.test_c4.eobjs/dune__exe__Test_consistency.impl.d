test/test_consistency.ml: Alcotest C4_consistency Gen List Printf QCheck QCheck_alcotest
