test/test_model.ml: Alcotest Array C4_cache C4_dsim C4_kvs C4_model C4_nic C4_stats C4_workload Float List QCheck QCheck_alcotest
