test/test_sim.ml: Alcotest C4_dsim Gen List QCheck QCheck_alcotest
