test/test_nic.ml: Alcotest Bytes C4_nic Hashtbl List Option QCheck QCheck_alcotest
