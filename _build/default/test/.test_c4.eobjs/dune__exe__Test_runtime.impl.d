test/test_runtime.ml: Alcotest Bytes C4_consistency C4_dsim C4_runtime Domain Fun Hashtbl List Option Printf Unix
