test/test_log_store.ml: Alcotest Bytes C4_kvs Char Gen Hashtbl List Option QCheck QCheck_alcotest String
