test/test_process.ml: Alcotest C4_dsim List
