test/test_kvs.ml: Alcotest Array Atomic Bytes C4_kvs Domain Gen Hashtbl List Option Printf QCheck QCheck_alcotest
