test/test_fifo.ml: Alcotest C4_dsim List QCheck QCheck_alcotest
