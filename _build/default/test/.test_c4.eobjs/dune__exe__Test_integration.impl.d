test/test_integration.ml: Alcotest Bytes C4_consistency C4_kvs C4_nic List Option Printf QCheck QCheck_alcotest
