test/test_pserver.ml: Alcotest C4_model C4_stats C4_workload Float
