test/test_rng.ml: Alcotest Array C4_dsim Fun Printf QCheck QCheck_alcotest
