test/test_workload.ml: Alcotest Array C4_dsim C4_workload Format List QCheck QCheck_alcotest
