test/test_heap.ml: Alcotest C4_dsim List QCheck QCheck_alcotest
