test/test_analysis.ml: Alcotest C4_analysis C4_dsim C4_workload List Seq String
