test/test_pipeline.ml: Alcotest Bytes C4_nic Hashtbl List Option
