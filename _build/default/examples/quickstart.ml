(* Quickstart: classify a workload on the paper's taxonomy, simulate the
   state-of-the-art baseline (CREW) and C-4's recommended mechanism on
   it, and compare tail latency.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A Twitter-style write-intensive workload: uniform popularity, 60 %
     writes, offered at 70 MRPS against a 64-core server. *)
  let workload =
    {
      (C4.Config.workload_wi_uni ~write_fraction:0.6) with
      C4_workload.Generator.rate = 0.07 (* requests per ns = 70 MRPS *);
    }
  in
  let region =
    C4.Region.of_workload workload
  in
  Format.printf "workload region: %a (problematic: %b)@." C4.Region.pp region
    (C4.Region.problematic region);
  let mechanism =
    match C4.Region.recommended_mechanism region with
    | `Dcrew -> C4.Config.Dcrew
    | `Compaction -> C4.Config.Comp
    | `Baseline_suffices -> C4.Config.Baseline
  in
  Format.printf "recommended C-4 mechanism: %s@." (C4.Config.name mechanism);

  let simulate label system =
    let result =
      C4_model.Server.run (C4.Config.model system) ~workload ~n_requests:100_000
    in
    let m = result.C4_model.Server.metrics in
    Format.printf "%-10s throughput %5.1f MRPS, mean %4.0f ns, p99 %5.0f ns@."
      label
      (C4_model.Metrics.throughput_mrps m)
      (C4_model.Metrics.mean_latency m)
      (C4_model.Metrics.p99 m)
  in
  simulate "baseline" C4.Config.Baseline;
  simulate (C4.Config.name mechanism) mechanism;
  simulate "ideal" C4.Config.Ideal
