(* Linearizability under write compaction (paper Sec. 4.3.1 / Fig. 7).

   A naive compaction layer acknowledges a write when it is buffered;
   the value is not yet in the datastore, so a later reader can observe
   the OLD value after the writer already got its response — execution
   E1, not linearizable. C-4 defers every response to the window close,
   which keeps all compacted writes concurrent with overlapping reads —
   execution E2, linearizable.

   This example (1) checks the paper's two executions with the
   linearizability checker, and (2) replays the same scenario through
   the real compaction machinery (Compaction_log + Store) to show the
   deferred-response rule is what makes the difference.

   Run with: dune exec examples/linearizability_demo.exe *)

module History = C4_consistency.History
module Lin = C4_consistency.Linearizability
module Store = C4_kvs.Store
module Log = C4_kvs.Compaction_log

let check label history =
  Format.printf "%s:@.%a@.  -> %a@.@." label History.pp history Lin.pp_verdict
    (Lin.check history)

let value_of_int v = Bytes.of_string (string_of_int v)

let int_of_value = function
  | None -> 0
  | Some b -> int_of_string (Bytes.to_string b)

(* Replay Fig. 7 through the real machinery. [defer] selects C-4's rule
   (respond at window close) versus the naive rule (respond at buffer
   time); returns the observed history. *)
let replay ~defer =
  let store = Store.create ~n_buckets:64 ~n_partitions:8 () in
  let key = 42 in
  let log = Log.create () in
  (* t=1: A's set(K=1) arrives; the worker opens a window and buffers it. *)
  Log.open_window log ~key ~now:1.0 ~expires_at:5.0;
  Log.absorb log ~key
    { Log.request_id = 1; sender = 0; value = value_of_int 1; buffered_at = 1.0 };
  let resp_a = if defer then None else Some 2.0 in
  (* t=3: C's get(K) starts; the store still holds nothing (K=0). *)
  let c_read_value = int_of_value (fst (Store.get store ~key)) in
  (* t=4: B's set(K=2) is buffered into the same window. *)
  Log.absorb log ~key
    { Log.request_id = 2; sender = 0; value = value_of_int 2; buffered_at = 4.0 };
  (* t=5: the window expires; ONE combined update applies the final
     value, then all responses go out. *)
  let closed = Option.get (Log.close log ~now:5.0) in
  Store.set_batched store ~key
    ~values:(List.map (fun (p : Log.pending) -> p.value) closed.Log.writes);
  let close_t = 5.0 in
  (* t=6: C's response returns what it read. *)
  History.of_ops
    [
      History.set ~client:"A" ~value:1 ~invoked:1.0
        ~responded:(match resp_a with Some t -> t | None -> close_t);
      History.get ~client:"C" ~value:c_read_value ~invoked:3.0 ~responded:6.0;
      History.set ~client:"B" ~value:2 ~invoked:4.0 ~responded:(close_t +. 0.5);
    ]

let () =
  check "Fig. 7 E1 (naive compaction: A acknowledged during the window)"
    History.fig7_e1;
  check "Fig. 7 E2 (C-4: responses deferred to window close)" History.fig7_e2;

  Format.printf "--- replaying through Compaction_log + Store ---@.@.";
  check "replayed, naive responses" (replay ~defer:false);
  check "replayed, deferred responses (C-4)" (replay ~defer:true);

  (* And the datastore indeed holds only the final compacted value,
     applied in a single version bump. *)
  let store = Store.create ~n_buckets:64 ~n_partitions:8 () in
  Store.set_batched store ~key:7 ~values:[ value_of_int 1; value_of_int 2; value_of_int 9 ];
  Format.printf "store after batched [1;2;9]: K=%d, partition version=%d (one update)@."
    (int_of_value (fst (Store.get store ~key:7)))
    (Store.partition_version store ~partition:(Store.partition_of_key store 7))
