(* WI_uni scenario (paper Sec. 3.1 / Fig. 3): a message-queue-style
   workload where most requests are writes to uncorrelated keys. Static
   write partitioning (CREW) forfeits load balancing on the write half
   and inflates the tail; d-CREW recovers it because true write-write
   conflicts are rare.

   The example sweeps the write fraction and prints, for each policy,
   the p99 at a fixed 80 MRPS load — a slice through Fig. 3b.

   Run with: dune exec examples/wi_uni_tail_latency.exe *)

module Experiment = C4_model.Experiment
module Table = C4_stats.Table

let () =
  let rate = 0.08 in
  let table =
    Table.create
      ~columns:
        [
          ("f_wr %", Table.Right);
          ("EREW p99", Table.Right);
          ("CREW p99", Table.Right);
          ("d-CREW p99", Table.Right);
          ("Ideal p99", Table.Right);
        ]
  in
  List.iter
    (fun write_fraction ->
      let workload = C4.Config.workload_wi_uni ~write_fraction:(write_fraction /. 100.) in
      let p99 system =
        let point =
          Experiment.run_at ~n_requests:80_000 (C4.Config.model system) ~workload ~rate
        in
        point.Experiment.p99_ns
      in
      Table.add_row table
        [
          Table.cell_f ~decimals:0 write_fraction;
          Table.cell_f ~decimals:0 (p99 C4.Config.Erew);
          Table.cell_f ~decimals:0 (p99 C4.Config.Baseline);
          Table.cell_f ~decimals:0 (p99 C4.Config.Dcrew);
          Table.cell_f ~decimals:0 (p99 C4.Config.Ideal);
        ])
    [ 0.0; 25.0; 50.0; 75.0; 100.0 ];
  print_endline "p99 latency (ns) at 80 MRPS, 64 workers, uniform keys:";
  Table.print table;
  print_endline
    "\nCREW degrades toward EREW as writes dominate; d-CREW tracks Ideal \
     regardless of the write fraction (paper Fig. 3)."
