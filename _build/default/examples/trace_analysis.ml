(* Operator's-eye view (paper Sec. 2): profile production-style traces,
   place each on the taxonomy, and check the recommendation against a
   simulation of both the baseline and the recommended C-4 mechanism.

   Run with: dune exec examples/trace_analysis.exe *)

module Generator = C4_workload.Generator
module Trace = C4_workload.Trace
module Ycsb = C4_workload.Ycsb
module Profile = C4_analysis.Profile
module Experiment = C4_model.Experiment

let profile_one label workload =
  let gen = Generator.create { workload with Generator.rate = 0.05 } ~seed:23 in
  let trace = Trace.record gen ~n:150_000 in
  let profile = Profile.of_trace trace in
  Format.printf "== %s@.%s@.@." label (Profile.report profile);
  profile

let simulate_recommendation profile workload =
  let system =
    match Profile.recommend profile with
    | Profile.Use_dcrew -> C4.Config.Dcrew
    | Profile.Use_compaction -> C4.Config.Comp
    | Profile.Baseline_suffices -> C4.Config.Baseline
  in
  let rate = 0.05 in
  let p99 cfg =
    (Experiment.run_at ~n_requests:80_000 cfg ~workload ~rate).Experiment.p99_ns
  in
  let baseline = p99 (C4.Config.model C4.Config.Baseline) in
  let recommended = p99 (C4.Config.model system) in
  Format.printf "  at 50 MRPS: baseline p99 = %.0f ns, %s p99 = %.0f ns (%.2fx)@.@."
    baseline (C4.Config.name system) recommended
    (baseline /. Float.max 1.0 recommended)

let () =
  (* A Twitter-style write-heavy cluster [90] and a Facebook-style
     ML-statistics store [11], as synthetic stand-ins. *)
  let twitter =
    { Generator.default with n_keys = 200_000; theta = 0.4; write_fraction = 0.65 }
  in
  let facebook =
    { Generator.default with n_keys = 200_000; theta = 1.2; write_fraction = 0.92 }
  in
  let p = profile_one "Twitter-style write-heavy cache cluster" twitter in
  simulate_recommendation p twitter;
  let p = profile_one "Facebook-style ML-statistics store" facebook in
  simulate_recommendation p facebook;

  (* The YCSB core suite, placed on the taxonomy. *)
  Format.printf "== YCSB core workloads on the taxonomy@.";
  List.iter
    (fun w ->
      let cfg = Ycsb.config ~base:{ Generator.default with n_keys = 200_000 } w in
      let region = C4.Region.of_workload cfg in
      Format.printf "  YCSB-%s  %-55s -> %a@." (Ycsb.name w) (Ycsb.description w)
        C4.Region.pp region)
    Ycsb.all
