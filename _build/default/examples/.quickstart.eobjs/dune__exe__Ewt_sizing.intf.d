examples/ewt_sizing.mli:
