examples/rw_sk_compaction.mli:
