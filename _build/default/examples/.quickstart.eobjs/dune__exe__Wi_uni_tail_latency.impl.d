examples/wi_uni_tail_latency.ml: C4 C4_model C4_stats List
