examples/quickstart.ml: C4 C4_model C4_workload Format
