examples/trace_analysis.ml: C4 C4_analysis C4_model C4_workload Float Format List
