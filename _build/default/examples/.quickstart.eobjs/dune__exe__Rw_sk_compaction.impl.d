examples/rw_sk_compaction.ml: Array C4 C4_kvs C4_model C4_stats List
