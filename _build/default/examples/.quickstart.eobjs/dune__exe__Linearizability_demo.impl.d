examples/linearizability_demo.ml: Bytes C4_consistency C4_kvs Format List Option
