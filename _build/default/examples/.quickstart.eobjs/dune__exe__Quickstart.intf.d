examples/quickstart.mli:
