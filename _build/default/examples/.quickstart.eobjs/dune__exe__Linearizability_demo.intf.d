examples/linearizability_demo.mli:
