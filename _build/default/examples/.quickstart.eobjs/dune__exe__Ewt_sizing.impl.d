examples/ewt_sizing.ml: C4 C4_model C4_nic C4_stats List Printf
