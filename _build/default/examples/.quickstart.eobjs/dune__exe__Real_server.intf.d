examples/real_server.mli:
