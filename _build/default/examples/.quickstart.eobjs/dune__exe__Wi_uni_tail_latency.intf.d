examples/wi_uni_tail_latency.mli:
