examples/real_server.ml: Bytes C4_runtime C4_workload Fun List Printf Unix
