(* RW_sk scenario (paper Sec. 3.2 / Figs. 11-12): an ML-statistics-style
   workload — heavily skewed popularity (gamma = 1.25) with a modest 5 %
   write fraction. The writes concentrate on one partition, so one
   thread melts down while the rest idle; write compaction turns the
   pile-up into batched updates and inverts the trend.

   Run with: dune exec examples/rw_sk_compaction.exe *)

module Server = C4_model.Server
module Metrics = C4_model.Metrics
module Experiment = C4_model.Experiment
module Table = C4_stats.Table

let () =
  let workload = C4.Config.workload_rw_sk ~theta:1.25 ~write_fraction:0.05 in
  let table =
    Table.create
      ~columns:
        [
          ("load MRPS", Table.Right);
          ("base p99", Table.Right);
          ("comp p99", Table.Right);
          ("base hot-thread svc", Table.Right);
          ("comp hot-thread svc", Table.Right);
          ("windows", Table.Right);
          ("compacted", Table.Right);
        ]
  in
  List.iter
    (fun mrps ->
      let run system =
        Experiment.run_at ~n_requests:100_000 (C4.Config.full system) ~workload
          ~rate:(mrps /. 1e3)
      in
      let base = run C4.Config.Baseline and comp = run C4.Config.Comp in
      let hot_service (p : Experiment.point) =
        let m = p.result.Server.metrics in
        (Metrics.worker_mean_service m).(Metrics.hottest_worker m)
      in
      let windows, compacted =
        match comp.Experiment.result.Server.compaction with
        | Some s -> (s.C4_kvs.Compaction_log.windows_opened, s.writes_compacted)
        | None -> (0, 0)
      in
      Table.add_row table
        [
          Table.cell_f ~decimals:0 mrps;
          Table.cell_f ~decimals:0 base.Experiment.p99_ns;
          Table.cell_f ~decimals:0 comp.Experiment.p99_ns;
          Table.cell_f ~decimals:0 (hot_service base);
          Table.cell_f ~decimals:0 (hot_service comp);
          Table.cell_i windows;
          Table.cell_i compacted;
        ])
    [ 20.0; 40.0; 60.0; 70.0 ];
  print_endline
    "skewed read-write workload (gamma=1.25, 5% writes), 64 workers, coherence \
     model on:";
  Table.print table;
  print_endline
    "\nBaseline: the hottest thread's service time GROWS with load (readers \
     keep invalidating its lines). Compaction: it FALLS, because buffered \
     writes touch no shared lines and the combined update runs once per \
     window (paper Fig. 11b)."
