(** Directory-based coherence *cost model* for partition data.

    The paper's full-system results (Sec. 7.2) hinge on cache-line
    contention on the hottest partition: the single writer repeatedly
    invalidates the reader set and re-acquires the lines in M state,
    while readers pay dirty-line fetches after every write. The paper's
    own queueing artifact omits this and "significantly underestimates"
    compaction's benefit (Appendix A.9); we close that gap with an
    explicit directory model.

    The model tracks, per partition, the sharer set and owner of the
    cache lines holding the partition's version word and hot data, in a
    MESI-flavoured protocol:

    - a read by core [c] that is not a sharer costs a fetch
      ([t_fetch_shared], or [t_fetch_dirty] if a writer owns the line
      modified) and adds [c] to the sharers;
    - a write by core [c] costs an invalidation round proportional to
      the number of other sharers ([t_invalidate_per_sharer] each, the
      directory multicast + acks) plus an ownership fetch when [c] was
      not the previous owner; sharers collapse to [{c}];
    - repeat accesses by the current owner/sharer are free (L1 hits).

    Costs scale with the number of lines an access touches, so item
    size (Table 2) falls out naturally. This is a timing model only —
    data correctness lives in [c4_kvs]. *)

type params = {
  t_fetch_shared : float;  (** ns for the first line: LLC hit, clean *)
  t_fetch_dirty : float;  (** ns for the first line: dirty in a remote L1 *)
  t_invalidate_per_sharer : float;
      (** ns per invalidated sharer (invalidation/ack round; the lines of
          one partition overlap, so this is charged per sharer, not per
          line) *)
  t_upgrade : float;  (** ns for the first line: S->M upgrade *)
  line_pipeline_factor : float;
      (** marginal cost of each additional line of a multi-line fetch,
          as a fraction of the first line's cost (misses to consecutive
          lines pipeline) *)
  max_tracked_sharers : int;  (** directory precision; beyond = broadcast *)
}

(** Calibrated against the paper's observations: hottest-thread service
    time rises ≈2.4× under the read-write storm at 64 cores, readers pay
    ≈1.6×. *)
val default_params : params

type t

(** [create ~params ~n_cores ~n_partitions ()]. *)
val create : ?params:params -> n_cores:int -> n_partitions:int -> unit -> t

(** [read_cost t ~core ~partition ~lines] returns the extra latency (ns)
    of this read and updates directory state. *)
val read_cost : t -> core:int -> partition:int -> lines:int -> float

(** [write_cost t ~core ~partition ~lines] likewise for a write. *)
val write_cost : t -> core:int -> partition:int -> lines:int -> float

(** Cost of an in-place private-log append: touches no shared lines, so
    always 0 — kept in the interface to make that asymmetry explicit
    where the server model composes costs. *)
val private_append_cost : t -> lines:int -> float

(** Sharer count of a partition's lines (diagnostics / tests). *)
val sharers : t -> partition:int -> int

(** Current owner core if the line is modified. *)
val owner : t -> partition:int -> int option

type stats = {
  invalidations : int;  (** sharer-invalidation messages sent *)
  dirty_fetches : int;
  shared_fetches : int;
  upgrades : int;
}

val stats : t -> stats
val reset : t -> unit
