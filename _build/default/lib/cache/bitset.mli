(** Fixed-capacity mutable bitset (core ids in the directory's sharer
    vectors; server CPUs have up to a few hundred cores, beyond one
    machine word). *)

type t

val create : int -> t
val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit

(** Number of set bits. *)
val cardinal : t -> int

val iter : t -> f:(int -> unit) -> unit
val is_empty : t -> bool
