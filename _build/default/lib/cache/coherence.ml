type params = {
  t_fetch_shared : float;
  t_fetch_dirty : float;
  t_invalidate_per_sharer : float;
  t_upgrade : float;
  line_pipeline_factor : float;
  max_tracked_sharers : int;
}

let default_params =
  {
    t_fetch_shared = 12.0;
    t_fetch_dirty = 30.0;
    t_invalidate_per_sharer = 40.0;
    t_upgrade = 10.0;
    line_pipeline_factor = 0.1;
    max_tracked_sharers = 64;
  }

(* Cost of moving [lines] lines: the first at full latency, the rest
   pipelined behind it. *)
let transfer_cost p ~per_line ~lines =
  per_line *. (1.0 +. (p.line_pipeline_factor *. float_of_int (max 0 (lines - 1))))

(* Directory state of one partition's hot lines. *)
type line_state = {
  sharers : Bitset.t;
  mutable owner : int; (* core holding the line modified; -1 = clean *)
}

type t = {
  params : params;
  lines : line_state array;
  mutable inv_n : int;
  mutable dirty_n : int;
  mutable shared_n : int;
  mutable upg_n : int;
}

let create ?(params = default_params) ~n_cores ~n_partitions () =
  if n_cores <= 0 || n_partitions <= 0 then invalid_arg "Coherence.create";
  {
    params;
    lines =
      Array.init n_partitions (fun _ -> { sharers = Bitset.create n_cores; owner = -1 });
    inv_n = 0;
    dirty_n = 0;
    shared_n = 0;
    upg_n = 0;
  }

let read_cost t ~core ~partition ~lines =
  let st = t.lines.(partition) in
  if Bitset.mem st.sharers core && st.owner = core then 0.0 (* M/E hit *)
  else if Bitset.mem st.sharers core && st.owner = -1 then 0.0 (* S hit *)
  else begin
    (* Miss: fetch the lines (pipelined); dirty if another core owns them. *)
    let dirty = st.owner >= 0 && st.owner <> core in
    let cost =
      if dirty then transfer_cost t.params ~per_line:t.params.t_fetch_dirty ~lines
      else transfer_cost t.params ~per_line:t.params.t_fetch_shared ~lines
    in
    if dirty then begin
      t.dirty_n <- t.dirty_n + lines;
      (* Writeback demotes the writer's M line to shared. *)
      st.owner <- -1
    end
    else t.shared_n <- t.shared_n + lines;
    Bitset.add st.sharers core;
    cost
  end

let write_cost t ~core ~partition ~lines =
  let st = t.lines.(partition) in
  if st.owner = core then 0.0 (* already M: silent store *)
  else begin
    let others =
      let n = Bitset.cardinal st.sharers in
      if Bitset.mem st.sharers core then n - 1 else n
    in
    let others = min others t.params.max_tracked_sharers in
    (* Invalidation/ack rounds serialise at the directory per sharer;
       the lines of one partition pipeline within a round, so line count
       contributes marginally (same factor as fetches). *)
    let inval =
      transfer_cost t.params ~per_line:t.params.t_invalidate_per_sharer ~lines
      *. float_of_int others
    in
    let acquire =
      if Bitset.mem st.sharers core then transfer_cost t.params ~per_line:t.params.t_upgrade ~lines
      else if st.owner >= 0 then transfer_cost t.params ~per_line:t.params.t_fetch_dirty ~lines
      else transfer_cost t.params ~per_line:t.params.t_fetch_shared ~lines
    in
    t.inv_n <- t.inv_n + others;
    if st.owner >= 0 && st.owner <> core then t.dirty_n <- t.dirty_n + lines
    else if not (Bitset.mem st.sharers core) then t.shared_n <- t.shared_n + lines
    else t.upg_n <- t.upg_n + lines;
    Bitset.clear st.sharers;
    Bitset.add st.sharers core;
    st.owner <- core;
    inval +. acquire
  end

let private_append_cost _t ~lines:_ = 0.0

let sharers t ~partition = Bitset.cardinal t.lines.(partition).sharers

let owner t ~partition =
  let o = t.lines.(partition).owner in
  if o < 0 then None else Some o

type stats = {
  invalidations : int;
  dirty_fetches : int;
  shared_fetches : int;
  upgrades : int;
}

let stats t =
  {
    invalidations = t.inv_n;
    dirty_fetches = t.dirty_n;
    shared_fetches = t.shared_n;
    upgrades = t.upg_n;
  }

let reset t =
  Array.iter
    (fun st ->
      Bitset.clear st.sharers;
      st.owner <- -1)
    t.lines;
  t.inv_n <- 0;
  t.dirty_n <- 0;
  t.shared_n <- 0;
  t.upg_n <- 0
