lib/cache/coherence.mli:
