lib/cache/coherence.ml: Array Bitset
