lib/cache/bitset.mli:
