lib/cache/bitset.ml: Array
