type t = { words : int array; cap : int; mutable count : int }

let bits_per_word = 62

let create cap =
  if cap <= 0 then invalid_arg "Bitset.create";
  { words = Array.make (((cap - 1) / bits_per_word) + 1) 0; cap; count = 0 }

let capacity t = t.cap

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  if not (mem t i) then begin
    t.words.(i / bits_per_word) <- t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word));
    t.count <- t.count + 1
  end

let remove t i =
  if mem t i then begin
    t.words.(i / bits_per_word) <- t.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word));
    t.count <- t.count - 1
  end

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.count <- 0

let cardinal t = t.count
let is_empty t = t.count = 0

let iter t ~f =
  for i = 0 to t.cap - 1 do
    if mem t i then f i
  done
