(** The paper's KVS workload taxonomy (Fig. 1): the cross product of
    popularity skew and write fraction splits into four regions, of
    which the two above the write-fraction line (WI_uni, RW_sk) are the
    ones current KVS designs handle poorly and C-4 targets. *)

type t = R_uni | R_sk | WI_uni | RW_sk

(** Classify a workload. The boundaries follow the paper's usage:
    "skewed" at γ ≥ 0.9 (the low end of the Fig. 4 sweep; production
    skews reach 1.4–2.5); under skew, any non-token write fraction
    (≥ 2 %) already puts the workload in RW_sk (Sec. 3.2 shows
    single-digit write fractions bottleneck the hottest thread);
    without skew, "write-intensive" starts at ≥ 50 % writes. *)
val classify : theta:float -> write_fraction:float -> t

val of_workload : C4_workload.Generator.config -> t

(** Is the region one of the two C-4 targets? *)
val problematic : t -> bool

(** Which C-4 mechanism applies: d-CREW for WI_uni, compaction for
    RW_sk, neither below the line. *)
val recommended_mechanism : t -> [ `Dcrew | `Compaction | `Baseline_suffices ]

val name : t -> string
val pp : Format.formatter -> t -> unit
