module Experiment = C4_model.Experiment
module Metrics = C4_model.Metrics
module Server = C4_model.Server
module Generator = C4_workload.Generator
module Table = C4_stats.Table
module Csv = C4_stats.Csv

type scale = [ `Smoke | `Quick | `Full ]

let n_requests = function `Smoke -> 20_000 | `Quick -> 80_000 | `Full -> 400_000

let search_iterations = function `Smoke -> 6 | `Quick -> 8 | `Full -> 10

let tput_at_slo ?(slo = Config.slo_default) ~scale cfg workload =
  Experiment.max_tput_under_slo ~n_requests:(n_requests scale)
    ~iterations:(search_iterations scale) cfg ~workload ~slo_multiplier:slo

let pct x = x /. 100.0

(* ------------------------------------------------------------------ *)

module Fig3 = struct
  type row = {
    write_fraction : float;
    tput_norm : (Config.system * float) list;
    excess_p99 : (Config.system * float) list;
  }

  type t = { ideal_mrps : float; rows : row list }

  let systems = [ Config.Erew; Config.Baseline; Config.Dcrew ]

  let write_fractions = function
    | `Smoke -> [ 50.0 ]
    | `Quick -> [ 0.0; 25.0; 50.0; 75.0; 90.0; 100.0 ]
    | `Full -> [ 0.0; 10.0; 20.0; 30.0; 40.0; 50.0; 60.0; 70.0; 80.0; 90.0; 100.0 ]

  let run ?(scale = `Quick) () =
    let ideal_cfg = Config.model Config.Ideal in
    (* Ideal treats every request as a balanced read, so one calibration
       point covers all write fractions. *)
    let ideal_workload = Config.workload_wi_uni ~write_fraction:0.5 in
    let ideal_mrps, _ = tput_at_slo ~scale ideal_cfg ideal_workload in
    let row write_fraction =
      let workload = Config.workload_wi_uni ~write_fraction:(pct write_fraction) in
      let evaluate system =
        let cfg = Config.model system in
        let mrps, peak = tput_at_slo ~scale cfg workload in
        let ideal_at_peak =
          Experiment.run_at ~n_requests:(n_requests scale) ideal_cfg ~workload
            ~rate:(peak.Experiment.offered_mrps /. 1e3)
        in
        let excess =
          if ideal_at_peak.Experiment.p99_ns <= 0.0 then 1.0
          else peak.Experiment.p99_ns /. ideal_at_peak.Experiment.p99_ns
        in
        (system, mrps /. ideal_mrps, excess)
      in
      let results = List.map evaluate systems in
      {
        write_fraction;
        tput_norm = List.map (fun (s, t, _) -> (s, t)) results;
        excess_p99 = List.map (fun (s, _, e) -> (s, e)) results;
      }
    in
    { ideal_mrps; rows = List.map row (write_fractions scale) }

  let to_table t =
    let columns =
      ("f_wr %", Table.Right)
      :: List.concat_map
           (fun s ->
             [
               (Config.name s ^ " tput/ideal", Table.Right);
               (Config.name s ^ " 99th/ideal", Table.Right);
             ])
           systems
    in
    let table = Table.create ~columns in
    List.iter
      (fun row ->
        let cells =
          Table.cell_f ~decimals:0 row.write_fraction
          :: List.concat_map
               (fun s ->
                 [
                   Table.cell_f (List.assoc s row.tput_norm);
                   Table.cell_f (List.assoc s row.excess_p99);
                 ])
               systems
        in
        Table.add_row table cells)
      t.rows;
    table

  let to_csv t =
    let header =
      "write_fraction"
      :: List.concat_map
           (fun s -> [ Config.name s ^ "_tput_norm"; Config.name s ^ "_excess_p99" ])
           systems
    in
    let csv = Csv.create ~header in
    List.iter
      (fun row ->
        Csv.add_row csv
          (Printf.sprintf "%.0f" row.write_fraction
          :: List.concat_map
               (fun s ->
                 [
                   Printf.sprintf "%.4f" (List.assoc s row.tput_norm);
                   Printf.sprintf "%.4f" (List.assoc s row.excess_p99);
                 ])
               systems))
      t.rows;
    csv
end

(* ------------------------------------------------------------------ *)

module Fig4 = struct
  type cell = {
    theta : float;
    write_fraction : float;
    base_norm : float;
    comp_norm : float;
  }

  type t = { ideal_mrps : float; cells : cell list }

  let grid = function
    | `Smoke -> ([ 0.99 ], [ 35.0 ])
    | `Quick -> ([ 0.9; 0.99; 1.25; 1.4 ], [ 0.0; 5.0; 20.0; 35.0; 55.0; 80.0 ])
    | `Full ->
      ( [ 0.9; 0.99; 1.1; 1.2; 1.25; 1.3; 1.4 ],
        [ 0.0; 5.0; 10.0; 20.0; 30.0; 35.0; 40.0; 50.0; 55.0; 60.0; 70.0; 80.0 ] )

  let run ?(scale = `Quick) () =
    let gammas, write_fractions = grid scale in
    let ideal_mrps, _ =
      tput_at_slo ~scale (Config.model Config.Ideal)
        (Config.workload_wi_uni ~write_fraction:0.0)
    in
    let cells =
      Experiment.surface ~gammas ~write_fractions ~f:(fun ~theta ~write_fraction ->
          let workload = Config.workload_rw_sk ~theta ~write_fraction:(pct write_fraction) in
          let base, _ = tput_at_slo ~scale (Config.model Config.Baseline) workload in
          let comp, _ = tput_at_slo ~scale (Config.model Config.Comp) workload in
          (base /. ideal_mrps, comp /. ideal_mrps))
      |> List.map (fun (theta, write_fraction, (base_norm, comp_norm)) ->
             { theta; write_fraction; base_norm; comp_norm })
    in
    { ideal_mrps; cells }

  let to_table t =
    let table =
      Table.create
        ~columns:
          [
            ("gamma", Table.Right);
            ("f_wr %", Table.Right);
            ("CREW tput/ideal", Table.Right);
            ("Comp tput/ideal", Table.Right);
            ("speedup", Table.Right);
          ]
    in
    List.iter
      (fun c ->
        Table.add_row table
          [
            Table.cell_f c.theta;
            Table.cell_f ~decimals:0 c.write_fraction;
            Table.cell_f c.base_norm;
            Table.cell_f c.comp_norm;
            Table.cell_f (if c.base_norm > 0.0 then c.comp_norm /. c.base_norm else 1.0);
          ])
      t.cells;
    table

  let to_csv t =
    let csv = Csv.create ~header:[ "gamma"; "write_fraction"; "base_norm"; "comp_norm" ] in
    List.iter
      (fun c ->
        Csv.add_row csv
          [
            Printf.sprintf "%.2f" c.theta;
            Printf.sprintf "%.0f" c.write_fraction;
            Printf.sprintf "%.4f" c.base_norm;
            Printf.sprintf "%.4f" c.comp_norm;
          ])
      t.cells;
    csv

  (* One shaded character per cell, gamma down the side, f_wr across. *)
  let to_heatmap t =
    let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
    let shade v =
      let v = Float.max 0.0 (Float.min 1.0 v) in
      shades.(min 9 (int_of_float (v *. 10.0)))
    in
    let gammas = List.sort_uniq compare (List.map (fun c -> c.theta) t.cells) in
    let fwrs = List.sort_uniq compare (List.map (fun c -> c.write_fraction) t.cells) in
    let cell theta write_fraction =
      List.find_opt (fun c -> c.theta = theta && c.write_fraction = write_fraction) t.cells
    in
    let buf = Buffer.create 512 in
    let render title value =
      Buffer.add_string buf (Printf.sprintf "%s (tput/ideal; '@'=1.0, ' '=0)
" title);
      Buffer.add_string buf "gamma\\f_wr ";
      List.iter (fun f -> Buffer.add_string buf (Printf.sprintf "%4.0f" f)) fwrs;
      Buffer.add_char buf '
';
      List.iter
        (fun g ->
          Buffer.add_string buf (Printf.sprintf "      %4.2f " g);
          List.iter
            (fun f ->
              match cell g f with
              | Some c -> Buffer.add_string buf (Printf.sprintf "   %c" (shade (value c)))
              | None -> Buffer.add_string buf "   ?")
            fwrs;
          Buffer.add_char buf '
')
        gammas;
      Buffer.add_char buf '
'
    in
    render "CREW baseline (Fig. 4a)" (fun c -> c.base_norm);
    render "Compaction enabled (Fig. 4b)" (fun c -> c.comp_norm);
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)

module Load_latency = struct
  type series = {
    system : Config.system;
    write_fraction : float;
    points : (float * float) list;
  }

  type t = { series : series list; mean_service : float }

  let rates = function
    | `Smoke -> [ 0.02; 0.05; 0.08 ]
    | `Quick -> [ 0.004; 0.02; 0.04; 0.06; 0.07; 0.08; 0.085; 0.09 ]
    | `Full -> [ 0.004; 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.065; 0.07; 0.075; 0.08; 0.085; 0.09; 0.095 ]

  let curve ~scale system ~write_fraction =
    let workload = Config.workload_wi_uni ~write_fraction:(pct write_fraction) in
    let cfg = Config.full system in
    let points =
      Experiment.load_latency ~n_requests:(n_requests scale) cfg ~workload
        ~rates:(rates scale)
      |> List.map (fun (p : Experiment.point) -> (p.offered_mrps, p.p99_ns))
    in
    { system; write_fraction; points }

  let mean_service () =
    let cfg = Config.full Config.Baseline in
    let probe =
      Experiment.run_at ~n_requests:2_000 cfg
        ~workload:(Config.workload_wi_uni ~write_fraction:0.5)
        ~rate:0.001
    in
    probe.Experiment.result.Server.mean_service

  let fig9 ?(scale = `Quick) () =
    let systems =
      [ Config.Erew; Config.Baseline; Config.Rlu; Config.Comp; Config.Dcrew; Config.Ideal ]
    in
    let series = List.map (fun s -> curve ~scale s ~write_fraction:50.0) systems in
    (* MV-RLU: confirm it misses the 10× SLO even at the lowest load. *)
    let lowest = List.hd (rates scale) in
    let mvrlu =
      Experiment.run_at ~n_requests:(n_requests scale) (Config.full Config.Mv_rlu)
        ~workload:(Config.workload_wi_uni ~write_fraction:0.5)
        ~rate:lowest
    in
    let target = Config.slo_default *. mvrlu.Experiment.result.Server.mean_service in
    ( { series; mean_service = mean_service () },
      mvrlu.Experiment.p99_ns > target )

  let fig10 ?(scale = `Quick) () =
    let series =
      curve ~scale Config.Erew ~write_fraction:50.0
      :: List.concat_map
           (fun write_fraction ->
             List.map
               (fun s -> curve ~scale s ~write_fraction)
               [ Config.Baseline; Config.Dcrew ])
           [ 50.0; 85.0 ]
      @ [ curve ~scale Config.Ideal ~write_fraction:50.0 ]
    in
    { series; mean_service = mean_service () }

  let to_table t =
    let table =
      Table.create
        ~columns:
          [
            ("system", Table.Left);
            ("f_wr %", Table.Right);
            ("load MRPS", Table.Right);
            ("p99 ns", Table.Right);
          ]
    in
    List.iter
      (fun s ->
        List.iter
          (fun (mrps, p99) ->
            Table.add_row table
              [
                Config.name s.system;
                Table.cell_f ~decimals:0 s.write_fraction;
                Table.cell_f ~decimals:1 mrps;
                Table.cell_f ~decimals:0 p99;
              ])
          s.points)
      t.series;
    table

  let to_csv t =
    let csv = Csv.create ~header:[ "system"; "write_fraction"; "load_mrps"; "p99_ns" ] in
    List.iter
      (fun s ->
        List.iter
          (fun (mrps, p99) ->
            Csv.add_row csv
              [
                Config.name s.system;
                Printf.sprintf "%.0f" s.write_fraction;
                Printf.sprintf "%.2f" mrps;
                Printf.sprintf "%.0f" p99;
              ])
          s.points)
      t.series;
    csv
end

(* ------------------------------------------------------------------ *)

module Compaction_study = struct
  type point = {
    offered_mrps : float;
    p99 : float;
    hot_service : float;
    achieved_mrps : float;
  }

  type t = {
    theta : float;
    write_fraction : float;
    base : point list;
    comp : point list;
    base_tput_slo10 : float;
    comp_tput_slo10 : float;
    comp_tput_slo20 : float;
    mean_service : float;
  }

  let rates = function
    | `Smoke -> [ 0.02; 0.05; 0.08 ]
    | `Quick -> [ 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.07; 0.08; 0.09 ]
    | `Full ->
      [ 0.01; 0.02; 0.03; 0.04; 0.045; 0.05; 0.055; 0.06; 0.065; 0.07; 0.075; 0.08; 0.085; 0.09 ]

  let measure ~scale cfg workload =
    List.map
      (fun rate ->
        let p = Experiment.run_at ~n_requests:(n_requests scale) cfg ~workload ~rate in
        let metrics = p.Experiment.result.Server.metrics in
        let hot = Metrics.hottest_worker metrics in
        {
          offered_mrps = p.Experiment.offered_mrps;
          p99 = p.Experiment.p99_ns;
          hot_service = (Metrics.worker_mean_service metrics).(hot);
          achieved_mrps = p.Experiment.achieved_mrps;
        })
      (rates scale)

  let study ?(scale = `Quick) ~theta ~write_fraction () =
    let workload = Config.workload_rw_sk ~theta ~write_fraction:(pct write_fraction) in
    let base_cfg = Config.full Config.Baseline in
    let comp_cfg = Config.full Config.Comp in
    let base = measure ~scale base_cfg workload in
    let comp = measure ~scale comp_cfg workload in
    let base_tput_slo10, _ = tput_at_slo ~scale base_cfg workload in
    let comp_tput_slo10, _ = tput_at_slo ~scale comp_cfg workload in
    let comp_tput_slo20, _ = tput_at_slo ~slo:Config.slo_relaxed ~scale comp_cfg workload in
    let probe =
      Experiment.run_at ~n_requests:2_000 base_cfg ~workload ~rate:0.001
    in
    {
      theta;
      write_fraction;
      base;
      comp;
      base_tput_slo10;
      comp_tput_slo10;
      comp_tput_slo20;
      mean_service = probe.Experiment.result.Server.mean_service;
    }

  let fig11 ?scale () = study ?scale ~theta:1.25 ~write_fraction:5.0 ()
  let fig13 ?scale () = study ?scale ~theta:0.99 ~write_fraction:50.0 ()

  let to_table t =
    let table =
      Table.create
        ~columns:
          [
            ("system", Table.Left);
            ("load MRPS", Table.Right);
            ("p99 ns", Table.Right);
            ("hot svc ns", Table.Right);
          ]
    in
    let rows label points =
      List.iter
        (fun p ->
          Table.add_row table
            [
              label;
              Table.cell_f ~decimals:1 p.offered_mrps;
              Table.cell_f ~decimals:0 p.p99;
              Table.cell_f ~decimals:0 p.hot_service;
            ])
        points
    in
    rows "Baseline" t.base;
    rows "Comp" t.comp;
    table

  let to_csv t =
    let csv =
      Csv.create ~header:[ "system"; "load_mrps"; "p99_ns"; "hot_service_ns"; "achieved_mrps" ]
    in
    let rows label points =
      List.iter
        (fun p ->
          Csv.add_row csv
            [
              label;
              Printf.sprintf "%.2f" p.offered_mrps;
              Printf.sprintf "%.0f" p.p99;
              Printf.sprintf "%.0f" p.hot_service;
              Printf.sprintf "%.2f" p.achieved_mrps;
            ])
        points
    in
    rows "Baseline" t.base;
    rows "Comp" t.comp;
    csv
end

(* ------------------------------------------------------------------ *)

module Fig12 = struct
  type thread_row = { rank : int; tput_mrps : float; utilization : float }

  type t = {
    base_load_mrps : float;
    comp_load_mrps : float;
    base : thread_row list;
    comp : thread_row list;
    base_hot_tput : float;
    comp_hot_tput : float;
  }

  let per_thread metrics =
    let tputs = Metrics.worker_throughput_mrps metrics in
    let utils = Metrics.worker_utilization metrics in
    let rows =
      Array.to_list (Array.mapi (fun i t -> (t, utils.(i))) tputs)
      |> List.sort (fun (a, _) (b, _) -> compare b a)
      |> List.mapi (fun rank (tput_mrps, utilization) -> { rank; tput_mrps; utilization })
    in
    rows

  let run ?(scale = `Quick) () =
    let workload = Config.workload_rw_sk ~theta:1.25 ~write_fraction:0.05 in
    let base_cfg = Config.full Config.Baseline in
    let comp_cfg = Config.full Config.Comp in
    let base_load, _ = tput_at_slo ~scale base_cfg workload in
    let comp_load, _ = tput_at_slo ~scale comp_cfg workload in
    let at cfg mrps =
      (Experiment.run_at ~n_requests:(n_requests scale) cfg ~workload ~rate:(mrps /. 1e3))
        .Experiment.result
        .Server.metrics
    in
    let base_metrics = at base_cfg base_load in
    let comp_metrics = at comp_cfg comp_load in
    let hot_tput metrics =
      let hot = Metrics.hottest_worker metrics in
      (Metrics.worker_throughput_mrps metrics).(hot)
    in
    {
      base_load_mrps = base_load;
      comp_load_mrps = comp_load;
      base = per_thread base_metrics;
      comp = per_thread comp_metrics;
      base_hot_tput = hot_tput base_metrics;
      comp_hot_tput = hot_tput comp_metrics;
    }

  (* A readable subset: every 8th rank, as the paper plots a subset. *)
  let sampled rows =
    List.filter (fun r -> r.rank mod 8 = 0 || r.rank >= List.length rows - 2) rows

  let to_table t =
    let table =
      Table.create
        ~columns:
          [
            ("system", Table.Left);
            ("rank", Table.Right);
            ("tput MRPS", Table.Right);
            ("util", Table.Right);
          ]
    in
    let rows label data =
      List.iter
        (fun r ->
          Table.add_row table
            [
              label;
              Table.cell_i r.rank;
              Table.cell_f r.tput_mrps;
              Table.cell_pct r.utilization;
            ])
        (sampled data)
    in
    rows "Baseline" t.base;
    rows "Comp" t.comp;
    table

  let to_csv t =
    let csv = Csv.create ~header:[ "system"; "rank"; "tput_mrps"; "utilization" ] in
    let rows label data =
      List.iter
        (fun r ->
          Csv.add_row csv
            [
              label;
              string_of_int r.rank;
              Printf.sprintf "%.3f" r.tput_mrps;
              Printf.sprintf "%.3f" r.utilization;
            ])
        data
    in
    rows "Baseline" t.base;
    rows "Comp" t.comp;
    csv
end

(* ------------------------------------------------------------------ *)

module Table2 = struct
  type row = {
    item : C4_kvs.Item.t;
    base_mrps : float;
    comp_mrps : float;
    hot_speedup : float;
    other_speedup : float;
  }

  type t = row list

  let hot_and_other_service metrics =
    let hot = Metrics.hottest_worker metrics in
    let services = Metrics.worker_mean_service metrics in
    let others =
      let total = ref 0.0 and n = ref 0 in
      Array.iteri
        (fun i s ->
          if i <> hot && s > 0.0 then begin
            total := !total +. s;
            incr n
          end)
        services;
      if !n = 0 then 0.0 else !total /. float_of_int !n
    in
    (services.(hot), others)

  let run ?(scale = `Quick) () =
    List.map
      (fun item ->
        (* The request stream must carry the item's value size: the
           service model prices each request by what it moves. *)
        let workload =
          {
            (Config.workload_rw_sk ~theta:1.25 ~write_fraction:0.05) with
            Generator.value_size = item.C4_kvs.Item.value_size;
          }
        in
        let base_cfg = Config.full ~item Config.Baseline in
        let comp_cfg = Config.full ~item Config.Comp in
        let base_mrps, base_peak = tput_at_slo ~scale base_cfg workload in
        let comp_mrps, comp_peak = tput_at_slo ~scale comp_cfg workload in
        let base_hot, base_other =
          hot_and_other_service base_peak.Experiment.result.Server.metrics
        in
        let comp_hot, comp_other =
          hot_and_other_service comp_peak.Experiment.result.Server.metrics
        in
        let ratio a b = if b > 0.0 then a /. b else 1.0 in
        {
          item;
          base_mrps;
          comp_mrps;
          hot_speedup = ratio base_hot comp_hot;
          other_speedup = ratio base_other comp_other;
        })
      [ C4_kvs.Item.tiny; C4_kvs.Item.medium; C4_kvs.Item.large ]

  let to_table t =
    let table =
      Table.create
        ~columns:
          [
            ("item", Table.Left);
            ("base MRPS", Table.Right);
            ("comp MRPS", Table.Right);
            ("tput gain", Table.Right);
            ("hot speedup", Table.Right);
            ("other speedup", Table.Right);
          ]
    in
    List.iter
      (fun r ->
        Table.add_row table
          [
            C4_kvs.Item.name r.item;
            Table.cell_f ~decimals:1 r.base_mrps;
            Table.cell_f ~decimals:1 r.comp_mrps;
            Table.cell_f (if r.base_mrps > 0.0 then r.comp_mrps /. r.base_mrps else 1.0);
            Table.cell_f r.hot_speedup;
            Table.cell_f r.other_speedup;
          ])
      t;
    table

  let to_csv t =
    let csv =
      Csv.create
        ~header:[ "item"; "base_mrps"; "comp_mrps"; "hot_speedup"; "other_speedup" ]
    in
    List.iter
      (fun r ->
        Csv.add_row csv
          [
            C4_kvs.Item.name r.item;
            Printf.sprintf "%.2f" r.base_mrps;
            Printf.sprintf "%.2f" r.comp_mrps;
            Printf.sprintf "%.2f" r.hot_speedup;
            Printf.sprintf "%.2f" r.other_speedup;
          ])
      t;
    csv
end

(* ------------------------------------------------------------------ *)

module Ewt_study = struct
  type row = {
    write_fraction : float;
    load_mrps : float;
    avg_entries : float;
    max_entries : int;
  }

  type t = row list

  let run ?(scale = `Quick) () =
    let cfg = Config.model Config.Dcrew in
    List.map
      (fun write_fraction ->
        let workload = Config.workload_wi_uni ~write_fraction:(pct write_fraction) in
        (* The paper reports occupancy at 90 MRPS. *)
        let rate = 0.09 in
        let p = Experiment.run_at ~n_requests:(n_requests scale) cfg ~workload ~rate in
        match p.Experiment.result.Server.ewt with
        | None -> { write_fraction; load_mrps = rate *. 1e3; avg_entries = 0.0; max_entries = 0 }
        | Some stats ->
          {
            write_fraction;
            load_mrps = rate *. 1e3;
            avg_entries = stats.C4_nic.Ewt.average;
            max_entries = stats.C4_nic.Ewt.peak;
          })
      [ 50.0; 85.0 ]

  let to_table t =
    let table =
      Table.create
        ~columns:
          [
            ("f_wr %", Table.Right);
            ("load MRPS", Table.Right);
            ("avg EWT entries", Table.Right);
            ("max EWT entries", Table.Right);
          ]
    in
    List.iter
      (fun r ->
        Table.add_row table
          [
            Table.cell_f ~decimals:0 r.write_fraction;
            Table.cell_f ~decimals:0 r.load_mrps;
            Table.cell_f ~decimals:1 r.avg_entries;
            Table.cell_i r.max_entries;
          ])
      t;
    table
end

(* ------------------------------------------------------------------ *)

module Eqn1 = struct
  type t = {
    t_b : float;
    t_c : float;
    t_f : float;
    n_avg : float;
    a_model : float;
    a_measured : float;
  }

  let acceleration ~t_b ~t_c ~t_f ~n = (t_b +. t_f) /. ((t_b /. n) +. t_c +. t_f)

  let run ?(scale = `Quick) () =
    let workload = Config.workload_rw_sk ~theta:1.25 ~write_fraction:0.05 in
    let base_cfg = Config.full Config.Baseline in
    let comp_cfg = Config.full Config.Comp in
    (* Measure near the baseline's saturation, where contention peaks. *)
    let base_mrps, base_peak = tput_at_slo ~scale base_cfg workload in
    let comp_point =
      Experiment.run_at ~n_requests:(n_requests scale) comp_cfg ~workload
        ~rate:(Float.max 0.07 (base_mrps /. 1e3))
    in
    let hot_service metrics =
      (Metrics.worker_mean_service metrics).(Metrics.hottest_worker metrics)
    in
    let base_hot = hot_service base_peak.Experiment.result.Server.metrics in
    let comp_hot = hot_service comp_point.Experiment.result.Server.metrics in
    let params = Server.default_config.Server.service in
    let t_f = params.C4_model.Service.t_fixed in
    let t_c = params.C4_model.Service.t_comp in
    (* T_b: baseline per-write on-core time at contention = hot thread's
       measured mean minus the fixed part. *)
    let t_b = Float.max 1.0 (base_hot -. t_f) in
    let n_avg =
      match comp_point.Experiment.result.Server.compaction with
      | Some s when s.C4_kvs.Compaction_log.windows_opened > 0 ->
        float_of_int s.C4_kvs.Compaction_log.writes_compacted
        /. float_of_int s.C4_kvs.Compaction_log.windows_opened
      | _ -> 1.0
    in
    {
      t_b;
      t_c;
      t_f;
      n_avg;
      a_model = acceleration ~t_b ~t_c ~t_f ~n:n_avg;
      a_measured = (if comp_hot > 0.0 then base_hot /. comp_hot else 1.0);
    }

  let to_table t =
    let table = Table.create ~columns:[ ("quantity", Table.Left); ("value", Table.Right) ] in
    List.iter
      (fun (k, v) -> Table.add_row table [ k; v ])
      [
        ("T_b (ns)", Table.cell_f ~decimals:0 t.t_b);
        ("T_c (ns)", Table.cell_f ~decimals:0 t.t_c);
        ("T_f (ns)", Table.cell_f ~decimals:0 t.t_f);
        ("N (avg window)", Table.cell_f ~decimals:1 t.n_avg);
        ("A model", Table.cell_f t.a_model);
        ("A measured", Table.cell_f t.a_measured);
      ];
    table
end
