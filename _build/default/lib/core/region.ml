type t = R_uni | R_sk | WI_uni | RW_sk

let skew_boundary = 0.9
let write_intensive_boundary = 0.5

(* Under heavy skew even single-digit write fractions overload the
   hottest thread (Sec. 3.2), so the skewed read-write region starts at
   a token write presence, not at 50 %. *)
let skewed_write_boundary = 0.02

let classify ~theta ~write_fraction =
  if theta >= skew_boundary then
    if write_fraction >= skewed_write_boundary then RW_sk else R_sk
  else if write_fraction >= write_intensive_boundary then WI_uni
  else R_uni

let of_workload (w : C4_workload.Generator.config) =
  classify ~theta:w.theta ~write_fraction:w.write_fraction

let problematic = function WI_uni | RW_sk -> true | R_uni | R_sk -> false

let recommended_mechanism = function
  | WI_uni -> `Dcrew
  | RW_sk -> `Compaction
  | R_uni | R_sk -> `Baseline_suffices

let name = function
  | R_uni -> "R_uni"
  | R_sk -> "R_sk"
  | WI_uni -> "WI_uni"
  | RW_sk -> "RW_sk"

let pp ppf t = Format.pp_print_string ppf (name t)
