lib/core/config.mli: C4_kvs C4_model C4_workload
