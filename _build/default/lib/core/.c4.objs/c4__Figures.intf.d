lib/core/figures.mli: C4_kvs C4_stats Config
