lib/core/figures.ml: Array Buffer C4_kvs C4_model C4_nic C4_stats C4_workload Config Float List Printf
