lib/core/region.mli: C4_workload Format
