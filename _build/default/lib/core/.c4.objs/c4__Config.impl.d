lib/core/config.ml: C4_cache C4_kvs C4_model C4_workload Printf String
