lib/core/region.ml: C4_workload Format
