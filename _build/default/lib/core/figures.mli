(** One runner per evaluation figure/table. Each produces a typed result
    plus a rendered text table whose rows mirror what the paper plots,
    so `bench/main.exe` regenerates the entire evaluation.

    [scale] trades fidelity for runtime: [`Smoke] for tests (seconds),
    [`Quick] for the default bench run (a few minutes total), [`Full]
    for dense grids and long runs. *)

type scale = [ `Smoke | `Quick | `Full ]

(** Requests per simulation at this scale. *)
val n_requests : scale -> int

(** {1 Fig. 3 — WI_uni: throughput under SLO and excess tail latency
    versus write fraction (queueing model)} *)

module Fig3 : sig
  type row = {
    write_fraction : float;  (** percent *)
    tput_norm : (Config.system * float) list;
        (** peak throughput under 10× SLO, normalised to Ideal *)
    excess_p99 : (Config.system * float) list;
        (** p99 at own peak over Ideal's p99 at the same load *)
  }

  type t = { ideal_mrps : float; rows : row list }

  val run : ?scale:scale -> unit -> t
  val to_table : t -> C4_stats.Table.t
  val to_csv : t -> C4_stats.Csv.t
end

(** {1 Fig. 4 — RW_sk surface: throughput under SLO over (γ, f_wr),
    CREW baseline versus compaction (queueing model)} *)

module Fig4 : sig
  type cell = { theta : float; write_fraction : float; base_norm : float; comp_norm : float }

  type t = { ideal_mrps : float; cells : cell list }

  val run : ?scale:scale -> unit -> t
  val to_table : t -> C4_stats.Table.t
  val to_csv : t -> C4_stats.Csv.t

  (** Text heat maps of the two surfaces (like the paper's 3-D plots
      viewed from above): one character cell per (γ, f_wr) point. *)
  val to_heatmap : t -> string
end

(** {1 Figs. 9 & 10 — WI_uni load–latency curves (full-system)} *)

module Load_latency : sig
  type series = {
    system : Config.system;
    write_fraction : float;
    points : (float * float) list;  (** (offered MRPS, p99 ns) *)
  }

  type t = { series : series list; mean_service : float }

  (** Fig. 9: f_wr = 50 %, systems EREW/Baseline/RLU/Comp/d-CREW/Ideal,
      plus the MV-RLU "cannot meet SLO at the lowest load" check. *)
  val fig9 : ?scale:scale -> unit -> t * bool
      (** the boolean: MV-RLU failed the 10× SLO at the lowest load *)

  (** Fig. 10: f_wr ∈ {50, 85} for EREW/Baseline/d-CREW/Ideal. *)
  val fig10 : ?scale:scale -> unit -> t

  val to_table : t -> C4_stats.Table.t
  val to_csv : t -> C4_stats.Csv.t
end

(** {1 Figs. 11–13 — RW_sk with compaction (full-system)} *)

module Compaction_study : sig
  type point = {
    offered_mrps : float;
    p99 : float;
    hot_service : float;  (** hottest thread's mean on-core time, ns *)
    achieved_mrps : float;
  }

  type t = {
    theta : float;
    write_fraction : float;
    base : point list;
    comp : point list;
    base_tput_slo10 : float;
    comp_tput_slo10 : float;
    comp_tput_slo20 : float;
    mean_service : float;
  }

  (** Fig. 11: γ = 1.25, f_wr = 5 %. *)
  val fig11 : ?scale:scale -> unit -> t

  (** Fig. 13: γ = 0.99, f_wr = 50 %. *)
  val fig13 : ?scale:scale -> unit -> t

  val to_table : t -> C4_stats.Table.t
  val to_csv : t -> C4_stats.Csv.t
end

(** {1 Fig. 12 — per-thread throughput and utilisation at peak} *)

module Fig12 : sig
  type thread_row = { rank : int; tput_mrps : float; utilization : float }

  type t = {
    base_load_mrps : float;
    comp_load_mrps : float;
    base : thread_row list;  (** sorted by decreasing throughput *)
    comp : thread_row list;
    base_hot_tput : float;
    comp_hot_tput : float;
  }

  val run : ?scale:scale -> unit -> t
  val to_table : t -> C4_stats.Table.t
  val to_csv : t -> C4_stats.Csv.t
end

(** {1 Table 2 — item-size sensitivity of compaction} *)

module Table2 : sig
  type row = {
    item : C4_kvs.Item.t;
    base_mrps : float;
    comp_mrps : float;
    hot_speedup : float;  (** hottest thread's service-time reduction *)
    other_speedup : float;
  }

  type t = row list

  val run : ?scale:scale -> unit -> t
  val to_table : t -> C4_stats.Table.t
  val to_csv : t -> C4_stats.Csv.t
end

(** {1 Sec. 7.1.1 — EWT occupancy} *)

module Ewt_study : sig
  type row = {
    write_fraction : float;
    load_mrps : float;
    avg_entries : float;
    max_entries : int;
  }

  type t = row list

  val run : ?scale:scale -> unit -> t
  val to_table : t -> C4_stats.Table.t
end

(** {1 Eqn. (1) — compaction acceleration model versus measurement} *)

module Eqn1 : sig
  type t = {
    t_b : float;  (** baseline service time used in the model *)
    t_c : float;
    t_f : float;
    n_avg : float;  (** measured mean compaction window size *)
    a_model : float;
    a_measured : float;  (** hottest-thread service-time ratio *)
  }

  val run : ?scale:scale -> unit -> t
  val to_table : t -> C4_stats.Table.t
end
