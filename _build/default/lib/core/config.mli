(** The six evaluated system configurations (paper Sec. 6) plus the
    workloads of every figure, as ready-made values.

    All build on {!C4_model.Server.config}; "full-system" variants add
    the coherence cost layer, mirroring the split between the paper's
    queueing-model results (Figs. 3–4) and cycle-accurate results
    (Figs. 9–13, Table 2). *)

type system =
  | Baseline  (** unmodified MICA: CREW concurrency control *)
  | Erew
  | Ideal  (** read-only upper bound *)
  | Rlu
  | Mv_rlu
  | Dcrew  (** C-4's dynamic write partitioning *)
  | Comp  (** C-4's software write compaction over CREW *)

val all : system list
val name : system -> string
val of_name : string -> (system, string) result

(** Queueing-model configuration (Sec. 3): no coherence layer. *)
val model : ?seed:int -> system -> C4_model.Server.config

(** Full-system configuration: adds the coherence cost layer, used for
    the Figs. 9–13 and Table 2 reproductions. *)
val full : ?seed:int -> ?item:C4_kvs.Item.t -> system -> C4_model.Server.config

(** Workloads as used in the paper's experiments. [rate] is filled in by
    the experiment drivers. *)
val workload_wi_uni : write_fraction:float -> C4_workload.Generator.config

val workload_rw_sk : theta:float -> write_fraction:float -> C4_workload.Generator.config

(** The paper's SLO: 99th-percentile target of [multiplier]×S̄. *)
val slo_default : float

val slo_relaxed : float
