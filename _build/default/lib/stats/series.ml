type t = {
  mutable times : float list; (* change points, most recent first *)
  mutable values : float list;
  mutable peak : float;
}

let create () = { times = []; values = []; peak = neg_infinity }

let set t ~time v =
  (match t.times with
  | last :: _ when time < last -> invalid_arg "Series.set: time went backwards"
  | _ -> ());
  t.times <- time :: t.times;
  t.values <- v :: t.values;
  if v > t.peak then t.peak <- v

let mean_over t ~start_time ~end_time =
  if end_time <= start_time then 0.0
  else begin
    (* Change points are stored most recent first; walk back, clipping
       each interval to the window. *)
    let rec loop times values upper acc =
      match (times, values) with
      | [], [] -> acc
      | time :: times', v :: values' ->
        if upper <= start_time then acc
        else begin
          let lo = Float.max time start_time in
          let hi = Float.min upper end_time in
          let acc = if hi > lo then acc +. (v *. (hi -. lo)) else acc in
          if time <= start_time then acc else loop times' values' time acc
        end
      | _ -> assert false
    in
    loop t.times t.values infinity 0.0 /. (end_time -. start_time)
  end

let max_value t = if t.peak = neg_infinity then 0.0 else t.peak

let reset t =
  t.times <- [];
  t.values <- [];
  t.peak <- neg_infinity
