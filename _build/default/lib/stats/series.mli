(** Time-weighted series for utilisation-style metrics.

    A worker is busy or idle over intervals of simulated time; the mean
    of a step function over a window is the time-weighted average of its
    values, not the average of its change points. *)

type t

val create : unit -> t

(** [set t ~time v]: the tracked quantity takes value [v] from [time]
    onward. Times must be nondecreasing. *)
val set : t -> time:float -> float -> unit

(** Time-weighted mean over [(start_time, end_time)]. Requires at least
    one [set] at or before [start_time]; the value in force at
    [start_time] is used for the leading subinterval. *)
val mean_over : t -> start_time:float -> end_time:float -> float

(** Maximum value observed at any change point. *)
val max_value : t -> float

val reset : t -> unit
