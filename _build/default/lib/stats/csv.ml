type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Csv.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let escape cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if not needs_quoting then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let row_to_string row = String.concat "," (List.map escape row)

let to_string t =
  String.concat "\n" (row_to_string t.header :: List.rev_map row_to_string t.rows)
  ^ "\n"

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
