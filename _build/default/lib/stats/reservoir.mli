(** Fixed-size uniform reservoir sample (Vitter's algorithm R) for exact
    small-sample quantiles and distribution snapshots when the stream is
    too long to retain. *)

type t

(** [create ~capacity ~seed] holds at most [capacity] samples. *)
val create : capacity:int -> seed:int -> t

val add : t -> float -> unit
val count : t -> int

(** Samples currently retained, unsorted. *)
val samples : t -> float array

(** Exact quantile over the retained samples (nearest-rank). *)
val quantile : t -> float -> float

val reset : t -> unit
