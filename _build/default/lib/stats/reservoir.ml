type t = {
  buf : float array;
  mutable seen : int;
  rng : int -> int; (* bounded random int *)
}

let create ~capacity ~seed =
  assert (capacity > 0);
  let state = ref (Int64.of_int (seed lxor 0x5DEECE66D)) in
  let rng bound =
    (* SplitMix64 step; local to avoid a dependency cycle with dsim. *)
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    (Int64.to_int z land ((1 lsl 62) - 1)) mod bound
  in
  { buf = Array.make capacity 0.0; seen = 0; rng }

let add t x =
  let cap = Array.length t.buf in
  if t.seen < cap then t.buf.(t.seen) <- x
  else begin
    let j = t.rng (t.seen + 1) in
    if j < cap then t.buf.(j) <- x
  end;
  t.seen <- t.seen + 1

let count t = t.seen

let samples t =
  let n = min t.seen (Array.length t.buf) in
  Array.sub t.buf 0 n

let quantile t q =
  let s = samples t in
  if Array.length s = 0 then 0.0
  else begin
    Array.sort compare s;
    let n = Array.length s in
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    s.(rank - 1)
  end

let reset t = t.seen <- 0
