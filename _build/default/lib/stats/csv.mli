(** Minimal CSV writer, mirroring the paper artifact's CSV outputs so the
    CLI's results can be diffed and re-plotted externally. *)

type t

(** Start a CSV with the given header row. *)
val create : header:string list -> t

val add_row : t -> string list -> unit

(** RFC-4180 quoting is applied only where needed. *)
val to_string : t -> string

val save : t -> path:string -> unit
