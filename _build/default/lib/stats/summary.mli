(** Streaming moments via Welford's algorithm: numerically stable mean and
    variance without retaining samples. *)

type t

val create : unit -> t

(** Record one observation. *)
val add : t -> float -> unit

val count : t -> int
val mean : t -> float

(** Unbiased sample variance; 0 for fewer than two observations. *)
val variance : t -> float

val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

(** Merge [other] into [t] (parallel Welford combination). *)
val merge : t -> other:t -> unit

val reset : t -> unit
val pp : Format.formatter -> t -> unit
