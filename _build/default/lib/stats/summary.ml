type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.lo
let max t = t.hi
let total t = t.total

let merge t ~other =
  if other.n > 0 then begin
    let n1 = float_of_int t.n and n2 = float_of_int other.n in
    let n = n1 +. n2 in
    let delta = other.mean -. t.mean in
    let mean = t.mean +. (delta *. n2 /. n) in
    let m2 = t.m2 +. other.m2 +. (delta *. delta *. n1 *. n2 /. n) in
    t.n <- t.n + other.n;
    t.mean <- mean;
    t.m2 <- m2;
    if other.lo < t.lo then t.lo <- other.lo;
    if other.hi > t.hi then t.hi <- other.hi;
    t.total <- t.total +. other.total
  end

let reset t =
  t.n <- 0;
  t.mean <- 0.0;
  t.m2 <- 0.0;
  t.lo <- infinity;
  t.hi <- neg_infinity;
  t.total <- 0.0

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
    (stddev t) t.lo t.hi
