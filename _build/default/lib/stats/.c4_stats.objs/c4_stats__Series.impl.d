lib/stats/series.ml: Float
