lib/stats/reservoir.mli:
