lib/stats/reservoir.ml: Array Int64
