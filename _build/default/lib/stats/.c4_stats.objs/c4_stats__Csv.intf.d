lib/stats/csv.mli:
