lib/stats/table.mli:
