lib/stats/series.mli:
