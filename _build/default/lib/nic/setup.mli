(** NeBuLa setup phase (Sec. 5.1).

    Before traffic flows, the KVS configures the NIC through ioctl-like
    calls: it registers its receive queues and packet buffers, describes
    the application header's field geometry (so d-CREW can extract key
    and request type), and communicates the bucket count behind f().
    Only a fully configured NIC activates; this module is that state
    machine, with the validation a driver would perform. *)

type t

val create : unit -> t

type error =
  [ `Already_active
  | `Invalid_layout of string
  | `Invalid of string
  | `Not_ready of string list  (** missing steps *) ]

val error_to_string : error -> string

(** Register [n] receive queues (one per worker thread). *)
val register_queues : t -> n_threads:int -> (unit, error) result

(** Preallocate the NIC-managed packet buffer pool. *)
val register_buffers : t -> n_buffers:int -> (unit, error) result

(** Describe the application header (offsets/lengths, Sec. 5.1). *)
val register_layout : t -> Header.layout -> (unit, error) result

(** Communicate the index geometry behind f(). *)
val register_index : t -> n_buckets:int -> n_partitions:int -> (unit, error) result

(** Activate: all four registrations must have happened. On success the
    NIC hands back the configured parser and the RPC stack. *)
val activate : t -> (Header.t * Rpc.t, error) result

val is_active : t -> bool

(** Steps still missing before activation. *)
val missing : t -> string list
