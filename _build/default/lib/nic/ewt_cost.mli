(** EWT hardware provisioning model (Sec. 5.2).

    The paper sizes the table with CACTI 6.5 at 22 nm / 2 GHz: a
    128-entry EWT with a 30-bit partition-id CAM and 12 bits of
    direct-mapped RAM (6-bit thread id + 6-bit counter) costs
    0.004 mm² and 6.85 mW — 0.002 % of a 280 W server chip.

    This module scales those published points linearly in entry count
    and field widths, with CAM bits weighted heavier than RAM bits
    (content-addressable cells burn more area and energy per bit). It
    exists so the capacity ablation can report the hardware budget next
    to the performance numbers. *)

type geometry = {
  entries : int;
  partition_bits : int;  (** CAM portion *)
  thread_bits : int;  (** RAM portion *)
  counter_bits : int;  (** RAM portion *)
}

(** The paper's configuration: 128 × (30 CAM + 6 + 6 RAM). *)
val paper_geometry : geometry

(** Geometry needed for a given deployment. [max_outstanding_writes]
    sizes the counter; [n_threads] the thread id; [n_partitions] the
    partition tag. Entry count rounds up to a power of two with
    [headroom] multiplicative slack (default 1.4, the paper's
    overprovisioning for transient bursts). *)
val size_for :
  ?headroom:float -> n_partitions:int -> n_threads:int -> max_outstanding_writes:int ->
  unit -> geometry

val area_mm2 : geometry -> float
val dynamic_power_mw : geometry -> float

(** Fraction of a [chip_watts] (default 280 W) server chip's power. *)
val power_fraction : ?chip_watts:float -> geometry -> float

val pp : Format.formatter -> geometry -> unit
