type layout = { opcode_offset : int; key_offset : int; key_length : int }

let default_layout = { opcode_offset = 0; key_offset = 1; key_length = 8 }

type t = { layout : layout; n_buckets : int; n_partitions : int }

let register ~layout ~n_buckets ~n_partitions =
  if layout.key_length < 1 || layout.key_length > 8 then
    invalid_arg "Header.register: key_length must be in 1..8";
  if n_buckets <= 0 || n_partitions <= 0 then invalid_arg "Header.register";
  { layout; n_buckets; n_partitions }

type parsed = { op : [ `Read | `Write ]; key : int; partition : int }

(* Same mix as C4_kvs.Hash.mix_int; duplicated numerically (not as a
   dependency) because the NIC and KVS are distinct subsystems that
   must merely agree on f() — which this constant layout guarantees. *)
let mix_int key =
  let z = Int64.of_int key in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land ((1 lsl 62) - 1)

let partition_of_key t key =
  let bucket = mix_int key mod t.n_buckets in
  if t.n_partitions >= t.n_buckets then bucket mod t.n_partitions
  else bucket * t.n_partitions / t.n_buckets

let read_key_le packet ~offset ~length =
  let v = ref 0L in
  for i = length - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get packet (offset + i))))
  done;
  Int64.to_int !v

let write_key_le packet ~offset ~length key =
  let v = ref (Int64.of_int key) in
  for i = 0 to length - 1 do
    Bytes.set packet (offset + i) (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
    v := Int64.shift_right_logical !v 8
  done

let layout t = t.layout

let header_size t =
  max (t.layout.opcode_offset + 1) (t.layout.key_offset + t.layout.key_length)

let parse t packet =
  let { opcode_offset; key_offset; key_length } = t.layout in
  let needed = max (opcode_offset + 1) (key_offset + key_length) in
  if Bytes.length packet < needed then
    Error
      (Printf.sprintf "short packet: %d bytes, need %d" (Bytes.length packet) needed)
  else begin
    match Char.code (Bytes.get packet opcode_offset) with
    | 0 | 1 ->
      let op = if Bytes.get packet opcode_offset = '\000' then `Read else `Write in
      let key = read_key_le packet ~offset:key_offset ~length:key_length in
      Ok { op; key; partition = partition_of_key t key }
    | c -> Error (Printf.sprintf "unknown opcode %d" c)
  end

let encode t ~op ~key ~value =
  let { opcode_offset; key_offset; key_length } = t.layout in
  let header_end = max (opcode_offset + 1) (key_offset + key_length) in
  let packet = Bytes.make (header_end + Bytes.length value) '\000' in
  Bytes.set packet opcode_offset (match op with `Read -> '\000' | `Write -> '\001');
  write_key_le packet ~offset:key_offset ~length:key_length key;
  Bytes.blit value 0 packet header_end (Bytes.length value);
  packet
