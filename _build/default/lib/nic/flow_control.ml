type t = {
  cap : int;
  mutable current : int;
  mutable ok_n : int;
  mutable drop_n : int;
}

let create ~max_outstanding =
  if max_outstanding <= 0 then invalid_arg "Flow_control.create";
  { cap = max_outstanding; current = 0; ok_n = 0; drop_n = 0 }

let admit t =
  if t.current < t.cap then begin
    t.current <- t.current + 1;
    t.ok_n <- t.ok_n + 1;
    true
  end
  else begin
    t.drop_n <- t.drop_n + 1;
    false
  end

let release t =
  if t.current <= 0 then invalid_arg "Flow_control.release: nothing in flight";
  t.current <- t.current - 1

let in_flight t = t.current
let admitted t = t.ok_n
let rejected t = t.drop_n

let drop_rate t =
  let total = t.ok_n + t.drop_n in
  if total = 0 then 0.0 else float_of_int t.drop_n /. float_of_int total
