type geometry = {
  entries : int;
  partition_bits : int;
  thread_bits : int;
  counter_bits : int;
}

let paper_geometry = { entries = 128; partition_bits = 30; thread_bits = 6; counter_bits = 6 }

(* A CAM cell costs roughly twice a RAM cell in both area and switching
   energy (9-10T vs 6T cells plus match lines); express a geometry as
   RAM-equivalent bits and anchor the scale on the paper's CACTI
   numbers for [paper_geometry]. *)
let cam_weight = 2.0

let equivalent_bits g =
  float_of_int g.entries
  *. ((cam_weight *. float_of_int g.partition_bits)
     +. float_of_int (g.thread_bits + g.counter_bits))

let paper_area_mm2 = 0.004
let paper_power_mw = 6.85
let paper_bits = equivalent_bits paper_geometry

let area_mm2 g = paper_area_mm2 *. equivalent_bits g /. paper_bits
let dynamic_power_mw g = paper_power_mw *. equivalent_bits g /. paper_bits

let power_fraction ?(chip_watts = 280.0) g =
  dynamic_power_mw g /. 1000.0 /. chip_watts

let ceil_log2 n =
  let rec loop bits capacity = if capacity >= n then bits else loop (bits + 1) (capacity * 2) in
  loop 0 1

let size_for ?(headroom = 1.4) ~n_partitions ~n_threads ~max_outstanding_writes () =
  if n_partitions <= 0 || n_threads <= 0 || max_outstanding_writes <= 0 then
    invalid_arg "Ewt_cost.size_for";
  (* Entries must absorb the bandwidth-delay product of in-flight
     writes; callers pass their measured/estimated peak, we add slack
     and round to a power of two. *)
  let needed = int_of_float (ceil (headroom *. float_of_int max_outstanding_writes)) in
  let entries = 1 lsl ceil_log2 (max needed 1) in
  {
    entries;
    partition_bits = ceil_log2 n_partitions;
    thread_bits = ceil_log2 n_threads;
    counter_bits = ceil_log2 (max_outstanding_writes + 1);
  }

let pp ppf g =
  Format.fprintf ppf "%d x (%db CAM + %db RAM): %.4f mm^2, %.2f mW" g.entries
    g.partition_bits
    (g.thread_bits + g.counter_bits)
    (area_mm2 g) (dynamic_power_mw g)
