lib/nic/flow_control.mli:
