lib/nic/pipeline.ml: Ewt Flow_control Header Jbsq Queue
