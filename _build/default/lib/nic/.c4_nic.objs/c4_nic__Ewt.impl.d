lib/nic/ewt.ml: Hashtbl
