lib/nic/flow_control.ml:
