lib/nic/setup.ml: Header List Option Rpc String
