lib/nic/rpc.ml: Array Bytes C4_dsim Hashtbl Header List Stack
