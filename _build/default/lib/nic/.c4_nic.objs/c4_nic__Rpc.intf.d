lib/nic/rpc.mli: Header
