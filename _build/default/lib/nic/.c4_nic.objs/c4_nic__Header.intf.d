lib/nic/header.mli:
