lib/nic/jbsq.ml: Array
