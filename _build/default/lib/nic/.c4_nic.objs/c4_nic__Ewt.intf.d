lib/nic/ewt.mli:
