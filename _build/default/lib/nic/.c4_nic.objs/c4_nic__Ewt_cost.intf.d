lib/nic/ewt_cost.mli: Format
