lib/nic/pipeline.mli: Ewt Header
