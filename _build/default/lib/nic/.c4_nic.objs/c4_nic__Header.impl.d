lib/nic/header.ml: Bytes Char Int64 Printf
