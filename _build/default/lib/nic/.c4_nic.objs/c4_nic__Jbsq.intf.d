lib/nic/jbsq.mli:
