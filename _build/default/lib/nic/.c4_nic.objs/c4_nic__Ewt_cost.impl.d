lib/nic/ewt_cost.ml: Format
