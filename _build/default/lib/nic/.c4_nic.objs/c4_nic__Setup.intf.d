lib/nic/setup.mli: Header Rpc
