type state = {
  mutable n_threads : int option;
  mutable n_buffers : int option;
  mutable layout : Header.layout option;
  mutable index : (int * int) option;
  mutable active : bool;
}

type t = state

type error =
  [ `Already_active
  | `Invalid_layout of string
  | `Invalid of string
  | `Not_ready of string list ]

let error_to_string = function
  | `Already_active -> "setup already completed"
  | `Invalid_layout m -> "invalid header layout: " ^ m
  | `Invalid m -> "invalid argument: " ^ m
  | `Not_ready missing -> "not ready, missing: " ^ String.concat ", " missing

let create () =
  { n_threads = None; n_buffers = None; layout = None; index = None; active = false }

let guard_inactive t f = if t.active then Error `Already_active else f ()

let register_queues t ~n_threads =
  guard_inactive t (fun () ->
      if n_threads <= 0 || n_threads > 4096 then Error (`Invalid "n_threads out of range")
      else begin
        t.n_threads <- Some n_threads;
        Ok ()
      end)

let register_buffers t ~n_buffers =
  guard_inactive t (fun () ->
      if n_buffers <= 0 then Error (`Invalid "n_buffers must be positive")
      else begin
        t.n_buffers <- Some n_buffers;
        Ok ()
      end)

let register_layout t layout =
  guard_inactive t (fun () ->
      if layout.Header.key_length < 1 || layout.Header.key_length > 8 then
        Error (`Invalid_layout "key_length must be in 1..8")
      else if layout.Header.opcode_offset < 0 || layout.Header.key_offset < 0 then
        Error (`Invalid_layout "negative field offset")
      else if
        (* Fields must not overlap: the opcode byte may not fall inside
           the key field. *)
        layout.Header.opcode_offset >= layout.Header.key_offset
        && layout.Header.opcode_offset < layout.Header.key_offset + layout.Header.key_length
      then Error (`Invalid_layout "opcode overlaps key field")
      else begin
        t.layout <- Some layout;
        Ok ()
      end)

let register_index t ~n_buckets ~n_partitions =
  guard_inactive t (fun () ->
      if n_buckets <= 0 || n_partitions <= 0 then
        Error (`Invalid "index sizes must be positive")
      else if n_partitions > n_buckets then
        Error (`Invalid "more partitions than buckets")
      else begin
        t.index <- Some (n_buckets, n_partitions);
        Ok ()
      end)

let missing t =
  List.filter_map
    (fun (name, present) -> if present then None else Some name)
    [
      ("queues", t.n_threads <> None);
      ("buffers", t.n_buffers <> None);
      ("header layout", t.layout <> None);
      ("index geometry", t.index <> None);
    ]

let is_active t = t.active

let activate t =
  if t.active then Error `Already_active
  else begin
    match missing t with
    | [] ->
      let layout = Option.get t.layout in
      let n_buckets, n_partitions = Option.get t.index in
      let header = Header.register ~layout ~n_buckets ~n_partitions in
      let rpc =
        Rpc.create ~n_threads:(Option.get t.n_threads) ~n_buffers:(Option.get t.n_buffers)
          ~header
      in
      t.active <- true;
      Ok (header, rpc)
    | steps -> Error (`Not_ready steps)
  end
