type t = { counts : int array; k : int; mutable next : int }

let create ~n_workers ~bound =
  if n_workers <= 0 || bound < 1 then invalid_arg "Jbsq.create";
  { counts = Array.make n_workers 0; k = bound; next = 0 }

let n_workers t = Array.length t.counts
let bound t = t.k

(* Ties break round-robin (a rotating hardware arbiter), not to the
   lowest index — otherwise low-numbered workers systematically absorb
   more load below saturation. *)
let try_dispatch_range t ~lo ~hi =
  if lo < 0 || hi > Array.length t.counts || lo >= hi then
    invalid_arg "Jbsq.try_dispatch_range";
  let span = hi - lo in
  let best = ref (-1) and best_count = ref max_int in
  for offset = 0 to span - 1 do
    (* Positive modulo: t.next may lie outside [lo, hi). *)
    let i = lo + (((((t.next - lo + offset) mod span) + span) mod span)) in
    let c = t.counts.(i) in
    if c < t.k && c < !best_count then begin
      best := i;
      best_count := c
    end
  done;
  if !best < 0 then None
  else begin
    t.counts.(!best) <- t.counts.(!best) + 1;
    t.next <- (!best + 1) mod Array.length t.counts;
    Some !best
  end

let try_dispatch t = try_dispatch_range t ~lo:0 ~hi:(Array.length t.counts)

let dispatch_to t w = t.counts.(w) <- t.counts.(w) + 1

let complete t w =
  if t.counts.(w) <= 0 then invalid_arg "Jbsq.complete: worker has no in-flight requests";
  t.counts.(w) <- t.counts.(w) - 1

let occupancy t w = t.counts.(w)
let has_slot t w = t.counts.(w) < t.k
