(** Fixed-format application header parsing (Sec. 5.1).

    d-CREW needs the NIC to recover (request type, key) from each
    packet's application-level header. The KVS registers the field
    geometry — offsets and lengths within the payload — during the setup
    phase (the ioctl analogue here is {!register}), plus the number of
    hash buckets so the NIC can compute the same key→partition function
    as the software.

    The wire format modelled is the simple fixed layout of MICA/eRPC
    requests:

    {v offset 0: opcode (1 B; 0 = GET, 1 = SET)
       offset [key_offset]: key ([key_length] <= 8 B, little endian)
       remainder: value v} *)

type layout = {
  opcode_offset : int;
  key_offset : int;
  key_length : int;  (** 1..8 bytes *)
}

val default_layout : layout

type t

(** NIC-side parser state, configured once at setup time. *)
val register : layout:layout -> n_buckets:int -> n_partitions:int -> t

type parsed = { op : [ `Read | `Write ]; key : int; partition : int }

(** Parse a packet; [Error] on short packets or unknown opcodes. *)
val parse : t -> bytes -> (parsed, string) result

(** The registered layout. *)
val layout : t -> layout

(** Bytes occupied by the fixed header; the value starts here. *)
val header_size : t -> int

(** Encode a request into a packet (client-side helper used by tests and
    examples; round-trips with {!parse}). *)
val encode : t -> op:[ `Read | `Write ] -> key:int -> value:bytes -> bytes
