(** Join-Bounded-Shortest-Queue dispatcher, JBSQ(k) (R2P2 / NeBuLa).

    Approximates a single-queue system while keeping per-worker queues
    short: each worker may have at most [k] requests on its private
    (NIC-to-core) queue; surplus requests wait in the NIC's central
    queue and are handed out as workers drain. The paper uses JBSQ(2).

    This module tracks only occupancy counts and choice logic — the
    actual request objects live in the server model's queues. *)

type t

(** [create ~n_workers ~bound] with [bound = k >= 1]. *)
val create : n_workers:int -> bound:int -> t

val n_workers : t -> int
val bound : t -> int

(** Pick the least-loaded worker with a free slot, if any, and charge
    the slot. Ties break round-robin from the last dispatch point
    (deterministic, unbiased). *)
val try_dispatch : t -> int option

(** Same, restricted to workers in [lo, hi) — class-partitioned
    balancing (e.g. size-aware reservations). *)
val try_dispatch_range : t -> lo:int -> hi:int -> int option

(** Charge a slot on a specific worker regardless of the bound — used
    for partitioned (hashed or EWT-pinned) requests, which bypass
    balancing and may exceed [k]. *)
val dispatch_to : t -> int -> unit

(** A worker finished one request: release its slot. *)
val complete : t -> int -> unit

(** Worker occupancy (in-flight + queued at that worker). *)
val occupancy : t -> int -> int

(** True when the worker has a free balanced slot. *)
val has_slot : t -> int -> bool
