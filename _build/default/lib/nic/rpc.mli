(** NeBuLa-style RPC layer model (Sec. 5.1, 5.3).

    Captures the pieces of the NeBuLa stack C-4 modifies:

    - a preallocated buffer pool managed by the NIC and freed by the RPC
      layer;
    - per-thread receive queues (queue pairs) the NIC appends parsed
      requests to;
    - a response path whose send function carries one extra argument —
      [release_exclusive] — telling the NIC to decrement the EWT counter
      for the request's partition (the Sec. 5.1 interface extension);
    - the queue-scan hook ([scan], Sec. 5.3) letting the compaction layer
      apply a function to each valid incoming request, BPF-style.

    It is a functional model: no real sockets, but real accounting, so
    buffer leaks and double-frees in the layers above become test
    failures. *)

type t

(** An RPC in flight: parsed request plus transport metadata. *)
type rpc = {
  rpc_id : int;
  sender : int;  (** client node id for the response *)
  parsed : Header.parsed;
  payload : bytes;  (** value bytes for writes; empty for reads *)
  buffer : int;  (** buffer-pool slot owning this RPC's packet *)
}

type response = {
  resp_rpc_id : int;
  resp_to : int;
  resp_value : bytes option;
  released_exclusive : bool;
}

(** [create ~n_threads ~n_buffers ~header] builds the stack; [header]
    is the registered parser from the setup phase. *)
val create : n_threads:int -> n_buffers:int -> header:Header.t -> t

(** NIC ingress: parse a raw packet from [sender] and append the RPC to
    [thread]'s queue. [Error `No_buffers] models pool exhaustion;
    [Error (`Bad_packet _)] a parse failure (packet dropped, buffer not
    consumed). *)
val deliver :
  t ->
  thread:int ->
  sender:int ->
  bytes ->
  (rpc, [ `No_buffers | `Bad_packet of string ]) result

(** Thread-side: pop the next RPC from this thread's queue. *)
val poll : t -> thread:int -> rpc option

(** Sec. 5.3's lambda interface: visit up to [depth] queued RPCs of
    [thread] without consuming them. *)
val scan : t -> thread:int -> depth:int -> f:(rpc -> unit) -> unit

(** Extract queued writes to [key] from the first [depth] slots (the
    compaction layer's dependent-write harvest). *)
val take_matching_writes : t -> thread:int -> depth:int -> key:int -> rpc list

(** Send a response and free the RPC's buffer. [release_exclusive]
    mirrors C-4's extended send signature. Double-completion raises. *)
val respond : t -> rpc -> ?value:bytes -> release_exclusive:bool -> unit -> response

(** All responses sent, in order (test observation point). *)
val responses : t -> response list

val buffers_free : t -> int
val queue_length : t -> thread:int -> int
