type entry = { thread : int; mutable count : int }

type t = {
  cap : int;
  max_outstanding : int;
  table : (int, entry) Hashtbl.t;
  mutable occ_sum : int;
  mutable sample_n : int;
  mutable peak_n : int;
}

let create ?(capacity = 128) ?(max_outstanding = 64) () =
  if capacity <= 0 || max_outstanding <= 0 then invalid_arg "Ewt.create";
  {
    cap = capacity;
    max_outstanding;
    table = Hashtbl.create capacity;
    occ_sum = 0;
    sample_n = 0;
    peak_n = 0;
  }

let capacity t = t.cap
let occupancy t = Hashtbl.length t.table

let sample t =
  let occ = occupancy t in
  t.occ_sum <- t.occ_sum + occ;
  t.sample_n <- t.sample_n + 1;
  if occ > t.peak_n then t.peak_n <- occ

let lookup t ~partition =
  match Hashtbl.find_opt t.table partition with
  | Some e -> Some e.thread
  | None -> None

let note_write t ~partition ~thread =
  match Hashtbl.find_opt t.table partition with
  | Some e ->
    if e.count >= t.max_outstanding then `Counter_saturated
    else begin
      e.count <- e.count + 1;
      sample t;
      `Ok
    end
  | None ->
    if Hashtbl.length t.table >= t.cap then `Full
    else begin
      Hashtbl.replace t.table partition { thread; count = 1 };
      sample t;
      `Ok
    end

let note_response t ~partition =
  match Hashtbl.find_opt t.table partition with
  | None -> invalid_arg "Ewt.note_response: partition not mapped"
  | Some e ->
    e.count <- e.count - 1;
    if e.count <= 0 then Hashtbl.remove t.table partition;
    sample t

let outstanding t ~partition =
  match Hashtbl.find_opt t.table partition with Some e -> e.count | None -> 0

type occupancy_stats = { average : float; peak : int; samples : int }

let occupancy_stats t =
  {
    average =
      (if t.sample_n = 0 then 0.0
       else float_of_int t.occ_sum /. float_of_int t.sample_n);
    peak = t.peak_n;
    samples = t.sample_n;
  }

let reset_stats t =
  t.occ_sum <- 0;
  t.sample_n <- 0;
  t.peak_n <- 0
