type verdict = Linearizable of History.op list | Not_linearizable

let pp_verdict ppf = function
  | Linearizable _ -> Format.pp_print_string ppf "linearizable"
  | Not_linearizable -> Format.pp_print_string ppf "NOT linearizable"

let apply state (op : History.op) =
  match op.kind with
  | History.Set v -> Some v
  | History.Get v -> if v = state then Some state else None

let check ?(initial = 0) history =
  let ops = Array.of_list (History.ops history) in
  let n = Array.length ops in
  if n > 62 then invalid_arg "Linearizability.check: history too long (max 62 ops)";
  if n = 0 then Linearizable []
  else begin
    let full = (1 lsl n) - 1 in
    (* Failed (mask, state) configurations; successes short-circuit. *)
    let failed : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
    (* An op is minimal among the pending set when its invocation
       precedes every pending response: nothing pending is required to
       linearize before it. *)
    let minimal_ops mask =
      let earliest_response = ref infinity in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) = 0 && ops.(i).History.responded < !earliest_response
        then earliest_response := ops.(i).History.responded
      done;
      let acc = ref [] in
      for i = n - 1 downto 0 do
        if mask land (1 lsl i) = 0 && ops.(i).History.invoked <= !earliest_response
        then acc := i :: !acc
      done;
      !acc
    in
    let rec search mask state acc =
      if mask = full then Some (List.rev acc)
      else if Hashtbl.mem failed (mask, state) then None
      else begin
        let rec try_candidates = function
          | [] ->
            Hashtbl.replace failed (mask, state) ();
            None
          | i :: rest -> (
            match apply state ops.(i) with
            | None -> try_candidates rest
            | Some state' -> (
              match search (mask lor (1 lsl i)) state' (ops.(i) :: acc) with
              | Some _ as witness -> witness
              | None -> try_candidates rest))
        in
        try_candidates (minimal_ops mask)
      end
    in
    match search 0 initial [] with
    | Some witness -> Linearizable witness
    | None -> Not_linearizable
  end

let is_linearizable ?initial history =
  match check ?initial history with
  | Linearizable _ -> true
  | Not_linearizable -> false
