lib/consistency/linearizability.mli: Format History
