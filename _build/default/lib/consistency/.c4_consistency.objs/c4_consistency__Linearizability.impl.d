lib/consistency/linearizability.ml: Array Format Hashtbl History List
