lib/consistency/history.mli: Format
