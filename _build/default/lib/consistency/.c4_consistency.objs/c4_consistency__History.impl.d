lib/consistency/history.ml: Format List
