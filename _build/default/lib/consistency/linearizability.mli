(** Single-object linearizability checking (Herlihy & Wing).

    A history is linearizable when there exists a sequential reordering
    that (1) respects every real-time precedence in the original and
    (2) is legal for the object's sequential specification — here a
    read/write register with a configurable initial value.

    The checker is the Wing–Gong tree search with memoisation on
    (linearized-set, register-state): at each step any {e minimal}
    pending operation (one invoked before every pending response) may
    linearize next if legal. Worst case exponential — linearizability
    checking is NP-complete — but with memoisation it handles the
    hundreds-of-ops histories our compaction tests generate in
    milliseconds. Histories are limited to 62 operations (bitmask). *)

type verdict =
  | Linearizable of History.op list  (** a witness linearization *)
  | Not_linearizable

val pp_verdict : Format.formatter -> verdict -> unit

(** [check ?initial history]; [initial] defaults to 0 (the paper's
    K = 0). *)
val check : ?initial:int -> History.t -> verdict

val is_linearizable : ?initial:int -> History.t -> bool
