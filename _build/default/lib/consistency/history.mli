(** Operation histories over a single key (linearizability is a local
    property — Sec. 4.3.1 — so one key suffices).

    An operation spans real time from invocation to response; two
    operations are {e concurrent} when their spans overlap, and
    partially ordered when one's response precedes the other's
    invocation. *)

type kind =
  | Set of int  (** write the given value *)
  | Get of int  (** read observed the given value *)

type op = {
  client : string;
  kind : kind;
  invoked : float;
  responded : float;
}

type t

(** Build from operations; raises [Invalid_argument] on an operation
    with [responded < invoked]. *)
val of_ops : op list -> t

val ops : t -> op list
val length : t -> int

(** [set ~client ~value ~invoked ~responded] convenience constructor. *)
val set : client:string -> value:int -> invoked:float -> responded:float -> op

val get : client:string -> value:int -> invoked:float -> responded:float -> op

(** [precedes a b]: a's response is before b's invocation. *)
val precedes : op -> op -> bool

val concurrent : op -> op -> bool
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit

(** The paper's Fig. 7 executions. [e1] defers nothing: client A's set
    is acknowledged while its value is still buffered, then C reads the
    pre-window value — illegal. [e2] defers both set responses past C's
    get — legal, with linearization E'. *)
val fig7_e1 : t

val fig7_e2 : t
