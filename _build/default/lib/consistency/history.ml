type kind = Set of int | Get of int

type op = { client : string; kind : kind; invoked : float; responded : float }

type t = op list

let of_ops ops =
  List.iter
    (fun op ->
      if op.responded < op.invoked then
        invalid_arg "History.of_ops: response precedes invocation")
    ops;
  ops

let ops t = t
let length = List.length

let set ~client ~value ~invoked ~responded =
  { client; kind = Set value; invoked; responded }

let get ~client ~value ~invoked ~responded =
  { client; kind = Get value; invoked; responded }

let precedes a b = a.responded < b.invoked
let concurrent a b = not (precedes a b || precedes b a)

let pp_op ppf op =
  match op.kind with
  | Set v -> Format.fprintf ppf "set(K=%d):%s [%.1f,%.1f]" v op.client op.invoked op.responded
  | Get v -> Format.fprintf ppf "get(K)=%d:%s [%.1f,%.1f]" v op.client op.invoked op.responded

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_op ppf t

(* Fig. 7, E1: A's set is acknowledged (t=2) before C's get begins
   (t=3), so C is ordered after A and must not observe the initial 0. *)
let fig7_e1 =
  of_ops
    [
      set ~client:"A" ~value:1 ~invoked:1.0 ~responded:2.0;
      get ~client:"C" ~value:0 ~invoked:3.0 ~responded:6.0;
      set ~client:"B" ~value:2 ~invoked:4.0 ~responded:5.0;
    ]

(* Fig. 7, E2: both set responses are deferred to the window close, so
   A, B and C are pairwise concurrent and C may legally read 0. *)
let fig7_e2 =
  of_ops
    [
      set ~client:"A" ~value:1 ~invoked:1.0 ~responded:5.0;
      get ~client:"C" ~value:0 ~invoked:3.0 ~responded:6.0;
      set ~client:"B" ~value:2 ~invoked:4.0 ~responded:5.5;
    ]
