lib/kvs/seqlock.mli:
