lib/kvs/item.ml: Format
