lib/kvs/store.ml: Array Bytes Hash List Seqlock
