lib/kvs/compaction_log.ml: List Option
