lib/kvs/log_store.ml: Array Bytes Char Hash
