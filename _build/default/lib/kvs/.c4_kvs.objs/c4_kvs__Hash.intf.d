lib/kvs/hash.mli:
