lib/kvs/seqlock.ml: Atomic Domain
