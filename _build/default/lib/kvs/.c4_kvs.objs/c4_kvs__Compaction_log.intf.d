lib/kvs/compaction_log.mli:
