lib/kvs/store.mli:
