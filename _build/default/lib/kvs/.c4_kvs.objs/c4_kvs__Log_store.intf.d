lib/kvs/log_store.mli:
