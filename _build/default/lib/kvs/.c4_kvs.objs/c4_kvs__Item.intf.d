lib/kvs/item.mli: Format
