lib/kvs/hash.ml: Char Int64 String
