type t = { key_size : int; value_size : int }

let tiny = { key_size = 8; value_size = 8 }
let medium = { key_size = 16; value_size = 128 }
let large = { key_size = 16; value_size = 512 }
let cache_line_bytes = 64

let value_lines t =
  max 1 ((t.value_size + cache_line_bytes - 1) / cache_line_bytes)

let total_lines t =
  (* Header word, key, and the leading value bytes share the first line
     when they fit; otherwise the key occupies the first line alone. *)
  let header_and_key = 8 + t.key_size in
  if header_and_key + t.value_size <= cache_line_bytes then 1
  else 1 + value_lines t

let pp ppf t = Format.fprintf ppf "%dB/%dB" t.key_size t.value_size

let name t =
  if t = tiny then "Tiny"
  else if t = medium then "Med"
  else if t = large then "Lg"
  else Format.asprintf "%a" pp t
