type bucket = {
  tags : int array;
  offsets : int array; (* virtual log offsets; -1 = empty slot *)
  mutable clock : int; (* round-robin eviction pointer *)
}

type t = {
  arena : Bytes.t;
  cap : int;
  mutable head : int; (* virtual offset of the next append *)
  buckets : bucket array;
  slots : int;
  mutable sets_n : int;
  mutable gets_n : int;
  mutable hits_n : int;
  mutable evict_n : int;
  mutable appended_n : int;
  mutable wraps_n : int;
}

let header_bytes = 12 (* 8B key + 4B value length *)

let create ?(bucket_slots = 8) ~log_bytes ~n_buckets () =
  if log_bytes < 64 || n_buckets <= 0 || bucket_slots <= 0 then
    invalid_arg "Log_store.create";
  {
    arena = Bytes.make log_bytes '\000';
    cap = log_bytes;
    head = 0;
    buckets =
      Array.init n_buckets (fun _ ->
          { tags = Array.make bucket_slots 0; offsets = Array.make bucket_slots (-1); clock = 0 });
    slots = bucket_slots;
    sets_n = 0;
    gets_n = 0;
    hits_n = 0;
    evict_n = 0;
    appended_n = 0;
    wraps_n = 0;
  }

let bucket_of_key t key = t.buckets.(Hash.mix_int key mod Array.length t.buckets)
let tag_of_key key = (Hash.mix_int key lsr 16) land 0xFFFF

let write_int64_le arena pos v =
  for i = 0 to 7 do
    Bytes.set arena (pos + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let read_int64_le arena pos =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get arena (pos + i))
  done;
  !v

let write_int32_le arena pos v =
  for i = 0 to 3 do
    Bytes.set arena (pos + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let read_int32_le arena pos =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get arena (pos + i))
  done;
  !v

(* A record at virtual offset [o] survives until the head advances one
   full lap past it: bytes at virtual address v are destroyed once
   head > v + cap, so the record (starting at its first byte) dies when
   head > o + cap. *)
let live t offset = offset >= 0 && t.head <= offset + t.cap

let set t ~key ~value =
  let len = header_bytes + Bytes.length value in
  if len > t.cap then `Too_large
  else begin
    t.sets_n <- t.sets_n + 1;
    (* Records never straddle the wrap boundary: pad to it instead. *)
    let room_to_boundary = t.cap - (t.head mod t.cap) in
    if len > room_to_boundary then begin
      t.head <- t.head + room_to_boundary;
      t.wraps_n <- t.wraps_n + 1
    end;
    let offset = t.head in
    let pos = offset mod t.cap in
    write_int64_le t.arena pos key;
    write_int32_le t.arena (pos + 8) (Bytes.length value);
    Bytes.blit value 0 t.arena (pos + header_bytes) (Bytes.length value);
    t.head <- t.head + len;
    t.appended_n <- t.appended_n + len;
    (* Index update: refresh the key's slot if present, else take a free
       slot, else evict round-robin (lossy). *)
    let bucket = bucket_of_key t key in
    let tag = tag_of_key key in
    let slot =
      let found = ref (-1) and free = ref (-1) in
      for i = 0 to t.slots - 1 do
        if bucket.offsets.(i) >= 0 && bucket.tags.(i) = tag then found := i
        else if bucket.offsets.(i) < 0 && !free < 0 then free := i
      done;
      if !found >= 0 then !found
      else if !free >= 0 then !free
      else begin
        t.evict_n <- t.evict_n + 1;
        let victim = bucket.clock in
        bucket.clock <- (bucket.clock + 1) mod t.slots;
        victim
      end
    in
    bucket.tags.(slot) <- tag;
    bucket.offsets.(slot) <- offset;
    `Ok
  end

let lookup t ~key =
  let bucket = bucket_of_key t key in
  let tag = tag_of_key key in
  let rec scan i =
    if i >= t.slots then None
    else begin
      let offset = bucket.offsets.(i) in
      if offset >= 0 && bucket.tags.(i) = tag && live t offset then begin
        let pos = offset mod t.cap in
        (* Tags collide across keys: confirm against the stored key. *)
        if read_int64_le t.arena pos = key then begin
          let len = read_int32_le t.arena (pos + 8) in
          Some (Bytes.sub t.arena (pos + header_bytes) len)
        end
        else scan (i + 1)
      end
      else scan (i + 1)
    end
  in
  scan 0

let get t ~key =
  t.gets_n <- t.gets_n + 1;
  match lookup t ~key with
  | Some v ->
    t.hits_n <- t.hits_n + 1;
    Some v
  | None -> None

let mem t ~key = lookup t ~key <> None

type stats = {
  sets : int;
  gets : int;
  hits : int;
  index_evictions : int;
  bytes_appended : int;
  wraps : int;
}

let stats t =
  {
    sets = t.sets_n;
    gets = t.gets_n;
    hits = t.hits_n;
    index_evictions = t.evict_n;
    bytes_appended = t.appended_n;
    wraps = t.wraps_n;
  }

let capacity t = t.cap
