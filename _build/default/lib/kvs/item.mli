(** Item geometry: key/value sizes and the cache-line footprint that
    drives the coherence cost model and the Table 2 sensitivity study. *)

type t = { key_size : int; value_size : int }

(** The paper's three configurations (Table 2). *)
val tiny : t (* 8 B / 8 B *)

val medium : t (* 16 B / 128 B *)
val large : t (* 16 B / 512 B, the default elsewhere *)

val cache_line_bytes : int

(** Cache lines touched when copying the value (at least 1). *)
val value_lines : t -> int

(** Lines touched by a full item access: header+key line plus value lines. *)
val total_lines : t -> int

val pp : Format.formatter -> t -> unit
val name : t -> string
