(** Sequence lock for one partition: the reader–writer synchronisation
    the paper's KVS model assumes ("writers atomically increment the
    partition's version at the beginning and end of each update, and
    readers retry when their version checks fail", Sec. 3).

    The writer side assumes the CREW invariant — at most one writer per
    partition at a time — which is exactly what the concurrency-control
    policies under study enforce; [write_begin] asserts it. Readers are
    wait-free aside from retries and may run on other domains. *)

type t

val create : unit -> t

(** Current version; even when stable, odd while an update is in flight. *)
val version : t -> int

(** Begin an update: bumps version to odd. Raises [Failure] if an update
    is already in flight (CREW violation). *)
val write_begin : t -> unit

(** Finish an update: bumps version to even. *)
val write_end : t -> unit

(** [read t f] runs [f] until it completes with a stable, unchanged
    version, returning the result and the number of retries. [f] must be
    pure apart from reading the protected data. *)
val read : t -> (unit -> 'a) -> 'a * int

(** True while a writer is inside [write_begin]/[write_end]. *)
val write_in_flight : t -> bool
