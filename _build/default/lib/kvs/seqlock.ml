type t = int Atomic.t

let create () = Atomic.make 0
let version t = Atomic.get t
let write_in_flight t = Atomic.get t land 1 = 1

let write_begin t =
  let v = Atomic.get t in
  if v land 1 = 1 then failwith "Seqlock.write_begin: concurrent writer (CREW violation)";
  (* Single writer per partition by protocol, so a plain increment
     suffices; [compare_and_set] still guards against protocol bugs. *)
  if not (Atomic.compare_and_set t v (v + 1)) then
    failwith "Seqlock.write_begin: lost race (CREW violation)"

let write_end t =
  let v = Atomic.get t in
  if v land 1 = 0 then failwith "Seqlock.write_end: no update in flight";
  Atomic.set t (v + 1)

let read t f =
  let rec attempt retries =
    let v0 = Atomic.get t in
    if v0 land 1 = 1 then begin
      Domain.cpu_relax ();
      attempt (retries + 1)
    end
    else begin
      let result = f () in
      let v1 = Atomic.get t in
      if v0 = v1 then (result, retries)
      else begin
        Domain.cpu_relax ();
        attempt (retries + 1)
      end
    end
  in
  attempt 0
