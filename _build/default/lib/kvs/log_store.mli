(** MICA cache-mode storage: circular log + lossy concurrent index.

    The paper's KVS is MICA (Sec. 6), whose cache mode stores items in
    a circular log — appends only, with old items implicitly evicted as
    the head wraps — indexed by a fixed-size bucket array whose entries
    hold a 16-bit key *tag* plus the item's log offset. The index is
    lossy: a full bucket evicts its oldest entry. Both structures avoid
    per-item allocation and make writes cache-friendly, which is what
    lets a single MICA thread sustain millions of ops/s.

    This is a faithful single-writer reconstruction:

    - items live in one [Bytes] arena as [valid·key_len·val_len·key·value]
      records;
    - a get follows the index's offset, checks the full key (tags
      collide), and validates the offset is still within the live window
      (otherwise the item has been overwritten by wraparound — a miss);
    - a set appends and updates the index, possibly evicting the oldest
      tag in the bucket (lossy) — a later get for the evicted key
      misses, it never reads the wrong value.

    Reader/writer synchronisation stays in the caller (the partition
    seqlocks of {!Store}); this module provides the memory layout and
    eviction semantics underneath. *)

type t

(** [create ~log_bytes ~n_buckets ()] — arena size and index width.
    @param bucket_slots entries per bucket (default 8, MICA's choice). *)
val create : ?bucket_slots:int -> log_bytes:int -> n_buckets:int -> unit -> t

(** Append or update. Returns [`Ok] or [`Too_large] when the item cannot
    fit in the log at all. *)
val set : t -> key:int -> value:bytes -> [ `Ok | `Too_large ]

(** Lookup. [None] = never stored, index-evicted, or log-evicted. *)
val get : t -> key:int -> bytes option

(** Was the key's most recent version evicted by log wraparound? (For
    tests distinguishing miss causes; false when present or never set.) *)
val mem : t -> key:int -> bool

type stats = {
  sets : int;
  gets : int;
  hits : int;
  index_evictions : int;  (** lossy bucket replacements *)
  bytes_appended : int;
  wraps : int;  (** times the log head wrapped around *)
}

val stats : t -> stats

(** Bytes of live log window. *)
val capacity : t -> int
