module Trace = C4_workload.Trace
module Request = C4_workload.Request

type t = {
  n_requests : int;
  n_distinct_keys : int;
  write_fraction : float;
  theta_hat : float;
  offered_rate : float;
  hottest_key_share : float;
  top10_share : float;
}

let of_seq_with_rate accesses ~offered_rate =
  let keys = ref [] and writes = ref 0 and n = ref 0 in
  Seq.iter
    (fun (key, is_write) ->
      keys := key :: !keys;
      if is_write then incr writes;
      incr n)
    accesses;
  let counts = Zipf_fit.rank_counts (List.to_seq (List.rev !keys)) in
  let total = float_of_int !n in
  let share upto =
    let acc = ref 0 in
    Array.iteri (fun i c -> if i < upto then acc := !acc + c) counts;
    if !n = 0 then 0.0 else float_of_int !acc /. total
  in
  {
    n_requests = !n;
    n_distinct_keys = Array.length counts;
    write_fraction = (if !n = 0 then 0.0 else float_of_int !writes /. total);
    theta_hat = Zipf_fit.estimate_theta counts;
    offered_rate;
    hottest_key_share = share 1;
    top10_share = share 10;
  }

let of_accesses accesses = of_seq_with_rate accesses ~offered_rate:0.0

let of_trace trace =
  let accesses =
    List.to_seq
      (List.rev
         (let acc = ref [] in
          Trace.iter trace ~f:(fun (r : Request.t) ->
              acc := (r.Request.key, Request.is_write r) :: !acc);
          !acc))
  in
  let profile = of_seq_with_rate accesses ~offered_rate:(Trace.offered_rate trace) in
  profile

let pp ppf t =
  Format.fprintf ppf
    "requests=%d distinct=%d f_wr=%.1f%% gamma^=%.2f hot=%.1f%% top10=%.1f%%"
    t.n_requests t.n_distinct_keys (100.0 *. t.write_fraction) t.theta_hat
    (100.0 *. t.hottest_key_share)
    (100.0 *. t.top10_share)

type region = R_uni | R_sk | WI_uni | RW_sk

(* Boundaries as in C4.Region: skew at gamma >= 0.9, skewed read-write
   from 2% writes, write-intensive from 50%. *)
let region t =
  if t.theta_hat >= 0.9 then if t.write_fraction >= 0.02 then RW_sk else R_sk
  else if t.write_fraction >= 0.5 then WI_uni
  else R_uni

let region_name = function
  | R_uni -> "R_uni"
  | R_sk -> "R_sk"
  | WI_uni -> "WI_uni"
  | RW_sk -> "RW_sk"

type recommendation = Baseline_suffices | Use_dcrew | Use_compaction

let recommend t =
  match region t with
  | WI_uni -> Use_dcrew
  | RW_sk -> Use_compaction
  | R_uni | R_sk -> Baseline_suffices

let recommendation_name = function
  | Baseline_suffices -> "baseline CREW suffices"
  | Use_dcrew -> "enable d-CREW (dynamic write partitioning)"
  | Use_compaction -> "enable write compaction"

let report t =
  let r = region t in
  Format.asprintf
    "%a@.region: %s@.recommendation: %s@.%s" pp t (region_name r)
    (recommendation_name (recommend t))
    (match r with
    | RW_sk ->
      Printf.sprintf
        "rationale: the hottest key draws %.1f%% of accesses; at %.0f%% writes a \
         single thread owns that load under static partitioning (paper Sec. 3.2)."
        (100.0 *. t.hottest_key_share)
        (100.0 *. t.write_fraction)
    | WI_uni ->
      Printf.sprintf
        "rationale: %.0f%% of requests are writes that static partitioning cannot \
         balance; d-CREW restores balancing for the independent ones (paper Sec. 3.1)."
        (100.0 *. t.write_fraction)
    | R_uni | R_sk ->
      "rationale: read-mostly; concurrent lock-free readers already balance the load.")
