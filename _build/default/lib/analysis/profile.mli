(** Workload profiling: measure a trace, place it on the paper's
    taxonomy, and recommend the C-4 mechanism — the decision the paper's
    Fig. 1 regions encode, automated for operators with production
    traces (Sec. 2's Twitter/Facebook studies are exactly such
    profiles). *)

type t = {
  n_requests : int;
  n_distinct_keys : int;
  write_fraction : float;
  theta_hat : float;  (** fitted Zipf coefficient *)
  offered_rate : float;  (** requests per ns over the trace span *)
  hottest_key_share : float;  (** fraction of accesses to the top key *)
  top10_share : float;
}

(** Profile a recorded trace. *)
val of_trace : C4_workload.Trace.t -> t

(** Profile a raw access log: [(key, is_write)] pairs (no timing). *)
val of_accesses : (int * bool) Seq.t -> t

val pp : Format.formatter -> t -> unit

(** Region boundaries mirror {!C4.Region} (duplicated numerically so the
    analysis library stays independent of the facade). *)
type region = R_uni | R_sk | WI_uni | RW_sk

val region : t -> region
val region_name : region -> string

type recommendation = Baseline_suffices | Use_dcrew | Use_compaction

val recommend : t -> recommendation
val recommendation_name : recommendation -> string

(** A short operator-facing report. *)
val report : t -> string
