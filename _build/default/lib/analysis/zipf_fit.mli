(** Estimating a workload's popularity skew from an observed trace.

    The paper's motivation rests on production studies (Twitter,
    Facebook) reporting Zipf coefficients of 1.4–2.5 — numbers obtained
    by fitting rank–frequency data. This module provides that fit: for
    item frequencies f(r) ∝ r^(−γ), regressing log f on log rank yields
    −γ as the slope. The fit uses only ranks whose counts are large
    enough to be statistically meaningful. *)

(** Sorted (descending) access counts from an access sequence. *)
val rank_counts : int Seq.t -> int array

(** [estimate_theta counts] fits γ by least squares on the log–log
    rank–frequency curve. [counts] must be sorted descending.
    @param min_count ranks with fewer hits are excluded (default 5).
    @param max_ranks cap on ranks used (default 1000, the statistically
    stable head).
    Returns 0 for degenerate inputs (fewer than 3 usable ranks). *)
val estimate_theta : ?min_count:int -> ?max_ranks:int -> int array -> float

(** Least-squares slope+intercept of y on x (exposed for tests). *)
val linear_fit : x:float array -> y:float array -> float * float
