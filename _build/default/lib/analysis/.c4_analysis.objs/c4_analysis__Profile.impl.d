lib/analysis/profile.ml: Array C4_workload Format List Printf Seq Zipf_fit
