lib/analysis/zipf_fit.mli: Seq
