lib/analysis/zipf_fit.ml: Array Float Hashtbl Option Seq
