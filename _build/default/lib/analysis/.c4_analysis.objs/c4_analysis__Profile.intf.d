lib/analysis/profile.mli: C4_workload Format Seq
