let rank_counts accesses =
  let counts = Hashtbl.create 1024 in
  Seq.iter
    (fun key ->
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    accesses;
  let arr = Array.make (Hashtbl.length counts) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun _ c ->
      arr.(!i) <- c;
      incr i)
    counts;
  Array.sort (fun a b -> compare b a) arr;
  arr

let linear_fit ~x ~y =
  let n = Array.length x in
  assert (n = Array.length y && n > 0);
  let fn = float_of_int n in
  let sx = Array.fold_left ( +. ) 0.0 x and sy = Array.fold_left ( +. ) 0.0 y in
  let sxx = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x in
  let sxy = ref 0.0 in
  Array.iteri (fun i xi -> sxy := !sxy +. (xi *. y.(i))) x;
  let denom = (fn *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then (0.0, sy /. fn)
  else begin
    let slope = ((fn *. !sxy) -. (sx *. sy)) /. denom in
    let intercept = (sy -. (slope *. sx)) /. fn in
    (slope, intercept)
  end

let estimate_theta ?(min_count = 5) ?(max_ranks = 1000) counts =
  let usable =
    let rec count i =
      if i >= Array.length counts || i >= max_ranks || counts.(i) < min_count then i
      else count (i + 1)
    in
    count 0
  in
  if usable < 3 then 0.0
  else begin
    let x = Array.init usable (fun i -> log (float_of_int (i + 1))) in
    let y = Array.init usable (fun i -> log (float_of_int counts.(i))) in
    let slope, _ = linear_fit ~x ~y in
    Float.max 0.0 (-.slope)
  end
