(** Experiment drivers: load–latency curves, maximum throughput under an
    SLO, and the (γ, f_wr) surfaces — the measurement procedures behind
    every figure in the paper's evaluation.

    Following the paper, the SLO is a 99th-percentile target expressed
    as a multiple of the mean service time S̄ (10× unless stated), and
    "throughput under SLO" is the largest offered load whose measured
    99th percentile stays within the target while the system actually
    sustains the load (no drops, achieved ≈ offered). *)

type point = {
  offered_mrps : float;
  achieved_mrps : float;
  p99_ns : float;
  mean_ns : float;
  result : Server.result;
}

(** Run one simulation at [rate] (requests/ns). *)
val run_at :
  ?n_requests:int ->
  Server.config ->
  workload:C4_workload.Generator.config ->
  rate:float ->
  point

(** A whole load–latency series (Figs. 9–11, 13). *)
val load_latency :
  ?n_requests:int ->
  Server.config ->
  workload:C4_workload.Generator.config ->
  rates:float list ->
  point list

(** Was the SLO met at this point? Requires the p99 within
    [slo_multiplier]·S̄, a drop rate under 0.1 %, and achieved
    throughput within 2 % of offered. *)
val meets_slo : slo_multiplier:float -> point -> bool

(** Binary-search the maximum throughput (MRPS) meeting the SLO.
    [hi] is the initial upper bound in requests/ns (default 0.2 =
    200 MRPS). Also returns the measurement at the found load. *)
val max_tput_under_slo :
  ?n_requests:int ->
  ?iterations:int ->
  ?lo:float ->
  ?hi:float ->
  Server.config ->
  workload:C4_workload.Generator.config ->
  slo_multiplier:float ->
  float * point

(** [excess_p99 cfg ~ideal ~workload ~slo_multiplier] reproduces the
    Fig. 3b metric: find the policy's peak load under SLO, then report
    its p99 there divided by the Ideal system's p99 at the same load. *)
val excess_p99 :
  ?n_requests:int ->
  Server.config ->
  ideal:Server.config ->
  workload:C4_workload.Generator.config ->
  slo_multiplier:float ->
  float

(** Evaluate [f] over the cross product (row-major over gammas then
    write fractions) — the Fig. 4 surface helper. *)
val surface :
  gammas:float list ->
  write_fractions:float list ->
  f:(theta:float -> write_fraction:float -> 'a) ->
  (float * float * 'a) list
