(** A second, independent implementation of the queueing model, written
    in coroutine style on {!C4_dsim.Process} (SimPy-like processes and
    mailboxes) instead of event callbacks.

    It supports the stateless policies (Ideal, CREW, EREW) and exists for
    differential validation: two implementations with different control
    structures, different event orders and independently drawn service
    times must agree on the steady-state distributions. The test suite
    compares them point by point; a regression in either implementation's
    queueing logic breaks the agreement.

    (d-CREW, compaction, RLU and the extensions live only in {!Server} —
    duplicating stateful mechanisms would test the duplication, not the
    model.) *)

type policy = Ideal | Crew | Erew

type result = {
  latency : C4_stats.Histogram.t;
  completed : int;
  duration : float;  (** measured interval, ns *)
}

val throughput_mrps : result -> float

(** [run ~policy ~workload ~n_requests] with the same service model,
    JBSQ(2) balancing and 20 % warm-up convention as {!Server.run}. *)
val run :
  ?seed:int ->
  ?jbsq_bound:int ->
  policy:policy ->
  workload:C4_workload.Generator.config ->
  n_requests:int ->
  unit ->
  result
