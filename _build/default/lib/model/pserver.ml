module Sim = C4_dsim.Sim
module Process = C4_dsim.Process
module Rng = C4_dsim.Rng
module Generator = C4_workload.Generator
module Request = C4_workload.Request
module Histogram = C4_stats.Histogram

type policy = Ideal | Crew | Erew

type result = {
  latency : Histogram.t;
  completed : int;
  duration : float;
}

let throughput_mrps r =
  if r.duration <= 0.0 then 0.0 else float_of_int r.completed /. r.duration *. 1e3

(* Messages the dispatcher process consumes: request arrivals from the
   generator process, completion notices from workers. *)
type msg = Arrival of Request.t | Done of int

let run ?(seed = 42) ?(jbsq_bound = 2) ~policy ~workload ~n_requests () =
  if n_requests <= 0 then invalid_arg "Pserver.run: n_requests";
  let sim = Sim.create () in
  let p = Process.create sim in
  let svc = Service.create Service.default (Rng.create (seed * 31)) in
  let gen = Generator.create workload ~seed:(seed lxor 0x5bd1e995) in
  let n_workers = 64 in
  let dispatcher_box : msg Process.Mailbox.t = Process.Mailbox.create () in
  let worker_boxes : Request.t Process.Mailbox.t array =
    Array.init n_workers (fun _ -> Process.Mailbox.create ())
  in
  let outstanding = Array.make n_workers 0 in
  let central : Request.t Queue.t = Queue.create () in
  let latency = Histogram.create () in
  let warmup = n_requests / 5 in
  let completed_total = ref 0 in
  let measured = ref 0 in
  let t_start = ref 0.0 and t_stop = ref 0.0 in

  let balanceable (r : Request.t) =
    match (policy, r.Request.op) with
    | Ideal, _ -> true
    | Crew, Request.Read -> true
    | Crew, Request.Write -> false
    | Erew, _ -> false
  in
  let least_loaded_below_bound () =
    let best = ref (-1) and best_count = ref jbsq_bound in
    for i = 0 to n_workers - 1 do
      if outstanding.(i) < !best_count then begin
        best := i;
        best_count := outstanding.(i)
      end
    done;
    if !best < 0 then None else Some !best
  in
  let dispatch wid (r : Request.t) =
    outstanding.(wid) <- outstanding.(wid) + 1;
    Process.Mailbox.send p worker_boxes.(wid) r
  in

  (* Worker process: serve requests one at a time; every completion is
     reported to the dispatcher, which owns all balancing state. *)
  let worker wid () =
    let rec loop () =
      let r = Process.Mailbox.recv p worker_boxes.(wid) in
      Process.wait p (Service.sample_kvs svc +. (Service.params svc).Service.t_fixed);
      incr completed_total;
      if !completed_total = warmup then t_start := Process.now p;
      if !completed_total > warmup && !completed_total <= n_requests then begin
        Histogram.add latency (Process.now p -. r.Request.arrival);
        incr measured;
        t_stop := Process.now p
      end;
      Process.Mailbox.send p dispatcher_box (Done wid);
      if !completed_total < n_requests then loop ()
    in
    loop ()
  in

  (* Generator process: one arrival per inter-arrival gap. *)
  let generator () =
    for _ = 1 to n_requests do
      let r = Generator.next gen in
      let gap = r.Request.arrival -. Process.now p in
      if gap > 0.0 then Process.wait p gap;
      Process.Mailbox.send p dispatcher_box (Arrival r)
    done
  in

  (* Dispatcher process: the NIC. *)
  let dispatcher () =
    let remaining = ref n_requests in
    while !remaining > 0 do
      match Process.Mailbox.recv p dispatcher_box with
      | Arrival r ->
        decr remaining;
        if balanceable r then begin
          match least_loaded_below_bound () with
          | Some wid -> dispatch wid r
          | None -> Queue.push r central
        end
        else dispatch (r.Request.partition mod n_workers) r
      | Done wid ->
        outstanding.(wid) <- outstanding.(wid) - 1;
        if (not (Queue.is_empty central)) && outstanding.(wid) < jbsq_bound then
          dispatch wid (Queue.pop central)
    done;
    (* Drain remaining completions so the central queue empties. *)
    let rec drain () =
      if !completed_total < n_requests then begin
        match Process.Mailbox.recv p dispatcher_box with
        | Done wid ->
          outstanding.(wid) <- outstanding.(wid) - 1;
          if (not (Queue.is_empty central)) && outstanding.(wid) < jbsq_bound then
            dispatch wid (Queue.pop central);
          drain ()
        | Arrival _ -> drain ()
      end
    in
    drain ()
  in

  for wid = 0 to n_workers - 1 do
    Process.spawn p (worker wid)
  done;
  Process.spawn p dispatcher;
  Process.spawn p generator;
  Sim.run sim;
  { latency; completed = !measured; duration = Float.max 0.0 (!t_stop -. !t_start) }
