(** Request service-time model (paper Sec. 3 and Sec. 7.3).

    Each request's on-core time is S = T_kvs + T_fixed, where T_kvs is
    the KVS lookup/update proper and T_fixed the load-balancer/stack
    interaction (100 ns for a hardware-terminated protocol).

    T_kvs decomposes into a compute component (index walk, header
    processing) and a data-movement component proportional to the item's
    cache-line footprint; for the paper's default 16 B/512 B items the
    sum is calibrated to the paper's U[400, 800] ns. This decomposition
    is what makes the Table 2 item-size study fall out: shrinking items
    shrinks only the per-line term.

    Compacted writes instead cost S_comp = T_fixed + T_comp with
    T_comp = 100 ns (measured as a pre-sized vector append, Sec. 3.2). *)

type params = {
  t_fixed : float;  (** ns; NIC/stack interaction per request *)
  t_compute_lo : float;  (** ns; uniform bounds of compute component *)
  t_compute_hi : float;
  t_per_line : float;  (** ns per cache line of item footprint *)
  t_comp : float;  (** ns; private-log append for a compacted write *)
  item : C4_kvs.Item.t;
}

(** Calibrated so 16 B/512 B items give T_kvs ~ U[400, 800] ns. *)
val default : params

(** Same calibration with another item geometry (Table 2 rows). *)
val with_item : C4_kvs.Item.t -> params

type t

val create : params -> C4_dsim.Rng.t -> t
val params : t -> params

(** One sample of T_kvs (excludes [t_fixed]). *)
val sample_kvs : t -> float

(** One sample of T_kvs for a specific value size (heterogeneous-item
    workloads): same compute draw, line count from the actual value. *)
val sample_kvs_sized : t -> value_size:int -> float

(** Cache lines a [value_size]-byte item occupies (with this model's
    key size). *)
val lines_for : t -> value_size:int -> int

(** Mean of T_kvs + T_fixed: the S̄ used to size SLOs and compaction
    windows. *)
val mean_service : t -> float

(** Mean T_kvs alone. *)
val mean_kvs : t -> float

(** Cache lines one item access touches. *)
val lines : t -> int
