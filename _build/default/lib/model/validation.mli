(** Closed-form queueing results used to validate the simulator.

    The server model must agree with textbook queueing theory in the
    regimes where closed forms exist; the test suite drives the
    simulator into those regimes (single worker, balanced single-queue
    multi-worker) and compares. This is the evidence that simulated
    latencies mean what the paper's latencies mean. *)

(** Mean waiting time (excluding service) of an M/G/1 queue via
    Pollaczek–Khinchine: W = λ·E[S²] / (2·(1−ρ)).
    [service_mean] and [service_var] describe the service distribution;
    [lambda] is the arrival rate. Requires ρ = λ·E[S] < 1. *)
val mg1_mean_wait :
  lambda:float -> service_mean:float -> service_var:float -> float

(** Erlang-C: probability an arrival waits in an M/M/c queue. *)
val erlang_c : lambda:float -> mu:float -> c:int -> float

(** Mean waiting time of an M/M/c queue. *)
val mmc_mean_wait : lambda:float -> mu:float -> c:int -> float

(** Allen–Cunneen approximation for the mean wait of M/G/c:
    W ≈ W_mmc · (C_a² + C_s²)/2 with C_a² = 1 for Poisson arrivals. *)
val mgc_mean_wait_approx :
  lambda:float -> service_mean:float -> service_var:float -> c:int -> float

(** Utilisation ρ = λ·E[S]/c. *)
val utilization : lambda:float -> service_mean:float -> c:int -> float

(** Mean and variance of the model's default uniform service
    distribution over [lo, hi]. *)
val uniform_moments : lo:float -> hi:float -> float * float
