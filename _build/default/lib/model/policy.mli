(** Concurrency-control policies under study (Sec. 3.1, Sec. 6).

    The policy decides, per request, whether the NIC may load-balance it
    (JBSQ) or must route it to a statically determined owner — and what
    synchronisation surcharges the software pays. *)

type rlu_params = {
  read_factor : float;  (** read T_kvs multiplier (measured 1.75×) *)
  write_factor : float;  (** write T_kvs multiplier *)
  commit_degree : int;  (** writes per log promotion (deferral degree) *)
  promotion_lo : float;
      (** ns; log write-back duration bounds. Promotion runs on the
          worker after the triggering response (commit deferral), so it
          stalls queued requests rather than the promoting one *)
  promotion_hi : float;
  gc_period : int;  (** writes per GC stall; 0 = no GC (plain RLU) *)
  gc_stall : float;  (** ns per GC stall (MV-RLU: ~70 µs) *)
}

(** Parameters from the paper's measurements (Secs. 2.1, 7.1). *)
val rlu_default : rlu_params

val mvrlu_default : rlu_params

type delegation_params = {
  t_forward : float;
      (** ns a worker spends handing a write it does not own to the
          owner's queue (enqueue + wakeup, the ffwd/RCL-style shuffle) *)
}

(** Calibrated to delegation literature: ~100-200 ns per cross-core
    hand-off on a modern server. *)
val delegation_default : delegation_params

type t =
  | Erew  (** everything statically hashed; no balancing at all *)
  | Crew  (** reads balanced, writes hashed — state of the art *)
  | Dcrew  (** reads balanced; writes balanced unless EWT-pinned (C-4) *)
  | Ideal
      (** everything balanced, no synchronisation cost: the unattainable
          bound the paper normalises against *)
  | Crcw_rlu of rlu_params  (** concurrent writers via (MV-)RLU *)
  | Delegate of delegation_params
      (** software delegation (ffwd / flat combining / RCL, Sec. 8):
          the NIC balances everything, but a worker receiving a write it
          does not own forwards it to the owner — CREW re-implemented in
          software, paying the shuffle *)
  | Size_aware of size_aware_params
      (** the Minos adaptation the paper sketches (Sec. 8): d-CREW with
          the EWT additionally steering large-item requests to a
          reserved worker pool, so small requests never queue behind
          multi-KB transfers *)

and size_aware_params = {
  size_threshold : int;  (** bytes; >= this routes to the reserved pool *)
  reserved_workers : int;  (** workers dedicated to large items *)
}

val name : t -> string
val pp : Format.formatter -> t -> unit

(** May the NIC load-balance this request under the policy? (For Dcrew
    writes the answer is "yes unless pinned", resolved by the EWT at
    dispatch time, so this returns true.) *)
val balanceable : t -> C4_workload.Request.op -> bool

(** Does the policy track writes in the EWT? *)
val uses_ewt : t -> bool
