module Generator = C4_workload.Generator

type point = {
  offered_mrps : float;
  achieved_mrps : float;
  p99_ns : float;
  mean_ns : float;
  result : Server.result;
}

let default_n_requests = 100_000

let run_at ?(n_requests = default_n_requests) cfg ~workload ~rate =
  let workload = { workload with Generator.rate } in
  let result = Server.run cfg ~workload ~n_requests in
  {
    offered_mrps = rate *. 1e3;
    achieved_mrps = Metrics.throughput_mrps result.Server.metrics;
    p99_ns = Metrics.p99 result.Server.metrics;
    mean_ns = Metrics.mean_latency result.Server.metrics;
    result;
  }

let load_latency ?n_requests cfg ~workload ~rates =
  List.map (fun rate -> run_at ?n_requests cfg ~workload ~rate) rates

let meets_slo ~slo_multiplier point =
  let target = slo_multiplier *. point.result.Server.mean_service in
  let total_drops =
    Metrics.drops point.result.Server.metrics
  in
  let completed = Metrics.completed point.result.Server.metrics in
  let drop_rate =
    if completed + total_drops = 0 then 0.0
    else float_of_int total_drops /. float_of_int (completed + total_drops)
  in
  point.p99_ns <= target
  && drop_rate < 0.001
  && point.achieved_mrps >= 0.98 *. point.offered_mrps

let max_tput_under_slo ?n_requests ?(iterations = 9) ?(lo = 0.002) ?(hi = 0.2) cfg
    ~workload ~slo_multiplier =
  let probe rate = run_at ?n_requests cfg ~workload ~rate in
  (* Establish the bracket: if even [lo] misses the SLO, report it. *)
  let lo_point = probe lo in
  if not (meets_slo ~slo_multiplier lo_point) then (lo *. 1e3, lo_point)
  else begin
    let best = ref (lo, lo_point) in
    let lo = ref lo and hi = ref hi in
    for _ = 1 to iterations do
      let mid = (!lo +. !hi) /. 2.0 in
      let point = probe mid in
      if meets_slo ~slo_multiplier point then begin
        best := (mid, point);
        lo := mid
      end
      else hi := mid
    done;
    let rate, point = !best in
    (rate *. 1e3, point)
  end

let excess_p99 ?n_requests cfg ~ideal ~workload ~slo_multiplier =
  let _, peak = max_tput_under_slo ?n_requests cfg ~workload ~slo_multiplier in
  let rate = peak.offered_mrps /. 1e3 in
  let ideal_point = run_at ?n_requests ideal ~workload ~rate in
  if ideal_point.p99_ns <= 0.0 then 1.0 else peak.p99_ns /. ideal_point.p99_ns

let surface ~gammas ~write_fractions ~f =
  List.concat_map
    (fun theta ->
      List.map
        (fun write_fraction -> (theta, write_fraction, f ~theta ~write_fraction))
        write_fractions)
    gammas
