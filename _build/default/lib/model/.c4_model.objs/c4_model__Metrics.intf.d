lib/model/metrics.mli: C4_stats C4_workload Format
