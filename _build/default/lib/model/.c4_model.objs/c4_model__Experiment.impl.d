lib/model/experiment.ml: C4_workload List Metrics Server
