lib/model/server.mli: C4_cache C4_kvs C4_nic C4_workload Metrics Policy Service
