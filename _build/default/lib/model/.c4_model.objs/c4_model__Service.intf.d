lib/model/service.mli: C4_dsim C4_kvs
