lib/model/experiment.mli: C4_workload Server
