lib/model/metrics.ml: Array C4_stats C4_workload Float Format
