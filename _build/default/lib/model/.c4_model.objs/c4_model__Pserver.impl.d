lib/model/pserver.ml: Array C4_dsim C4_stats C4_workload Float Queue Service
