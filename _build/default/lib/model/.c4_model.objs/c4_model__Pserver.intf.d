lib/model/pserver.mli: C4_stats C4_workload
