lib/model/validation.ml:
