lib/model/server.ml: Array Bytes C4_cache C4_dsim C4_kvs C4_nic C4_workload Float Hashtbl List Metrics Option Policy Printf Service
