lib/model/policy.mli: C4_workload Format
