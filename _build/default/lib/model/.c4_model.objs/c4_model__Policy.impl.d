lib/model/policy.ml: C4_workload Format
