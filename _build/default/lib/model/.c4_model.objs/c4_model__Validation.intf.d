lib/model/validation.mli:
