lib/model/service.ml: C4_dsim C4_kvs
