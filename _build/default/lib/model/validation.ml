let utilization ~lambda ~service_mean ~c =
  lambda *. service_mean /. float_of_int c

let mg1_mean_wait ~lambda ~service_mean ~service_var =
  let rho = lambda *. service_mean in
  if rho >= 1.0 then invalid_arg "Validation.mg1_mean_wait: unstable (rho >= 1)";
  let second_moment = service_var +. (service_mean *. service_mean) in
  lambda *. second_moment /. (2.0 *. (1.0 -. rho))

let erlang_c ~lambda ~mu ~c =
  let a = lambda /. mu in
  let cf = float_of_int c in
  if a >= cf then invalid_arg "Validation.erlang_c: unstable (a >= c)";
  (* Sum a^k/k! computed incrementally to avoid overflow. *)
  let rec sum k term acc =
    if k > c - 1 then (acc, term)
    else sum (k + 1) (term *. a /. float_of_int (k + 1)) (acc +. term)
  in
  let partial, term_c = sum 0 1.0 0.0 in
  (* term_c now holds a^c/c!. *)
  let tail = term_c *. cf /. (cf -. a) in
  tail /. (partial +. tail)

(* W_q = C(c, a) / (c·mu − lambda). *)
let mmc_mean_wait ~lambda ~mu ~c =
  erlang_c ~lambda ~mu ~c /. ((float_of_int c *. mu) -. lambda)

let mgc_mean_wait_approx ~lambda ~service_mean ~service_var ~c =
  let mu = 1.0 /. service_mean in
  let scv = service_var /. (service_mean *. service_mean) in
  mmc_mean_wait ~lambda ~mu ~c *. ((1.0 +. scv) /. 2.0)

let uniform_moments ~lo ~hi =
  let mean = (lo +. hi) /. 2.0 in
  let var = (hi -. lo) *. (hi -. lo) /. 12.0 in
  (mean, var)
