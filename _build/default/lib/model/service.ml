module Rng = C4_dsim.Rng
module Item = C4_kvs.Item

type params = {
  t_fixed : float;
  t_compute_lo : float;
  t_compute_hi : float;
  t_per_line : float;
  t_comp : float;
  item : Item.t;
}

(* Calibration: Item.large touches 1 + ceil(512/64) = 9 lines. With the
   compute component U[160, 320] and 53.3 ns/line, T_kvs spans
   [160+480, 320+480] = [640, 800]... we instead split so the bounds hit
   the paper's U[400, 800]: compute U[40, 440] captures the variance and
   lines carry the mean. 40 + 9*40 = 400 low, 440 + 9*40 = 800 high. *)
let default =
  {
    t_fixed = 100.0;
    t_compute_lo = 40.0;
    t_compute_hi = 440.0;
    t_per_line = 40.0;
    t_comp = 100.0;
    item = Item.large;
  }

let with_item item = { default with item }

type t = { p : params; rng : Rng.t; lines_ : int }

let create p rng =
  if p.t_fixed < 0.0 || p.t_per_line < 0.0 || p.t_comp < 0.0 then
    invalid_arg "Service.create: negative time parameter";
  if p.t_compute_lo > p.t_compute_hi then
    invalid_arg "Service.create: compute bounds inverted";
  { p; rng; lines_ = Item.total_lines p.item }

let params t = t.p

let sample_kvs t =
  Rng.uniform t.rng ~lo:t.p.t_compute_lo ~hi:t.p.t_compute_hi
  +. (t.p.t_per_line *. float_of_int t.lines_)

let lines_for t ~value_size =
  Item.total_lines { t.p.item with Item.value_size }

let sample_kvs_sized t ~value_size =
  Rng.uniform t.rng ~lo:t.p.t_compute_lo ~hi:t.p.t_compute_hi
  +. (t.p.t_per_line *. float_of_int (lines_for t ~value_size))

let mean_kvs t =
  ((t.p.t_compute_lo +. t.p.t_compute_hi) /. 2.0)
  +. (t.p.t_per_line *. float_of_int t.lines_)

let mean_service t = mean_kvs t +. t.p.t_fixed
let lines t = t.lines_
