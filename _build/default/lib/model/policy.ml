type rlu_params = {
  read_factor : float;
  write_factor : float;
  commit_degree : int;
  promotion_lo : float;
  promotion_hi : float;
  gc_period : int;
  gc_stall : float;
}

let rlu_default =
  {
    read_factor = 1.75;
    write_factor = 1.0;
    commit_degree = 16;
    promotion_lo = 10_000.0;
    promotion_hi = 20_000.0;
    gc_period = 0;
    gc_stall = 0.0;
  }

let mvrlu_default =
  {
    read_factor = 1.75;
    write_factor = 2.0;
    commit_degree = 16;
    promotion_lo = 2_000.0;
    promotion_hi = 4_000.0;
    gc_period = 32;
    gc_stall = 70_000.0;
  }

type delegation_params = { t_forward : float }

let delegation_default = { t_forward = 150.0 }

type t =
  | Erew
  | Crew
  | Dcrew
  | Ideal
  | Crcw_rlu of rlu_params
  | Delegate of delegation_params
  | Size_aware of size_aware_params

and size_aware_params = { size_threshold : int; reserved_workers : int }

let name = function
  | Erew -> "EREW"
  | Crew -> "CREW"
  | Dcrew -> "d-CREW"
  | Ideal -> "Ideal"
  | Crcw_rlu p -> if p.gc_period > 0 then "MV-RLU" else "RLU"
  | Delegate _ -> "Delegation"
  | Size_aware _ -> "Size-aware d-CREW"

let pp ppf t = Format.pp_print_string ppf (name t)

let balanceable t (op : C4_workload.Request.op) =
  match (t, op) with
  | Erew, _ -> false
  | Crew, Read -> true
  | Crew, Write -> false
  | Dcrew, _ -> true
  | Ideal, _ -> true
  | Crcw_rlu _, _ -> true
  | Delegate _, _ -> true
  | Size_aware _, _ -> true

let uses_ewt = function
  | Dcrew | Size_aware _ -> true
  | Erew | Crew | Ideal | Crcw_rlu _ | Delegate _ -> false
