lib/cluster/cluster.mli: C4_model C4_workload
