lib/cluster/cluster.ml: Array C4_kvs C4_model C4_stats C4_workload List
