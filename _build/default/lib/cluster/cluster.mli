(** Multi-node deployment model.

    Production KVS shard the key space across many servers; the paper
    (Sec. 8) observes that the write imbalances it identifies "would be
    strictly worse in the multi-node distributed settings" — a hot key
    overloads not just one thread but one whole node, while consistent
    hashing gives the operator even less recourse than a NIC balancer.

    This module models a cluster as N independent server simulations:
    one generated request stream is sharded by key hash onto nodes
    (clients route directly, as with memcached-style client-side
    sharding); each node runs the single-node model with its own
    concurrency-control configuration; cluster-level metrics aggregate
    node results. Cross-node effects (replication, multi-get fan-out)
    are out of scope — as they are for the paper. *)

type netcache = {
  hot_keys : int;
      (** the switch caches the [hot_keys] most popular items (NetCache's
          "small cache, big effect": O(N·log N) items suffice for N
          servers) *)
  t_switch : float;  (** ns a switch-served read takes *)
}

type config = {
  n_nodes : int;
  node : C4_model.Server.config;  (** per-node configuration *)
  workload : C4_workload.Generator.config;
      (** cluster-wide offered load; [rate] is the aggregate *)
  netcache : netcache option;
      (** optional in-network read cache in front of the nodes
          (write-through: writes always reach the owning node) *)
}

type node_result = {
  node_id : int;
  requests : int;  (** requests routed to this node *)
  result : C4_model.Server.result;
}

type t = {
  nodes : node_result list;
  cluster_p99 : float;  (** over all requests' latencies *)
  cluster_mean : float;
  cluster_tput_mrps : float;  (** sum of node throughputs *)
  imbalance : float;
      (** hottest node's offered share over the fair share 1/N; 1.0 =
          perfectly balanced — computed over the requests that actually
          reach the nodes (after any switch-cache hits) *)
  switch_hits : int;  (** reads served by the in-network cache *)
}

(** Shard one generated stream and simulate every node. *)
val run : ?seed:int -> config -> n_requests:int -> t

(** Node a key routes to (exposed for tests). *)
val node_of_key : n_nodes:int -> int -> int
