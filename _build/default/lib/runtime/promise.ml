type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable value : 'a option;
}

let create () = { mutex = Mutex.create (); cond = Condition.create (); value = None }

let fulfil t v =
  Mutex.lock t.mutex;
  (match t.value with
  | Some _ ->
    Mutex.unlock t.mutex;
    invalid_arg "Promise.fulfil: already fulfilled"
  | None ->
    t.value <- Some v;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex)

let await t =
  Mutex.lock t.mutex;
  let rec wait () =
    match t.value with
    | Some v ->
      Mutex.unlock t.mutex;
      v
    | None ->
      Condition.wait t.cond t.mutex;
      wait ()
  in
  wait ()

let peek t =
  Mutex.lock t.mutex;
  let v = t.value in
  Mutex.unlock t.mutex;
  v
