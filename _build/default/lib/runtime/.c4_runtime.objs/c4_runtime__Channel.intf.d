lib/runtime/channel.mli:
