lib/runtime/channel.ml: Condition List Mutex Queue
