lib/runtime/server.ml: Array C4_kvs Channel Domain List Mutex Promise
