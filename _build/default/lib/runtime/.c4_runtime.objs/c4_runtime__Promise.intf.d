lib/runtime/promise.mli:
