lib/runtime/promise.ml: Condition Mutex
