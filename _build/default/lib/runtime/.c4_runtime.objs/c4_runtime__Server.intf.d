lib/runtime/server.mli: Promise
