(** One-shot blocking promise for cross-domain replies: the worker
    fulfils, the client blocks. Monitor-style (mutex + condition) so a
    waiting client yields its core instead of spinning. *)

type 'a t

val create : unit -> 'a t

(** Fulfil the promise; raises [Invalid_argument] on double fulfilment. *)
val fulfil : 'a t -> 'a -> unit

(** Block until fulfilled and return the value. *)
val await : 'a t -> 'a

(** Nonblocking poll. *)
val peek : 'a t -> 'a option
