module Store = C4_kvs.Store

type op =
  | Get of int * bytes option Promise.t
  | Set of int * bytes * unit Promise.t

type worker_state = {
  channel : op Channel.t;
  mutable ops : int;
  mutable writes_n : int;
  mutable batches : int;
  mutable batched_writes : int;
  mutable retries : int;
}

type config = {
  n_workers : int;
  n_buckets : int;
  n_partitions : int;
  compaction : bool;
  max_batch : int;
}

let default_config =
  { n_workers = 4; n_buckets = 4096; n_partitions = 256; compaction = true; max_batch = 64 }

type t = {
  cfg : config;
  store : Store.t;
  workers : worker_state array;
  domains : unit Domain.t array;
  mutable next_reader : int;
  reader_lock : Mutex.t;
  mutable stopped : bool;
}

let owner_of_key t key = Store.partition_of_key t.store key mod t.cfg.n_workers

let is_set_to key = function Set (k, _, _) -> k = key | Get _ -> false

(* Worker loop: CREW writes for owned partitions, balanced reads, and
   the compaction fast path — pop a write, harvest every queued write to
   the same key, apply one batched update, answer all of them. *)
let worker_loop cfg store (w : worker_state) =
  let rec loop () =
    match Channel.pop w.channel with
    | None -> ()
    | Some (Get (key, promise)) ->
      let value, retries = Store.get store ~key in
      w.retries <- w.retries + retries;
      w.ops <- w.ops + 1;
      Promise.fulfil promise value;
      loop ()
    | Some (Set (key, value, promise)) ->
      if cfg.compaction then begin
        let dependents = Channel.drain_matching w.channel ~f:(is_set_to key) in
        let dependents =
          if List.length dependents > cfg.max_batch - 1 then begin
            (* Put the overflow back in order; rare, but the window must
               stay bounded. *)
            let keep, overflow =
              List.filteri (fun i _ -> i < cfg.max_batch - 1) dependents,
              List.filteri (fun i _ -> i >= cfg.max_batch - 1) dependents
            in
            List.iter (Channel.push w.channel) overflow;
            keep
          end
          else dependents
        in
        match dependents with
        | [] ->
          Store.set store ~key ~value;
          w.ops <- w.ops + 1;
          w.writes_n <- w.writes_n + 1;
          Promise.fulfil promise ();
          loop ()
        | _ :: _ ->
          let values =
            value :: List.map (function Set (_, v, _) -> v | Get _ -> assert false) dependents
          in
          Store.set_batched store ~key ~values;
          let n = List.length values in
          w.ops <- w.ops + n;
          w.writes_n <- w.writes_n + n;
          w.batches <- w.batches + 1;
          w.batched_writes <- w.batched_writes + n;
          (* Deferred responses: nothing was acknowledged before the
             combined update hit the store. *)
          Promise.fulfil promise ();
          List.iter
            (function Set (_, _, p) -> Promise.fulfil p () | Get _ -> assert false)
            dependents;
          loop ()
      end
      else begin
        Store.set store ~key ~value;
        w.ops <- w.ops + 1;
        w.writes_n <- w.writes_n + 1;
        Promise.fulfil promise ();
        loop ()
      end
  in
  loop ()

let start cfg =
  if cfg.n_workers < 1 then invalid_arg "Server.start: n_workers";
  if cfg.max_batch < 1 then invalid_arg "Server.start: max_batch";
  let store = Store.create ~n_buckets:cfg.n_buckets ~n_partitions:cfg.n_partitions () in
  let workers =
    Array.init cfg.n_workers (fun _ ->
        {
          channel = Channel.create ();
          ops = 0;
          writes_n = 0;
          batches = 0;
          batched_writes = 0;
          retries = 0;
        })
  in
  let domains =
    Array.map (fun w -> Domain.spawn (fun () -> worker_loop cfg store w)) workers
  in
  {
    cfg;
    store;
    workers;
    domains;
    next_reader = 0;
    reader_lock = Mutex.create ();
    stopped = false;
  }

let submit t ~worker op =
  if t.stopped then invalid_arg "Server: stopped";
  Channel.push t.workers.(worker).channel op

let pick_reader t =
  Mutex.lock t.reader_lock;
  let r = t.next_reader in
  t.next_reader <- (r + 1) mod t.cfg.n_workers;
  Mutex.unlock t.reader_lock;
  r

let get_async t ~key =
  let promise = Promise.create () in
  submit t ~worker:(pick_reader t) (Get (key, promise));
  promise

let set_async t ~key ~value =
  let promise = Promise.create () in
  (* CREW: the partition owner is the only worker that ever writes it. *)
  submit t ~worker:(owner_of_key t key) (Set (key, value, promise));
  promise

let get t ~key = Promise.await (get_async t ~key)
let set t ~key ~value = Promise.await (set_async t ~key ~value)

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter (fun w -> Channel.close w.channel) t.workers;
    Array.iter Domain.join t.domains
  end

type stats = {
  ops_completed : int;
  writes : int;
  batches : int;
  batched_writes : int;
  read_retries : int;
  per_worker_ops : int array;
}

let stats t =
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 t.workers in
  {
    ops_completed = sum (fun w -> w.ops);
    writes = sum (fun w -> w.writes_n);
    batches = sum (fun w -> w.batches);
    batched_writes = sum (fun w -> w.batched_writes);
    read_retries = sum (fun w -> w.retries);
    per_worker_ops = Array.map (fun w -> w.ops) t.workers;
  }
