(** A real, multicore in-process KVS server: worker domains serving the
    {!C4_kvs.Store} under CREW dispatch, with optional write compaction.

    This is the runnable counterpart of the simulated server model —
    the same concurrency-control rules executed by actual domains with
    actual locks:

    - writes are routed to the partition's owner worker (CREW), so the
      store's per-partition seqlocks never see two writers — the
      invariant the NIC enforces in C-4;
    - reads are sprayed across workers round-robin and run the seqlock's
      optimistic protocol against concurrent in-place updates;
    - with compaction enabled, a worker that pops a write drains every
      queued write to the same key from its channel (the dependent-write
      harvest), applies ONE batched update, and only then answers all of
      them — C-4's deferred-response rule, so recorded histories remain
      linearizable, which the test suite verifies on real executions.

    On a many-core machine this is a usable (if minimal) concurrent KVS;
    on a single core it still exercises every synchronisation path via
    preemptive interleaving. *)

type t

type config = {
  n_workers : int;
  n_buckets : int;
  n_partitions : int;
  compaction : bool;
  max_batch : int;  (** cap on writes compacted into one batched update *)
}

val default_config : config

(** Start the worker domains. *)
val start : config -> t

(** Blocking operations (thread-safe, callable from any domain). *)
val get : t -> key:int -> bytes option

val set : t -> key:int -> value:bytes -> unit

(** Nonblocking variants returning promises. *)
val get_async : t -> key:int -> bytes option Promise.t

val set_async : t -> key:int -> value:bytes -> unit Promise.t

(** Drain queues, join the domains. Idempotent. Operations submitted
    after [stop] raise. *)
val stop : t -> unit

type stats = {
  ops_completed : int;
  writes : int;
  batches : int;  (** batched updates applied (compaction only) *)
  batched_writes : int;  (** writes answered from a batch *)
  read_retries : int;  (** seqlock retries observed by readers *)
  per_worker_ops : int array;
}

val stats : t -> stats

(** The worker that owns a key's partition (CREW routing; exposed for
    tests). *)
val owner_of_key : t -> int -> int
