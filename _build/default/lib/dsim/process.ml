type t = { sim_ : Sim.t }

(* A single polymorphic suspension effect: the performer hands the
   handler a function that captures the continuation and arranges its
   later resumption (via Sim events), keeping all scheduling decisions
   in one place. *)
type _ Effect.t +=
  | Suspend : (('a, unit) Effect.Deep.continuation -> unit) -> 'a Effect.t

let create sim = { sim_ = sim }
let sim t = t.sim_
let now t = Sim.now t.sim_

let run_process body =
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend capture ->
            Some (fun (k : (a, unit) Effect.Deep.continuation) -> capture k)
          | _ -> None);
    }

let spawn _t body = run_process body

let spawn_at t ~time body =
  ignore (Sim.schedule_at t.sim_ ~time (fun _ -> run_process body))

let wait t delay =
  Effect.perform
    (Suspend
       (fun k ->
         ignore (Sim.schedule t.sim_ ~after:delay (fun _ -> Effect.Deep.continue k ()))))

module Signal = struct
  type process = t

  type t = {
    mutable waiting : (int, unit) Effect.Deep.continuation list; (* reversed *)
  }

  let create () = { waiting = [] }

  let await (_p : process) s =
    Effect.perform (Suspend (fun k -> s.waiting <- k :: s.waiting))

  let emit (p : process) s value =
    let waiters = List.rev s.waiting in
    s.waiting <- [];
    List.iter
      (fun k ->
        ignore (Sim.schedule p.sim_ ~after:0.0 (fun _ -> Effect.Deep.continue k value)))
      waiters

  let waiters s = List.length s.waiting
end

module Mailbox = struct
  type process = t

  type 'a t = {
    values : 'a Queue.t;
    mutable readers : ('a, unit) Effect.Deep.continuation list; (* reversed *)
  }

  let create () = { values = Queue.create (); readers = [] }

  let send (p : process) m v =
    match List.rev m.readers with
    | [] -> Queue.push v m.values
    | k :: rest ->
      m.readers <- List.rev rest;
      ignore (Sim.schedule p.sim_ ~after:0.0 (fun _ -> Effect.Deep.continue k v))

  let recv (_p : process) m =
    if Queue.is_empty m.values then
      Effect.perform (Suspend (fun k -> m.readers <- k :: m.readers))
    else Queue.pop m.values

  let length m = Queue.length m.values
end
