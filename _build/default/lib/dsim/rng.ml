type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let float t =
  (* 53 high-quality bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t bound =
  assert (bound > 0);
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for bounds
     below 2^24, far under simulation noise. *)
  let v = Int64.to_int (bits64 t) land ((1 lsl 62) - 1) in
  v mod bound

let exponential t ~mean =
  assert (mean > 0.0);
  let u = 1.0 -. float t in
  -.mean *. log u

let bernoulli t ~p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let gaussian t =
  let u1 = 1.0 -. float t and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
