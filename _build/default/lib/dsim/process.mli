(** Coroutine-style simulation processes on top of {!Sim}, built with
    OCaml 5 effect handlers.

    The core engine is callback-driven; some models read more naturally
    as sequential processes that block ("serve a request, then sleep
    until the next poll"). [spawn] runs such a process; inside it,
    {!wait} suspends for simulated time and {!await} blocks on a
    {!Signal} until another process {!emit}s it. Suspension points are
    implemented as effects, so a process is plain direct-style code.

    Determinism is preserved: resumptions are ordinary simulator events
    and obey the global time/FIFO order. *)

type t
(** A process environment bound to one simulator. *)

val create : Sim.t -> t

val sim : t -> Sim.t

(** [spawn t body] starts [body] immediately (at the current simulated
    time). The process ends when [body] returns. *)
val spawn : t -> (unit -> unit) -> unit

(** [spawn_at t ~time body] starts [body] at absolute [time]. *)
val spawn_at : t -> time:float -> (unit -> unit) -> unit

(** Suspend the calling process for [delay] simulated ns. Must be called
    from within a spawned process. *)
val wait : t -> float -> unit

(** Current simulated time (usable anywhere). *)
val now : t -> float

(** Broadcast signals: processes block until the next emission. *)
module Signal : sig
  type process = t
  type t

  val create : unit -> t

  (** Block the calling process until the signal is emitted; returns the
      emitted value. *)
  val await : process -> t -> int

  (** Wake every waiter with [value]. Waiters resume at the current
      time, in await order. *)
  val emit : process -> t -> int -> unit

  (** Number of processes currently blocked. *)
  val waiters : t -> int
end

(** Unbounded process-to-process channel (a mailbox): [recv] blocks when
    empty. *)
module Mailbox : sig
  type process = t
  type 'a t

  val create : unit -> 'a t
  val send : process -> 'a t -> 'a -> unit
  val recv : process -> 'a t -> 'a
  val length : 'a t -> int
end
