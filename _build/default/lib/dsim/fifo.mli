(** Mutable FIFO queue with O(1) push/pop and O(n) in-place scan/removal.

    Worker request queues need one operation beyond a plain queue: the
    compaction layer scans the first [k] waiting requests for writes to a
    given key and extracts them (paper Sec. 4.3, "scans a small number of
    extra queue slots"). A ring buffer supports that directly. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Append at the tail. *)
val push : 'a t -> 'a -> unit

(** Remove from the head. *)
val pop : 'a t -> 'a option

(** Head element without removing it. *)
val peek : 'a t -> 'a option

(** [scan t ~depth ~f] visits up to [depth] elements from the head in
    order, calling [f] on each. [depth < 0] means the whole queue. *)
val scan : 'a t -> depth:int -> f:('a -> unit) -> unit

(** [extract t ~depth ~f] removes (stably) every element among the first
    [depth] for which [f] holds and returns them in queue order.
    [depth < 0] means the whole queue. O(n). *)
val extract : 'a t -> depth:int -> f:('a -> bool) -> 'a list

(** [exists t ~depth ~f]: does any of the first [depth] elements satisfy [f]? *)
val exists : 'a t -> depth:int -> f:('a -> bool) -> bool

val iter : 'a t -> f:('a -> unit) -> unit
val to_list : 'a t -> 'a list
val clear : 'a t -> unit
