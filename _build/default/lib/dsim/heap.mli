(** Array-backed binary min-heap, specialised to [(priority, payload)] pairs
    with [float] priorities and a monotonically increasing tiebreak sequence
    so that equal-priority entries pop in insertion order (deterministic
    simulation demands a total order on events). *)

type 'a t

(** [create ()] is an empty heap. *)
val create : ?capacity:int -> unit -> 'a t

(** Number of live entries. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h ~priority x] inserts [x]. Amortised O(log n). *)
val push : 'a t -> priority:float -> 'a -> unit

(** Smallest-priority entry without removing it. *)
val peek : 'a t -> (float * 'a) option

(** Remove and return the smallest-priority entry. *)
val pop : 'a t -> (float * 'a) option

(** Remove every entry. The backing store is retained. *)
val clear : 'a t -> unit

(** Fold over entries in unspecified order (diagnostics only). *)
val fold : 'a t -> init:'b -> f:('b -> float -> 'a -> 'b) -> 'b
