(** Deterministic, splittable pseudo-random number generation.

    The simulator must be reproducible across runs and platforms, so we
    implement SplitMix64 directly instead of relying on [Stdlib.Random].
    Streams can be [split] so that independent model components (arrival
    process, key popularity, service times) draw from decorrelated
    sequences, keeping experiments comparable when one component changes. *)

type t

(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)
val create : int -> t

(** Derive an independent stream; the parent stream advances by one step. *)
val split : t -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [lo, hi). Requires [lo <= hi]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Uniform int in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** Exponentially distributed value with the given [mean] (> 0).
    Used for Poisson inter-arrival times. *)
val exponential : t -> mean:float -> float

(** True with probability [p] (clamped to [0, 1]). *)
val bernoulli : t -> p:float -> bool

(** Standard normal via Box–Muller (diagnostics and noise injection). *)
val gaussian : t -> float

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
