lib/dsim/process.mli: Sim
