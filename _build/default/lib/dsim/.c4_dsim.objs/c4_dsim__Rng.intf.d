lib/dsim/rng.mli:
