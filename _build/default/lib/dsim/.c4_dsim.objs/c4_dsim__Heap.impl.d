lib/dsim/heap.ml: Array Obj
