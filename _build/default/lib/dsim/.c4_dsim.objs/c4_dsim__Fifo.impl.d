lib/dsim/fifo.ml: Array List
