lib/dsim/sim.ml: Hashtbl Heap Printf
