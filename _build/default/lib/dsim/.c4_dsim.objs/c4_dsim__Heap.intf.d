lib/dsim/heap.mli:
