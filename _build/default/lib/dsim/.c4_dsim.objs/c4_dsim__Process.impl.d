lib/dsim/process.ml: Effect List Queue Sim
