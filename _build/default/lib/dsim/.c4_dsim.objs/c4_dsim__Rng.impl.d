lib/dsim/rng.ml: Array Float Int64
