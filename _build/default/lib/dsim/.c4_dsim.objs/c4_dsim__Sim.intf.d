lib/dsim/sim.mli:
