lib/dsim/fifo.mli:
