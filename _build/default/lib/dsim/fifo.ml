type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of the next element to pop *)
  mutable size : int;
}

let create ?(capacity = 16) () =
  { buf = Array.make (max capacity 1) None; head = 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to t.size - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push t x =
  if t.size = Array.length t.buf then grow t;
  let tail = (t.head + t.size) mod Array.length t.buf in
  t.buf.(tail) <- Some x;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.size <- t.size - 1;
    x
  end

let peek t = if t.size = 0 then None else t.buf.(t.head)

let nth_slot t i = (t.head + i) mod Array.length t.buf

let effective_depth t depth = if depth < 0 then t.size else min depth t.size

let scan t ~depth ~f =
  let d = effective_depth t depth in
  for i = 0 to d - 1 do
    match t.buf.(nth_slot t i) with
    | Some x -> f x
    | None -> assert false
  done

let exists t ~depth ~f =
  let d = effective_depth t depth in
  let rec loop i =
    if i >= d then false
    else
      match t.buf.(nth_slot t i) with
      | Some x -> f x || loop (i + 1)
      | None -> assert false
  in
  loop 0

let extract t ~depth ~f =
  let d = effective_depth t depth in
  let kept = ref [] and removed = ref [] in
  (* Drain everything once, partitioning the first [d] elements. *)
  let rest = ref [] in
  for i = 0 to t.size - 1 do
    match t.buf.(nth_slot t i) with
    | Some x ->
      if i < d then
        if f x then removed := x :: !removed else kept := x :: !kept
      else rest := x :: !rest
    | None -> assert false
  done;
  if !removed = [] then []
  else begin
    let cap = Array.length t.buf in
    Array.fill t.buf 0 cap None;
    t.head <- 0;
    t.size <- 0;
    List.iter (push t) (List.rev !kept);
    List.iter (push t) (List.rev !rest);
    List.rev !removed
  end

let iter t ~f = scan t ~depth:(-1) ~f

let to_list t =
  let acc = ref [] in
  iter t ~f:(fun x -> acc := x :: !acc);
  List.rev !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.size <- 0
