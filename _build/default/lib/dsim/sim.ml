type event = { id : int; action : t -> unit }

and t = {
  mutable clock : float;
  events : event Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable next_id : int;
  mutable executed : int;
  mutable live : int; (* pending minus cancelled *)
}

type event_id = int

let create () =
  {
    clock = 0.0;
    events = Heap.create ();
    cancelled = Hashtbl.create 64;
    next_id = 0;
    executed = 0;
    live = 0;
  }

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Heap.push t.events ~priority:time { id; action };
  t.live <- t.live + 1;
  id

let schedule t ~after action =
  if after < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. after) action

let cancel t id =
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1
  end

let pending t id = id < t.next_id && not (Hashtbl.mem t.cancelled id)

let rec step t =
  match Heap.pop t.events with
  | None -> false
  | Some (time, ev) ->
    if Hashtbl.mem t.cancelled ev.id then begin
      Hashtbl.remove t.cancelled ev.id;
      step t
    end
    else begin
      t.clock <- time;
      t.executed <- t.executed + 1;
      t.live <- t.live - 1;
      ev.action t;
      true
    end

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
      match Heap.peek t.events with
      | None -> false
      | Some (time, _) -> time < limit)
  in
  while continue () && step t do
    ()
  done;
  match until with
  | Some limit when t.clock < limit && Heap.peek t.events <> None -> t.clock <- limit
  | Some limit when Heap.peek t.events = None && t.clock < limit -> ()
  | _ -> ()

let executed t = t.executed
let pending_count t = t.live
