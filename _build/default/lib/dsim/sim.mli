(** Discrete-event simulator core.

    Time is a [float] in nanoseconds (the paper's natural unit: service
    times are hundreds of ns, SLOs are a few µs). The simulator executes
    scheduled callbacks in nondecreasing time order; ties execute in
    scheduling order, which together with {!Rng} makes whole experiments
    bit-reproducible. *)

type t

(** Handle for a scheduled event, usable with {!cancel}. *)
type event_id

val create : unit -> t

(** Current simulated time (ns). *)
val now : t -> float

(** [schedule t ~after f] runs [f t] at time [now t +. after].
    [after] must be nonnegative. *)
val schedule : t -> after:float -> (t -> unit) -> event_id

(** [schedule_at t ~time f] runs [f t] at absolute [time >= now t]. *)
val schedule_at : t -> time:float -> (t -> unit) -> event_id

(** Cancel a pending event. Cancelling an already-fired or already-
    cancelled event is a no-op. *)
val cancel : t -> event_id -> unit

(** Is the event still pending? *)
val pending : t -> event_id -> bool

(** Execute the next event, if any. Returns [false] when the queue is
    empty. *)
val step : t -> bool

(** Run until the event queue drains or [until] (if given) is reached;
    events scheduled exactly at [until] do not run. *)
val run : ?until:float -> t -> unit

(** Number of events executed so far (diagnostics). *)
val executed : t -> int

(** Number of events currently pending. *)
val pending_count : t -> int
