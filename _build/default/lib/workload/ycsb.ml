type t = A | B | C | D | E | F

let all = [ A; B; C; D; E; F ]

let name = function A -> "A" | B -> "B" | C -> "C" | D -> "D" | E -> "E" | F -> "F"

let of_name s =
  match String.uppercase_ascii (String.trim s) with
  | "A" -> Ok A
  | "B" -> Ok B
  | "C" -> Ok C
  | "D" -> Ok D
  | "E" -> Ok E
  | "F" -> Ok F
  | other -> Error (Printf.sprintf "unknown YCSB workload %S (expected A-F)" other)

let description = function
  | A -> "update heavy (session store): 50% reads, 50% updates"
  | B -> "read mostly (photo tagging): 95% reads, 5% updates"
  | C -> "read only (user-profile cache)"
  | D -> "read latest (status updates): 95% reads, 5% inserts"
  | E -> "short ranges (threaded conversations), approximated as reads"
  | F -> "read-modify-write (user database): 50% reads, 50% RMW"

let write_fraction = function
  | A -> 0.5
  | B -> 0.05
  | C -> 0.0
  | D -> 0.05
  | E -> 0.05
  | F -> 0.5

let config ?base t =
  let base =
    match base with
    | Some b -> b
    | None -> { Generator.default with n_keys = 1_600_000; n_partitions = 8192 }
  in
  { base with Generator.theta = 0.99; write_fraction = write_fraction t }
