(** YCSB core-workload presets mapped onto the generator.

    The KVS literature the paper engages with (MICA, NetCache, KV-Direct
    and the rest) reports against the Yahoo! Cloud Serving Benchmark's
    core workloads; production studies (Sec. 2) are usually summarised in
    the same vocabulary. These presets give each core workload's request
    mix and the standard Zipfian constant (0.99), so experiments can be
    phrased as "YCSB-A at 40 MRPS".

    Scans (workload E) have no KVS analogue here and are approximated as
    reads, as single-key KVS evaluations conventionally do. *)

type t =
  | A  (** update heavy: 50 % reads / 50 % updates *)
  | B  (** read mostly: 95 % reads / 5 % updates *)
  | C  (** read only *)
  | D  (** read latest: 95 % reads / 5 % inserts *)
  | E  (** short ranges: approximated as 95 % reads / 5 % inserts *)
  | F  (** read-modify-write: 50 % reads / 50 % RMW (each RMW = 1 write) *)

val all : t list
val name : t -> string
val of_name : string -> (t, string) result
val description : t -> string

(** The generator configuration for this workload (1.6 M keys, γ = 0.99,
    rate left at the base config's). *)
val config : ?base:Generator.config -> t -> Generator.config

(** Where each preset lands on the paper's taxonomy axes. *)
val write_fraction : t -> float
