module Rng = C4_dsim.Rng

type impl =
  | Cdf of float array (* cumulative probabilities, length n *)
  | Alias of { prob : float array; alias : int array }

type t = { n : int; theta : float; probs : float array; impl : impl; rng : Rng.t }

(* Experiments build many samplers over the same (n, theta); memoise the
   normalised weight vector, which dominates construction cost. *)
let weight_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 16

let weights ~n ~theta =
  match Hashtbl.find_opt weight_cache (n, theta) with
  | Some w -> w
  | None ->
    let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let w = Array.map (fun x -> x /. total) w in
    Hashtbl.replace weight_cache (n, theta) w;
    w

let build_cdf probs =
  let n = Array.length probs in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. probs.(i);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  Cdf cdf

(* Walker/Vose alias table: O(n) construction, O(1) sampling. *)
let build_alias probs =
  let n = Array.length probs in
  let scaled = Array.map (fun p -> p *. float_of_int n) probs in
  let prob = Array.make n 0.0 and alias = Array.make n 0 in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri
    (fun i p -> if p < 1.0 then Stack.push i small else Stack.push i large)
    scaled;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    if scaled.(l) < 1.0 then Stack.push l small else Stack.push l large
  done;
  let flush stack = Stack.iter (fun i -> prob.(i) <- 1.0) stack in
  flush small;
  flush large;
  Alias { prob; alias }

let create ?(method_ = `Cdf) ~n ~theta rng =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be nonnegative";
  let probs = weights ~n ~theta in
  let impl =
    match method_ with `Cdf -> build_cdf probs | `Alias -> build_alias probs
  in
  { n; theta; probs; impl; rng }

let sample t =
  match t.impl with
  | Cdf cdf ->
    let u = Rng.float t.rng in
    (* First index whose cumulative probability exceeds u. *)
    let rec bisect lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if cdf.(mid) > u then bisect lo mid else bisect (mid + 1) hi
      end
    in
    bisect 0 (t.n - 1)
  | Alias { prob; alias } ->
    let i = Rng.int t.rng t.n in
    if Rng.float t.rng < prob.(i) then i else alias.(i)

let n t = t.n
let theta t = t.theta
let prob t i = t.probs.(i)

let head_mass t k =
  let k = min k t.n in
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    acc := !acc +. t.probs.(i)
  done;
  !acc
