(** Recorded request traces: capture a generated stream once and replay
    it against several system configurations so policy comparisons see
    identical arrivals (variance reduction), or load it from a CSV file
    exported by another tool. *)

type t

(** Record the next [n] requests from a generator. *)
val record : Generator.t -> n:int -> t

(** Wrap an existing request array (shared, not copied); arrivals must
    be nondecreasing. *)
val of_array : Request.t array -> t

val length : t -> int
val get : t -> int -> Request.t
val iter : t -> f:(Request.t -> unit) -> unit

(** Fraction of writes actually present in the trace. *)
val write_fraction : t -> float

(** Offered load in requests per ns over the trace's time span. *)
val offered_rate : t -> float

(** [rescale t ~rate] returns a copy whose inter-arrival gaps are scaled
    so that the offered load becomes [rate] while preserving ordering,
    key sequence, and operation mix. *)
val rescale : t -> rate:float -> t

(** CSV round-trip: columns [id,op,key,partition,arrival,value_size]. *)
val to_csv : t -> string

val of_csv : string -> (t, string) result
