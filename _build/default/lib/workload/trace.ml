type t = Request.t array

let record gen ~n = Array.init n (fun _ -> Generator.next gen)

let of_array requests =
  for i = 1 to Array.length requests - 1 do
    if requests.(i).Request.arrival < requests.(i - 1).Request.arrival then
      invalid_arg "Trace.of_array: arrivals must be nondecreasing"
  done;
  requests

let length = Array.length
let get t i = t.(i)
let iter t ~f = Array.iter f t

let write_fraction t =
  if Array.length t = 0 then 0.0
  else begin
    let writes =
      Array.fold_left (fun acc r -> if Request.is_write r then acc + 1 else acc) 0 t
    in
    float_of_int writes /. float_of_int (Array.length t)
  end

let offered_rate t =
  let n = Array.length t in
  if n < 2 then 0.0
  else begin
    let span = t.(n - 1).Request.arrival -. t.(0).Request.arrival in
    if span <= 0.0 then 0.0 else float_of_int (n - 1) /. span
  end

let rescale t ~rate =
  let current = offered_rate t in
  if current <= 0.0 || rate <= 0.0 then Array.copy t
  else begin
    let factor = current /. rate in
    let base = if Array.length t = 0 then 0.0 else t.(0).Request.arrival in
    Array.map
      (fun r ->
        { r with Request.arrival = base +. ((r.Request.arrival -. base) *. factor) })
      t
  end

let op_to_string = function Request.Read -> "R" | Request.Write -> "W"

let op_of_string = function
  | "R" -> Ok Request.Read
  | "W" -> Ok Request.Write
  | s -> Error (Printf.sprintf "unknown op %S" s)

let to_csv t =
  let buf = Buffer.create (Array.length t * 32) in
  Buffer.add_string buf "id,op,key,partition,arrival,value_size\n";
  Array.iter
    (fun (r : Request.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%d,%d,%.6f,%d\n" r.id (op_to_string r.op) r.key
           r.partition r.arrival r.value_size))
    t;
  Buffer.contents buf

let of_csv text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty trace"
  | _header :: rows ->
    let parse_row line =
      match String.split_on_char ',' line with
      | [ id; op; key; partition; arrival; value_size ] -> (
        match
          ( int_of_string_opt id,
            op_of_string op,
            int_of_string_opt key,
            int_of_string_opt partition,
            float_of_string_opt arrival,
            int_of_string_opt value_size )
        with
        | Some id, Ok op, Some key, Some partition, Some arrival, Some value_size
          ->
          Ok { Request.id; op; key; partition; arrival; value_size }
        | _ -> Error (Printf.sprintf "malformed row %S" line))
      | _ -> Error (Printf.sprintf "wrong arity in row %S" line)
    in
    let rec parse acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | row :: rest -> (
        match parse_row row with
        | Ok r -> parse (r :: acc) rest
        | Error _ as e -> e)
    in
    parse [] rows
