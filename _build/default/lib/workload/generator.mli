(** Open-loop workload generator (paper Fig. 2, step 1).

    Requests arrive according to a Poisson process with configurable
    rate; each request is a read or write (Bernoulli with the write
    fraction) on a key drawn from a Zipfian popularity distribution.
    Keys map to partitions through the same function the KVS uses to
    pick hash buckets (Sec. 5.1), here a 64-bit mix modulo the partition
    count so that popularity rank and partition id are decorrelated. *)

type region = R_uni | R_sk | WI_uni | RW_sk

val pp_region : Format.formatter -> region -> unit

type config = {
  n_keys : int;  (** distinct items *)
  n_partitions : int;  (** hash-bucket groups; the load-balancing unit *)
  theta : float;  (** Zipf skew γ; 0 = uniform *)
  write_fraction : float;  (** in [0, 1] *)
  rate : float;  (** mean arrivals per ns (e.g. 0.09 = 90 MRPS) *)
  value_size : int;  (** bytes per value *)
  large_value_size : int;  (** bytes of the occasional large item *)
  large_fraction : float;
      (** fraction of partitions holding [large_value_size] items
          instead of [value_size] ones (size-segregated allocation, as
          Minos does); 0 (default) = homogeneous items *)
}

(** Sensible defaults matching the paper's methodology: 1.6 M keys,
    1 M-bucket index scaled to [n_partitions] groups, 512 B values. *)
val default : config

(** A representative config for each taxonomy region (Fig. 1). *)
val of_region : region -> config

type t

val create : ?zipf_method:[ `Cdf | `Alias ] -> config -> seed:int -> t
val config : t -> config

(** Draw the next request; arrivals are strictly increasing. *)
val next : t -> Request.t

(** The partition a key belongs to (same mapping the generator used). *)
val partition_of_key : t -> int -> int

(** Number of requests generated so far. *)
val generated : t -> int

(** Hottest partition by expected write load: the partition holding the
    rank-0 key. Used by experiments that inspect the overloaded writer. *)
val hottest_partition : t -> int
