(** KVS request representation shared by the workload generator, the NIC
    model, and the server model. *)

type op = Read | Write

type t = {
  id : int;  (** unique, monotonically increasing per generator *)
  op : op;
  key : int;  (** key identity; the store hashes it to a bucket *)
  partition : int;  (** precomputed partition (hash-bucket group) id *)
  arrival : float;  (** ns; when the request reached the NIC *)
  value_size : int;  (** bytes; drives cache-line accounting *)
}

val is_write : t -> bool
val is_read : t -> bool
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
