lib/workload/ycsb.ml: Generator Printf String
