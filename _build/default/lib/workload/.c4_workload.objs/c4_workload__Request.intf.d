lib/workload/request.mli: Format
