lib/workload/generator.mli: Format Request
