lib/workload/trace.ml: Array Buffer Generator List Printf Request String
