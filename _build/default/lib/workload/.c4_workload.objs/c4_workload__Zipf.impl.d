lib/workload/zipf.ml: Array C4_dsim Float Hashtbl Stack
