lib/workload/zipf.mli: C4_dsim
