lib/workload/trace.mli: Generator Request
