lib/workload/generator.ml: C4_dsim Format Int64 Request Zipf
