lib/workload/request.ml: Format
