lib/workload/ycsb.mli: Generator
