type op = Read | Write

type t = {
  id : int;
  op : op;
  key : int;
  partition : int;
  arrival : float;
  value_size : int;
}

let is_write r = r.op = Write
let is_read r = r.op = Read

let pp_op ppf = function
  | Read -> Format.pp_print_string ppf "R"
  | Write -> Format.pp_print_string ppf "W"

let pp ppf r =
  Format.fprintf ppf "#%d %a key=%d part=%d t=%.0f" r.id pp_op r.op r.key
    r.partition r.arrival
