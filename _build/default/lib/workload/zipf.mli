(** Zipfian key-popularity sampler.

    Item [i] (0-based rank) has probability proportional to
    [1 / (i+1)^theta]. KVS literature (and this paper) calls the exponent
    the skew coefficient γ; γ = 0 degenerates to uniform, γ ≈ 0.99 is the
    classic YCSB default, and production traces reach 1.4–2.5.

    Two implementations:
    - CDF inversion over a precomputed cumulative table (exact, O(log n)
      per sample, O(n) memory) — the default.
    - Walker alias method (exact, O(1) per sample, O(n) memory) — used by
      the high-rate benchmarks.

    Both produce ranks; callers map ranks to keys (possibly through a
    permutation so that popular keys are scattered across partitions). *)

type t

(** [create ~n ~theta rng]: sampler over ranks [0, n). [theta >= 0].
    @param method_ default [`Cdf]. *)
val create : ?method_:[ `Cdf | `Alias ] -> n:int -> theta:float -> C4_dsim.Rng.t -> t

(** Draw a rank in [0, n); rank 0 is the most popular item. *)
val sample : t -> int

val n : t -> int
val theta : t -> float

(** Exact probability of rank [i] under this distribution. *)
val prob : t -> int -> float

(** Probability mass of the hottest [k] ranks. *)
val head_mass : t -> int -> float
