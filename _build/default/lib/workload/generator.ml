module Rng = C4_dsim.Rng

type region = R_uni | R_sk | WI_uni | RW_sk

let pp_region ppf r =
  Format.pp_print_string ppf
    (match r with
    | R_uni -> "R_uni"
    | R_sk -> "R_sk"
    | WI_uni -> "WI_uni"
    | RW_sk -> "RW_sk")

type config = {
  n_keys : int;
  n_partitions : int;
  theta : float;
  write_fraction : float;
  rate : float;
  value_size : int;
  large_value_size : int;
  large_fraction : float;
}

let default =
  {
    n_keys = 1_600_000;
    n_partitions = 8192;
    theta = 0.0;
    write_fraction = 0.5;
    rate = 0.05;
    value_size = 512;
    large_value_size = 0;
    large_fraction = 0.0;
  }

let of_region = function
  | R_uni -> { default with theta = 0.0; write_fraction = 0.05 }
  | R_sk -> { default with theta = 0.99; write_fraction = 0.05 }
  | WI_uni -> { default with theta = 0.0; write_fraction = 0.5 }
  | RW_sk -> { default with theta = 1.25; write_fraction = 0.05 }

type t = {
  config : config;
  zipf : Zipf.t;
  arrivals : Rng.t;
  ops : Rng.t;
  mutable clock : float;
  mutable count : int;
}

(* 64-bit finaliser (SplitMix64's mix) so that popularity rank and
   partition id are decorrelated: adjacent hot ranks land on unrelated
   partitions, as a real hash index would place them. *)
let mix_key key =
  let z = Int64.of_int key in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land ((1 lsl 62) - 1)

let create ?(zipf_method = `Cdf) config ~seed =
  if config.n_keys <= 0 then invalid_arg "Generator.create: n_keys";
  if config.n_partitions <= 0 then invalid_arg "Generator.create: n_partitions";
  if config.write_fraction < 0.0 || config.write_fraction > 1.0 then
    invalid_arg "Generator.create: write_fraction";
  if config.rate <= 0.0 then invalid_arg "Generator.create: rate";
  let root = Rng.create seed in
  if config.large_fraction < 0.0 || config.large_fraction > 1.0 then
    invalid_arg "Generator.create: large_fraction";
  let zipf_rng = Rng.split root in
  let arrivals = Rng.split root in
  let ops = Rng.split root in
  {
    config;
    zipf = Zipf.create ~method_:zipf_method ~n:config.n_keys ~theta:config.theta zipf_rng;
    arrivals;
    ops;
    clock = 0.0;
    count = 0;
  }

let config t = t.config

let partition_of_key t key = mix_key key mod t.config.n_partitions

let next t =
  let inter = Rng.exponential t.arrivals ~mean:(1.0 /. t.config.rate) in
  t.clock <- t.clock +. inter;
  let key = Zipf.sample t.zipf in
  let op =
    if Rng.bernoulli t.ops ~p:t.config.write_fraction then Request.Write
    else Request.Read
  in
  let id = t.count in
  t.count <- t.count + 1;
  let partition = partition_of_key t key in
  let value_size =
    (* Item size is a property of where the item lives, not of the
       request: size-segregated partitions, so write exclusivity never
       crosses size classes. *)
    if
      t.config.large_fraction > 0.0
      && float_of_int (mix_key (partition lxor 0x2545F4914F6CDD1D) mod 1_000_000)
         < t.config.large_fraction *. 1_000_000.0
    then t.config.large_value_size
    else t.config.value_size
  in
  { Request.id; op; key; partition; arrival = t.clock; value_size }

let generated t = t.count
let hottest_partition t = partition_of_key t 0
