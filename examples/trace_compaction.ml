(* Trace one skewed read-write run (the RW_sk scenario: gamma = 1.25,
   5 % writes) with compaction enabled, then decompose where the p99
   request spent its life: NIC queueing, on-core service, or waiting in
   a compaction window for its deferred response.

   Writes the full request timeline to trace_compaction.json — open it
   in Perfetto (https://ui.perfetto.dev) or chrome://tracing to see one
   lane per worker plus the NIC lane, with compaction windows absorbing
   the hot key's writes.

   Run with: dune exec examples/trace_compaction.exe *)

module Server = C4_model.Server
module Trace = C4_obs.Trace
module Report = C4_obs.Report

let () =
  let tracer = Trace.create () in
  let registry = C4_obs.Registry.create () in
  let cfg =
    {
      (C4.Config.model C4.Config.Comp) with
      Server.trace = tracer;
      registry = Some registry;
    }
  in
  let workload =
    {
      (C4.Config.workload_rw_sk ~theta:1.25 ~write_fraction:0.05) with
      C4_workload.Generator.rate = 0.06 (* 60 MRPS *);
    }
  in
  let r = Server.run cfg ~workload ~n_requests:50_000 in
  print_endline
    "skewed read-write run (gamma=1.25, 5% writes, 60 MRPS, compaction on):";
  Format.printf "%a@." C4_model.Metrics.pp_summary r.Server.metrics;
  let path = "trace_compaction.json" in
  C4_obs.Chrome.save tracer ~path;
  Printf.printf "\nwrote %s (%d spans over %d traced requests)\n" path
    (List.length (Trace.spans tracer))
    (List.length (Trace.completed tracer));
  print_newline ();
  print_endline "per-stage latency decomposition, all traced requests:";
  C4_stats.Table.print (Report.stage_table tracer);
  (match Report.request_at_quantile tracer ~q:0.99 with
  | None -> ()
  | Some b ->
    Printf.printf "\nthe p99 request (#%d, arrived t=%.0f ns) spent its %.0f ns:\n"
      b.Report.req b.Report.arrival b.Report.latency;
    C4_stats.Table.print (Report.breakdown_table b));
  print_newline ();
  print_endline "run metrics:";
  C4_stats.Table.print (C4_obs.Registry.to_table registry)
