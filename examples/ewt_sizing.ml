(* Sizing the Exclusive Writer Table (paper Sec. 5.2 / 7.1.1).

   The EWT needs one entry per partition with an outstanding write; its
   required size is the bandwidth-delay product of the write stream and
   the per-write residence time. The paper estimates ~90 outstanding
   writes at 200 MRPS / 75 % writes and confirms avg 30 / max 64 entries
   at 90 MRPS / 50 % writes in simulation.

   This example sweeps write fraction and load, printing the analytic
   estimate beside the simulated occupancy, then shows what happens when
   the table is undersized (d-CREW degrades to drops under the paper's
   flow-control rule).

   Run with: dune exec examples/ewt_sizing.exe *)

module Experiment = C4_model.Experiment
module Server = C4_model.Server
module Table = C4_stats.Table

let () =
  let table =
    Table.create
      ~columns:
        [
          ("f_wr %", Table.Right);
          ("load MRPS", Table.Right);
          ("estimate", Table.Right);
          ("sim avg", Table.Right);
          ("sim max", Table.Right);
        ]
  in
  let cfg = C4.Config.model C4.Config.Dcrew in
  List.iter
    (fun (write_fraction, mrps) ->
      let workload = C4.Config.workload_wi_uni ~write_fraction:(write_fraction /. 100.) in
      let point = Experiment.run_at ~n_requests:80_000 cfg ~workload ~rate:(mrps /. 1e3) in
      (* Little's law: outstanding writes = write rate x residence time
         (one mean service, since pinned writes rarely queue). *)
      let estimate =
        mrps *. 1e6 *. (write_fraction /. 100.)
        *. (point.Experiment.result.Server.mean_service *. 1e-9)
      in
      let avg, peak =
        match point.Experiment.result.Server.ewt with
        | Some s -> (s.C4_nic.Ewt.average, s.C4_nic.Ewt.peak)
        | None -> (0.0, 0)
      in
      Table.add_row table
        [
          Table.cell_f ~decimals:0 write_fraction;
          Table.cell_f ~decimals:0 mrps;
          Table.cell_f ~decimals:1 estimate;
          Table.cell_f ~decimals:1 avg;
          Table.cell_i peak;
        ])
    [ (25.0, 60.0); (50.0, 60.0); (50.0, 90.0); (75.0, 90.0); (85.0, 90.0) ];
  print_endline "EWT occupancy: Little's-law estimate vs simulation (capacity 128):";
  Table.print table;

  print_endline "\nundersized table (f_wr=85% @ 90 MRPS): EWT-full drops per 80k requests";
  let workload = C4.Config.workload_wi_uni ~write_fraction:0.85 in
  List.iter
    (fun capacity ->
      let cfg =
        {
          cfg with
          Server.crew = { cfg.Server.crew with C4_crew.Config.ewt_capacity = capacity };
        }
      in
      let point = Experiment.run_at ~n_requests:80_000 cfg ~workload ~rate:0.09 in
      Printf.printf "  capacity %4d -> %5d drops\n" capacity
        point.Experiment.result.Server.ewt_drops)
    [ 16; 32; 64; 128; 256 ]
