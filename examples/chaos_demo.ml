(* Chaos in two acts.

   Act 1 — the simulator: the same workload, clean vs. under a seeded
   fault profile, vs. the same chaos with the full resilience kit
   (client retries, adaptive shedding, EWT staleness sweeps). Same seed,
   same chaos — run it twice and the numbers are identical.

   Act 2 — the real runtime server: kill a worker domain mid-load and
   watch the monitor re-own its partitions, requeue its backlog, and
   restart it; a retried write with an idempotency token applies once. *)

module Server = C4_model.Server
module Fault = C4_resilience.Fault
module Retry = C4_resilience.Retry
module Chaos = C4_resilience.Chaos
module Rt = C4_runtime.Server

let n_requests = 40_000

let workload =
  {
    C4_workload.Generator.default with
    n_keys = 100_000;
    n_partitions = 1024;
    theta = 0.99;
    write_fraction = 0.3;
    (* ~65 % of the 16 workers' capacity: clean runs are clean, so every
       drop below is attributable to the injected chaos. *)
    rate = 0.015;
  }

let model_server =
  { Server.default_config with Server.n_workers = 16; seed = 11 }

let act1 () =
  print_endline "=== Act 1: seeded chaos in the simulator ===";
  let profile =
    { Fault.default with Fault.corrupt_p = 0.01; leak_p = 0.01; burst_p = 0.1 }
  in
  let run label ?retry server =
    let r = Chaos.run ?retry ~server ~workload ~n_requests ~profile ~fault_seed:7 () in
    Format.printf "--- %s ---@.%a@.@." label Chaos.pp_report r
  in
  let clean =
    Chaos.run ~server:model_server ~workload ~n_requests ~profile:Fault.none
      ~fault_seed:7 ()
  in
  Format.printf "--- clean ---@.%a@.@." Chaos.pp_report clean;
  run "chaos, no defences" model_server;
  run "chaos + retries + shedding + EWT TTL"
    ~retry:Retry.default
    {
      model_server with
      Server.crew =
        {
          C4_crew.Config.default with
          C4_crew.Config.shed = Some C4_crew.Config.default_shed;
          ewt_ttl =
            Some { C4_crew.Config.ttl = 200_000.0; sweep_interval = 50_000.0 };
        };
    }

let act2 () =
  print_endline "=== Act 2: crash recovery on the real runtime server ===";
  let t = Rt.start { Rt.default_config with Rt.n_workers = 4 } in
  Fun.protect ~finally:(fun () -> Rt.stop t) @@ fun () ->
  for key = 0 to 499 do
    Rt.set t ~key ~value:(Bytes.of_string (Printf.sprintf "v%d" key))
  done;
  let victim = Rt.owner_of_key t 0 in
  Printf.printf "killing worker %d (owner of key 0)...\n" victim;
  Rt.inject_crash t ~worker:victim;
  (* Keep the server under load while the monitor recovers. *)
  for key = 500 to 999 do
    Rt.set t ~key ~value:(Bytes.of_string (Printf.sprintf "v%d" key))
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Rt.alive_workers t < 4 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  let stats = Rt.stats t in
  Printf.printf "recoveries: %d, backlog ops requeued: %d, workers alive: %d\n"
    stats.Rt.recoveries stats.Rt.requeued_ops (Rt.alive_workers t);
  Printf.printf "key 0 now owned by worker %d (was %d)\n" (Rt.owner_of_key t 0) victim;
  (* An at-least-once client retries a write whose ack it lost; the
     idempotency token makes the store apply it exactly once. *)
  let token = 0xbeef in
  C4_runtime.Promise.await (Rt.set_async ~token t ~key:0 ~value:(Bytes.of_string "retried"));
  C4_runtime.Promise.await (Rt.set_async ~token t ~key:0 ~value:(Bytes.of_string "retried"));
  let stats = Rt.stats t in
  Printf.printf "tokened write sent twice, applied once: duplicate_writes = %d\n"
    stats.Rt.duplicate_writes;
  let ok = ref 0 in
  for key = 0 to 999 do
    if Rt.get t ~key <> None then incr ok
  done;
  Printf.printf "all %d acknowledged writes present after crash+recovery: %b\n" 1000
    (!ok = 1000)

let () =
  act1 ();
  act2 ()
