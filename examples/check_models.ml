(* Exhaustively explore every protocol model (seqlock, EWT, flow
   control, channel, promise, compaction window) plus their seeded-bug
   variants, and replay one counterexample end-to-end through the
   linearizability checker. This is the quick "is the correctness
   tooling alive" demo; the full assertions live in test/test_check.ml. *)

module Models = C4_check.Models
module Sched = C4_check.Sched
module History = C4_consistency.History
module Lin = C4_consistency.Linearizability

let run ~expect_violation packed =
  let outcome = Models.explore ~preemption_bound:64 packed in
  Printf.printf "%-26s schedules=%-6d steps=%-7d %s\n" (Models.name packed)
    outcome.Sched.schedules outcome.Sched.steps_executed
    (match outcome.Sched.violation with
    | None -> "all interleavings hold"
    | Some v ->
      Printf.sprintf "counterexample in %d steps: %s" (List.length v.Sched.schedule)
        (match String.index_opt v.Sched.reason '\n' with
        | Some i -> String.sub v.Sched.reason 0 i
        | None -> v.Sched.reason));
  (match (expect_violation, outcome.Sched.violation) with
  | false, Some _ -> failwith "unexpected violation in a correct model"
  | true, None -> failwith "seeded bug not found"
  | _ -> ());
  outcome

let () =
  List.iter
    (fun p -> ignore (run ~expect_violation:false p))
    [
      Models.seqlock ();
      Models.ewt ();
      Models.flow_control ();
      Models.channel ();
      Models.promise ();
      Models.crew_core ();
      fst (Models.compaction ());
    ];
  List.iter
    (fun p -> ignore (run ~expect_violation:true p))
    [
      Models.seqlock ~broken:Models.No_write_end ();
      Models.seqlock ~broken:Models.Unlocked_writer ();
      Models.seqlock ~broken:Models.Second_writer ();
      Models.ewt ~broken:Models.Raising_response ();
      Models.flow_control ~broken:Models.Unmatched_release ();
      Models.channel ~broken:Models.Pop_ignores_close ();
      Models.promise ~broken:Models.Two_resolvers ();
      Models.crew_core ~broken:Models.Strict_release ();
    ];
  (* Counterexample -> replay -> linearizability checker, end to end. *)
  let packed, history = Models.compaction ~broken:Models.Early_ack () in
  let outcome = run ~expect_violation:true packed in
  let v = Option.get outcome.Sched.violation in
  (match Models.replay packed v.Sched.schedule with
  | Ok () -> failwith "replay did not reproduce the counterexample"
  | Error _ -> ());
  let h = History.of_ops (List.rev !history) in
  Printf.printf "\nreplayed early-ack history (%d ops) -> %s:\n"
    (History.length h)
    (match Lin.check ~initial:0 h with
    | Lin.Linearizable _ -> "LINEARIZABLE (unexpected!)"
    | Lin.Not_linearizable -> "not linearizable, as the paper predicts");
  Format.printf "%a@." History.pp h
