(* The real multicore server (lib/runtime): worker domains serving the
   actual store under CREW dispatch, with write compaction batching
   dependent writes. Demonstrates functional behaviour and compaction
   statistics on live domains; on a many-core machine the same program
   doubles as a throughput demo.

   Run with: dune exec examples/real_server.exe *)

module Server = C4_runtime.Server
module Promise = C4_runtime.Promise
module Generator = C4_workload.Generator
module Request = C4_workload.Request

let run_workload ~compaction ~theta ~write_fraction ~n_ops =
  let crew =
    if compaction then C4_crew.Config.queued
    else { C4_crew.Config.queued with C4_crew.Config.compaction = None }
  in
  let cfg = { Server.default_config with Server.n_workers = 4; crew } in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      let gen =
        Generator.create
          { Generator.default with n_keys = 10_000; n_partitions = 256; theta; write_fraction; rate = 1.0 }
          ~seed:7
      in
      let t0 = Unix.gettimeofday () in
      (* Pipeline asynchronously in chunks so writes can pile up on the
         owner and compaction gets a chance to batch. *)
      let chunk = 256 in
      let rec drive remaining =
        if remaining > 0 then begin
          let n = min chunk remaining in
          let promises =
            List.init n (fun i ->
                let r = Generator.next gen in
                match r.Request.op with
                | Request.Write ->
                  `W (Server.set_async t ~key:r.Request.key ~value:(Bytes.make 32 'v'))
                | Request.Read -> `R (Server.get_async t ~key:r.Request.key) |> fun p -> ignore i; p)
          in
          List.iter
            (function `W p -> Promise.await p | `R p -> ignore (Promise.await p))
            promises;
          drive (remaining - n)
        end
      in
      drive n_ops;
      let elapsed = Unix.gettimeofday () -. t0 in
      let stats = Server.stats t in
      Printf.printf
        "%-14s ops=%6d  %7.0f ops/s  writes=%5d  batches=%4d  batched=%5d  retries=%d\n%!"
        (if compaction then "compaction ON" else "compaction OFF")
        stats.Server.ops_completed
        (float_of_int stats.Server.ops_completed /. elapsed)
        stats.Server.writes stats.Server.batches stats.Server.batched_writes
        stats.Server.read_retries)

let () =
  print_endline "real multicore KVS server, 4 worker domains, skewed writes (gamma=1.2, 50% writes):";
  run_workload ~compaction:false ~theta:1.2 ~write_fraction:0.5 ~n_ops:20_000;
  run_workload ~compaction:true ~theta:1.2 ~write_fraction:0.5 ~n_ops:20_000;
  print_endline "\nuniform keys (compaction finds nothing to batch):";
  run_workload ~compaction:true ~theta:0.0 ~write_fraction:0.5 ~n_ops:20_000;
  print_endline
    "\nUnder skew the owner's queue fills with dependent writes and the\n\
     compaction path applies them as single batched updates (cf. paper\n\
     Sec. 4.3); with uniform keys the same code path degenerates to\n\
     plain writes.";
  print_endline
    "(Throughput numbers are only meaningful on a multi-core machine;\n\
     this container may be single-core.)"
