(* Network serving tests: wire codec round-trips (qcheck), torn-frame
   and corruption handling, NIC header interop, and live loopback
   integration — pipelining order, concurrent-client linearizability,
   crash recovery observed through real sockets, graceful drain. *)

module Wire = C4_net.Wire
module NetServer = C4_net.Server
module NetClient = C4_net.Client
module Loadgen = C4_net.Loadgen
module Header = C4_nic.Header
module Runtime = C4_runtime.Server
module History = C4_consistency.History
module Lin = C4_consistency.Linearizability

let wire = Wire.create ()

(* ---------------- codec: round trips ---------------- *)

let request_equal (a : Wire.request) (b : Wire.request) =
  a.Wire.id = b.Wire.id && a.Wire.op = b.Wire.op && a.Wire.key = b.Wire.key
  && a.Wire.token = b.Wire.token && a.Wire.trace = b.Wire.trace
  && Bytes.equal a.Wire.value b.Wire.value

(* Body = frame minus length prefix and version byte, as the decoder
   would yield it. *)
let body_of_frame frame = Bytes.sub frame 5 (Bytes.length frame - 5)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"wire request encode/decode round-trips" ~count:300
    QCheck.(
      pair
        (quad (int_bound 2)
           (int_bound ((1 lsl 40) - 1))
           (int_bound ((1 lsl 40) - 1))
           (option (int_bound ((1 lsl 40) - 1))))
        (string_of_size Gen.(int_bound 600)))
    (fun ((op_i, id, key, token), value) ->
      let op = match op_i with 0 -> Wire.Get | 1 -> Wire.Set | _ -> Wire.Delete in
      let value = if op = Wire.Set then Bytes.of_string value else Bytes.empty in
      let req = { Wire.id; op; key; token; trace = None; value } in
      match Wire.decode_request wire (body_of_frame (Wire.encode_request wire req)) with
      | Ok req' -> request_equal req req'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_traced_request_roundtrip =
  QCheck.Test.make ~name:"wire trace-context encode/decode round-trips"
    ~count:300
    QCheck.(
      pair
        (quad (int_bound 2)
           (int_bound ((1 lsl 40) - 1))
           (option (int_bound ((1 lsl 40) - 1)))
           (pair (int_bound max_int) (int_bound max_int)))
        (string_of_size Gen.(int_bound 600)))
    (fun ((op_i, id, token, (trace_id, parent_span)), value) ->
      let op = match op_i with 0 -> Wire.Get | 1 -> Wire.Set | _ -> Wire.Delete in
      let value = if op = Wire.Set then Bytes.of_string value else Bytes.empty in
      let req =
        { Wire.id; op; key = id * 3; token;
          trace = Some { Wire.trace_id; parent_span }; value }
      in
      let frame = Wire.encode_request wire req in
      (* Trace context needs the v2 layout. *)
      if Bytes.get_uint8 frame 4 <> 2 then
        QCheck.Test.fail_reportf "traced frame stamped v%d" (Bytes.get_uint8 frame 4);
      match Wire.decode_request wire (body_of_frame frame) with
      | Ok req' -> request_equal req req'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"wire response encode/decode round-trips" ~count:300
    QCheck.(
      quad (int_bound 2)
        (int_bound ((1 lsl 40) - 1))
        (int_bound ((1 lsl 40) - 1))
        (string_of_size Gen.(int_bound 600)))
    (fun (st_i, resp_id, timing_ns, value) ->
      let status =
        match st_i with 0 -> Wire.Ok | 1 -> Wire.Not_found | _ -> Wire.Err
      in
      let resp =
        { Wire.resp_id; status; timing_ns; resp_value = Bytes.of_string value }
      in
      match
        Wire.decode_response wire (body_of_frame (Wire.encode_response wire resp))
      with
      | Ok r ->
        r.Wire.resp_id = resp_id && r.Wire.status = status
        && r.Wire.timing_ns = timing_ns
        && Bytes.equal r.Wire.resp_value resp.Wire.resp_value
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

(* ---------------- codec: decoder resilience ---------------- *)

let test_torn_frames () =
  let reqs =
    List.init 20 (fun i ->
        {
          Wire.id = i;
          op = (match i mod 3 with 0 -> Wire.Get | 1 -> Wire.Set | _ -> Wire.Delete);
          key = i * 17;
          token = (if i mod 4 = 0 then Some (1000 + i) else None);
          trace =
            (* Mix v1 (ctx-free) and v2 (traced) frames in one stream. *)
            (if i mod 5 = 0 then
               Some { Wire.trace_id = (i * 7) + 1; parent_span = (i * 11) + 2 }
             else None);
          value = (if i mod 3 = 1 then Bytes.make (i * 13) 'x' else Bytes.empty);
        })
  in
  let stream =
    Bytes.concat Bytes.empty (List.map (Wire.encode_request wire) reqs)
  in
  let d = Wire.Decoder.create wire in
  let decoded = ref [] in
  (* One byte at a time: every frame arrives torn in every position. *)
  for i = 0 to Bytes.length stream - 1 do
    Wire.Decoder.feed d stream ~off:i ~len:1;
    let rec pull () =
      match Wire.Decoder.next_frame d with
      | `Awaiting -> ()
      | `Corrupt msg -> Alcotest.failf "corrupt at byte %d: %s" i msg
      | `Frame body ->
        (match Wire.decode_request wire body with
        | Ok r -> decoded := r :: !decoded
        | Error e -> Alcotest.failf "decode at byte %d: %s" i e);
        pull ()
    in
    pull ()
  done;
  Alcotest.(check int) "all frames recovered" (List.length reqs)
    (List.length !decoded);
  Alcotest.(check bool) "frames identical and in order" true
    (List.for_all2 request_equal reqs (List.rev !decoded));
  Alcotest.(check int) "no residue" 0 (Wire.Decoder.buffered d)

let test_oversized_frame_rejected () =
  let small = Wire.create ~max_frame:64 () in
  let d = Wire.Decoder.create small in
  let b = Bytes.make 8 '\000' in
  Bytes.set b 0 '\xff';
  Bytes.set b 1 '\xff';
  (* length prefix 0xffff > 64 *)
  Wire.Decoder.feed d b ~off:0 ~len:8;
  (match Wire.Decoder.next_frame d with
  | `Corrupt _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.fail "oversized frame accepted");
  (* Corruption is sticky: the stream cannot be resynchronised. *)
  let good =
    Wire.encode_request small
      { Wire.id = 1; op = Wire.Get; key = 2; token = None; trace = None;
        value = Bytes.empty }
  in
  Wire.Decoder.feed d good ~off:0 ~len:(Bytes.length good);
  match Wire.Decoder.next_frame d with
  | `Corrupt _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.fail "decoder resynchronised after corruption"

let test_bad_version_rejected () =
  let frame =
    Wire.encode_request wire
      { Wire.id = 7; op = Wire.Get; key = 3; token = None; trace = None;
        value = Bytes.empty }
  in
  Bytes.set frame 4 '\042';
  let d = Wire.Decoder.create wire in
  Wire.Decoder.feed d frame ~off:0 ~len:(Bytes.length frame);
  match Wire.Decoder.next_frame d with
  | `Corrupt _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.fail "unknown version accepted"

let test_strict_request_decode () =
  Alcotest.check_raises "value on GET rejected at encode"
    (Invalid_argument "Wire.encode_request: GET/DELETE carry no value")
    (fun () ->
      ignore
        (Wire.encode_request wire
           { Wire.id = 1; op = Wire.Get; key = 2; token = None; trace = None;
             value = Bytes.of_string "x" }));
  (* Unknown flag bits are rejected, not ignored. *)
  let hdr =
    Header.register ~layout:(Wire.layout wire) ~n_buckets:64 ~n_partitions:4
  in
  let body =
    body_of_frame
      (Wire.encode_request wire
         { Wire.id = 1; op = Wire.Set; key = 2; token = None; trace = None;
           value = Bytes.of_string "v" })
  in
  Bytes.set body (Header.header_size hdr + 8) '\x80';
  (match Wire.decode_request wire body with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown flag bits accepted");
  (* A GET whose body has trailing bytes after the flags is rejected. *)
  let get_body =
    body_of_frame
      (Wire.encode_request wire
         { Wire.id = 1; op = Wire.Get; key = 2; token = None; trace = None;
           value = Bytes.empty })
  in
  let padded = Bytes.cat get_body (Bytes.of_string "junk") in
  match Wire.decode_request wire padded with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "GET with trailing value accepted"

(* ---------------- codec: NIC header interop ---------------- *)

let test_nic_header_interop () =
  let hdr =
    Header.register ~layout:(Wire.layout wire) ~n_buckets:1024 ~n_partitions:16
  in
  List.iter
    (fun (op, key, value) ->
      let frame =
        Wire.encode_request wire
          { Wire.id = 99; op; key; token = Some 5; trace = None; value }
      in
      match Header.parse hdr (body_of_frame frame) with
      | Error e -> Alcotest.failf "NIC failed to parse wire body: %s" e
      | Ok parsed ->
        Alcotest.(check bool) "op agrees" true
          (parsed.Header.op = Wire.header_op op);
        Alcotest.(check int) "key agrees" key parsed.Header.key;
        Alcotest.(check int) "partition agrees"
          (C4_kvs.Hash.partition_of_key ~n_buckets:1024 ~n_partitions:16 key)
          parsed.Header.partition)
    [
      (Wire.Get, 12345, Bytes.empty);
      (Wire.Set, 777, Bytes.make 32 'v');
      (Wire.Delete, 31, Bytes.empty);
    ]

(* ---------------- loopback integration ---------------- *)

let with_net ?(runtime_cfg = { Runtime.default_config with Runtime.n_workers = 2 })
    ?(server_cfg = NetServer.default_config) f =
  let runtime = Runtime.start runtime_cfg in
  let srv = NetServer.start server_cfg ~runtime in
  let client =
    NetClient.create
      (NetClient.default_config ~hosts:[ ("127.0.0.1", NetServer.port srv) ])
  in
  Fun.protect
    ~finally:(fun () ->
      NetClient.close client;
      NetServer.stop srv;
      Runtime.stop runtime)
    (fun () -> f runtime srv client)

let test_loopback_ops () =
  with_net (fun _ _ client ->
      Alcotest.(check bool) "get missing" true (NetClient.get client ~key:1 = Ok None);
      Alcotest.(check bool) "set" true
        (NetClient.set client ~key:1 ~value:(Bytes.of_string "alpha") = Ok ());
      Alcotest.(check bool) "get back" true
        (NetClient.get client ~key:1 = Ok (Some (Bytes.of_string "alpha")));
      Alcotest.(check bool) "delete present" true
        (NetClient.delete client ~key:1 = Ok true);
      Alcotest.(check bool) "delete absent" true
        (NetClient.delete client ~key:1 = Ok false);
      Alcotest.(check bool) "gone" true (NetClient.get client ~key:1 = Ok None))

let test_pipelining_order () =
  with_net (fun _ _ client ->
      let n = 500 in
      let order = ref [] in
      let lock = Mutex.create () in
      let remaining = Atomic.make n in
      for i = 0 to n - 1 do
        let op = if i mod 2 = 0 then Wire.Set else Wire.Get in
        let value = if op = Wire.Set then Bytes.of_string "v" else Bytes.empty in
        ignore
          (NetClient.dispatch client ~op ~key:7 ~value
             ~on_response:(fun r ->
               C4_runtime.Sync.with_lock lock (fun () ->
                   order := r.Wire.resp_id :: !order);
               Atomic.decr remaining)
             ())
      done;
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Atomic.get remaining > 0 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.001
      done;
      Alcotest.(check int) "all answered" 0 (Atomic.get remaining);
      (* One connection, one key: responses must arrive in dispatch
         order — the per-connection pipelining guarantee. *)
      Alcotest.(check (list int)) "responses in dispatch order"
        (List.init n (fun i -> i))
        (List.rev !order))

let test_concurrent_clients_linearizable () =
  with_net (fun _ srv _ ->
      let key = 42 in
      let now () = Unix.gettimeofday () *. 1e6 in
      let n_clients = 4 and per_client = 12 in
      let results = Array.make n_clients [] in
      let run_client c =
        Thread.create
          (fun () ->
            (* Each thread gets its own connection = its own client in
               the recorded history. *)
            let cl =
              NetClient.create
                (NetClient.default_config
                   ~hosts:[ ("127.0.0.1", NetServer.port srv) ])
            in
            results.(c) <-
              List.init per_client (fun i ->
                  let invoked = now () in
                  if (i + c) mod 3 = 0 then begin
                    let v = (c * 100) + i + 1 in
                    (match
                       NetClient.set cl ~key
                         ~value:(Bytes.of_string (string_of_int v))
                     with
                    | Ok () -> ()
                    | Error e -> Alcotest.failf "set failed: %s" e);
                    History.set ~client:(string_of_int c) ~value:v ~invoked
                      ~responded:(now ())
                  end
                  else begin
                    let seen =
                      match NetClient.get cl ~key with
                      | Ok (Some b) -> int_of_string (Bytes.to_string b)
                      | Ok None -> 0
                      | Error e -> Alcotest.failf "get failed: %s" e
                    in
                    History.get ~client:(string_of_int c) ~value:seen ~invoked
                      ~responded:(now ())
                  end);
            NetClient.close cl)
          ()
      in
      let threads = List.init n_clients run_client in
      List.iter Thread.join threads;
      let history = History.of_ops (List.concat (Array.to_list results)) in
      Alcotest.(check int) "history complete" (n_clients * per_client)
        (History.length history);
      match Lin.check ~initial:0 history with
      | Lin.Linearizable _ -> ()
      | Lin.Not_linearizable ->
        Alcotest.failf "networked execution not linearizable:@.%a" History.pp
          history)

let test_crash_recovery_over_network () =
  let runtime_cfg =
    { Runtime.default_config with Runtime.n_workers = 4; monitor_interval = 0.001 }
  in
  with_net ~runtime_cfg (fun runtime _ client ->
      let value_of k = Bytes.of_string (Printf.sprintf "net%d" k) in
      for key = 0 to 199 do
        match NetClient.set client ~key ~value:(value_of key) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "set %d failed: %s" key e
      done;
      Runtime.inject_crash runtime ~worker:(Runtime.owner_of_key runtime 0);
      (* Write through the crash window too. *)
      for key = 200 to 399 do
        match NetClient.set client ~key ~value:(value_of key) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "set %d (crash window) failed: %s" key e
      done;
      let rec await tries =
        if tries = 0 then Alcotest.fail "recovery did not complete"
        else if
          Runtime.alive_workers runtime = 4
          && (Runtime.stats runtime).Runtime.recoveries > 0
        then ()
        else begin
          Unix.sleepf 0.001;
          await (tries - 1)
        end
      in
      await 5_000;
      (* Every acknowledged write is readable through the network. *)
      for key = 0 to 399 do
        Alcotest.(check (option string))
          (Printf.sprintf "key %d survives worker crash" key)
          (Some (Bytes.to_string (value_of key)))
          (match NetClient.get client ~key with
          | Ok v -> Option.map Bytes.to_string v
          | Error e -> Alcotest.failf "get %d failed: %s" key e)
      done)

let test_graceful_drain () =
  let runtime = Runtime.start { Runtime.default_config with Runtime.n_workers = 2 } in
  let srv = NetServer.start NetServer.default_config ~runtime in
  let client =
    NetClient.create
      (NetClient.default_config ~hosts:[ ("127.0.0.1", NetServer.port srv) ])
  in
  let n = 300 in
  let ok = Atomic.make 0 and answered = Atomic.make 0 in
  for i = 0 to n - 1 do
    ignore
      (NetClient.dispatch client ~op:Wire.Set ~key:i ~value:(Bytes.of_string "d")
         ~on_response:(fun r ->
           if r.Wire.status = Wire.Ok then Atomic.incr ok;
           Atomic.incr answered)
         ())
  done;
  (* Wait until the server has decoded every frame, then stop: the
     drain must answer all of them before tearing anything down. *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (NetServer.stats srv).NetServer.requests < n
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.001
  done;
  Alcotest.(check int) "all requests reached the server" n
    (NetServer.stats srv).NetServer.requests;
  NetServer.stop srv;
  Runtime.stop runtime;
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get answered < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  NetClient.close client;
  Alcotest.(check int) "every accepted request answered" n (Atomic.get answered);
  Alcotest.(check int) "every answer is OK (no drops during drain)" n
    (Atomic.get ok)

let test_loadgen_smoke () =
  with_net (fun _ srv client ->
      let workload =
        {
          C4_workload.Generator.default with
          C4_workload.Generator.theta = 0.99;
          write_fraction = 0.4;
          rate = 20_000.0 *. 1e-9;
        }
      in
      let cfg =
        {
          (Loadgen.default_config ~workload ~seed:7) with
          Loadgen.n_ops = 2_000;
          warmup = 100;
          delete_fraction = 0.05;
        }
      in
      let r = Loadgen.run client cfg in
      Alcotest.(check int) "all completed" 2_000 r.Loadgen.completed;
      Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
      Alcotest.(check bool) "nonzero throughput" true (r.Loadgen.throughput > 0.0);
      Alcotest.(check int) "no protocol errors" 0
        (NetServer.stats srv).NetServer.protocol_errors;
      Alcotest.(check bool) "latency recorded" true
        (C4_stats.Histogram.count r.Loadgen.all_ns > 0))

(* Regression: with retries configured, a SET must carry its idempotency
   token (the first attempt's request id) from the very first attempt —
   a tokenless original cannot be deduplicated against its retry — and
   every retry must repeat that same token under a fresh request id. *)
let test_set_token_from_first_attempt () =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen_fd 1;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  (* (id, op, token) per decoded request, newest first. *)
  let seen = ref [] in
  let lock = Mutex.create () in
  let failures = ref 1 in
  (* Raw single-connection server: record every request, answer the
     first SET with Err to force one retry, everything else Ok. *)
  let server =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listen_fd in
        let d = Wire.Decoder.create wire in
        let chunk = Bytes.create 4096 in
        let rec serve () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | exception Unix.Unix_error _ -> ()
          | n ->
            Wire.Decoder.feed d chunk ~off:0 ~len:n;
            let rec pull () =
              match Wire.Decoder.next_frame d with
              | `Awaiting -> ()
              | `Corrupt _ -> ()
              | `Frame body ->
                (match Wire.decode_request wire body with
                | Error _ -> ()
                | Ok req ->
                  C4_runtime.Sync.with_lock lock (fun () ->
                      seen := (req.Wire.id, req.Wire.op, req.Wire.token) :: !seen);
                  let status =
                    if req.Wire.op = Wire.Set && !failures > 0 then begin
                      decr failures;
                      Wire.Err
                    end
                    else Wire.Ok
                  in
                  let frame =
                    Wire.encode_response wire
                      { Wire.resp_id = req.Wire.id; status; timing_ns = 0;
                        resp_value = Bytes.empty }
                  in
                  ignore (Unix.write fd frame 0 (Bytes.length frame)));
                pull ()
            in
            pull ();
            serve ()
        in
        serve ();
        try Unix.close fd with Unix.Unix_error _ -> ())
      ()
  in
  let client =
    NetClient.create
      {
        (NetClient.default_config ~hosts:[ ("127.0.0.1", port) ]) with
        NetClient.retry =
          Some
            {
              C4_resilience.Retry.default with
              C4_resilience.Retry.max_attempts = 3;
              deadline = 0.0;
            };
      }
  in
  Alcotest.(check bool) "set succeeds after one retry" true
    (NetClient.set client ~key:9 ~value:(Bytes.of_string "tok") = Ok ());
  NetClient.close client;
  Unix.close listen_fd;
  Thread.join server;
  match List.rev !seen with
  | [ (id1, Wire.Set, tok1); (id2, Wire.Set, tok2) ] ->
    Alcotest.(check bool) "first attempt already carries a token" true
      (tok1 <> None);
    (* The token mixes a per-instance nonce with the first attempt's id,
       so it is NOT the bare id — that made tokens collide across client
       instances sharing a server. *)
    Alcotest.(check (option int)) "retry repeats the original token" tok1 tok2;
    Alcotest.(check bool) "retry uses a fresh request id" true (id2 <> id1)
  | l -> Alcotest.failf "expected exactly 2 SET attempts, saw %d" (List.length l)

(* ---------------- versioning compatibility ---------------- *)

(* A context-free request must still go out as a version-1 frame,
   byte-compatible with pre-trace decoders: the encoder stamps the
   lowest version that can represent the content. *)
let test_ctx_free_frames_stay_v1 () =
  let frame =
    Wire.encode_request wire
      { Wire.id = 11; op = Wire.Set; key = 4; token = Some 8; trace = None;
        value = Bytes.of_string "v1" }
  in
  Alcotest.(check int) "ctx-free frame stamped v1" 1 (Bytes.get_uint8 frame 4);
  let traced =
    Wire.encode_request wire
      { Wire.id = 11; op = Wire.Set; key = 4; token = Some 8;
        trace = Some { Wire.trace_id = 5; parent_span = 6 };
        value = Bytes.of_string "v2" }
  in
  Alcotest.(check int) "traced frame stamped v2" 2 (Bytes.get_uint8 traced 4);
  (* Responses never carry context: always v1. *)
  let resp =
    Wire.encode_response wire
      { Wire.resp_id = 11; status = Wire.Ok; timing_ns = 1;
        resp_value = Bytes.empty }
  in
  Alcotest.(check int) "responses stamped v1" 1 (Bytes.get_uint8 resp 4);
  (* The decoder accepts both versions in one stream. *)
  let d = Wire.Decoder.create wire in
  Wire.Decoder.feed d frame ~off:0 ~len:(Bytes.length frame);
  Wire.Decoder.feed d traced ~off:0 ~len:(Bytes.length traced);
  let next () =
    match Wire.Decoder.next_frame d with
    | `Frame body -> (
      match Wire.decode_request wire body with
      | Ok r -> r
      | Error e -> Alcotest.failf "decode: %s" e)
    | `Awaiting | `Corrupt _ -> Alcotest.fail "frame not yielded"
  in
  Alcotest.(check bool) "v1 frame decodes ctx-free" true ((next ()).Wire.trace = None);
  Alcotest.(check bool) "v2 frame decodes with ctx" true
    ((next ()).Wire.trace = Some { Wire.trace_id = 5; parent_span = 6 })

(* ---------------- distributed tracing ---------------- *)

(* One traced request must yield one connected span chain across both
   processes: client.dispatch -> server.recv -> server.apply ->
   server.respond, all in one trace, with the crew admission decision
   stamped on the recv span. *)
let test_stitched_span_chain () =
  let module Span = C4_obs.Span in
  let client_buf = Span.create ~process:"client" () in
  let server_buf = Span.create ~process:"server" () in
  let runtime_cfg =
    {
      Runtime.default_config with
      Runtime.n_workers = 2;
      on_decision =
        Some
          (fun d ->
            ignore
              (Span.annotate_current server_buf ~key:"crew"
                 ~value:(C4_crew.Decision.to_string d)));
    }
  in
  let runtime = Runtime.start runtime_cfg in
  let srv =
    NetServer.start
      { NetServer.default_config with NetServer.spans = Some server_buf }
      ~runtime
  in
  let client =
    NetClient.create
      {
        (NetClient.default_config ~hosts:[ ("127.0.0.1", NetServer.port srv) ])
        with
        NetClient.spans = Some client_buf;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      NetClient.close client;
      NetServer.stop srv;
      Runtime.stop runtime)
    (fun () ->
      Alcotest.(check bool) "set ok" true
        (NetClient.set client ~key:5 ~value:(Bytes.of_string "traced") = Ok ());
      (* The respond span closes in the server's writer thread after the
         response bytes go out — strictly after the client's callback
         fired, so give it a moment. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let all_finished () =
        let spans = Span.spans server_buf in
        List.length spans = 3 && List.for_all Span.finished spans
      in
      while (not (all_finished ())) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.001
      done;
      let dispatch =
        match Span.spans client_buf with
        | [ s ] -> s
        | l -> Alcotest.failf "expected 1 client span, got %d" (List.length l)
      in
      Alcotest.(check string) "client span name" "client.dispatch"
        (Span.name dispatch);
      Alcotest.(check bool) "client span is the root" true
        (Span.parent_id dispatch = None);
      let find_server name =
        match
          List.find_opt (fun s -> Span.name s = name) (Span.spans server_buf)
        with
        | Some s -> s
        | None -> Alcotest.failf "server span %s missing" name
      in
      let recv = find_server "server.recv" in
      let apply = find_server "server.apply" in
      let respond = find_server "server.respond" in
      (* Walk the parent links back across the process boundary. *)
      Alcotest.(check (option int)) "respond parented on apply"
        (Some (Span.span_id apply))
        (Span.parent_id respond);
      Alcotest.(check (option int)) "apply parented on recv"
        (Some (Span.span_id recv))
        (Span.parent_id apply);
      Alcotest.(check (option int)) "recv parented on the client dispatch"
        (Some (Span.span_id dispatch))
        (Span.parent_id recv);
      List.iter
        (fun s ->
          Alcotest.(check int) "one trace id end to end"
            (Span.trace_id dispatch) (Span.trace_id s);
          Alcotest.(check bool) "span finished" true (Span.finished s))
        [ dispatch; recv; apply; respond ];
      (* The admission decision the policy core took while the reader
         submitted this write landed on the recv span. *)
      Alcotest.(check bool) "crew decision stamped on recv" true
        (List.mem_assoc "crew" (Span.annotations recv));
      (* The merged Chrome export contains both process rows. *)
      let chrome = Span.to_chrome ~extra:[ server_buf ] client_buf in
      let contains needle =
        let nl = String.length needle and hl = String.length chrome in
        let rec scan i =
          i + nl <= hl && (String.sub chrome i nl = needle || scan (i + 1))
        in
        scan 0
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "chrome export mentions %s" needle)
            true (contains needle))
        [ "client.dispatch"; "server.recv"; "server.respond" ])

(* ---------------- metric migration on recovery ---------------- *)

let counter_value reg name =
  match List.assoc_opt name (C4_obs.Registry.snapshot reg) with
  | Some (C4_obs.Registry.Counter_reading n) -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> Alcotest.failf "counter %s not registered" name

(* After a crash remap, routed-write counts must attribute to the new
   owner — the dead worker's counter freezes, it never dangles. *)
let test_routed_counter_migration () =
  let runtime_cfg =
    { Runtime.default_config with Runtime.n_workers = 4; monitor_interval = 0.001 }
  in
  with_net ~runtime_cfg (fun runtime srv client ->
      let reg = NetServer.registry srv in
      let routed w = counter_value reg (Printf.sprintf "net.routed_w%d" w) in
      (* Eager registration: every worker's counter is scrapable before
         any traffic reaches it. *)
      for w = 0 to 3 do
        Alcotest.(check int) (Printf.sprintf "routed_w%d starts at 0" w) 0 (routed w)
      done;
      let key = 0 in
      let set () =
        match NetClient.set client ~key ~value:(Bytes.of_string "m") with
        | Ok () -> ()
        | Error e -> Alcotest.failf "set failed: %s" e
      in
      let owner = Runtime.owner_of_key runtime key in
      for _ = 1 to 25 do set () done;
      Alcotest.(check int) "all sets routed to the owner" 25 (routed owner);
      Runtime.inject_crash runtime ~worker:owner;
      let rec await tries =
        if tries = 0 then Alcotest.fail "recovery did not complete"
        else if
          Runtime.alive_workers runtime = 4
          && (Runtime.stats runtime).Runtime.recoveries > 0
          && Runtime.owner_of_key runtime key <> owner
        then ()
        else begin
          Unix.sleepf 0.001;
          await (tries - 1)
        end
      in
      await 5_000;
      let new_owner = Runtime.owner_of_key runtime key in
      let frozen = routed owner in
      let before = routed new_owner in
      for _ = 1 to 25 do set () done;
      Alcotest.(check int) "post-recovery sets attribute to the new owner"
        (before + 25) (routed new_owner);
      Alcotest.(check int) "dead worker's counter is frozen" frozen (routed owner);
      (* The ownership census agrees: the dead worker re-registered with
         zero partitions until re-pinned, the survivor absorbed them. *)
      let counts = Runtime.ownership_counts runtime in
      Alcotest.(check int) "census sums to the partition count"
        (Runtime.n_partitions runtime)
        (Array.fold_left ( + ) 0 counts))

let test_client_routing_matches_cluster () =
  for key = 0 to 999 do
    Alcotest.(check int)
      (Printf.sprintf "key %d routes identically" key)
      (C4_cluster.Cluster.node_of_key ~n_nodes:5 key)
      (C4_kvs.Hash.node_of_key ~n_nodes:5 key)
  done

(* ---------------- event-engine edge cases ---------------- *)

(* Raw blocking socket straight at the server, no NetClient. *)
let raw_connect srv =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_loopback, NetServer.port srv));
  fd

let write_all fd b =
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* The wire decoder promises byte-at-a-time reassembly; this drives the
   same promise through the real serving stack: a client that dribbles
   one byte per write(2) — every frame torn across hundreds of loop
   wakeups — and then reads one byte per read(2) must still get every
   pipelined GET/SET/DELETE response, in order. *)
let test_one_byte_dribble () =
  with_net (fun _ srv _ ->
      let fd = raw_connect srv in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let key = 77 in
          let req i op value =
            { Wire.id = i; op; key; token = None; trace = None; value }
          in
          let reqs =
            [
              req 0 Wire.Set (Bytes.of_string "dribble");
              req 1 Wire.Get Bytes.empty;
              req 2 Wire.Delete Bytes.empty;
              req 3 Wire.Set (Bytes.of_string "again");
              req 4 Wire.Get Bytes.empty;
              req 5 Wire.Delete Bytes.empty;
            ]
          in
          let out = Buffer.create 256 in
          List.iter
            (fun r -> Buffer.add_bytes out (Wire.encode_request wire r))
            reqs;
          let out = Buffer.to_bytes out in
          let one = Bytes.create 1 in
          Bytes.iter
            (fun ch ->
              Bytes.set one 0 ch;
              let n = Unix.write fd one 0 1 in
              Alcotest.(check int) "wrote the byte" 1 n)
            out;
          let dec = Wire.Decoder.create wire in
          let got = ref [] in
          let deadline = Unix.gettimeofday () +. 10.0 in
          while List.length !got < List.length reqs do
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "timed out awaiting dribbled responses";
            (match Unix.read fd one 0 1 with
            | 0 -> Alcotest.fail "server closed mid-dribble"
            | _ -> Wire.Decoder.feed dec one ~off:0 ~len:1);
            let rec drain () =
              match Wire.Decoder.next_frame dec with
              | `Frame body -> (
                match Wire.decode_response wire body with
                | Ok r -> got := r :: !got; drain ()
                | Error e -> Alcotest.failf "bad response: %s" e)
              | `Awaiting -> ()
              | `Corrupt e -> Alcotest.failf "corrupt response stream: %s" e
            in
            drain ()
          done;
          let got = List.rev !got in
          Alcotest.(check (list int)) "responses in pipeline order"
            [ 0; 1; 2; 3; 4; 5 ]
            (List.map (fun r -> r.Wire.resp_id) got);
          List.iter
            (fun r ->
              match (r.Wire.resp_id, r.Wire.status) with
              | (0 | 3), Wire.Ok -> ()
              | (0 | 3), _ -> Alcotest.failf "SET %d not Ok" r.Wire.resp_id
              | _, (Wire.Ok | Wire.Not_found) -> ()
              | _, _ -> Alcotest.failf "response %d errored" r.Wire.resp_id)
            got))

(* A client that pipelines requests with large responses and never reads
   must be dropped at the max_pending bound (counted in
   net.slow_client_drops), with the server still serving everyone
   else — not buffer the abandoned output without bound. *)
let test_slow_client_dropped () =
  let server_cfg = { NetServer.default_config with NetServer.max_pending = 4 } in
  with_net ~server_cfg (fun _ srv client ->
      let key = 9 in
      let big = Bytes.make (512 * 1024) 'x' in
      (match NetClient.set client ~key ~value:big with
      | Ok () -> ()
      | Error e -> Alcotest.failf "priming set failed: %s" e);
      let fd = raw_connect srv in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* 64 pipelined GETs of a 512 KiB value, never reading: the
             responses cannot fit any socket buffer, so pending must hit
             the bound. *)
          for i = 0 to 63 do
            write_all fd
              (Wire.encode_request wire
                 { Wire.id = i; op = Wire.Get; key; token = None;
                   trace = None; value = Bytes.empty })
          done;
          let reg = NetServer.registry srv in
          let drops () = counter_value reg "net.slow_client_drops" in
          let deadline = Unix.gettimeofday () +. 10.0 in
          while drops () = 0 && Unix.gettimeofday () < deadline do
            Unix.sleepf 0.005
          done;
          Alcotest.(check bool) "slow client dropped" true (drops () >= 1);
          (* The drop closes the connection: reading drains whatever was
             already in flight, then hits EOF or a reset. *)
          let buf = Bytes.create 65536 in
          let closed = ref false in
          let deadline = Unix.gettimeofday () +. 10.0 in
          while (not !closed) && Unix.gettimeofday () < deadline do
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> closed := true
            | _ -> ()
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              -> closed := true
          done;
          Alcotest.(check bool) "connection closed after drop" true !closed);
      (* The server survives its slow client: a well-behaved client
         still gets answers. *)
      Alcotest.(check bool) "server still serves" true
        (NetClient.get client ~key = Ok (Some big)))

(* The threads engine stays selectable (and correct) behind the same
   config — the comparison baseline for the evloop benchmarks. *)
let test_threads_engine_serves () =
  let server_cfg =
    { NetServer.default_config with NetServer.engine = NetServer.Threads }
  in
  with_net ~server_cfg (fun _ _ client ->
      Alcotest.(check bool) "set" true
        (NetClient.set client ~key:3 ~value:(Bytes.of_string "thr") = Ok ());
      Alcotest.(check bool) "get back" true
        (NetClient.get client ~key:3 = Ok (Some (Bytes.of_string "thr")));
      let n = 100 in
      let order = ref [] in
      let lock = Mutex.create () in
      let remaining = Atomic.make n in
      let dispatched =
        List.init n (fun i ->
            let op = if i mod 2 = 0 then Wire.Set else Wire.Get in
            let value =
              if op = Wire.Set then Bytes.of_string "v" else Bytes.empty
            in
            NetClient.dispatch client ~op ~key:7 ~value
              ~on_response:(fun r ->
                C4_runtime.Sync.with_lock lock (fun () ->
                    order := r.Wire.resp_id :: !order);
                Atomic.decr remaining)
              ())
      in
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Atomic.get remaining > 0 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.001
      done;
      Alcotest.(check int) "all answered" 0 (Atomic.get remaining);
      Alcotest.(check (list int)) "responses in dispatch order" dispatched
        (List.rev !order))

let tests =
  [
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_traced_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_response_roundtrip;
    Alcotest.test_case "torn frames reassemble byte-by-byte" `Quick test_torn_frames;
    Alcotest.test_case "oversized frame is sticky-fatal" `Quick
      test_oversized_frame_rejected;
    Alcotest.test_case "unknown version rejected" `Quick test_bad_version_rejected;
    Alcotest.test_case "strict request decoding" `Quick test_strict_request_decode;
    Alcotest.test_case "NIC parses wire request bodies" `Quick test_nic_header_interop;
    Alcotest.test_case "loopback set/get/delete" `Quick test_loopback_ops;
    Alcotest.test_case "per-connection pipelining order" `Quick test_pipelining_order;
    Alcotest.test_case "concurrent clients linearizable" `Quick
      test_concurrent_clients_linearizable;
    Alcotest.test_case "crash recovery over the network" `Quick
      test_crash_recovery_over_network;
    Alcotest.test_case "graceful drain answers everything" `Quick test_graceful_drain;
    Alcotest.test_case "loadgen loopback smoke" `Quick test_loadgen_smoke;
    Alcotest.test_case "SET idempotency token from first attempt" `Quick
      test_set_token_from_first_attempt;
    Alcotest.test_case "client sharding matches cluster routing" `Quick
      test_client_routing_matches_cluster;
    Alcotest.test_case "ctx-free frames stay version 1" `Quick
      test_ctx_free_frames_stay_v1;
    Alcotest.test_case "one request, one stitched span chain" `Quick
      test_stitched_span_chain;
    Alcotest.test_case "routed counters migrate on recovery" `Quick
      test_routed_counter_migration;
    Alcotest.test_case "one-byte dribble completes in order" `Quick
      test_one_byte_dribble;
    Alcotest.test_case "slow client dropped at the pending bound" `Quick
      test_slow_client_dropped;
    Alcotest.test_case "threads engine stays selectable" `Quick
      test_threads_engine_serves;
  ]
